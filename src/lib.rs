//! `mwr` — fast implementations of distributed multi-writer atomic
//! registers.
//!
//! A production-quality reproduction of *Fine-grained Analysis on Fast
//! Implementations of Multi-writer Atomic Registers* (Kaile Huang, Yu
//! Huang, Hengfeng Wei — PODC 2020): the paper's W2R1 algorithm and every
//! baseline in the design space, a deterministic message-passing simulator,
//! atomicity checkers, mechanized impossibility proofs, and a live
//! thread/TCP runtime.
//!
//! This crate is the umbrella: it re-exports the workspace members under
//! stable module names.
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`register`] | `mwr-register` | **start here** — the [`Deployment`](register::Deployment) facade over every protocol family and backend |
//! | [`keyspace`] | `mwr-keyspace` | many named registers over one cluster: rendezvous-sharded groups, multiplexed endpoints, per-register audit |
//! | [`types`] | `mwr-types` | ids, tags, values, cluster config, wire codec |
//! | [`sim`] | `mwr-sim` | deterministic discrete-event simulator |
//! | [`core`] | `mwr-core` | protocols: W2R2, W2R1 (the paper), ABD, Dutta, naive fast writes |
//! | [`check`] | `mwr-check` | histories, atomicity/regular/safe checkers, MWA0–MWA4 |
//! | [`chains`] | `mwr-chains` | mechanized Theorem 1, sieve, fast-read lower bound |
//! | [`runtime`] | `mwr-runtime` | thread-per-process live clusters (channels, TCP) |
//! | [`workload`] | `mwr-workload` | closed-loop drivers (sim + live), latency stats, tables |
//! | [`almost`] | `mwr-almost` | tunable-quorum clients + staleness quantification (§7 future work) |
//! | [`byz`] | `mwr-byz` | Byzantine servers, masking-quorum clients, vouched fast reads (§5 extension) |
//!
//! # Quickstart
//!
//! One [`Deployment`](register::Deployment) describes the register; the
//! backend knob decides whether it runs in the checkable simulator or on
//! real threads:
//!
//! ```
//! use mwr::check::check_events;
//! use mwr::register::{Backend, Deployment, Protocol, ScheduledOp};
//! use mwr::sim::SimTime;
//! use mwr::types::{ClusterConfig, Value};
//!
//! // S = 5 servers tolerating t = 1 crash, R = 2 readers, W = 2 writers:
//! // the paper's fast-read condition R < S/t − 2 holds.
//! let config = ClusterConfig::new(5, 1, 2, 2)?;
//! let deployment = Deployment::new(config).protocol(Protocol::W2R1);
//!
//! // Simulated: deterministic, machine-checked for atomicity.
//! let events = deployment.backend(Backend::Sim { seed: 1 }).sim()?.run_schedule(&[
//!     (SimTime::ZERO, ScheduledOp::Write { writer: 0, value: Value::new(7) }),
//!     (SimTime::from_ticks(10), ScheduledOp::Write { writer: 1, value: Value::new(8) }),
//!     (SimTime::from_ticks(15), ScheduledOp::Read { reader: 0 }),
//!     (SimTime::from_ticks(40), ScheduledOp::Read { reader: 1 }),
//! ])?;
//! assert!(check_events(&events)?.is_ok(), "atomic, with single-round reads");
//!
//! // Live: the same register on threads, blocking clients.
//! let live = deployment.backend(Backend::InMemory).in_memory()?;
//! let mut writer = live.writer(0)?;
//! let mut reader = live.reader(0)?;
//! let written = writer.write(Value::new(9))?;
//! assert_eq!(reader.read()?, written);
//! live.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use mwr_almost as almost;
pub use mwr_byz as byz;
pub use mwr_chains as chains;
pub use mwr_check as check;
pub use mwr_core as core;
pub use mwr_keyspace as keyspace;
pub use mwr_register as register;
pub use mwr_runtime as runtime;
pub use mwr_sim as sim;
pub use mwr_types as types;
pub use mwr_workload as workload;
