//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the workspace's wire codec and TCP transport use:
//! [`BytesMut`] as an append-only encode buffer, [`Bytes`] as a cheaply
//! sliceable read cursor, and the [`Buf`]/[`BufMut`] traits with the
//! fixed-width big-endian accessors. Semantics match the real crate for
//! this subset; zero-copy sharing is approximated with `Arc`.

#![warn(missing_docs)]

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A contiguous, shareable, immutable byte buffer with a consuming cursor.
///
/// [`Buf`] reads consume from the front; [`Bytes::slice`] produces views
/// that share the underlying allocation.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates a buffer backed by a static slice (copied; see crate docs).
    pub fn from_static(slice: &'static [u8]) -> Self {
        Bytes::from(slice.to_vec())
    }

    /// Remaining length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a view of `range` (relative to the current cursor) sharing
    /// the same allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes { data: data.into(), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", self.as_slice())
    }
}

/// A growable byte buffer for encoding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with `capacity` pre-allocated bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { inner: Vec::with_capacity(capacity) }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Bytes the buffer can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Appends `extend` to the buffer.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.inner.extend_from_slice(extend);
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

/// Read access to a byte cursor: big-endian accessors that consume input.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `cnt` bytes remain.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics on underflow (callers bounds-check via [`Buf::remaining`]).
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    ///
    /// # Panics
    ///
    /// Panics on underflow.
    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().unwrap());
        self.advance(2);
        v
    }

    /// Reads a big-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics on underflow.
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    /// Reads a big-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics on underflow.
    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }

    /// Fills `dst` from the front of the buffer.
    ///
    /// # Panics
    ///
    /// Panics on underflow.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of slice");
        *self = &self[cnt..];
    }
}

/// Write access to a byte buffer: big-endian appenders.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_are_consuming_cursors() {
        let data = [7u8, 0, 0, 0, 42];
        let mut cur: &[u8] = &data;
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u32(), 42);
        assert_eq!(Buf::remaining(&cur), 0);
    }

    #[test]
    fn round_trip_and_slice() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u32(0xdead_beef);
        buf.put_u64(42);
        assert_eq!(buf.len(), 13);
        let frozen = buf.freeze();
        let mut cur = frozen.slice(..);
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u32(), 0xdead_beef);
        assert_eq!(cur.get_u64(), 42);
        assert!(cur.is_empty());
        let head = frozen.slice(0..5);
        assert_eq!(head.len(), 5);
        assert_eq!(&head[..1], &[7]);
    }
}
