//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, deterministic generator (SplitMix64).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    state: u64,
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        SmallRng { state }
    }
}
