//! Non-uniform distributions.
//!
//! The only one the workspace needs is [`Zipf`], the key-popularity
//! distribution of the keyspace throughput workload.

use crate::RngCore;

/// A Zipf distribution over ranks `1..=n` with skew `s ≥ 0`:
/// `P(k) ∝ k^(−s)`. Rank 1 is the most popular element.
///
/// Sampling uses Hörmann & Derflinger's **rejection-inversion** (the
/// algorithm behind Apache Commons' `RejectionInversionZipfSampler`):
/// invert the integral of the continuous envelope `h(x) = x^(−s)` and
/// reject the sliver where the envelope overshoots the discrete mass.
/// Expected draws per sample are below 2 for every `(n, s)`, there is no
/// table to precompute (constant setup regardless of `n`), and — in the
/// same discipline as [`uniform_u64_below`](crate) — no modulo or
/// truncation step that would bias ranks.
///
/// # Examples
///
/// ```
/// use rand::distributions::Zipf;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let zipf = Zipf::new(64, 1.1);
/// let mut rng = SmallRng::seed_from_u64(7);
/// let rank = zipf.sample(&mut rng);
/// assert!((1..=64).contains(&rank));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zipf {
    n: u64,
    exponent: f64,
    /// `H(1.5) − 1`: the lower end of the inversion domain (`H` is the
    /// envelope integral; `−1 = −h(1)` extends the first rank's mass).
    h_x1: f64,
    /// `H(n + 0.5)`: the upper end of the inversion domain.
    h_n: f64,
    /// Acceptance-shortcut constant `2 − H⁻¹(H(2.5) − h(2))`: draws with
    /// `k − x ≤ acceptance` are accepted without evaluating the envelope.
    acceptance: f64,
}

impl Zipf {
    /// Creates the distribution over ranks `1..=n` with skew `s`.
    ///
    /// `s = 0` degenerates to the uniform distribution on `1..=n`; larger
    /// `s` concentrates mass on small ranks (`s ≈ 1` is the classic
    /// Zipf's-law web/cache skew).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero, or `s` is negative or non-finite.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "Zipf skew must be finite and >= 0");
        let h_x1 = h_integral(1.5, s) - 1.0;
        let h_n = h_integral(n as f64 + 0.5, s);
        let acceptance = 2.0 - h_integral_inverse(h_integral(2.5, s) - h(2.0, s), s);
        Zipf { n, exponent: s, h_x1, h_n, acceptance }
    }

    /// Number of ranks.
    pub const fn n(&self) -> u64 {
        self.n
    }

    /// The skew exponent.
    pub const fn s(&self) -> f64 {
        self.exponent
    }

    /// Draws one rank in `1..=n`.
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        loop {
            // u uniform in (h_x1, h_n]: 1 − uniform01 is in (0, 1], and
            // h_x1 < h_n always (the envelope integral is increasing).
            let p = 1.0 - uniform01(rng);
            let u = self.h_n + p * (self.h_x1 - self.h_n);
            let x = h_integral_inverse(u, self.exponent);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            // Accept either inside the always-safe band around the
            // integer, or wherever the inverted draw sits under the
            // discrete mass h(k) once the envelope's overshoot
            // H(k + 1/2) − h(k) is carved away.
            if k - x <= self.acceptance
                || u >= h_integral(k + 0.5, self.exponent) - h(k, self.exponent)
            {
                return k as u64;
            }
        }
    }
}

/// `H(x) = ∫ x^(−s) dx`: `ln x` at `s = 1`, else `(x^(1−s) − 1)/(1−s)`.
fn h_integral(x: f64, s: f64) -> f64 {
    let log_x = x.ln();
    helper2((1.0 - s) * log_x) * log_x
}

/// The envelope `h(x) = x^(−s)`.
fn h(x: f64, s: f64) -> f64 {
    (-s * x.ln()).exp()
}

/// `H⁻¹(x)`.
fn h_integral_inverse(x: f64, s: f64) -> f64 {
    let mut t = x * (1.0 - s);
    if t < -1.0 {
        // Damp rounding noise: H is only defined down to H(0⁺) whose
        // pre-image corresponds to t = −1.
        t = -1.0;
    }
    (helper1(t) * x).exp()
}

/// `log1p(x)/x`, continuous through `x = 0` (→ 1).
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))
    }
}

/// `(e^x − 1)/x`, continuous through `x = 0` (→ 1).
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x * 0.5 * (1.0 + x * (1.0 / 3.0) * (1.0 + 0.25 * x))
    }
}

/// A uniform double in `[0, 1)` from the top 53 bits of one word — the
/// full mantissa, no modulo.
fn uniform01<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn same_seed_same_ranks() {
        let zipf = Zipf::new(1000, 1.1);
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..200 {
            assert_eq!(zipf.sample(&mut a), zipf.sample(&mut b));
        }
    }

    #[test]
    fn single_rank_always_returns_one() {
        let zipf = Zipf::new(1, 2.0);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut rng), 1);
        }
    }

    #[test]
    fn ranks_stay_in_bounds_across_skews() {
        let mut rng = SmallRng::seed_from_u64(11);
        for &s in &[0.0, 0.5, 1.0, 1.1, 2.5] {
            let zipf = Zipf::new(64, s);
            for _ in 0..10_000 {
                let k = zipf.sample(&mut rng);
                assert!((1..=64).contains(&k), "rank {k} out of bounds at s={s}");
            }
        }
    }

    /// The empirical head frequencies match the law `P(k) = k^(−s)/H_{n,s}`
    /// within a few percent at 200k samples.
    #[test]
    fn head_frequencies_match_the_law() {
        let (n, s, samples) = (64u64, 1.1f64, 200_000usize);
        let zipf = Zipf::new(n, s);
        let mut rng = SmallRng::seed_from_u64(77);
        let mut counts = vec![0u32; n as usize];
        for _ in 0..samples {
            counts[(zipf.sample(&mut rng) - 1) as usize] += 1;
        }
        let harmonic: f64 = (1..=n).map(|k| (k as f64).powf(-s)).sum();
        for k in 1..=4u64 {
            let expect = (k as f64).powf(-s) / harmonic;
            let got = f64::from(counts[(k - 1) as usize]) / samples as f64;
            assert!(
                (got - expect).abs() < 0.01,
                "rank {k}: expected {expect:.4}, got {got:.4}"
            );
        }
        // Monotone head: popularity cannot increase with rank.
        assert!(counts[0] > counts[3] && counts[3] > counts[15]);
    }

    /// Skew zero is the uniform distribution — the sampler must not
    /// smuggle in head bias when the law says there is none.
    #[test]
    fn zero_skew_is_uniform() {
        let zipf = Zipf::new(8, 0.0);
        let mut rng = SmallRng::seed_from_u64(13);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[(zipf.sample(&mut rng) - 1) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "uniform counts skewed: {counts:?}");
        }
    }
}
