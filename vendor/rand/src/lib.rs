//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the minimal surface it actually uses: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer
//! ranges, and the [`distributions::Zipf`] sampler driving skewed keyspace
//! workloads. The generator is SplitMix64 — deterministic, seedable, and more
//! than good enough for simulation schedules and property tests (it is not,
//! and does not claim to be, cryptographically secure).

#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;

pub use distributions::Zipf;

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose entire stream is a function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Convenience sampling methods over an [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a uniform value in `[0, span)` by rejection sampling, so every
/// residue class is equally likely (a bare `next_u64() % span` would bias
/// toward small residues whenever `span` does not divide `2^64`).
///
/// The acceptance zone is the largest multiple of `span` that fits in
/// `2^64`; draws past it are rejected and retried. The expected number of
/// draws is below 2 for every span.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Number of values in the final, partial block: 2^64 mod span.
    let tail = (u64::MAX % span + 1) % span;
    let zone_end = u64::MAX - tail; // inclusive: accept x ≤ zone_end
    loop {
        let x = rng.next_u64();
        if x <= zone_end {
            return x % span;
        }
    }
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                debug_assert!(span <= u64::MAX as u128);
                let draw = uniform_u64_below(rng, span as u64) as u128;
                (self.start as i128 + draw as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // The full 64-bit domain: every draw is uniform as-is.
                    return (lo as i128 + rng.next_u64() as i128) as $t;
                }
                let draw = uniform_u64_below(rng, span as u64) as u128;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
        }
    }

    /// The acceptance zone is the largest multiple of the span: a source
    /// that would land in the rejected tail is retried, so no residue
    /// class is over-represented.
    #[test]
    fn rejection_zone_is_exact() {
        struct Fixed(Vec<u64>, usize);
        impl super::RngCore for Fixed {
            fn next_u64(&mut self) -> u64 {
                let v = self.0[self.1];
                self.1 += 1;
                v
            }
        }
        // 2^64 ≡ 1 (mod 3): exactly one value (u64::MAX) is in the tail
        // and must be rejected; the retry's value is used instead.
        let mut src = Fixed(vec![u64::MAX, 7], 0);
        assert_eq!(super::uniform_u64_below(&mut src, 3), 7 % 3);
        assert_eq!(src.1, 2, "the tail draw was rejected and retried");
        // A span dividing 2^64 never rejects: even the extreme draw is in
        // the acceptance zone.
        let mut src = Fixed(vec![u64::MAX], 0);
        assert_eq!(super::uniform_u64_below(&mut src, 1 << 32), (1u64 << 32) - 1);
        assert_eq!(src.1, 1);
    }

    /// Loose uniformity check over a span that does not divide 2^64; the
    /// old modulo sampling passed this too for small spans, so the exact
    /// zone test above is the real bias regression — this one guards the
    /// plumbing.
    #[test]
    fn small_ranges_are_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(99);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[rng.gen_range(0usize..3)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts skewed: {counts:?}");
        }
    }

    /// Inclusive ranges spanning the full 64-bit domain cannot reject.
    #[test]
    fn full_domain_inclusive_ranges_work() {
        let mut rng = SmallRng::seed_from_u64(3);
        let _: u64 = rng.gen_range(0u64..=u64::MAX);
        let _: i64 = rng.gen_range(i64::MIN..=i64::MAX);
    }
}
