//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the minimal surface it actually uses: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over integer
//! ranges. The generator is SplitMix64 — deterministic, seedable, and more
//! than good enough for simulation schedules and property tests (it is not,
//! and does not claim to be, cryptographically secure).

#![warn(missing_docs)]

pub mod rngs;

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose entire stream is a function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Convenience sampling methods over an [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
        }
    }
}
