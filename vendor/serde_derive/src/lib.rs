//! Offline stand-in for `serde_derive`.
//!
//! The workspace's wire format is the hand-rolled codec in
//! `mwr-types::codec`; serde derives on domain types exist only to keep the
//! types ready for a real serde when the build environment gains network
//! access. These no-op derives accept (and ignore) `#[serde(...)]`
//! attributes and emit no code.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
