//! Offline stand-in for `parking_lot`.
//!
//! Thin wrappers over `std::sync` locks with `parking_lot`'s ergonomics:
//! `lock()`/`read()`/`write()` return guards directly (no `Result`), and a
//! poisoned lock is recovered rather than propagated, matching
//! `parking_lot`'s non-poisoning behaviour.

#![warn(missing_docs)]

use std::fmt;
use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutual-exclusion lock whose `lock` never fails.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex { inner: StdMutex::new(value) }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires the lock only if it is free right now, recovering from
    /// poisoning (matches `parking_lot::Mutex::try_lock`).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").field("inner", &&self.inner).finish()
    }
}

/// A reader-writer lock whose `read`/`write` never fail.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock { inner: StdRwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").field("inner", &&self.inner).finish()
    }
}
