//! Offline stand-in for `criterion`.
//!
//! Accepts the real crate's bench-authoring API (`criterion_group!`,
//! `criterion_main!`, groups, `BenchmarkId`, `Bencher::iter`) so the bench
//! sources compile unchanged, and runs each benchmark as a short
//! warm-up + timed loop, printing mean wall-clock per iteration. There is
//! no statistics engine, HTML report, or regression store; when run with
//! `--test` (as `cargo test` does for bench targets) each benchmark
//! executes exactly one iteration.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (std's hint on recent Rust).
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement duration budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Puts the driver in smoke-test mode: one iteration per benchmark.
    #[doc(hidden)]
    pub fn test_mode(mut self) -> Self {
        self.test_mode = true;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None }
    }

    /// Registers and immediately runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(self, None, &id.id, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs `f` as a benchmark named `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let crit =
            Criterion { sample_size: self.sample_size.unwrap_or(self.criterion.sample_size), ..self.criterion.clone() };
        run_one(&crit, Some(&self.name), &id.id, &mut f);
        self
    }

    /// Runs `f` with `input` as a benchmark named `id` within this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finishes the group (no-op; reporting happens per benchmark).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Drives the timed iterations of one benchmark.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.total = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(crit: &Criterion, group: Option<&str>, id: &str, f: &mut F) {
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if crit.test_mode {
        let mut b = Bencher { iters: 1, total: Duration::ZERO };
        f(&mut b);
        println!("test-mode {label}: ok");
        return;
    }
    // Warm-up: run single iterations until the warm-up budget elapses, and
    // estimate a per-iteration cost for sizing the measured batch.
    let warm_start = Instant::now();
    let mut warm_iters: u32 = 0;
    let mut b = Bencher { iters: 1, total: Duration::ZERO };
    while warm_start.elapsed() < crit.warm_up_time || warm_iters == 0 {
        f(&mut b);
        warm_iters += 1;
        if warm_iters >= 1000 {
            break;
        }
    }
    let per_iter = warm_start.elapsed() / warm_iters.max(1);
    // Measure: `sample_size` samples within the measurement budget.
    let budget_per_sample = crit.measurement_time / crit.sample_size as u32;
    let iters = if per_iter.is_zero() {
        1000
    } else {
        (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 100_000) as u64
    };
    let mut best = Duration::MAX;
    let mut worst = Duration::ZERO;
    let mut total = Duration::ZERO;
    let measure_start = Instant::now();
    for _ in 0..crit.sample_size {
        let mut b = Bencher { iters, total: Duration::ZERO };
        f(&mut b);
        let mean = b.total / iters as u32;
        best = best.min(mean);
        worst = worst.max(mean);
        total += b.total;
        if measure_start.elapsed() > crit.measurement_time * 4 {
            break;
        }
    }
    let mean = total / (crit.sample_size as u32 * iters as u32).max(1);
    println!("bench {label}: mean {mean:?} (best {best:?}, worst {worst:?}, {iters} iters/sample)");
}

/// Declares a group of benchmark functions, in both the list and the
/// `name/config/targets` forms of the real macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            if ::std::env::args().any(|a| a == "--test") {
                criterion = criterion.test_mode();
            }
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
