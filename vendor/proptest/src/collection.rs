//! Collection strategies.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length specification for [`vec()`]: an exact size or a range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange { lo: exact, hi_inclusive: exact }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
