//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use, with the same
//! call syntax as the real crate:
//!
//! - [`strategy::Strategy`] with `prop_map`, implemented for integer
//!   ranges, tuples, [`strategy::Just`], and boxed unions;
//! - [`collection::vec`] with exact, `Range`, and `RangeInclusive` sizes;
//! - [`arbitrary::any`] for the primitive types;
//! - the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assert_ne!`], and [`prop_oneof!`] macros;
//! - [`test_runner::ProptestConfig`] with `with_cases`.
//!
//! Differences from the real crate: generation is a fixed deterministic
//! stream per test (no `PROPTEST_` env handling, no persisted regressions)
//! and failing cases are reported **without shrinking** — the full
//! generated input is printed instead.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Defines property tests over generated inputs.
///
/// Accepts the real crate's syntax: an optional
/// `#![proptest_config(expr)]`, then `#[test]` functions whose parameters
/// are either `name in strategy` or `name: Type` (shorthand for
/// `name in any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr) $($(#[$attr:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                $crate::proptest!(@parse ($cfg, $name) [$($params)*] [] [] $body);
            }
        )*
    };
    // Parameter muncher: accumulate `(pattern)` and `(strategy)` lists.
    (@parse ($cfg:expr, $fname:ident) [$n:ident in $s:expr] [$($pats:tt)*] [$($strats:tt)*] $body:block) => {
        $crate::proptest!(@parse ($cfg, $fname) [] [$($pats)* ($n)] [$($strats)* ($s)] $body);
    };
    (@parse ($cfg:expr, $fname:ident) [$n:ident in $s:expr, $($rest:tt)*] [$($pats:tt)*] [$($strats:tt)*] $body:block) => {
        $crate::proptest!(@parse ($cfg, $fname) [$($rest)*] [$($pats)* ($n)] [$($strats)* ($s)] $body);
    };
    (@parse ($cfg:expr, $fname:ident) [$n:ident : $t:ty] [$($pats:tt)*] [$($strats:tt)*] $body:block) => {
        $crate::proptest!(@parse ($cfg, $fname) [] [$($pats)* ($n)]
            [$($strats)* ($crate::arbitrary::any::<$t>())] $body);
    };
    (@parse ($cfg:expr, $fname:ident) [$n:ident : $t:ty, $($rest:tt)*] [$($pats:tt)*] [$($strats:tt)*] $body:block) => {
        $crate::proptest!(@parse ($cfg, $fname) [$($rest)*] [$($pats)* ($n)]
            [$($strats)* ($crate::arbitrary::any::<$t>())] $body);
    };
    (@parse ($cfg:expr, $fname:ident) [] [$(($pat:ident))+] [$(($strat:expr))+] $body:block) => {{
        let __config: $crate::test_runner::ProptestConfig = $cfg;
        let __strategy = ($($strat,)+);
        // Seed from the full test identity, not the parameter names alone:
        // distinct tests sharing a parameter list must not share a sample
        // stream, or they all test the exact same generated inputs.
        let mut __rng = $crate::test_runner::TestRng::deterministic(
            concat!(module_path!(), "::", stringify!($fname), "(", stringify!($($pat)+), ")"),
        );
        for __case in 0..__config.cases {
            let __inputs = $crate::strategy::Strategy::generate(&__strategy, &mut __rng);
            let __described = format!("{:?}", __inputs);
            let ($($pat,)+) = __inputs;
            let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                (|| { $body ::std::result::Result::Ok(()) })();
            if let ::std::result::Result::Err(e) = __outcome {
                panic!(
                    "proptest case {}/{} failed: {}\ninputs ({}): {}",
                    __case + 1,
                    __config.cases,
                    e,
                    stringify!(($($pat),+)),
                    __described,
                );
            }
        }
    }};
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current property test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current property test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        $crate::prop_assert_eq!($left, $right, "assertion failed: {} == {}",
            stringify!($left), stringify!($right))
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), __l, __r),
                    ));
                }
            }
        }
    };
}

/// Fails the current property test case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        $crate::prop_assert_ne!($left, $right, "assertion failed: {} != {}",
            stringify!($left), stringify!($right))
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!("{}\n  both: {:?}", format!($($fmt)+), __l),
                    ));
                }
            }
        }
    };
}

/// Chooses uniformly between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
