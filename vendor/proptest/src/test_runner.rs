//! Test-case execution support: configuration, RNG, and failure type.

use std::fmt;

/// Configuration for a [`proptest!`](crate::proptest) block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases (the real crate's constructor).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property-test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The deterministic generator behind every strategy (SplitMix64).
///
/// Each `proptest!` test derives its seed from its parameter names, so a
/// test's input stream is stable across runs and machines — failures
/// reproduce exactly without persistence files.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from `label`.
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in label.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: seed }
    }

    /// Returns the next random word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.next_u64() % bound
    }
}
