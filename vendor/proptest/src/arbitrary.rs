//! The [`any`] entry point and the [`Arbitrary`] trait for primitives.

use std::fmt::Debug;
use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: PhantomData }
}
