//! The [`Strategy`] trait and combinators.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike the real proptest there is no shrinking: a strategy is just a
/// deterministic sampler over a seeded [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, mapper: f }
    }

    /// Erases the concrete strategy type (used by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: Box::new(self) }
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    mapper: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.mapper)(self.strategy.generate(rng))
    }
}

/// Object-safe strategy for boxing.
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn DynStrategy<T>>,
}

impl<T> Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy { .. }")
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate_dyn(rng)
    }
}

/// Uniform choice among boxed strategies of one value type.
#[derive(Debug)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// Creates a union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len() as u64) as usize;
        self.arms[arm].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
