//! Offline stand-in for `serde`.
//!
//! Re-exports no-op [`Serialize`]/[`Deserialize`] derive macros and defines
//! same-named marker traits, so `#[derive(Serialize, Deserialize)]` and
//! `use serde::{Serialize, Deserialize}` both compile unchanged. Nothing in
//! this workspace serializes through serde — the wire format is the explicit
//! codec in `mwr-types` — so no methods are needed.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize` (no methods; see crate docs).
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize` (no methods; see crate docs).
pub trait Deserialize<'de>: Sized {}
