//! Offline stand-in for `polling` — a level-triggered readiness queue.
//!
//! The live TCP transport needs one thread to sleep until *any* of its
//! sockets has bytes to read (a shared reader), instead of parking one
//! blocking thread per connection. The real `polling` crate wraps
//! epoll/kqueue/IOCP; this stand-in wraps the portable `poll(2)` syscall
//! plus a self-pipe notifier, which is all the workspace needs:
//!
//! - [`Poller::add`] / [`Poller::delete`] maintain the interest set (file
//!   descriptors tagged with caller-chosen `usize` keys),
//! - [`Poller::wait`] blocks until at least one registered descriptor is
//!   readable (or has hung up — level-triggered, like `poll(2)` itself),
//! - [`Poller::notify`] wakes a concurrent `wait` from any thread by
//!   writing one byte into an internal non-blocking pipe (the classic
//!   self-pipe trick), so shutdown and "new socket registered" signals
//!   need no timed re-polling.
//!
//! No `libc` crate is vendored; the handful of syscalls are declared
//! directly — `std` already links the platform C library on every Unix
//! target. On non-Unix targets every operation returns
//! [`io::ErrorKind::Unsupported`]; callers fall back to
//! thread-per-connection reads.

#![warn(missing_docs)]

use std::io;
use std::time::Duration;

/// A readiness event: the caller-chosen key of a registered descriptor
/// that is ready to read (or has hung up, which reads as EOF).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The key passed to [`Poller::add`] for the ready descriptor.
    pub key: usize,
    /// Whether the descriptor is readable (always true in events returned
    /// by [`Poller::wait`]; hangup and error conditions are folded in so a
    /// subsequent read observes the EOF or error).
    pub readable: bool,
}

impl Event {
    /// A read-interest event with the given key (the only interest this
    /// stand-in supports — the workspace's writers use blocking sockets).
    pub fn readable(key: usize) -> Event {
        Event { key, readable: true }
    }
}

#[cfg(unix)]
mod sys {
    use super::Event;
    use std::io;
    use std::os::raw::{c_int, c_ulong};
    use std::os::unix::io::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    // `std` links the C library on every Unix target, so the syscall
    // wrappers can be declared directly instead of vendoring `libc`.
    #[repr(C)]
    struct PollFd {
        fd: c_int,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
        fn pipe(fds: *mut c_int) -> c_int;
        fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
        fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    const POLLIN: i16 = 0x001;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const F_GETFL: c_int = 3;
    const F_SETFL: c_int = 4;
    const O_NONBLOCK: c_int = 0o4000;

    fn set_nonblocking(fd: RawFd) -> io::Result<()> {
        // SAFETY: fcntl on an owned, open descriptor with valid flag cmds.
        unsafe {
            let flags = fcntl(fd, F_GETFL, 0);
            if flags < 0 {
                return Err(io::Error::last_os_error());
            }
            if fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0 {
                return Err(io::Error::last_os_error());
            }
        }
        Ok(())
    }

    /// poll(2)-backed implementation; see the crate docs.
    #[derive(Debug)]
    pub struct Poller {
        interest: Mutex<Vec<(RawFd, usize)>>,
        wake_read: RawFd,
        wake_write: RawFd,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let mut fds: [c_int; 2] = [0; 2];
            // SAFETY: pipe writes exactly two descriptors into the array.
            if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
                return Err(io::Error::last_os_error());
            }
            let (r, w) = (fds[0], fds[1]);
            // Both ends non-blocking: `notify` on a full pipe is a no-op
            // (a wake-up is already pending), and the drain in `wait`
            // stops at empty instead of blocking the reader.
            if let Err(e) = set_nonblocking(r).and_then(|()| set_nonblocking(w)) {
                // SAFETY: closing the descriptors this function just opened.
                unsafe {
                    close(r);
                    close(w);
                }
                return Err(e);
            }
            Ok(Poller { interest: Mutex::new(Vec::new()), wake_read: r, wake_write: w })
        }

        pub fn add(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            let mut set = self.interest.lock().unwrap();
            if set.iter().any(|&(f, _)| f == fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "descriptor already registered",
                ));
            }
            set.push((fd, interest.key));
            Ok(())
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            let mut set = self.interest.lock().unwrap();
            match set.iter().position(|&(f, _)| f == fd) {
                Some(i) => {
                    set.swap_remove(i);
                    Ok(())
                }
                None => Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    "descriptor not registered",
                )),
            }
        }

        pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
            let mut fds: Vec<PollFd> = Vec::new();
            let mut keys: Vec<usize> = Vec::new();
            fds.push(PollFd { fd: self.wake_read, events: POLLIN, revents: 0 });
            {
                let set = self.interest.lock().unwrap();
                fds.reserve(set.len());
                keys.reserve(set.len());
                for &(fd, key) in set.iter() {
                    fds.push(PollFd { fd, events: POLLIN, revents: 0 });
                    keys.push(key);
                }
            }
            let timeout_ms: c_int = match timeout {
                // poll(2) takes int milliseconds; saturate long sleeps.
                Some(t) => t.as_millis().min(c_int::MAX as u128) as c_int,
                None => -1,
            };
            // SAFETY: `fds` is a valid array of initialized PollFds for the
            // duration of the call; the kernel only writes `revents`.
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(0); // EINTR: callers loop on their own state
                }
                return Err(err);
            }
            let ready = POLLIN | POLLERR | POLLHUP;
            if fds[0].revents & ready != 0 {
                self.drain_wake_pipe();
            }
            let before = events.len();
            for (pfd, &key) in fds[1..].iter().zip(&keys) {
                // Errors and hangups are reported as readable so the owner
                // performs the read that observes the EOF/error and
                // deregisters — level-triggered semantics keep re-reporting
                // until it does.
                if pfd.revents & ready != 0 {
                    events.push(Event { key, readable: true });
                }
            }
            Ok(events.len() - before)
        }

        pub fn notify(&self) -> io::Result<()> {
            let byte = [1u8];
            // SAFETY: writing one byte from a valid buffer to an owned fd.
            let n = unsafe { write(self.wake_write, byte.as_ptr(), 1) };
            if n < 0 {
                let err = io::Error::last_os_error();
                // A full pipe means a wake-up is already pending: done.
                if err.kind() != io::ErrorKind::WouldBlock {
                    return Err(err);
                }
            }
            Ok(())
        }

        fn drain_wake_pipe(&self) {
            let mut buf = [0u8; 64];
            loop {
                // SAFETY: reading into a valid buffer from an owned fd.
                let n = unsafe { read(self.wake_read, buf.as_mut_ptr(), buf.len()) };
                if n <= 0 {
                    break; // empty (WouldBlock) or closed: nothing pending
                }
            }
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: closing descriptors owned by this Poller exactly once.
            unsafe {
                close(self.wake_read);
                close(self.wake_write);
            }
        }
    }
}

#[cfg(not(unix))]
mod sys {
    use super::Event;
    use std::io;
    use std::time::Duration;

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "polling stand-in supports Unix targets only",
        ))
    }

    /// Stub implementation for non-Unix targets; every call fails with
    /// [`io::ErrorKind::Unsupported`].
    #[derive(Debug)]
    pub struct Poller;

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            unsupported()
        }

        pub fn add(&self, _fd: i32, _interest: Event) -> io::Result<()> {
            unsupported()
        }

        pub fn delete(&self, _fd: i32) -> io::Result<()> {
            unsupported()
        }

        pub fn wait(
            &self,
            _events: &mut Vec<Event>,
            _timeout: Option<Duration>,
        ) -> io::Result<usize> {
            unsupported()
        }

        pub fn notify(&self) -> io::Result<()> {
            unsupported()
        }
    }
}

/// A readiness queue over a set of registered file descriptors.
///
/// Thread-safe: one thread blocks in [`wait`](Poller::wait) while others
/// [`add`](Poller::add)/[`delete`](Poller::delete) descriptors and
/// [`notify`](Poller::notify) it. Registration changes made during a
/// `wait` take effect on the next `wait` (pair them with `notify`).
#[derive(Debug)]
pub struct Poller {
    inner: sys::Poller,
}

/// The raw descriptor type registered with a [`Poller`]
/// (`std::os::unix::io::RawFd` on Unix).
#[cfg(unix)]
pub type Source = std::os::unix::io::RawFd;
/// The raw descriptor type registered with a [`Poller`] (placeholder on
/// non-Unix targets, where every operation fails).
#[cfg(not(unix))]
pub type Source = i32;

impl Poller {
    /// Creates a new readiness queue (allocates the internal wake pipe).
    ///
    /// # Errors
    ///
    /// Propagates pipe/fcntl failures; fails with
    /// [`io::ErrorKind::Unsupported`] on non-Unix targets.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller { inner: sys::Poller::new()? })
    }

    /// Registers `fd` for read-readiness under `interest.key`.
    ///
    /// The caller keeps ownership of the descriptor and must `delete` it
    /// before closing it.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::AlreadyExists`] if `fd` is registered.
    pub fn add(&self, fd: Source, interest: Event) -> io::Result<()> {
        self.inner.add(fd, interest)
    }

    /// Removes `fd` from the interest set.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::NotFound`] if `fd` was not registered.
    pub fn delete(&self, fd: Source) -> io::Result<()> {
        self.inner.delete(fd)
    }

    /// Blocks until at least one registered descriptor is readable, a
    /// [`notify`](Poller::notify) arrives, or `timeout` elapses (`None`
    /// blocks indefinitely). Appends one [`Event`] per ready descriptor to
    /// `events` and returns how many were appended — zero for a pure
    /// notify, timeout, or signal interruption.
    ///
    /// # Errors
    ///
    /// Propagates `poll(2)` failures other than `EINTR`.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        self.inner.wait(events, timeout)
    }

    /// Wakes a concurrent [`wait`](Poller::wait) from any thread. Wake-ups
    /// do not queue: one notify suffices no matter how many were sent.
    ///
    /// # Errors
    ///
    /// Propagates pipe write failures (a full pipe is success).
    pub fn notify(&self) -> io::Result<()> {
        self.inner.notify()
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::Instant;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn wait_times_out_with_no_ready_fds() {
        let poller = Poller::new().unwrap();
        let (_a, b) = pair();
        poller.add(b.as_raw_fd(), Event::readable(7)).unwrap();
        let mut events = Vec::new();
        let n = poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert_eq!(n, 0);
        assert!(events.is_empty());
    }

    #[test]
    fn data_makes_the_registered_fd_ready() {
        let poller = Poller::new().unwrap();
        let (mut a, b) = pair();
        poller.add(b.as_raw_fd(), Event::readable(42)).unwrap();
        a.write_all(b"x").unwrap();
        let mut events = Vec::new();
        let n = poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].key, 42);
        // Level-triggered: unread data keeps the fd ready.
        events.clear();
        let n = poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn hangup_reports_as_readable() {
        let poller = Poller::new().unwrap();
        let (a, b) = pair();
        poller.add(b.as_raw_fd(), Event::readable(3)).unwrap();
        drop(a);
        let mut events = Vec::new();
        let n = poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].key, 3);
    }

    #[test]
    fn notify_wakes_a_blocked_wait() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waker = poller.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.notify().unwrap();
        });
        let mut events = Vec::new();
        let start = Instant::now();
        let n = poller.wait(&mut events, Some(Duration::from_secs(30))).unwrap();
        assert_eq!(n, 0);
        assert!(start.elapsed() < Duration::from_secs(10));
        t.join().unwrap();
    }

    #[test]
    fn notifies_coalesce_and_do_not_stick() {
        let poller = Poller::new().unwrap();
        for _ in 0..100 {
            poller.notify().unwrap();
        }
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        // The pipe was drained: a second wait times out instead of spinning.
        let start = Instant::now();
        let n = poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap();
        assert_eq!(n, 0);
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn delete_removes_interest() {
        let poller = Poller::new().unwrap();
        let (mut a, b) = pair();
        poller.add(b.as_raw_fd(), Event::readable(1)).unwrap();
        a.write_all(b"x").unwrap();
        poller.delete(b.as_raw_fd()).unwrap();
        let mut events = Vec::new();
        let n = poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert_eq!(n, 0);
        assert!(poller.delete(b.as_raw_fd()).is_err());
    }
}
