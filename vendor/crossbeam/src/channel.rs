//! MPMC channels with crossbeam-compatible disconnect semantics.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

// Re-export the crate-root macro so `use crossbeam::channel::select` works,
// matching the real crate's path.
pub use crate::select;

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
    /// A `select!` parked across this and other channels; bumped on every
    /// push and on disconnect so the selector wakes without polling.
    select_waker: Option<Arc<WakerInner>>,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    /// Signalled on every enqueue, dequeue, and endpoint drop.
    activity: Condvar,
    capacity: Option<usize>,
}

struct WakerInner {
    epoch: Mutex<u64>,
    cv: Condvar,
}

/// The parking primitive behind [`select!`](crate::select): an epoch
/// counter bumped by activity on any registered channel, so a selector
/// sleeps until something actually happens instead of re-polling on a
/// timer.
///
/// One waker serves one selecting thread; registering a channel into a
/// second thread's waker displaces the first (the displaced selector falls
/// back to its re-poll timeout). This workspace never selects on one
/// channel from two threads.
#[derive(Clone)]
pub struct SelectWaker {
    inner: Arc<WakerInner>,
}

impl SelectWaker {
    /// Creates an independent waker.
    pub fn new() -> Self {
        SelectWaker { inner: Arc::new(WakerInner { epoch: Mutex::new(0), cv: Condvar::new() }) }
    }

    /// The current activity epoch; pass to [`wait_changed`](Self::wait_changed).
    pub fn epoch(&self) -> u64 {
        *self.inner.epoch.lock().unwrap()
    }

    /// Parks until the epoch moves past `seen` (some registered channel saw
    /// activity) or `timeout` elapses.
    pub fn wait_changed(&self, seen: u64, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        let mut epoch = self.inner.epoch.lock().unwrap();
        while *epoch == seen {
            let Some(left) = deadline.checked_duration_since(Instant::now()).filter(|d| !d.is_zero())
            else {
                return;
            };
            let (guard, _) = self.inner.cv.wait_timeout(epoch, left).unwrap();
            epoch = guard;
        }
    }
}

impl Default for SelectWaker {
    fn default() -> Self {
        SelectWaker::new()
    }
}

impl fmt::Debug for SelectWaker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SelectWaker { .. }")
    }
}

fn bump_waker<T>(state: &State<T>) {
    if let Some(waker) = &state.select_waker {
        *waker.epoch.lock().unwrap() += 1;
        waker.cv.notify_all();
    }
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a bounded channel holding at most `cap` messages; sends block
/// while the channel is full.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap))
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
            select_waker: None,
        }),
        activity: Condvar::new(),
        capacity,
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

/// Error returned by [`Sender::send`] when all receivers are gone; carries
/// the unsent message.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is drained and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty but senders remain.
    Empty,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("channel is empty"),
            TryRecvError::Disconnected => f.write_str("channel is empty and disconnected"),
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message.
    Timeout,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("receive timed out"),
            RecvTimeoutError::Disconnected => f.write_str("channel is empty and disconnected"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// The sending half of a channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Sends `msg`, blocking while a bounded channel is full.
    ///
    /// # Errors
    ///
    /// Returns the message back if every [`Receiver`] has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            let full = self
                .shared
                .capacity
                .is_some_and(|cap| state.queue.len() >= cap);
            if !full {
                state.queue.push_back(msg);
                self.shared.activity.notify_all();
                bump_waker(&state);
                return Ok(());
            }
            state = self.shared.activity.wait(state).unwrap();
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        // A rising sender count can never unblock a waiter: no notify.
        self.shared.state.lock().unwrap().senders += 1;
        Sender { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        // Waiters only observe the transition to zero senders (channel
        // disconnect); notifying on every clone's drop would wake parked
        // receivers once per transient clone for nothing.
        let mut state = self.shared.state.lock().unwrap();
        state.senders -= 1;
        if state.senders == 0 {
            self.shared.activity.notify_all();
            bump_waker(&state);
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

/// The receiving half of a channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Receives a message, blocking until one arrives.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] once the channel is empty and all senders are
    /// gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if let Some(msg) = state.queue.pop_front() {
                // A pop can only unblock a sender waiting on a full
                // bounded channel; unbounded pops notify nobody.
                if self.shared.capacity.is_some() {
                    self.shared.activity.notify_all();
                }
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.activity.wait(state).unwrap();
        }
    }

    /// Receives a message, waiting at most `timeout`.
    ///
    /// # Errors
    ///
    /// Returns [`RecvTimeoutError::Timeout`] if the wait elapses, or
    /// [`RecvTimeoutError::Disconnected`] on a drained, sender-less channel.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if let Some(msg) = state.queue.pop_front() {
                if self.shared.capacity.is_some() {
                    self.shared.activity.notify_all();
                }
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let Some(left) = deadline.checked_duration_since(Instant::now()).filter(|d| !d.is_zero())
            else {
                return Err(RecvTimeoutError::Timeout);
            };
            let (guard, _) = self.shared.activity.wait_timeout(state, left).unwrap();
            state = guard;
        }
    }

    /// Receives a message if one is immediately available.
    ///
    /// # Errors
    ///
    /// Returns [`TryRecvError::Empty`] or [`TryRecvError::Disconnected`].
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.state.lock().unwrap();
        if let Some(msg) = state.queue.pop_front() {
            if self.shared.capacity.is_some() {
                self.shared.activity.notify_all();
            }
            return Ok(msg);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains and returns every message currently queued, without blocking.
    pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
        std::iter::from_fn(move || self.try_recv().ok())
    }

    /// Registers `waker` to be bumped by every push into (and disconnect
    /// of) this channel, replacing any previous registration; `select!`
    /// registers its calling thread's waker on every arm so it can park
    /// until one of them has activity. Idempotent (and cheap) when `waker`
    /// is already the registered one.
    #[doc(hidden)]
    pub fn set_select_waker(&self, waker: &SelectWaker) {
        let mut state = self.shared.state.lock().unwrap();
        if state
            .select_waker
            .as_ref()
            .is_none_or(|w| !Arc::ptr_eq(w, &waker.inner))
        {
            state.select_waker = Some(Arc::clone(&waker.inner));
        }
    }

    /// Blocks until the channel is non-empty, disconnected, or `timeout`
    /// elapses — without consuming anything. Used by `select!` to park on
    /// its hottest arm instead of busy-polling.
    #[doc(hidden)]
    pub fn wait_ready(&self, timeout: Duration) {
        let state = self.shared.state.lock().unwrap();
        if state.queue.is_empty() && state.senders > 0 {
            let _ = self.shared.activity.wait_timeout(state, timeout).unwrap();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        // A rising receiver count can never unblock a waiter: no notify.
        self.shared.state.lock().unwrap().receivers += 1;
        Receiver { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        // Senders (blocked on a full bounded channel) only observe the
        // transition to zero receivers; see `Sender::drop`.
        let receivers = {
            let mut state = self.shared.state.lock().unwrap();
            state.receivers -= 1;
            state.receivers
        };
        if receivers == 0 {
            self.shared.activity.notify_all();
        }
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// One polling step for the [`select!`](crate::select) macro: `Some(Ok)` on
/// a message, `Some(Err)` on disconnect, `None` when the arm is not ready.
#[doc(hidden)]
pub fn poll_for_select<T>(rx: &Receiver<T>) -> Option<Result<T, RecvError>> {
    match rx.try_recv() {
        Ok(msg) => Some(Ok(msg)),
        Err(TryRecvError::Disconnected) => Some(Err(RecvError)),
        Err(TryRecvError::Empty) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn unbounded_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn bounded_send_unblocks_on_recv() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = thread::spawn(move || tx.send(2).unwrap());
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap();
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn select_prefers_ready_arm() {
        let (tx_a, rx_a) = unbounded::<u32>();
        let (_tx_b, rx_b) = unbounded::<u32>();
        tx_a.send(5).unwrap();
        let got = select! {
            recv(rx_a) -> msg => msg.unwrap(),
            recv(rx_b) -> msg => msg.unwrap(),
        };
        assert_eq!(got, 5);
    }
}
