//! Offline stand-in for `crossbeam` — just the `channel` module.
//!
//! Multi-producer multi-consumer channels built on `Mutex` + `Condvar`,
//! with crossbeam's disconnect semantics: sends fail once every receiver is
//! gone, receives fail once the queue is empty and every sender is gone.
//! The [`select!`] macro supports `recv(rx) -> pat => body` arms only (the
//! only form this workspace uses) and is implemented by polling with a
//! short sleep rather than by parking on multiple queues — adequate for the
//! live-runtime tests, not tuned for microsecond fairness.

#![warn(missing_docs)]

pub mod channel;

/// Selects over `recv` arms by polling each receiver in turn, parking on
/// the first arm's channel between rounds.
///
/// Supported arm form: `recv(receiver_expr) -> pattern => body`. The bound
/// value is a `Result<T, RecvError>`: `Err` when that channel is
/// disconnected and drained, mirroring crossbeam. A message on the *first*
/// arm wakes the select immediately (condvar); other arms are observed
/// within the 200µs re-poll bound — so put the hot channel first, as
/// server loops naturally do.
#[macro_export]
macro_rules! select {
    (@arms [$($done:tt)*] recv($rx:expr) -> $pat:pat => $body:block $($rest:tt)*) => {
        $crate::select!(@arms [$($done)* {($rx) ($pat) ($body)}] $($rest)*)
    };
    (@arms [$($done:tt)*] recv($rx:expr) -> $pat:pat => $body:expr, $($rest:tt)*) => {
        $crate::select!(@arms [$($done)* {($rx) ($pat) ($body)}] $($rest)*)
    };
    (@arms [$($done:tt)*] recv($rx:expr) -> $pat:pat => $body:expr) => {
        $crate::select!(@arms [$($done)* {($rx) ($pat) ($body)}])
    };
    (@arms [{($rx0:expr) ($pat0:pat) ($body0:expr)} $({($rx:expr) ($pat:pat) ($body:expr)})*]) => {
        loop {
            if let ::std::option::Option::Some(__select_res) =
                $crate::channel::poll_for_select(&$rx0)
            {
                let $pat0 = __select_res;
                // A diverging arm body (e.g. `return`) makes the break
                // itself unreachable; that is expected, not a bug.
                #[allow(unreachable_code, clippy::diverging_sub_expression)]
                {
                    break { $body0 };
                }
            }
            $(
                if let ::std::option::Option::Some(__select_res) =
                    $crate::channel::poll_for_select(&$rx)
                {
                    let $pat = __select_res;
                    #[allow(unreachable_code, clippy::diverging_sub_expression)]
                    {
                        break { $body };
                    }
                }
            )*
            // Nothing ready: park on the first arm (woken instantly by its
            // senders), re-polling the rest at least every 200µs.
            ($rx0).wait_ready(::std::time::Duration::from_micros(200));
        }
    };
    ($($arms:tt)+) => {
        $crate::select!(@arms [] $($arms)+)
    };
}
