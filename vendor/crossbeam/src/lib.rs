//! Offline stand-in for `crossbeam` — just the `channel` module.
//!
//! Multi-producer multi-consumer channels built on `Mutex` + `Condvar`,
//! with crossbeam's disconnect semantics: sends fail once every receiver is
//! gone, receives fail once the queue is empty and every sender is gone.
//! The [`select!`] macro supports `recv(rx) -> pat => body` arms only (the
//! only form this workspace uses); it parks the selecting thread on a
//! per-thread [`channel::SelectWaker`] registered with every arm, so a
//! message on *any* arm wakes it immediately — no timed re-polling burning
//! CPU on otherwise idle server threads.

#![warn(missing_docs)]

pub mod channel;

/// Selects over `recv` arms: polls each receiver in turn and, when none is
/// ready, parks on the calling thread's [`channel::SelectWaker`] (bumped
/// by every registered arm's sends and disconnects).
///
/// Supported arm form: `recv(receiver_expr) -> pattern => body`. The bound
/// value is a `Result<T, RecvError>`: `Err` when that channel is
/// disconnected and drained, mirroring crossbeam. A long re-poll fallback
/// guards the one unsupported topology (two threads selecting on one
/// channel displace each other's waker registration).
#[macro_export]
macro_rules! select {
    (@arms [$($done:tt)*] recv($rx:expr) -> $pat:pat => $body:block $($rest:tt)*) => {
        $crate::select!(@arms [$($done)* {($rx) ($pat) ($body)}] $($rest)*)
    };
    (@arms [$($done:tt)*] recv($rx:expr) -> $pat:pat => $body:expr, $($rest:tt)*) => {
        $crate::select!(@arms [$($done)* {($rx) ($pat) ($body)}] $($rest)*)
    };
    (@arms [$($done:tt)*] recv($rx:expr) -> $pat:pat => $body:expr) => {
        $crate::select!(@arms [$($done)* {($rx) ($pat) ($body)}])
    };
    (@arms [$({($rx:expr) ($pat:pat) ($body:expr)})+]) => {
        loop {
            // Register the waker on every arm *before* reading the epoch:
            // a push that races with the polls below bumps the epoch and
            // makes the wait return immediately, so no wakeup is lost.
            ::std::thread_local! {
                static __SELECT_WAKER: $crate::channel::SelectWaker =
                    $crate::channel::SelectWaker::new();
            }
            let __select_epoch = __SELECT_WAKER.with(|waker| {
                $(
                    ($rx).set_select_waker(waker);
                )+
                waker.epoch()
            });
            $(
                if let ::std::option::Option::Some(__select_res) =
                    $crate::channel::poll_for_select(&$rx)
                {
                    let $pat = __select_res;
                    // A diverging arm body (e.g. `return`) makes the break
                    // itself unreachable; that is expected, not a bug.
                    #[allow(unreachable_code, clippy::diverging_sub_expression)]
                    {
                        break { $body };
                    }
                }
            )+
            // Nothing ready: park until any arm has activity (long re-poll
            // only as the displaced-waker fallback).
            __SELECT_WAKER.with(|waker| {
                waker.wait_changed(__select_epoch, ::std::time::Duration::from_millis(50));
            });
        }
    };
    ($($arms:tt)+) => {
        $crate::select!(@arms [] $($arms)+)
    };
}
