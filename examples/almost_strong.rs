//! Almost-strong consistency: what you actually get from a fast,
//! Cassandra-style tunable-quorum register — and how to measure it.
//!
//! The paper proves fast multi-writer writes can never be atomic
//! (Theorem 1) and bounds fast reads by `R < S/t − 2`; its future work (§7)
//! asks to *quantify* the inconsistency of fast implementations. This
//! example runs the same contended workload through three deployments —
//! two tunable-quorum configurations and the paper's W2R1 — and prints
//! each one's consistency class and staleness profile.
//!
//! Run with: `cargo run --example almost_strong`

use mwr::almost::{ConsistencyProfile, TunableSpec};
use mwr::check::History;
use mwr::register::{Backend, Deployment, Protocol, ScheduledOp, Spec};
use mwr::sim::{DelayModel, SimTime};
use mwr::types::{ClusterConfig, Value};

/// A contended schedule: both writers and both readers fire every few
/// ticks, with link delays long enough that rounds interleave.
fn contended_schedule() -> Vec<(SimTime, ScheduledOp)> {
    let mut ops = Vec::new();
    let mut value = 0;
    for i in 0..12u64 {
        value += 1;
        ops.push((
            SimTime::from_ticks(i * 7),
            ScheduledOp::Write { writer: (i % 2) as u32, value: Value::new(value) },
        ));
        ops.push((SimTime::from_ticks(i * 7 + 3), ScheduledOp::Read { reader: (i % 2) as u32 }));
    }
    ops
}

/// Runs one seed of a deployment under the contended schedule and jittered
/// links, returning its measured consistency profile.
fn profile_at(
    deployment: Deployment,
    seed: u64,
    schedule: &[(SimTime, ScheduledOp)],
    delay: DelayModel,
) -> Result<ConsistencyProfile, Box<dyn std::error::Error>> {
    let mut sim = deployment.backend(Backend::Sim { seed }).sim()?;
    sim.sim_mut().network_mut().set_default_delay(delay);
    let events = sim.run_schedule(schedule)?;
    Ok(ConsistencyProfile::measure(&History::from_events(&events)?))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ClusterConfig::new(5, 1, 2, 2)?;
    let schedule = contended_schedule();
    let delay = DelayModel::Uniform { lo: SimTime::from_ticks(2), hi: SimTime::from_ticks(25) };

    println!("workload: 12 writes + 12 reads, interleaved, on {config}\n");

    // --- 1. The fastest thing quorum stores offer: ONE/ONE, local tags. --
    let fastest = Deployment::new(config).protocol(TunableSpec::fastest());
    let mut worst_seed = None;
    for seed in 1..=20u64 {
        let profile = profile_at(fastest, seed, &schedule, delay)?;
        if !profile.staleness.is_fresh() {
            worst_seed = Some((seed, profile));
            break;
        }
    }
    match worst_seed {
        Some((seed, profile)) => {
            println!("ONE/ONE lww (both ops 1 RTT), seed {seed}:");
            println!("  {profile}");
            if let Some(worst) = profile.staleness.worst() {
                println!(
                    "  stalest read: {} returned {} but {} newer write(s) had completed",
                    worst.op, worst.returned, worst.staleness
                );
            }
        }
        None => println!("ONE/ONE lww: no violation in 20 seeds (try a longer schedule)"),
    }

    // --- 2. Majority levels + read repair: better, still not atomic. -----
    let repaired = Deployment::new(config)
        .protocol(Spec::Tunable(TunableSpec { read_repair: true, ..TunableSpec::quorum_lww() }));
    let mut stale_total = 0usize;
    let mut reads_total = 0usize;
    let mut weakest: Option<ConsistencyProfile> = None;
    for seed in 1..=20u64 {
        let profile = profile_at(repaired, seed, &schedule, delay)?;
        stale_total += profile.staleness.stale_reads();
        reads_total += profile.staleness.reads();
        if weakest.as_ref().is_none_or(|w| profile.class < w.class) {
            weakest = Some(profile);
        }
    }
    println!("\nMAJ/MAJ lww + read repair (writes still 1 RTT), 20 seeds:");
    println!(
        "  {} of {} reads stale; weakest class observed: {}",
        stale_total,
        reads_total,
        weakest.expect("at least one run").class
    );

    // --- 3. The paper's answer: W2R1 — atomic with 1-RTT reads. ----------
    let w2r1 = Deployment::new(config).protocol(Protocol::W2R1);
    let mut all_atomic = true;
    for seed in 1..=20u64 {
        let profile = profile_at(w2r1, seed, &schedule, delay)?;
        assert!(profile.staleness.is_fresh(), "W2R1 reads are always fresh");
        all_atomic &= matches!(profile.class, mwr::almost::ConsistencyClass::Atomic);
    }
    println!("\nW2R1 (paper, writes 2 RTT, reads 1 RTT), 20 seeds:");
    println!("  atomic in every run: {all_atomic} — the R < S/t − 2 fee buys freshness");

    Ok(())
}
