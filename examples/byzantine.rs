//! Byzantine servers vs masking quorums: the paper's §5 extension, live.
//!
//! A crash-tolerant register trusts every reply; a Byzantine-tolerant one
//! believes a value only when `b + 1` servers vouch for it. This example
//! runs the same workload against a forging server under both disciplines
//! and shows the forgery landing in one and bouncing off the other.
//!
//! Run with: `cargo run --example byzantine`

use mwr::byz::{ByzBehavior, ByzConfig, ByzReadMode, ByzRegisterServer};
use mwr::check::{check_atomicity, History};
use mwr::core::{OpResult, Protocol, RegisterClient, RegisterServer};
use mwr::register::{Backend, Deployment, ScheduledOp, Spec};
use mwr::sim::{SimTime, Simulation};
use mwr::types::{ClusterConfig, ProcessId, Value};

fn schedule() -> Vec<(SimTime, ScheduledOp)> {
    vec![
        (SimTime::ZERO, ScheduledOp::Write { writer: 0, value: Value::new(100) }),
        (SimTime::from_ticks(40), ScheduledOp::Read { reader: 0 }),
        (SimTime::from_ticks(80), ScheduledOp::Write { writer: 1, value: Value::new(200) }),
        (SimTime::from_ticks(120), ScheduledOp::Read { reader: 1 }),
    ]
}

fn print_reads(events: &[(SimTime, mwr::core::ClientEvent)]) {
    for (_, e) in events {
        if let mwr::core::ClientEvent::Completed { op, result: OpResult::Read(tv), .. } = e {
            println!("  {op} read {tv}");
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let forger = ByzBehavior::TagInflater { boost: 1_000_000 };

    // --- 1. Crash-tolerant W2R2 meets a forging server. -----------------
    // This hybrid (one Byzantine automaton inside an honest W2R2 cluster)
    // is hand-assembled: deliberately *not* a supported deployment.
    println!("crash-tolerant W2R2 (S = 5, t = 1), server 0 forges tags:");
    let crash_config = ClusterConfig::new(5, 1, 2, 2)?;
    let mut sim: Simulation<_, _> = Simulation::new(7);
    sim.add_process(ProcessId::server(0), ByzRegisterServer::new(forger));
    for s in crash_config.server_ids().skip(1) {
        sim.add_process(s.into(), RegisterServer::new());
    }
    for w in crash_config.writer_ids() {
        sim.add_process(w.into(), RegisterClient::writer(w, crash_config, Protocol::W2R2.write_mode()));
    }
    for r in crash_config.reader_ids() {
        sim.add_process(r.into(), RegisterClient::reader(r, crash_config, Protocol::W2R2.read_mode()));
    }
    for (at, op) in schedule() {
        op.schedule_into(&mut sim, at)?;
    }
    sim.run_until_quiescent()?;
    let events = sim.drain_notifications();
    print_reads(&events);
    let verdict = check_atomicity(&History::from_events(&events)?);
    println!("  checker: {}", if verdict.is_ok() { "atomic" } else { "VIOLATED — the forgery was read back" });

    // --- 2. The masking-quorum clients shrug it off. ---------------------
    println!("\nByzantine W2R1 (S = 5, b = 1, vouched fast reads), same forger:");
    let byz_config = ByzConfig::new(5, 1, 2, 2)?;
    let events = Deployment::new(crash_config)
        .protocol(Spec::Byz { config: byz_config, read_mode: ByzReadMode::Fast, behavior: forger })
        .backend(Backend::Sim { seed: 7 })
        .sim()?
        .run_schedule(&schedule())?;
    print_reads(&events);
    let verdict = check_atomicity(&History::from_events(&events)?);
    println!("  checker: {}", if verdict.is_ok() { "atomic — b + 1 vouching rejects the forgery" } else { "violated" });

    // --- 3. The price: none in round-trips, and reads stay fast. ---------
    println!("\nround-trips: Byz writes = 2 (tag query + update), Byz fast reads = 1");
    println!("masking needs S ≥ 4b + 1 servers — that is the resource the adversary costs.");
    Ok(())
}
