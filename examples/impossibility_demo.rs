//! The paper's impossibility results, live: watch a naive fast-write
//! protocol violate atomicity, then watch the mechanized chain argument
//! prove that *no* fast-write protocol could have done better.
//!
//! Run with: `cargo run --example impossibility_demo`

use mwr::chains::{refute_strategy, verify_w1r2_impossibility, MajorityLastWrite};
use mwr::check::{check_atomicity, check_regular, History};
use mwr::register::{Backend, Deployment, Protocol, ScheduledOp};
use mwr::sim::SimTime;
use mwr::types::{ClusterConfig, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ClusterConfig::new(5, 1, 2, 2)?;

    // 1. A concrete violation: fast writes with writer-local timestamps.
    //    w2 writes 2 and finishes; w1 then writes 1; both naive tags are
    //    (1, ·), so the *earlier* write by the larger writer id wins and
    //    readers return the overwritten value.
    println!("== 1. naive fast-write (W1R2) violating atomicity ==\n");
    let events = Deployment::new(config)
        .protocol(Protocol::NaiveW1R2)
        .backend(Backend::Sim { seed: 3 })
        .sim()?
        .run_schedule(&[
            (SimTime::ZERO, ScheduledOp::Write { writer: 1, value: Value::new(2) }),
            (SimTime::from_ticks(500), ScheduledOp::Write { writer: 0, value: Value::new(1) }),
            (SimTime::from_ticks(1_000), ScheduledOp::Read { reader: 0 }),
        ])?;
    let history = History::from_events(&events)?;
    println!("{history}");
    let verdict = check_atomicity(&history);
    match verdict.violation() {
        Some(v) => println!("checker: NOT atomic — {v}"),
        None => unreachable!("the inversion schedule always violates"),
    }
    println!(
        "MW-regular: {} — the inversion even breaks regularity; one-round\n\
         writes buy latency at a steep consistency price\n",
        if check_regular(&history).is_ok() { "yes" } else { "no" }
    );

    // 2. The theorem: no cleverer fast-write read rule can exist.
    println!("== 2. Theorem 1 mechanized (chains α, β, zigzag Z) ==\n");
    let cert = verify_w1r2_impossibility(5)?;
    println!("{cert}");

    // 3. Your favourite strategy, refuted constructively.
    println!("== 3. refuting a concrete strategy ==\n");
    let refutation = refute_strategy(5, &MajorityLastWrite);
    println!("{refutation}");
    Ok(())
}
