//! Fault injection: the register stays wait-free and atomic with up to `t`
//! server crashes, and stalls (without ever lying) beyond them — the same
//! `Deployment`, simulated and live.
//!
//! Run with: `cargo run --example fault_injection`

use std::time::Duration;

use mwr::check::{check_atomicity, History};
use mwr::register::{Backend, Deployment, Protocol, ScheduledOp};
use mwr::runtime::RuntimeError;
use mwr::sim::SimTime;
use mwr::types::{ClusterConfig, ProcessId, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ClusterConfig::new(5, 1, 2, 2)?;
    let deployment = Deployment::new(config).protocol(Protocol::W2R1);

    // --- Simulated: crash exactly t = 1 server mid-run. -----------------
    println!("== simulator: crash s5 at t=50, keep operating ==\n");
    let mut sim = deployment.backend(Backend::Sim { seed: 9 }).sim()?;
    sim.sim_mut().schedule_crash(SimTime::from_ticks(50), ProcessId::server(4));
    for (i, at) in [0u64, 40, 80, 120, 160].into_iter().enumerate() {
        sim.schedule(
            SimTime::from_ticks(at),
            ScheduledOp::Write { writer: (i % 2) as u32, value: Value::new(i as u64 + 1) },
        )?;
        sim.schedule(
            SimTime::from_ticks(at + 20),
            ScheduledOp::Read { reader: (i % 2) as u32 },
        )?;
    }
    let events = sim.run_to_quiescence()?;
    let history = History::from_events(&events)?;
    println!("{history}");
    assert!(check_atomicity(&history).is_ok());
    println!("all 10 operations completed despite the crash; history atomic ✓\n");

    // --- Live: crashing beyond t makes quorums unreachable — operations
    //     time out rather than return stale data. ------------------------
    println!("== live runtime: crash beyond t and observe the stall ==\n");
    let mut live = deployment.backend(Backend::InMemory).in_memory()?;
    let mut writer = live.writer(0)?;
    let mut reader = live.reader(0)?;
    writer.write(Value::new(1))?;
    live.crash_server(0);
    let tagged = reader.read()?;
    println!("after 1 crash (= t): read still returns {tagged}");

    live.crash_server(1); // second crash exceeds t = 1
    let mut writer = writer.with_timeout(Duration::from_millis(200));
    match writer.write(Value::new(2)) {
        Err(RuntimeError::Timeout { collected, required, .. }) => {
            println!("after 2 crashes (> t): write times out ({collected}/{required} acks) — safety over availability");
        }
        other => println!("unexpected outcome beyond t: {other:?}"),
    }
    live.shutdown();
    Ok(())
}
