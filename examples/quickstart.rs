//! Quickstart: the paper's W2R1 atomic register through the `Deployment`
//! facade — as a live thread-backed cluster you can call like a library,
//! and as a simulated cluster whose execution history is machine-checked
//! for atomicity.
//!
//! Run with: `cargo run --example quickstart`

use mwr::check::{check_atomicity, History};
use mwr::register::{Backend, Deployment, Protocol, ScheduledOp};
use mwr::sim::SimTime;
use mwr::types::{ClusterConfig, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // S = 5 servers, t = 1 crash tolerated, R = 2 readers, W = 2 writers.
    // The paper's feasibility condition for one-round reads holds:
    // t·(R + 2) = 4 < 5 = S.
    let config = ClusterConfig::new(5, 1, 2, 2)?;
    assert!(config.fast_read_feasible());
    let deployment = Deployment::new(config).protocol(Protocol::W2R1);

    // --- Live cluster: every server is a thread running Algorithm 2. ----
    println!("starting a live W2R1 cluster ({config})…");
    let cluster = deployment.backend(Backend::InMemory).in_memory()?;
    let mut alice = cluster.writer(0)?;
    let mut bob = cluster.writer(1)?;
    let mut carol = cluster.reader(0)?;

    let t1 = alice.write(Value::new(100))?;
    println!("alice wrote 100 as {t1}");
    let t2 = bob.write(Value::new(200))?;
    println!("bob   wrote 200 as {t2}");
    let read = carol.read()?; // ONE round-trip (Algorithm 1's fast read)
    println!("carol read {read} in a single round-trip");
    assert_eq!(read, t2, "the later write wins");
    let handled = cluster.shutdown();
    println!("cluster handled {handled} requests\n");

    // --- Simulated cluster: deterministic, checkable. -------------------
    println!("replaying a concurrent schedule in the simulator…");
    let events = deployment.backend(Backend::Sim { seed: 42 }).sim()?.run_schedule(&[
        (SimTime::ZERO, ScheduledOp::Write { writer: 0, value: Value::new(1) }),
        (SimTime::from_ticks(2), ScheduledOp::Write { writer: 1, value: Value::new(2) }),
        (SimTime::from_ticks(3), ScheduledOp::Read { reader: 0 }),
        (SimTime::from_ticks(30), ScheduledOp::Read { reader: 1 }),
        (SimTime::from_ticks(60), ScheduledOp::Read { reader: 0 }),
    ])?;
    let history = History::from_events(&events)?;
    println!("{history}");
    let verdict = check_atomicity(&history);
    assert!(verdict.is_ok());
    println!("checker verdict: atomic ✓");
    Ok(())
}
