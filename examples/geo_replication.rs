//! Geo-replication scenario from the paper's motivation (§1): a quorum
//! store spread over three regions, comparing the read latency of the
//! classical W2R2 emulation against the paper's W2R1 fast read at equal
//! (atomic) consistency.
//!
//! Run with: `cargo run --example geo_replication`

use mwr::check::check_events;
use mwr::register::{Backend, Deployment, Protocol};
use mwr::sim::{GeoMatrix, SimTime};
use mwr::types::{ClusterConfig, ProcessId};
use mwr::workload::{TextTable, WorkloadSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One-way latencies between three regions, in virtual ticks (~µs):
    // local 2, nearby 40, far 120 — a US/EU/APAC feel.
    let regions = vec![
        vec![SimTime::from_ticks(2), SimTime::from_ticks(40), SimTime::from_ticks(120)],
        vec![SimTime::from_ticks(40), SimTime::from_ticks(2), SimTime::from_ticks(80)],
        vec![SimTime::from_ticks(120), SimTime::from_ticks(80), SimTime::from_ticks(2)],
    ];

    let config = ClusterConfig::new(5, 1, 2, 2)?;
    println!("geo-replicated register, {config}; clients in region 0\n");

    let mut table =
        TextTable::new(vec!["protocol", "read p50", "read p99", "write p50", "atomic"]);
    for protocol in [Protocol::W2R2, Protocol::W2R1] {
        let spec = WorkloadSpec {
            duration: SimTime::from_ticks(25_000),
            think_time: SimTime::from_ticks(120),
            seed: 17,
        };
        let mut sim = Deployment::new(config)
            .protocol(protocol)
            .backend(Backend::Sim { seed: spec.seed })
            .sim()?;
        let mut geo = GeoMatrix::new(regions.clone());
        let mut processes = Vec::new();
        for (i, s) in config.server_ids().enumerate() {
            geo.place(ProcessId::Server(s), i % 3);
            processes.push(ProcessId::Server(s));
        }
        for r in config.reader_ids() {
            geo.place(r.into(), 0);
            processes.push(r.into());
        }
        for w in config.writer_ids() {
            geo.place(w.into(), 0);
            processes.push(w.into());
        }
        sim.sim_mut().network_mut().apply_geo_matrix(&geo, &processes, SimTime::from_ticks(5));
        let mut report = sim.run_closed_loop(spec)?;
        let atomic = check_events(&report.events)?.is_ok();
        let (w, r) = report.summaries();
        table.row(vec![
            protocol.name().to_string(),
            r.p50.to_string(),
            r.p99.to_string(),
            w.p50.to_string(),
            atomic.to_string(),
        ]);
    }
    println!("{table}");
    println!("Both protocols are atomic here (R < S/t − 2 holds); the fast read");
    println!("pays one wide-area round-trip instead of two — roughly halving p50.");
    Ok(())
}
