//! Integration: the paper's W2R1 algorithm satisfies its Appendix A proof
//! obligations (MWA0–MWA4) on adversarial executions, and those properties
//! imply the checker's atomicity verdict.

use mwr::check::{check_atomicity, check_mwa, search_atomicity, History};
use mwr::core::{Protocol, ScheduledOp, SimCluster};
use mwr::sim::{LinkSelector, SimTime};
use mwr::types::{ClusterConfig, ProcessId, Value};

use proptest::prelude::*;

mod common;
use common::{sim_cluster};

fn schedule_strategy(
    writers: u32,
    readers: u32,
    ops: usize,
) -> impl Strategy<Value = Vec<(SimTime, ScheduledOp)>> {
    let op = (0u64..500, 0u32..(writers + readers), any::<u64>()).prop_map(
        move |(at, client, v)| {
            let at = SimTime::from_ticks(at);
            if client < writers {
                (at, ScheduledOp::Write { writer: client, value: Value::new(v) })
            } else {
                (at, ScheduledOp::Read { reader: client - writers })
            }
        },
    );
    proptest::collection::vec(op, 1..=ops).prop_map(|mut ops| {
        // Make write values unique so reads-from stays observable.
        let mut n = 0u64;
        for (_, op) in ops.iter_mut() {
            if let ScheduledOp::Write { value, .. } = op {
                n += 1;
                *value = Value::new(n);
            }
        }
        ops
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// W2R1 histories satisfy MWA0–MWA4 and atomicity on random schedules.
    #[test]
    fn w2r1_satisfies_mwa_and_atomicity(
        schedule in schedule_strategy(2, 2, 12),
        seed in 0u64..1000,
    ) {
        let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
        let cluster = sim_cluster(config, Protocol::W2R1);
        let events = cluster.run_schedule(seed, &schedule).unwrap();
        let history = History::from_events(&events).unwrap();
        prop_assert!(check_mwa(&history).is_ok(), "MWA violated:\n{}", history);
        prop_assert!(check_atomicity(&history).is_ok(), "not atomic:\n{}", history);
    }

    /// The graph checker agrees with the exhaustive oracle on real protocol
    /// histories (not just synthetic ones).
    #[test]
    fn graph_checker_agrees_with_oracle_on_protocol_histories(
        schedule in schedule_strategy(2, 2, 8),
        seed in 0u64..1000,
    ) {
        let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
        for protocol in [Protocol::W2R1, Protocol::NaiveW1R2] {
            let cluster = sim_cluster(config, protocol);
            let events = cluster.run_schedule(seed, &schedule).unwrap();
            let history = History::from_events(&events).unwrap();
            prop_assert_eq!(
                check_atomicity(&history).is_ok(),
                search_atomicity(&history).is_ok(),
                "checker split on {}:\n{}", protocol, history
            );
        }
    }
}

/// Adversarial link holds: a reader's fast read that must skip a slow
/// server still returns atomically consistent values.
#[test]
fn w2r1_atomic_under_targeted_link_holds() {
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    let cluster = sim_cluster(config, Protocol::W2R1);
    for slow_server in 0..5u32 {
        let mut sim = cluster.build_sim(13);
        // The slow server answers nobody until t = 5000.
        sim.schedule_hold(SimTime::ZERO, LinkSelector::out_of(ProcessId::server(slow_server)));
        sim.schedule_release(
            SimTime::from_ticks(5_000),
            LinkSelector::out_of(ProcessId::server(slow_server)),
        );
        cluster
            .schedule(&mut sim, SimTime::ZERO, ScheduledOp::Write { writer: 0, value: Value::new(1) })
            .unwrap();
        cluster
            .schedule(
                &mut sim,
                SimTime::from_ticks(40),
                ScheduledOp::Write { writer: 1, value: Value::new(2) },
            )
            .unwrap();
        for (i, at) in [60u64, 90, 120, 150].into_iter().enumerate() {
            cluster
                .schedule(
                    &mut sim,
                    SimTime::from_ticks(at),
                    ScheduledOp::Read { reader: (i % 2) as u32 },
                )
                .unwrap();
        }
        sim.run_until_quiescent().unwrap();
        let events = sim.drain_notifications();
        let history = History::from_events(&events).unwrap();
        assert!(
            check_atomicity(&history).is_ok(),
            "slow server s{}:\n{history}",
            slow_server + 1
        );
        assert!(check_mwa(&history).is_ok());
    }
}

/// Crashing exactly `t` servers at every possible moment keeps W2R1 both
/// live (all ops complete) and atomic.
#[test]
fn w2r1_atomic_under_crash_sweep() {
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    let cluster = sim_cluster(config, Protocol::W2R1);
    let schedule = [
        (SimTime::ZERO, ScheduledOp::Write { writer: 0, value: Value::new(1) }),
        (SimTime::from_ticks(30), ScheduledOp::Read { reader: 0 }),
        (SimTime::from_ticks(60), ScheduledOp::Write { writer: 1, value: Value::new(2) }),
        (SimTime::from_ticks(90), ScheduledOp::Read { reader: 1 }),
    ];
    for victim in 0..5u32 {
        for crash_at in [0u64, 15, 45, 75, 95] {
            let mut sim = cluster.build_sim(7);
            sim.schedule_crash(SimTime::from_ticks(crash_at), ProcessId::server(victim));
            for (at, op) in schedule {
                cluster.schedule(&mut sim, at, op).unwrap();
            }
            sim.run_until_quiescent().unwrap();
            let events = sim.drain_notifications();
            let history = History::from_events(&events)
                .unwrap_or_else(|e| panic!("s{victim}@{crash_at}: {e}"));
            assert_eq!(history.len(), 4, "wait-freedom under t = 1 crash");
            assert!(
                check_atomicity(&history).is_ok(),
                "s{victim}@{crash_at}:\n{history}"
            );
        }
    }
}
