//! Property-based churn coverage for acknowledged-floor GC and the
//! crash–recover state transfer (extends the GC floor-wedge regression
//! suite in `mwr-core`'s server module): random interleavings of client
//! joins, floor reports, floor-safe departures, and server crash/rejoin
//! cycles over a 3-server cluster, asserting
//!
//! - pruned floors only ever advance, on every server, across every event
//!   (including a rejoin installing a quorum's transfers);
//! - pruned state never resurrects: no stored value sits below a server's
//!   pruned floor (except the protocol-mandated latest);
//! - departed clients stop pinning the floor: no trace of a departed
//!   client survives in GC membership, floor reports, or witness sets,
//!   and after everyone-but-one departs, a single floor report prunes all
//!   the way to the latest value — the wedge a silent member would cause
//!   cannot outlive its departure;
//! - a rejoined server resumes its version counter strictly above its
//!   pre-crash beacon and flags the incarnation switch in `reset_floor`.

use std::collections::BTreeSet;

use proptest::prelude::*;

use mwr::core::ServerState;
use mwr::types::{ClientId, Tag, TaggedValue, Value, WriterId};

const SERVERS: usize = 3;
const CLIENTS: u32 = 4;
/// R + W for the GC population: four readers plus the single writer.
const POPULATION: usize = CLIENTS as usize + 1;

#[derive(Debug, Clone, Copy)]
enum Op {
    /// A client's first contact with the cluster (or a re-mint of a
    /// departed slot): every server notes it in GC membership.
    Join(u32),
    /// The writer registers the next value everywhere.
    Write,
    /// A joined client reports the latest value as its completed floor.
    Floor(u32),
    /// A joined client departs floor-safely on every server.
    Depart(u32),
    /// Server `s` crashes and immediately rejoins from its two peers.
    CrashRejoin(u32),
}

fn arb_ops(max: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u32..5, 0u32..CLIENTS, 0u32..SERVERS as u32), 1..max).prop_map(
        |raw| {
            raw.into_iter()
                .map(|(kind, c, s)| match kind {
                    0 => Op::Join(c),
                    1 => Op::Write,
                    2 => Op::Floor(c),
                    3 => Op::Depart(c),
                    _ => Op::CrashRejoin(s),
                })
                .collect()
        },
    )
}

fn reader(c: u32) -> ClientId {
    ClientId::reader(c)
}

/// No trace of `c` may survive on `s`: not in GC membership, not in the
/// floor map, not in any stored value's witness set.
fn assert_departed_gone(s: &ServerState, c: u32, ctx: &str) {
    let t = s.export();
    assert!(!t.seen.contains(&reader(c)), "{ctx}: departed client {c} still in GC membership");
    assert!(
        t.floors.iter().all(|f| f.client != reader(c)),
        "{ctx}: departed client {c} still reports a floor"
    );
    assert!(
        t.entries.iter().all(|rec| !rec.updated.contains(&reader(c))),
        "{ctx}: departed client {c} still witnesses a value"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gc_floors_survive_random_churn_and_crash_rejoin(ops in arb_ops(40)) {
        let writer = ClientId::writer(0);
        let mut servers: Vec<ServerState> =
            (0..SERVERS).map(|_| ServerState::with_gc(POPULATION)).collect();
        let mut joined: BTreeSet<u32> = BTreeSet::new();
        let mut departed: BTreeSet<u32> = BTreeSet::new();
        let mut floors: Vec<TaggedValue> = vec![TaggedValue::initial(); SERVERS];
        let mut ts = 0u64;

        for (step, op) in ops.iter().enumerate() {
            match *op {
                Op::Join(c) => {
                    for s in &mut servers {
                        s.note_contact(reader(c));
                    }
                    joined.insert(c);
                    departed.remove(&c);
                }
                Op::Write => {
                    ts += 1;
                    let tv = TaggedValue::new(Tag::new(ts, WriterId::new(0)), Value::new(ts));
                    for s in &mut servers {
                        s.update(tv, writer);
                    }
                }
                Op::Floor(c) => {
                    if joined.contains(&c) {
                        let floor = servers[0].latest();
                        for s in &mut servers {
                            s.record_floor(reader(c), floor);
                        }
                    }
                }
                Op::Depart(c) => {
                    if joined.remove(&c) {
                        for s in &mut servers {
                            s.depart(reader(c));
                        }
                        departed.insert(c);
                    }
                }
                Op::CrashRejoin(idx) => {
                    let idx = idx as usize;
                    let beacon = servers[idx].version();
                    let transfers: Vec<_> = (0..SERVERS)
                        .filter(|&p| p != idx)
                        .map(|p| servers[p].export())
                        .collect();
                    let mut fresh = ServerState::with_gc(POPULATION);
                    fresh.install(beacon, &transfers);
                    prop_assert!(
                        fresh.version() > beacon,
                        "step {step}: rejoined version {} not above pre-crash beacon {beacon}",
                        fresh.version()
                    );
                    prop_assert_eq!(
                        fresh.reset_floor(), fresh.version(),
                        "step {}: install must flag the incarnation switch", step
                    );
                    servers[idx] = fresh;
                }
            }

            for (i, s) in servers.iter().enumerate() {
                // Floors are monotone through every event, installs included.
                prop_assert!(
                    s.pruned_floor() >= floors[i],
                    "step {step}: server {i} floor regressed from {:?} to {:?} after {op:?}",
                    floors[i], s.pruned_floor()
                );
                floors[i] = s.pruned_floor();
                // Pruned state never resurrects: nothing stored below the
                // floor except the protocol-mandated latest.
                let t = s.export();
                prop_assert!(
                    t.entries.iter().all(|rec| {
                        rec.value >= s.pruned_floor() || rec.value == s.latest()
                    }),
                    "step {step}: server {i} stores a value below its pruned floor after {op:?}"
                );
                // Departed clients leave no pinning trace.
                for &c in &departed {
                    assert_departed_gone(s, c, &format!("step {step}, server {i}"));
                }
            }
        }

        // The wedge check: depart everyone but one survivor, let the
        // survivor acknowledge the latest value, and GC must prune all
        // the way there on every server — no departed (or never-joined)
        // client holds the floor down.
        let survivor = joined.iter().next().copied().unwrap_or(CLIENTS);
        for &c in joined.clone().iter().filter(|&&c| c != survivor) {
            for s in &mut servers {
                s.depart(reader(c));
            }
        }
        for s in &mut servers {
            s.note_contact(reader(survivor));
            let latest = s.latest();
            s.record_floor(reader(survivor), latest);
        }
        for (i, s) in servers.iter().enumerate() {
            prop_assert_eq!(
                s.pruned_floor(), s.latest(),
                "server {}: one live floor report must un-wedge GC completely", i
            );
        }
    }
}
