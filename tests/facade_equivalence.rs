//! Integration: the `Deployment` facade is a *pure re-packaging* of the
//! low-level cluster constructors — same schedule, same seed, byte-
//! identical event streams. This is the contract that lets every harness
//! migrate to the facade without re-validating the protocols, extending
//! the `tests/gc_equivalence.rs` pattern from wire formats to the API
//! layer.
//!
//! This test (together with `gc_equivalence`) is the one deliberate user
//! of the low-level constructors outside the facade crate.

use mwr::almost::{TunableCluster, TunableSpec};
use mwr::byz::{ByzBehavior, ByzCluster, ByzConfig, ByzReadMode};
use mwr::core::{Cluster, FastWire, Protocol, ScheduledOp, SimCluster};
use mwr::register::{Backend, Deployment, Spec};
use mwr::sim::SimTime;
use mwr::types::{ClusterConfig, Value};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SEEDS: u64 = 20;

/// A random well-formed schedule with unique write values.
fn random_schedule(
    seed: u64,
    writers: u32,
    readers: u32,
    ops: usize,
) -> Vec<(SimTime, ScheduledOp)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut next_value = 0u64;
    (0..ops)
        .map(|_| {
            let at = SimTime::from_ticks(rng.gen_range(0u64..800));
            let client = rng.gen_range(0u32..(writers + readers));
            let op = if client < writers {
                next_value += 1;
                ScheduledOp::Write { writer: client, value: Value::new(next_value) }
            } else {
                ScheduledOp::Read { reader: client - writers }
            };
            (at, op)
        })
        .collect()
}

/// All 7 core protocols × 20 seeds: `Cluster::run_schedule` and
/// `Deployment` → `SimHandle::run_schedule` produce byte-identical event
/// streams (same tagged values at the same virtual instants, in the same
/// order).
#[test]
fn facade_reproduces_every_core_protocol_byte_for_byte() {
    for protocol in Protocol::ALL {
        let writers: u32 = if protocol.is_single_writer() { 1 } else { 2 };
        let config = ClusterConfig::new(5, 1, 2, writers as usize).unwrap();
        for seed in 0..SEEDS {
            let schedule = random_schedule(seed * 31 + 1, writers, 2, 16);
            let direct =
                Cluster::new(config, protocol).run_schedule(seed, &schedule).unwrap();
            let facade = Deployment::new(config)
                .protocol(protocol)
                .backend(Backend::Sim { seed })
                .sim()
                .unwrap()
                .run_schedule(&schedule)
                .unwrap();
            assert_eq!(
                direct, facade,
                "{protocol} seed {seed}: facade changed the event stream"
            );
        }
    }
}

/// The fast-wire and GC knobs thread through identically.
#[test]
fn facade_threads_wire_and_gc_knobs_identically() {
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    for (wire, gc) in [
        (FastWire::FullInfo, false),
        (FastWire::FullInfo, true),
        (FastWire::Delta, false),
    ] {
        for seed in 0..SEEDS {
            let schedule = random_schedule(seed * 7 + 3, 2, 2, 16);
            let direct = Cluster::new(config, Protocol::W2R1)
                .with_fast_wire(wire)
                .with_gc(gc)
                .run_schedule(seed, &schedule)
                .unwrap();
            let facade = Deployment::new(config)
                .protocol(Protocol::W2R1)
                .fast_wire(wire)
                .gc(gc)
                .backend(Backend::Sim { seed })
                .sim()
                .unwrap()
                .run_schedule(&schedule)
                .unwrap();
            assert_eq!(direct, facade, "{wire:?}/gc={gc} seed {seed}");
        }
    }
}

/// The other two families get the same guarantee: tunable-quorum and
/// Byzantine deployments replay their low-level constructors exactly.
#[test]
fn facade_reproduces_tunable_and_byzantine_families() {
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    for spec in [TunableSpec::fastest(), TunableSpec::quorum_lww(), TunableSpec::strong()] {
        for seed in 0..SEEDS {
            let schedule = random_schedule(seed * 13 + 5, 2, 2, 16);
            let direct =
                TunableCluster::new(config, spec).run_schedule(seed, &schedule).unwrap();
            let facade = Deployment::new(config)
                .protocol(spec)
                .backend(Backend::Sim { seed })
                .sim()
                .unwrap()
                .run_schedule(&schedule)
                .unwrap();
            assert_eq!(direct, facade, "{spec} seed {seed}");
        }
    }

    let byz_config = ByzConfig::new(5, 1, 2, 2).unwrap();
    for behavior in [ByzBehavior::Honest, ByzBehavior::Equivocator, ByzBehavior::StaleReplier] {
        for mode in [ByzReadMode::Slow, ByzReadMode::Fast] {
            for seed in 0..SEEDS {
                let schedule = random_schedule(seed * 17 + 7, 2, 2, 12);
                let direct = ByzCluster::new(byz_config, mode, behavior)
                    .run_schedule(seed, &schedule)
                    .unwrap();
                let facade = Deployment::new(config)
                    .protocol(Spec::Byz { config: byz_config, read_mode: mode, behavior })
                    .backend(Backend::Sim { seed })
                    .sim()
                    .unwrap()
                    .run_schedule(&schedule)
                    .unwrap();
                assert_eq!(direct, facade, "{behavior}/{mode:?} seed {seed}");
            }
        }
    }
}
