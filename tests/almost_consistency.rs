//! Integration tests for `mwr-almost`: the tunable-quorum clients, the
//! staleness quantification, and their agreement with the checkers of
//! `mwr-check` — the executable form of the paper's §7 future work.

use mwr::almost::{
    ConsistencyClass, ConsistencyProfile, StalenessReport, TunableCluster, TunableSpec,
};
use mwr::check::History;
use mwr::core::{Cluster, Protocol, ScheduledOp};
use mwr::sim::{DelayModel, SimTime};
use mwr::types::{ClusterConfig, ProcessId, Value};

fn contended_schedule(rounds: u64) -> Vec<(SimTime, ScheduledOp)> {
    let mut ops = Vec::new();
    for i in 0..rounds {
        ops.push((
            SimTime::from_ticks(i * 7),
            ScheduledOp::Write { writer: (i % 2) as u32, value: Value::new(i + 1) },
        ));
        ops.push((SimTime::from_ticks(i * 7 + 3), ScheduledOp::Read { reader: (i % 2) as u32 }));
    }
    ops
}

fn run_with_jitter(
    cluster: &TunableCluster,
    seed: u64,
    schedule: &[(SimTime, ScheduledOp)],
) -> History {
    let mut sim = cluster.build_sim(seed);
    sim.network_mut().set_default_delay(DelayModel::Uniform {
        lo: SimTime::from_ticks(2),
        hi: SimTime::from_ticks(25),
    });
    for (at, op) in schedule {
        cluster.schedule(&mut sim, *at, *op).unwrap();
    }
    sim.run_until_quiescent().unwrap();
    History::from_events(&sim.drain_notifications()).unwrap()
}

#[test]
fn one_one_lww_exhibits_violations_under_contention() {
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    let cluster = TunableCluster::new(config, TunableSpec::fastest());
    let schedule = contended_schedule(12);
    let mut any_anomaly = false;
    let mut any_non_atomic = false;
    for seed in 1..=25 {
        let history = run_with_jitter(&cluster, seed, &schedule);
        let profile = ConsistencyProfile::measure(&history);
        any_anomaly |= !profile.staleness.anomaly_free();
        any_non_atomic |= profile.class != ConsistencyClass::Atomic;
    }
    assert!(any_anomaly, "ONE/ONE LWW must surface anomalies under contention");
    assert!(any_non_atomic, "ONE/ONE LWW must lose atomicity somewhere in 25 seeds");
}

#[test]
fn majority_levels_guarantee_zero_staleness() {
    // With read + write acks > S, a read's ack set intersects every
    // completed write's ack set, and per-server maxima are monotone: the
    // read's returned tag dominates every completed write. Staleness is
    // structurally zero even though atomicity is NOT guaranteed.
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    let schedule = contended_schedule(12);
    for spec in [TunableSpec::quorum_lww(), TunableSpec::strong()] {
        assert!(spec.quorums_intersect(&config));
        let cluster = TunableCluster::new(config, spec);
        for seed in 1..=15 {
            let history = run_with_jitter(&cluster, seed, &schedule);
            let report = StalenessReport::analyze(&history);
            assert_eq!(report.max_staleness(), 0, "{spec}, seed {seed}");
        }
    }
}

#[test]
fn queried_tags_never_invert_write_order() {
    // The two-round-trip tag discipline (the paper's §5.2) orders
    // non-concurrent writes by construction — MWA0. Local LWW tags do not.
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    let schedule = contended_schedule(12);
    let strong = TunableCluster::new(config, TunableSpec::strong());
    for seed in 1..=15 {
        let history = run_with_jitter(&strong, seed, &schedule);
        let report = StalenessReport::analyze(&history);
        assert_eq!(report.write_order_violations(), 0, "seed {seed}");
    }
}

#[test]
fn atomic_verdicts_imply_freshness_for_tag_disciplined_protocols() {
    // For mwr-core protocols (tags respect real time, reads return settled
    // values), the checkers' ATOMIC verdict implies the staleness report is
    // clean — cross-validation between the two judgement layers.
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    let schedule = contended_schedule(10);
    for protocol in [Protocol::W2R2, Protocol::W2R1] {
        let cluster = Cluster::new(config, protocol);
        for seed in 1..=10 {
            let mut sim = cluster.build_sim(seed);
            sim.network_mut().set_default_delay(DelayModel::Uniform {
                lo: SimTime::from_ticks(2),
                hi: SimTime::from_ticks(25),
            });
            for (at, op) in &schedule {
                cluster.schedule(&mut sim, *at, *op).unwrap();
            }
            sim.run_until_quiescent().unwrap();
            let history = History::from_events(&sim.drain_notifications()).unwrap();
            let profile = ConsistencyProfile::measure(&history);
            assert_eq!(profile.class, ConsistencyClass::Atomic, "{protocol}, seed {seed}");
            assert!(profile.staleness.anomaly_free(), "{protocol}, seed {seed}");
        }
    }
}

#[test]
fn read_repair_reduces_staleness_of_one_one() {
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    let schedule = contended_schedule(12);
    let mut stale_plain = 0usize;
    let mut stale_repaired = 0usize;
    for seed in 1..=25 {
        let plain = run_with_jitter(
            &TunableCluster::new(config, TunableSpec::fastest()),
            seed,
            &schedule,
        );
        let repaired = run_with_jitter(
            &TunableCluster::new(config, TunableSpec::fastest_with_repair()),
            seed,
            &schedule,
        );
        stale_plain += StalenessReport::analyze(&plain).stale_reads();
        stale_repaired += StalenessReport::analyze(&repaired).stale_reads();
    }
    assert!(
        stale_repaired <= stale_plain,
        "read repair must not increase staleness ({stale_repaired} vs {stale_plain})"
    );
    assert!(stale_plain > 0, "the baseline must exhibit staleness for the comparison to bind");
}

#[test]
fn crashed_server_does_not_block_wait_free_levels() {
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    let spec = TunableSpec::quorum_lww();
    assert!(spec.wait_free(&config));
    let cluster = TunableCluster::new(config, spec);
    let mut sim = cluster.build_sim(3);
    sim.schedule_crash(SimTime::ZERO, ProcessId::server(0));
    for (at, op) in contended_schedule(6) {
        cluster.schedule(&mut sim, at, op).unwrap();
    }
    sim.run_until_quiescent().unwrap();
    let history = History::from_events(&sim.drain_notifications()).unwrap();
    assert_eq!(history.len(), 12, "all ops complete despite the crash");
}

#[test]
fn staleness_report_is_deterministic_per_seed() {
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    let cluster = TunableCluster::new(config, TunableSpec::fastest());
    let schedule = contended_schedule(8);
    let a = StalenessReport::analyze(&run_with_jitter(&cluster, 9, &schedule));
    let b = StalenessReport::analyze(&run_with_jitter(&cluster, 9, &schedule));
    assert_eq!(a, b);
}
