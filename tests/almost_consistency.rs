//! Integration tests for `mwr-almost`: the tunable-quorum clients, the
//! staleness quantification, and their agreement with the checkers of
//! `mwr-check` — the executable form of the paper's §7 future work.

use mwr::almost::{ConsistencyClass, ConsistencyProfile, StalenessReport, TunableSpec};
use mwr::check::History;
use mwr::core::{Protocol, ScheduledOp, SimCluster};
use mwr::register::AnySimCluster;
use mwr::sim::{DelayModel, SimTime};
use mwr::types::{ClusterConfig, ProcessId, Value};

mod common;
use common::{sim_cluster, tunable_cluster};

fn contended_schedule(rounds: u64) -> Vec<(SimTime, ScheduledOp)> {
    let mut ops = Vec::new();
    for i in 0..rounds {
        ops.push((
            SimTime::from_ticks(i * 7),
            ScheduledOp::Write { writer: (i % 2) as u32, value: Value::new(i + 1) },
        ));
        ops.push((SimTime::from_ticks(i * 7 + 3), ScheduledOp::Read { reader: (i % 2) as u32 }));
    }
    ops
}

fn run_with_jitter(
    cluster: &AnySimCluster,
    seed: u64,
    schedule: &[(SimTime, ScheduledOp)],
) -> History {
    let mut sim = cluster.build_sim(seed);
    sim.network_mut().set_default_delay(DelayModel::Uniform {
        lo: SimTime::from_ticks(2),
        hi: SimTime::from_ticks(25),
    });
    for (at, op) in schedule {
        cluster.schedule(&mut sim, *at, *op).unwrap();
    }
    sim.run_until_quiescent().unwrap();
    History::from_events(&sim.drain_notifications()).unwrap()
}

#[test]
fn one_one_lww_exhibits_violations_under_contention() {
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    let cluster = tunable_cluster(config, TunableSpec::fastest());
    let schedule = contended_schedule(12);
    let mut any_anomaly = false;
    let mut any_non_atomic = false;
    for seed in 1..=25 {
        let history = run_with_jitter(&cluster, seed, &schedule);
        let profile = ConsistencyProfile::measure(&history);
        any_anomaly |= !profile.staleness.anomaly_free();
        any_non_atomic |= profile.class != ConsistencyClass::Atomic;
    }
    assert!(any_anomaly, "ONE/ONE LWW must surface anomalies under contention");
    assert!(any_non_atomic, "ONE/ONE LWW must lose atomicity somewhere in 25 seeds");
}

#[test]
fn majority_levels_guarantee_zero_staleness() {
    // With read + write acks > S, a read's ack set intersects every
    // completed write's ack set, and per-server maxima are monotone: the
    // read's returned tag dominates every completed write. Staleness is
    // structurally zero even though atomicity is NOT guaranteed.
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    let schedule = contended_schedule(12);
    for spec in [TunableSpec::quorum_lww(), TunableSpec::strong()] {
        assert!(spec.quorums_intersect(&config));
        let cluster = tunable_cluster(config, spec);
        for seed in 1..=15 {
            let history = run_with_jitter(&cluster, seed, &schedule);
            let report = StalenessReport::analyze(&history);
            assert_eq!(report.max_staleness(), 0, "{spec}, seed {seed}");
        }
    }
}

#[test]
fn queried_tags_never_invert_write_order() {
    // The two-round-trip tag discipline (the paper's §5.2) orders
    // non-concurrent writes by construction — MWA0. Local LWW tags do not.
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    let schedule = contended_schedule(12);
    let strong = tunable_cluster(config, TunableSpec::strong());
    for seed in 1..=15 {
        let history = run_with_jitter(&strong, seed, &schedule);
        let report = StalenessReport::analyze(&history);
        assert_eq!(report.write_order_violations(), 0, "seed {seed}");
    }
}

#[test]
fn atomic_verdicts_imply_freshness_for_tag_disciplined_protocols() {
    // For mwr-core protocols (tags respect real time, reads return settled
    // values), the checkers' ATOMIC verdict implies the staleness report is
    // clean — cross-validation between the two judgement layers.
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    let schedule = contended_schedule(10);
    for protocol in [Protocol::W2R2, Protocol::W2R1] {
        let cluster = sim_cluster(config, protocol);
        for seed in 1..=10 {
            let mut sim = cluster.build_sim(seed);
            sim.network_mut().set_default_delay(DelayModel::Uniform {
                lo: SimTime::from_ticks(2),
                hi: SimTime::from_ticks(25),
            });
            for (at, op) in &schedule {
                cluster.schedule(&mut sim, *at, *op).unwrap();
            }
            sim.run_until_quiescent().unwrap();
            let history = History::from_events(&sim.drain_notifications()).unwrap();
            let profile = ConsistencyProfile::measure(&history);
            assert_eq!(profile.class, ConsistencyClass::Atomic, "{protocol}, seed {seed}");
            assert!(profile.staleness.anomaly_free(), "{protocol}, seed {seed}");
        }
    }
}

/// Read repair is the *only* propagation path to a partitioned server set:
/// writer→{s2,s3,s4} links are held forever, so those servers see a write
/// only if some reader pushes it back. Reader 0 sits near the fresh
/// servers; reader 1 sits near the starved ones. Without repair, every one
/// of reader 1's reads is stale; with repair, reader 0's completed reads
/// propagate each value in time for reader 1's read of the same round.
///
/// (An earlier version of this test compared total stale reads across 25
/// randomly jittered seeds, but under uniform jitter the ONE-write's own
/// broadcast reaches every server within the jitter bound anyway, so
/// repair's aggregate effect is far smaller than scheduling noise. This
/// construction makes the benefit structural and the counts exact.)
#[test]
fn read_repair_reduces_staleness_of_one_one() {
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    const ROUNDS: u64 = 6;
    let near = SimTime::from_ticks(2);
    let far = SimTime::from_ticks(30);

    let run = |spec: TunableSpec| -> usize {
        let cluster = tunable_cluster(config, spec);
        let mut sim = cluster.build_sim(1);
        sim.network_mut().set_default_delay(DelayModel::Constant(near));
        for s in [2u32, 3, 4] {
            // The far partition never hears from the writers directly.
            for w in [0u32, 1] {
                sim.schedule_hold(
                    SimTime::ZERO,
                    mwr::sim::LinkSelector::directed(ProcessId::writer(w), ProcessId::server(s)),
                );
            }
            // Reader 0 is far from the starved servers, reader 1 is near.
            for (reader, delay) in [(0u32, far), (1u32, near)] {
                let r = ProcessId::reader(reader);
                let s = ProcessId::server(s);
                sim.network_mut().set_link_delay(r, s, DelayModel::Constant(delay));
                sim.network_mut().set_link_delay(s, r, DelayModel::Constant(delay));
            }
        }
        for s in [0u32, 1] {
            // ...and vice versa for the fresh servers.
            let r = ProcessId::reader(1);
            let s = ProcessId::server(s);
            sim.network_mut().set_link_delay(r, s, DelayModel::Constant(far));
            sim.network_mut().set_link_delay(s, r, DelayModel::Constant(far));
        }
        for i in 0..ROUNDS {
            let t = i * 200;
            let ops = [
                (t, ScheduledOp::Write { writer: (i % 2) as u32, value: Value::new(i + 1) }),
                (t + 40, ScheduledOp::Read { reader: 0 }),
                (t + 120, ScheduledOp::Read { reader: 1 }),
            ];
            for (at, op) in ops {
                cluster.schedule(&mut sim, SimTime::from_ticks(at), op).unwrap();
            }
        }
        sim.run_until_quiescent().unwrap();
        let history = History::from_events(&sim.drain_notifications()).unwrap();
        StalenessReport::analyze(&history).stale_reads()
    };

    let stale_plain = run(TunableSpec::fastest());
    let stale_repaired = run(TunableSpec::fastest_with_repair());
    assert_eq!(
        stale_plain, ROUNDS as usize,
        "without repair, every read against the starved partition is stale"
    );
    assert_eq!(stale_repaired, 0, "repair propagates each value before the partition is read");
}

#[test]
fn crashed_server_does_not_block_wait_free_levels() {
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    let spec = TunableSpec::quorum_lww();
    assert!(spec.wait_free(&config));
    let cluster = tunable_cluster(config, spec);
    let mut sim = cluster.build_sim(3);
    sim.schedule_crash(SimTime::ZERO, ProcessId::server(0));
    for (at, op) in contended_schedule(6) {
        cluster.schedule(&mut sim, at, op).unwrap();
    }
    sim.run_until_quiescent().unwrap();
    let history = History::from_events(&sim.drain_notifications()).unwrap();
    assert_eq!(history.len(), 12, "all ops complete despite the crash");
}

#[test]
fn staleness_report_is_deterministic_per_seed() {
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    let cluster = tunable_cluster(config, TunableSpec::fastest());
    let schedule = contended_schedule(8);
    let a = StalenessReport::analyze(&run_with_jitter(&cluster, 9, &schedule));
    let b = StalenessReport::analyze(&run_with_jitter(&cluster, 9, &schedule));
    assert_eq!(a, b);
}
