//! Integration: the live runtime (threads + channels, threads + TCP) runs
//! the same protocols with the same observable guarantees, deployed
//! through the `Deployment` facade.

use std::time::Duration;

use mwr::register::{Backend, Deployment, Protocol};
use mwr::runtime::RuntimeError;
use mwr::types::{ClusterConfig, TaggedValue, Value};

#[test]
fn read_your_writes_and_monotonic_reads_in_memory() {
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    let cluster = Deployment::new(config)
        .protocol(Protocol::W2R1)
        .backend(Backend::InMemory)
        .in_memory()
        .unwrap();
    let mut w0 = cluster.writer(0).unwrap();
    let mut w1 = cluster.writer(1).unwrap();
    let mut r0 = cluster.reader(0).unwrap();
    let mut r1 = cluster.reader(1).unwrap();

    let mut last_seen = TaggedValue::initial();
    for round in 1..=10u64 {
        let t0 = w0.write(Value::new(round * 10)).unwrap();
        let t1 = w1.write(Value::new(round * 10 + 1)).unwrap();
        assert!(t1 > t0, "two-round writes order sequential writes (MWA0)");
        let a = r0.read().unwrap();
        let b = r1.read().unwrap();
        assert!(a >= t1, "read sees the last completed write (MWA2)");
        assert!(b >= a, "sequential reads never regress (MWA4)");
        assert!(b >= last_seen);
        last_seen = b;
    }
    cluster.shutdown();
}

#[test]
fn w2r2_and_w2r1_agree_over_tcp() {
    for protocol in [Protocol::W2R2, Protocol::W2R1] {
        let config = ClusterConfig::new(3, 1, 1, 1).unwrap();
        let cluster =
            Deployment::new(config).protocol(protocol).backend(Backend::Tcp).tcp().unwrap();
        let mut w = cluster.writer(0).unwrap();
        let mut r = cluster.reader(0).unwrap();
        for i in 1..=5u64 {
            let written = w.write(Value::new(i)).unwrap();
            let read = r.read().unwrap();
            assert_eq!(read, written, "{protocol} over TCP");
        }
        assert!(cluster.shutdown() > 0);
    }
}

#[test]
fn interleaved_writers_over_tcp_keep_tag_order() {
    let config = ClusterConfig::new(3, 1, 1, 2).unwrap();
    let cluster =
        Deployment::new(config).protocol(Protocol::W2R1).backend(Backend::Tcp).tcp().unwrap();
    let mut w0 = cluster.writer(0).unwrap();
    let mut w1 = cluster.writer(1).unwrap();
    let mut tags = Vec::new();
    for i in 0..6u64 {
        let t = if i % 2 == 0 {
            w0.write(Value::new(i)).unwrap()
        } else {
            w1.write(Value::new(i)).unwrap()
        };
        tags.push(t);
    }
    for pair in tags.windows(2) {
        assert!(pair[0] < pair[1], "sequential writes get increasing tags");
    }
    cluster.shutdown();
}

#[test]
fn liveness_boundary_at_t_crashes() {
    let config = ClusterConfig::new(5, 1, 1, 1).unwrap();
    let mut cluster = Deployment::new(config)
        .protocol(Protocol::W2R1)
        .backend(Backend::InMemory)
        .in_memory()
        .unwrap();
    let mut w = cluster.writer(0).unwrap();
    let mut r = cluster.reader(0).unwrap();

    w.write(Value::new(1)).unwrap();
    cluster.crash_server(2);
    // t = 1 crash: still wait-free.
    let tagged = w.write(Value::new(2)).unwrap();
    assert_eq!(r.read().unwrap(), tagged);

    // Beyond t: operations must block (and time out) rather than weaken
    // consistency — the paper's premise that fast+atomic+fault-tolerant
    // cannot all hold.
    cluster.crash_server(3);
    let mut w = w.with_timeout(Duration::from_millis(150));
    assert!(matches!(w.write(Value::new(3)), Err(RuntimeError::Timeout { .. })));
    cluster.shutdown();
}

/// Fault injection now works on the TCP backend too: a crashed minority
/// (≤ t servers) does not block W2R1's one-round-trip read.
#[test]
fn tcp_crashed_minority_does_not_block_fast_reads() {
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    let mut cluster = Deployment::new(config)
        .protocol(Protocol::W2R1)
        .backend(Backend::Tcp)
        .timeout(Duration::from_secs(5))
        .tcp()
        .unwrap();
    let mut w = cluster.writer(0).unwrap();
    let mut r = cluster.reader(0).unwrap();

    let before = w.write(Value::new(1)).unwrap();
    assert_eq!(r.read().unwrap(), before);

    cluster.crash_server(0);
    // The quorum S − t = 4 still assembles: the write completes and the
    // fast read returns it in one round-trip, exactly as in-memory.
    let after = w.write(Value::new(2)).unwrap();
    assert_eq!(r.read().unwrap(), after, "crashed TCP minority must not block the fast read");
    cluster.shutdown();
}
