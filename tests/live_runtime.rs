//! Integration: the live runtime (threads + channels, threads + TCP) runs
//! the same protocols with the same observable guarantees, deployed
//! through the `Deployment` facade.

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::time::Duration;

use mwr::core::{Msg, OpHandle, OpId};
use mwr::register::{AuditConfig, Backend, Deployment, FaultPlan, Protocol, RetryPolicy};
use mwr::runtime::{Endpoint as _, RuntimeError, TcpEndpoint, TcpRegistry, TcpTuning};
use mwr::types::{ClientId, ClusterConfig, ProcessId, Tag, TaggedValue, Value, WriterId};

#[test]
fn read_your_writes_and_monotonic_reads_in_memory() {
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    let cluster = Deployment::new(config)
        .protocol(Protocol::W2R1)
        .backend(Backend::InMemory)
        .in_memory()
        .unwrap();
    let mut w0 = cluster.writer(0).unwrap();
    let mut w1 = cluster.writer(1).unwrap();
    let mut r0 = cluster.reader(0).unwrap();
    let mut r1 = cluster.reader(1).unwrap();

    let mut last_seen = TaggedValue::initial();
    for round in 1..=10u64 {
        let t0 = w0.write(Value::new(round * 10)).unwrap();
        let t1 = w1.write(Value::new(round * 10 + 1)).unwrap();
        assert!(t1 > t0, "two-round writes order sequential writes (MWA0)");
        let a = r0.read().unwrap();
        let b = r1.read().unwrap();
        assert!(a >= t1, "read sees the last completed write (MWA2)");
        assert!(b >= a, "sequential reads never regress (MWA4)");
        assert!(b >= last_seen);
        last_seen = b;
    }
    cluster.shutdown();
}

#[test]
fn w2r2_and_w2r1_agree_over_tcp() {
    for protocol in [Protocol::W2R2, Protocol::W2R1] {
        let config = ClusterConfig::new(3, 1, 1, 1).unwrap();
        let cluster =
            Deployment::new(config).protocol(protocol).backend(Backend::Tcp).tcp().unwrap();
        let mut w = cluster.writer(0).unwrap();
        let mut r = cluster.reader(0).unwrap();
        for i in 1..=5u64 {
            let written = w.write(Value::new(i)).unwrap();
            let read = r.read().unwrap();
            assert_eq!(read, written, "{protocol} over TCP");
        }
        assert!(cluster.shutdown() > 0);
    }
}

#[test]
fn interleaved_writers_over_tcp_keep_tag_order() {
    let config = ClusterConfig::new(3, 1, 1, 2).unwrap();
    let cluster =
        Deployment::new(config).protocol(Protocol::W2R1).backend(Backend::Tcp).tcp().unwrap();
    let mut w0 = cluster.writer(0).unwrap();
    let mut w1 = cluster.writer(1).unwrap();
    let mut tags = Vec::new();
    for i in 0..6u64 {
        let t = if i % 2 == 0 {
            w0.write(Value::new(i)).unwrap()
        } else {
            w1.write(Value::new(i)).unwrap()
        };
        tags.push(t);
    }
    for pair in tags.windows(2) {
        assert!(pair[0] < pair[1], "sequential writes get increasing tags");
    }
    cluster.shutdown();
}

#[test]
fn liveness_boundary_at_t_crashes() {
    let config = ClusterConfig::new(5, 1, 1, 1).unwrap();
    let mut cluster = Deployment::new(config)
        .protocol(Protocol::W2R1)
        .backend(Backend::InMemory)
        .in_memory()
        .unwrap();
    let mut w = cluster.writer(0).unwrap();
    let mut r = cluster.reader(0).unwrap();

    w.write(Value::new(1)).unwrap();
    cluster.crash_server(2);
    // t = 1 crash: still wait-free.
    let tagged = w.write(Value::new(2)).unwrap();
    assert_eq!(r.read().unwrap(), tagged);

    // Beyond t: operations must block (and time out) rather than weaken
    // consistency — the paper's premise that fast+atomic+fault-tolerant
    // cannot all hold.
    cluster.crash_server(3);
    let mut w = w.with_timeout(Duration::from_millis(150));
    assert!(matches!(w.write(Value::new(3)), Err(RuntimeError::Timeout { .. })));
    cluster.shutdown();
}

/// Transport-level stress on the batched writer pipelines: many senders
/// hammer one endpoint concurrently — both through their own endpoints
/// (one connection each) and through one *shared* endpoint (contending on
/// its per-peer pipeline, which forces the queue + drain-thread path and
/// coalesced batches). Every frame must decode cleanly (no torn or
/// interleaved writes) and per-sender FIFO must hold.
#[test]
fn tcp_pipeline_stress_keeps_frames_whole_and_fifo() {
    const SENDERS: usize = 6;
    const MSGS: u64 = 300;
    let registry = TcpRegistry::new().with_tuning(TcpTuning {
        // A small queue keeps the drain thread engaged under contention.
        queue_depth: 64,
        batch: 16,
        ..TcpTuning::default()
    });
    let hub = TcpEndpoint::bind(ProcessId::server(0), &registry).unwrap();

    // Lane ids 0..SENDERS use dedicated endpoints; lanes SENDERS..2*SENDERS
    // share one endpoint across threads.
    let make_msg = |lane: u64, seq: u64| Msg::Update {
        handle: OpHandle {
            op: OpId { client: ClientId::writer(lane as u32), seq },
            phase: 1,
        },
        value: TaggedValue::new(Tag::new(seq + 1, WriterId::new(lane as u32)), Value::new(seq)),
        floor: TaggedValue::initial(),
    };
    let shared = TcpEndpoint::bind(ProcessId::writer(SENDERS as u32), &registry).unwrap();
    std::thread::scope(|scope| {
        for lane in 0..SENDERS as u64 {
            let registry = registry.clone();
            scope.spawn(move || {
                let ep =
                    TcpEndpoint::bind(ProcessId::writer(lane as u32), &registry).unwrap();
                for seq in 0..MSGS {
                    ep.send(ProcessId::server(0), make_msg(lane, seq)).unwrap();
                }
            });
        }
        for lane in SENDERS as u64..2 * SENDERS as u64 {
            let shared = &shared;
            scope.spawn(move || {
                for seq in 0..MSGS {
                    shared.send(ProcessId::server(0), make_msg(lane, seq)).unwrap();
                }
            });
        }
    });

    let mut next_seq: HashMap<u64, u64> = HashMap::new();
    for _ in 0..2 * SENDERS as u64 * MSGS {
        let (_, msg) = hub
            .inbox()
            .recv_timeout(Duration::from_secs(30))
            .expect("every frame arrives intact");
        let Msg::Update { handle, value, .. } = msg else {
            panic!("torn or foreign frame decoded: {msg:?}");
        };
        let ClientId::Writer(w) = handle.op.client else { panic!("unexpected sender") };
        let lane = u64::from(w.index());
        assert_eq!(value.value(), Value::new(handle.op.seq), "frame payload intact");
        let expected = next_seq.entry(lane).or_insert(0);
        assert_eq!(
            handle.op.seq, *expected,
            "per-sender FIFO violated on lane {lane}"
        );
        *expected += 1;
    }
    assert!(hub.inbox().is_empty(), "no duplicated frames");
    // The shared endpoint funneled 6 threads through one pipeline: its
    // stats must account for every frame, coalesced into fewer batches.
    let stats = shared.peer_stats(ProcessId::server(0)).unwrap();
    assert_eq!(stats.frames_sent, SENDERS as u64 * MSGS, "{stats:?}");
    assert!(stats.batches <= stats.frames_sent, "{stats:?}");
    assert_eq!(stats.frames_dropped, 0, "{stats:?}");
    // On the receive side, the hub's shared reader accounted for every
    // frame, and dropping the hub closes every adopted connection before
    // `drop` returns — the teardown the gauge makes assertable.
    let reader = hub.reader_stats().expect("default tuning runs the shared reader");
    assert_eq!(reader.frames, 2 * SENDERS as u64 * MSGS, "{reader:?}");
    assert!(reader.wakes <= reader.frames, "{reader:?}");
    let gauge = hub.connection_gauge();
    assert!(gauge.load(Ordering::SeqCst) >= 1, "the live shared endpoint stays connected");
    drop(hub);
    assert_eq!(gauge.load(Ordering::SeqCst), 0, "teardown leaked adopted connections");
}

/// A transport-level reconnect storm against one endpoint: a peer re-binds
/// over and over, each incarnation sending a frame and receiving a reply
/// before its socket dies. Each teardown EOFs the hub's adopted inbound
/// connection and leaves the hub's reply pipeline pointing at a dead
/// address (the negative-cache path the next incarnation's inbound frame
/// forgives). The shared reader must reap every EOF'd socket — the gauge
/// settles back to the live-connection count instead of accumulating one
/// leaked buffer per storm round — and endpoint drop closes the rest.
#[test]
fn tcp_reconnect_storm_does_not_leak_adopted_connections() {
    let registry = TcpRegistry::new().with_tuning(TcpTuning {
        reconnect_backoff: Duration::from_millis(5),
        ..TcpTuning::default()
    });
    let hub = TcpEndpoint::bind(ProcessId::server(0), &registry).unwrap();
    let gauge = hub.connection_gauge();
    for _ in 0..30 {
        let peer = TcpEndpoint::bind(ProcessId::reader(0), &registry).unwrap();
        peer.send(ProcessId::server(0), Msg::InvokeRead).unwrap();
        hub.inbox().recv_timeout(Duration::from_secs(5)).unwrap();
        // The reply exercises the hub's writer pipeline against a peer
        // that keeps dying: failed cycles negative-cache it, the next
        // incarnation's inbound frame forgives the cache.
        let _ = hub.send(ProcessId::reader(0), Msg::InvokeRead);
        drop(peer);
    }
    // Every storm incarnation's socket EOF'd; the shared reader must reap
    // them all rather than pinning 30 dead sockets and their buffers.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while gauge.load(Ordering::SeqCst) > 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "storm leaked adopted connections: {} still held",
            gauge.load(Ordering::SeqCst)
        );
        std::thread::yield_now();
    }
    drop(hub);
    assert_eq!(gauge.load(Ordering::SeqCst), 0);
}

/// Crashing a server mid-hammer must neither wedge the survivors'
/// pipelines nor the cluster teardown: all client operations keep
/// completing against the surviving quorum, and shutdown joins cleanly.
#[test]
fn tcp_pipeline_graceful_under_crash_load() {
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    let mut cluster = Deployment::new(config)
        .protocol(Protocol::W2R1)
        .backend(Backend::Tcp)
        .timeout(Duration::from_secs(10))
        .tcp()
        .unwrap();
    let mut writers: Vec<_> = (0..2).map(|w| cluster.writer(w).unwrap()).collect();
    let mut readers: Vec<_> = (0..2).map(|r| cluster.reader(r).unwrap()).collect();

    std::thread::scope(|scope| {
        let crash = scope.spawn(|| {
            std::thread::sleep(Duration::from_millis(30));
            cluster.crash_server(1);
        });
        for (w, writer) in writers.iter_mut().enumerate() {
            scope.spawn(move || {
                for i in 0..60u64 {
                    writer
                        .write(Value::new(w as u64 * 1_000 + i))
                        .expect("writes survive a crashed minority");
                }
            });
        }
        for reader in readers.iter_mut() {
            scope.spawn(move || {
                let mut last = TaggedValue::initial();
                for _ in 0..60 {
                    let got = reader.read().expect("reads survive a crashed minority");
                    assert!(got >= last, "monotonic reads under crash load");
                    last = got;
                }
            });
        }
        crash.join().unwrap();
    });
    cluster.shutdown();
}

/// The crash-a-minority-under-load scenario re-run *continuously
/// verified*: every operation flows through the streaming auditor
/// (`sample_rate = 1.0`) while a server crashes mid-hammer. The verdict
/// must stay clean, and the small window must force truncation — the
/// auditor keeps up with fault-scenario traffic without retaining it.
#[test]
fn crash_under_load_stays_atomic_under_full_audit() {
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    let mut cluster = Deployment::new(config)
        .protocol(Protocol::W2R1)
        .backend(Backend::Tcp)
        .timeout(Duration::from_secs(10))
        .audit(AuditConfig { sample_rate: 1.0, window: 64, ..AuditConfig::default() })
        .tcp()
        .unwrap();
    let mut writers: Vec<_> = (0..2).map(|w| cluster.writer(w).unwrap()).collect();
    let mut readers: Vec<_> = (0..2).map(|r| cluster.reader(r).unwrap()).collect();

    std::thread::scope(|scope| {
        let crash = scope.spawn(|| {
            std::thread::sleep(Duration::from_millis(30));
            cluster.crash_server(1);
        });
        for (w, writer) in writers.iter_mut().enumerate() {
            scope.spawn(move || {
                for i in 0..60u64 {
                    writer
                        .write(Value::new(w as u64 * 1_000 + i))
                        .expect("writes survive a crashed minority");
                }
            });
        }
        for reader in readers.iter_mut() {
            scope.spawn(move || {
                for _ in 0..60 {
                    reader.read().expect("reads survive a crashed minority");
                }
            });
        }
        crash.join().unwrap();
    });
    // Tap clones live in the minted clients; the sidecar joins once they
    // are gone.
    drop(writers);
    drop(readers);
    let (_handled, report) = cluster.shutdown_audited();
    let report = report.expect("deployment was armed with an auditor");
    assert!(
        report.verdict.is_ok(),
        "crash-under-load traffic must stay atomic: {report}; {:?}",
        report.verdict
    );
    assert_eq!(report.stats.audited, 240, "2 writers + 2 readers x 60 ops, all sampled");
    assert!(report.stats.truncated > 0, "the small window must truncate: {report}");
    assert!(
        (report.stats.window_high_water as u64) < report.stats.audited,
        "window stays bounded under fault load: {report}"
    );
}

/// A reconnect storm, continuously verified: reader slot 1's endpoint is
/// torn down and re-bound over and over while fully audited writers and a
/// stable reader keep the cluster under load. Every teardown leaves the
/// servers' cached reply connections pointing at a dead socket; every
/// re-bind registers a new address, so replies only resume once the
/// reply pipelines notice the failure, negative-cache the peer, and then
/// *forgive* the cache on the re-bound reader's next inbound request.
/// The storm reader is minted straight off the runtime cluster (no audit
/// tap: a re-bound endpoint restarts its op sequence numbers, which would
/// collide in the auditor's window); the audited stable clients assert
/// the storm never costs atomicity or liveness.
#[test]
fn reconnect_storm_stays_atomic_under_full_audit() {
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    let cluster = Deployment::new(config)
        .protocol(Protocol::W2R1)
        .backend(Backend::Tcp)
        .timeout(Duration::from_secs(10))
        .audit(AuditConfig { sample_rate: 1.0, window: 64, ..AuditConfig::default() })
        .tcp()
        .unwrap();
    let mut writers: Vec<_> = (0..2).map(|w| cluster.writer(w).unwrap()).collect();
    let mut reader = cluster.reader(0).unwrap();
    let runtime = cluster.cluster();

    std::thread::scope(|scope| {
        for (w, writer) in writers.iter_mut().enumerate() {
            scope.spawn(move || {
                for i in 0..80u64 {
                    writer
                        .write(Value::new(w as u64 * 1_000 + i))
                        .expect("writes keep completing through the storm");
                }
            });
        }
        let reader = &mut reader;
        scope.spawn(move || {
            let mut last = TaggedValue::initial();
            for _ in 0..80 {
                let got = reader.read().expect("reads keep completing through the storm");
                assert!(got >= last, "monotonic reads through the storm");
                last = got;
            }
        });
        scope.spawn(move || {
            for round in 0..6 {
                let mut churn = runtime
                    .reader(1)
                    .expect("storm reader re-binds its endpoint")
                    .with_timeout(Duration::from_millis(250));
                // The first request after a re-bind may lose its replies to
                // the stale connections it is about to invalidate; a later
                // one must get through once the pipelines forgive the
                // negative-cached peer (within one backoff, not after it).
                let ok = (0..8).any(|_| churn.read().is_ok());
                assert!(ok, "storm round {round}: reply pipelines never forgave the re-bound reader");
            }
        });
    });
    drop(writers);
    drop(reader);
    let (_handled, report) = cluster.shutdown_audited();
    let report = report.expect("deployment was armed with an auditor");
    assert!(
        report.verdict.is_ok(),
        "storm traffic must stay atomic: {report}; {:?}",
        report.verdict
    );
    assert_eq!(report.stats.audited, 240, "2 writers x 80 + stable reader x 80, all sampled");
    assert!(report.stats.truncated > 0, "the small window must truncate: {report}");
    assert!(
        (report.stats.window_high_water as u64) < report.stats.audited,
        "window stays bounded through the storm: {report}"
    );
}

/// Crash → rejoin → crash the *other* minority, fully audited over TCP:
/// server 0 crashes, rejoins through quorum state transfer, and then
/// server 1 crashes — so every subsequent quorum (S − t = 2 of {0, 2})
/// must include the rejoined incarnation. The writes and reads riding
/// through all three phases stay atomic under `sample_rate = 1.0`, which
/// is exactly the soundness claim of the state-transfer protocol: a
/// rejoined server never serves below its pre-crash version stamps.
#[test]
fn audited_crash_rejoin_then_other_minority_over_tcp() {
    let config = ClusterConfig::new(3, 1, 1, 1).unwrap();
    let mut cluster = Deployment::new(config)
        .protocol(Protocol::W2R1)
        .backend(Backend::Tcp)
        .timeout(Duration::from_secs(5))
        .retry(RetryPolicy { attempts: 4, backoff: Duration::from_millis(20) })
        .audit(AuditConfig { sample_rate: 1.0, window: 64, ..AuditConfig::default() })
        .tcp()
        .unwrap();
    let mut w = cluster.writer(0).unwrap();
    let mut r = cluster.reader(0).unwrap();

    // Phase 1: all up.
    let t1 = w.write(Value::new(1)).unwrap();
    assert_eq!(r.read().unwrap(), t1);

    // Phase 2: server 0 down; the surviving quorum {1, 2} carries writes
    // the rejoining server must learn through state transfer.
    cluster.crash_server(0);
    let t2 = w.write(Value::new(2)).unwrap();
    assert_eq!(r.read().unwrap(), t2);

    // Phase 3: server 0 rejoins from a quorum of live peers, then the
    // *other* minority crashes: every quorum now needs the rejoined
    // incarnation to answer — and to answer consistently.
    cluster.rejoin_server(0).expect("a live quorum answers the state fetch");
    cluster.crash_server(1);
    let t3 = w.write(Value::new(3)).unwrap();
    let got = r.read().unwrap();
    assert!(got >= t3, "the rejoined server serves quorums at current stamps");
    assert_eq!(cluster.live_servers(), vec![0, 2]);

    drop(w);
    drop(r);
    let (_handled, report) = cluster.shutdown_audited();
    let report = report.expect("deployment was armed with an auditor");
    assert!(
        report.verdict.is_ok(),
        "crash-rejoin-crash traffic must stay atomic: {report}; {:?}",
        report.verdict
    );
    assert_eq!(report.stats.audited, 6, "3 writes + 3 reads, all sampled");
}

/// The tentpole scenario, end to end: a fully-audited rolling restart
/// over TCP. Every server is crashed and rejoined once by the armed
/// `FaultPlan` while retrying clients hammer the register open-loop; the
/// drive must report every fault healed and zero failed operations, the
/// auditor must stay clean at `sample_rate = 1.0` — and afterwards,
/// crashing a live minority proves the rejoined incarnations genuinely
/// serve quorums rather than free-riding on the originals.
#[test]
fn audited_rolling_restart_over_tcp_heals_and_stays_atomic() {
    let config = ClusterConfig::new(3, 1, 2, 2).unwrap();
    // A short per-round timeout plus many retry attempts is the intended
    // fault-window configuration: a round whose frames died with a
    // crashed (or freshly re-bound) server times out quickly, and the
    // retry's re-broadcast reconnects to the incarnation's new address.
    let mut cluster = Deployment::new(config)
        .protocol(Protocol::W2R1)
        .backend(Backend::Tcp)
        .timeout(Duration::from_millis(400))
        .retry(RetryPolicy { attempts: 10, backoff: Duration::from_millis(10) })
        .audit(AuditConfig { sample_rate: 1.0, window: 64, ..AuditConfig::default() })
        .inject(FaultPlan::rolling_restart(3, 150))
        .tcp()
        .unwrap();
    let report = cluster.run_chaos(Duration::from_secs(4)).unwrap();
    assert_eq!(report.crashes, 3, "every server crashed once: {report:?}");
    assert_eq!(report.rejoins, 3, "every server rejoined once: {report:?}");
    assert!(report.healed(), "all faults healed, zero failed ops: {report:?}");
    assert_eq!(report.live_servers, vec![0, 1, 2]);
    assert!(report.throughput.ops() > 0);

    // The rejoined incarnations must serve quorums on their own: crash a
    // minority and drive fresh (untapped) clients through the remaining
    // pair, both of which are post-restart incarnations. The re-bound
    // client slots need the short-timeout-plus-retry idiom: the servers'
    // reply pipelines still point at the drive-era addresses until the
    // first inbound request makes them forgive and re-resolve.
    cluster.crash_server(2);
    let runtime = cluster.cluster();
    let rebind_retry = RetryPolicy { attempts: 10, backoff: Duration::from_millis(10) };
    let mut w = runtime
        .writer(0)
        .unwrap()
        .with_timeout(Duration::from_millis(400))
        .with_retry(rebind_retry);
    let mut r = runtime
        .reader_with_wire(0, mwr::register::FastWire::default())
        .unwrap()
        .with_timeout(Duration::from_millis(400))
        .with_retry(rebind_retry);
    let written = w.write(Value::new(999)).unwrap();
    assert!(
        r.read().unwrap() >= written,
        "rejoined servers alone form a serving quorum"
    );
    drop(w);
    drop(r);
    let (_handled, audit) = cluster.shutdown_audited();
    let audit = audit.expect("deployment was armed with an auditor");
    assert!(
        audit.verdict.is_ok(),
        "rolling-restart traffic must stay atomic: {audit}; {:?}",
        audit.verdict
    );
    assert!(audit.stats.audited > 0, "the drive's clients were tapped: {audit}");
}

/// A churn storm, fully audited in memory: hundreds of short-lived
/// readers join on the reserved slot, read, and depart floor-safely while
/// stable clients keep the register under load. Every churn client must
/// depart (no leaked registrations pinning the acknowledged floor), no
/// operation may fail, and the stable traffic stays atomic.
#[test]
fn audited_churn_storm_departs_every_client() {
    let config = ClusterConfig::new(3, 1, 2, 2).unwrap();
    let mut cluster = Deployment::new(config)
        .protocol(Protocol::W2R1)
        .backend(Backend::InMemory)
        .timeout(Duration::from_secs(5))
        .audit(AuditConfig { sample_rate: 1.0, window: 64, ..AuditConfig::default() })
        .inject(FaultPlan::churn_storm(200, 2, 20))
        .in_memory()
        .unwrap();
    let report = cluster.run_chaos(Duration::from_millis(500)).unwrap();
    assert_eq!(report.churn_joined, 200, "{report:?}");
    assert_eq!(report.churn_departed, 200, "every churn client departed: {report:?}");
    assert_eq!(report.churn_reads, 400, "{report:?}");
    assert!(report.healed(), "{report:?}");
    let (_handled, audit) = cluster.shutdown_audited();
    let audit = audit.expect("deployment was armed with an auditor");
    assert!(
        audit.verdict.is_ok(),
        "churn-storm traffic must stay atomic: {audit}; {:?}",
        audit.verdict
    );
}

/// Fault injection now works on the TCP backend too: a crashed minority
/// (≤ t servers) does not block W2R1's one-round-trip read.
#[test]
fn tcp_crashed_minority_does_not_block_fast_reads() {
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    let mut cluster = Deployment::new(config)
        .protocol(Protocol::W2R1)
        .backend(Backend::Tcp)
        .timeout(Duration::from_secs(5))
        .tcp()
        .unwrap();
    let mut w = cluster.writer(0).unwrap();
    let mut r = cluster.reader(0).unwrap();

    let before = w.write(Value::new(1)).unwrap();
    assert_eq!(r.read().unwrap(), before);

    cluster.crash_server(0);
    // The quorum S − t = 4 still assembles: the write completes and the
    // fast read returns it in one round-trip, exactly as in-memory.
    let after = w.write(Value::new(2)).unwrap();
    assert_eq!(r.read().unwrap(), after, "crashed TCP minority must not block the fast read");
    cluster.shutdown();
}

/// A live joint-quorum reconfiguration over TCP, fully audited: two fresh
/// servers join and two originals retire mid-traffic (audit sample 1.0).
/// The handover must commit exactly once with zero failed operations and
/// zero linearizability violations, pre-handover clients keep serving
/// across the epoch change, and the removed servers' sockets are fully
/// torn down — their registry entries vanish and their old addresses
/// refuse connections.
#[test]
fn audited_reconfigure_over_tcp_swaps_servers_mid_traffic() {
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    let mut cluster = Deployment::new(config)
        .protocol(Protocol::W2R1)
        .backend(Backend::Tcp)
        .timeout(Duration::from_millis(400))
        .retry(RetryPolicy { attempts: 10, backoff: Duration::from_millis(10) })
        .audit(AuditConfig { sample_rate: 1.0, window: 64, ..AuditConfig::default() })
        .inject(FaultPlan::reconfigure(2, 2, 150))
        .tcp()
        .unwrap();

    // The plan removes the two lowest members (0 and 1): capture their
    // bound addresses before the drive so the teardown is checkable.
    let removed_addrs: Vec<_> = [0u32, 1]
        .iter()
        .map(|&s| {
            cluster
                .cluster()
                .factory()
                .lookup(ProcessId::server(s))
                .expect("original server is registered")
        })
        .collect();

    let report = cluster.run_chaos(Duration::from_secs(4)).unwrap();
    assert_eq!(report.reconfigs, 1, "exactly one committed handover: {report:?}");
    assert_eq!(report.reconfig_failures, 0, "{report:?}");
    assert_eq!(report.failed_ops, 0, "zero failed client operations: {report:?}");
    assert!(report.healed(), "{report:?}");
    assert_eq!(
        report.live_servers,
        vec![2, 3, 4, 5, 6],
        "originals 0 and 1 retired, joiners 5 and 6 serving: {report:?}"
    );
    assert!(report.throughput.ops() > 0);

    // Socket teardown: the registry forgot the removed servers...
    for s in [0u32, 1] {
        assert!(
            cluster.cluster().factory().lookup(ProcessId::server(s)).is_none(),
            "removed server {s} still registered after the handover"
        );
    }
    // ...and their listeners are gone — the old addresses refuse.
    for addr in removed_addrs {
        assert!(
            std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err(),
            "removed server's listener at {addr} still accepts connections"
        );
    }

    // The post-handover configuration serves quorums on its own, and the
    // whole drive — including the joint window — was atomic.
    let runtime = cluster.cluster();
    let retry = RetryPolicy { attempts: 10, backoff: Duration::from_millis(10) };
    let mut w = runtime
        .writer(0)
        .unwrap()
        .with_timeout(Duration::from_millis(400))
        .with_retry(retry);
    let mut r = runtime
        .reader(0)
        .unwrap()
        .with_timeout(Duration::from_millis(400))
        .with_retry(retry);
    let written = w.write(Value::new(4242)).unwrap();
    assert!(r.read().unwrap() >= written, "the new server set forms a serving quorum");
    drop((w, r));

    let (_handled, audit) = cluster.shutdown_audited();
    let audit = audit.expect("deployment was armed with an auditor");
    assert!(
        audit.verdict.is_ok(),
        "reconfiguration traffic must stay atomic: {audit}; {:?}",
        audit.verdict
    );
    assert!(audit.stats.audited > 0, "the drive's clients were tapped: {audit}");
}
