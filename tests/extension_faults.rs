//! Failure injection across the extension layers: crashes, held links and
//! mid-operation faults against the tunable, Byzantine and adaptive
//! clients. The paper's model allows `t` server crashes at *any* moment;
//! these tests make sure the extensions inherit that discipline.

use mwr::almost::TunableSpec;
use mwr::byz::{ByzBehavior, ByzConfig, ByzReadMode};
use mwr::check::{check_atomicity, History};
use mwr::core::{ClientEvent, Protocol, ScheduledOp, SimCluster};
use mwr::sim::{DelayModel, SimTime};
use mwr::types::{ClusterConfig, ProcessId, Value};

mod common;
use common::{byz_cluster, sim_cluster, tunable_cluster};

fn schedule(rounds: u64, readers: u64) -> Vec<(SimTime, ScheduledOp)> {
    let mut ops = Vec::new();
    for i in 0..rounds {
        ops.push((
            SimTime::from_ticks(i * 11),
            ScheduledOp::Write { writer: (i % 2) as u32, value: Value::new(i + 1) },
        ));
        ops.push((
            SimTime::from_ticks(i * 11 + 5),
            ScheduledOp::Read { reader: (i % readers) as u32 },
        ));
    }
    ops
}

fn completed(events: &[(SimTime, ClientEvent)]) -> usize {
    events.iter().filter(|(_, e)| matches!(e, ClientEvent::Completed { .. })).count()
}

#[test]
fn adaptive_reads_survive_a_crash_at_every_instant() {
    // Crash server 0 at each of a sweep of instants, including mid-round;
    // every operation still completes and every history is atomic.
    let config = ClusterConfig::new(5, 1, 3, 2).unwrap();
    let cluster = sim_cluster(config, Protocol::W2Ra);
    let ops = schedule(5, 3);
    for crash_at in (0..60).step_by(7) {
        let mut sim = cluster.build_sim(crash_at + 1);
        sim.schedule_crash(SimTime::from_ticks(crash_at), ProcessId::server(0));
        for (at, op) in &ops {
            cluster.schedule(&mut sim, *at, *op).unwrap();
        }
        sim.run_until_quiescent().unwrap();
        let events = sim.drain_notifications();
        assert_eq!(completed(&events), 10, "crash at {crash_at}: wait-freedom");
        let history = History::from_events(&events).unwrap();
        assert!(check_atomicity(&history).is_ok(), "crash at {crash_at}");
    }
}

#[test]
fn adaptive_reads_survive_held_links_per_server() {
    // Make each server unreachable from one reader for the whole run (the
    // paper's "skip"): operations still complete (quorums route around it)
    // and histories stay atomic.
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    let cluster = sim_cluster(config, Protocol::W2Ra);
    let ops = schedule(5, 2);
    for skipped in 0..5u32 {
        let mut sim = cluster.build_sim(skipped as u64 + 11);
        sim.network_mut().hold_between(ProcessId::reader(0), ProcessId::server(skipped));
        for (at, op) in &ops {
            cluster.schedule(&mut sim, *at, *op).unwrap();
        }
        sim.run_until_quiescent().unwrap();
        let events = sim.drain_notifications();
        assert_eq!(completed(&events), 10, "server {skipped} skipped");
        let history = History::from_events(&events).unwrap();
        assert!(check_atomicity(&history).is_ok(), "server {skipped} skipped");
    }
}

#[test]
fn byzantine_plus_jitter_plus_heavy_interleaving_stays_atomic() {
    // The full gauntlet for the masking clients: adversarial server,
    // jittered links, dense interleavings, both read modes.
    let config = ByzConfig::new(9, 2, 2, 2).unwrap();
    let ops = schedule(6, 2);
    for behavior in ByzBehavior::ADVERSARIAL {
        for mode in [ByzReadMode::Slow, ByzReadMode::Fast] {
            for seed in 1..=5 {
                let cluster = byz_cluster(config, mode, behavior);
                let mut sim = cluster.build_sim(seed);
                sim.network_mut().set_default_delay(DelayModel::Uniform {
                    lo: SimTime::from_ticks(1),
                    hi: SimTime::from_ticks(30),
                });
                for (at, op) in &ops {
                    cluster.schedule(&mut sim, *at, *op).unwrap();
                }
                sim.run_until_quiescent().unwrap();
                let events = sim.drain_notifications();
                assert_eq!(completed(&events), 12, "{behavior}/{mode:?} seed {seed}");
                let history = History::from_events(&events).unwrap();
                assert!(
                    check_atomicity(&history).is_ok(),
                    "{behavior}/{mode:?} seed {seed}"
                );
            }
        }
    }
}

#[test]
fn tunable_register_remains_live_when_a_crash_spares_the_quorum() {
    // MAJ levels need 3 of 5 acks: one crash leaves 4 live servers, so the
    // closed schedule completes even with the crash landing mid-write.
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    let cluster = tunable_cluster(config, TunableSpec::quorum_lww());
    for crash_at in [0u64, 3, 12, 30] {
        let mut sim = cluster.build_sim(crash_at + 5);
        sim.schedule_crash(SimTime::from_ticks(crash_at), ProcessId::server(2));
        for (at, op) in schedule(4, 2) {
            cluster.schedule(&mut sim, at, op).unwrap();
        }
        sim.run_until_quiescent().unwrap();
        let events = sim.drain_notifications();
        assert_eq!(completed(&events), 8, "crash at {crash_at}");
    }
}

#[test]
fn byzantine_fast_reads_tolerate_an_additional_skip() {
    // b = 2 budget spent as: one lying server + one reader-side held link.
    // The quorum q = S − b = 7 of 9 still assembles and vouching still
    // clears the forgeries.
    let config = ByzConfig::new(9, 2, 2, 2).unwrap();
    let cluster =
        byz_cluster(config, ByzReadMode::Fast, ByzBehavior::TagInflater { boost: 12_345 });
    let mut sim = cluster.build_sim(3);
    sim.network_mut().hold_between(ProcessId::reader(0), ProcessId::server(8));
    for (at, op) in schedule(4, 2) {
        cluster.schedule(&mut sim, at, op).unwrap();
    }
    sim.run_until_quiescent().unwrap();
    let events = sim.drain_notifications();
    assert_eq!(completed(&events), 8);
    let history = History::from_events(&events).unwrap();
    assert!(check_atomicity(&history).is_ok());
    for op in history.reads() {
        assert!(op.tagged_value().value().get() <= 4, "no forgery returned");
    }
}

#[test]
fn second_round_markers_are_consistent_with_protocol_structure() {
    // Structural audit across protocols: slow ops emit exactly one
    // SecondRound, fast ops none, adaptive reads at most one.
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    for protocol in [Protocol::W2R2, Protocol::W2R1, Protocol::W2Ra, Protocol::NaiveW1R1] {
        let cluster = sim_cluster(config, protocol);
        let mut sim = cluster.build_sim(9);
        sim.network_mut().set_default_delay(DelayModel::Uniform {
            lo: SimTime::from_ticks(1),
            hi: SimTime::from_ticks(10),
        });
        for (at, op) in schedule(4, 2) {
            cluster.schedule(&mut sim, at, op).unwrap();
        }
        sim.run_until_quiescent().unwrap();
        let events = sim.drain_notifications();
        let mut seconds: std::collections::BTreeMap<mwr::core::OpId, usize> = Default::default();
        for (_, e) in &events {
            if let ClientEvent::SecondRound { op } = e {
                *seconds.entry(*op).or_default() += 1;
            }
        }
        for (_, e) in &events {
            if let ClientEvent::Completed { op, kind, .. } = e {
                let n = seconds.get(op).copied().unwrap_or(0);
                let is_read = matches!(kind, mwr::core::OpKind::Read);
                let expected_max = match (protocol.read_mode(), is_read) {
                    (_, false) => {
                        if protocol.write_round_trips() == 2 { (1, 1) } else { (0, 0) }
                    }
                    (mwr::core::ReadMode::Slow, true) => (1, 1),
                    (mwr::core::ReadMode::Fast, true) => (0, 0),
                    (mwr::core::ReadMode::Adaptive, true) => (0, 1),
                };
                assert!(
                    n >= expected_max.0 && n <= expected_max.1,
                    "{protocol}: {op} emitted {n} second-round markers"
                );
            }
        }
    }
}
