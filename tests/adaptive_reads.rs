//! Integration tests for the adaptive read mode (`Protocol::W2Ra`): the
//! semifast idea of the paper's §6, rebuilt so the slow fallback removes
//! the `R < S/t − 2` constraint of Algorithm 1.

use mwr::check::{check_atomicity, History};
use mwr::core::{ClientEvent, OpKind, Protocol, ScheduledOp, SimCluster};
use mwr::register::{AnySimCluster, Backend, Deployment};
use mwr::sim::{DelayModel, SimTime};
use mwr::types::{ClusterConfig, ProcessId, Value};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

mod common;
use common::{sim_cluster};

fn random_schedule(config: &ClusterConfig, ops_per_client: usize, seed: u64) -> Vec<(SimTime, ScheduledOp)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut ops = Vec::new();
    let mut value = 0u64;
    for w in 0..config.writers() as u32 {
        for _ in 0..ops_per_client {
            value += 1;
            ops.push((
                SimTime::from_ticks(rng.gen_range(0..500)),
                ScheduledOp::Write { writer: w, value: Value::new(value) },
            ));
        }
    }
    for r in 0..config.readers() as u32 {
        for _ in 0..ops_per_client {
            ops.push((
                SimTime::from_ticks(rng.gen_range(0..500)),
                ScheduledOp::Read { reader: r },
            ));
        }
    }
    ops
}

/// Runs one schedule under jittered delays and returns (history, fast
/// reads, slow reads).
fn run(
    cluster: &AnySimCluster,
    seed: u64,
    schedule: &[(SimTime, ScheduledOp)],
    crash: Option<u32>,
) -> (History, usize, usize) {
    let mut sim = cluster.build_sim(seed);
    sim.network_mut().set_default_delay(DelayModel::Uniform {
        lo: SimTime::from_ticks(1),
        hi: SimTime::from_ticks(20),
    });
    if let Some(s) = crash {
        sim.schedule_crash(SimTime::from_ticks(50), ProcessId::server(s));
    }
    for (at, op) in schedule {
        cluster.schedule(&mut sim, *at, *op).unwrap();
    }
    sim.run_until_quiescent().unwrap();
    let events = sim.drain_notifications();

    // Count read round-trips via the SecondRound markers.
    let mut read_ops = std::collections::BTreeSet::new();
    let mut slow_read_ops = std::collections::BTreeSet::new();
    for (_, e) in &events {
        match e {
            ClientEvent::Invoked { op, kind: OpKind::Read } => {
                read_ops.insert(*op);
            }
            ClientEvent::SecondRound { op } if read_ops.contains(op) => {
                slow_read_ops.insert(*op);
            }
            _ => {}
        }
    }
    let history = History::from_events(&events).unwrap();
    let slow = slow_read_ops.len();
    (history, read_ops.len() - slow, slow)
}

#[test]
fn adaptive_reads_stay_atomic_beyond_the_feasibility_boundary() {
    // The headline property: W2R1 requires R < S/t − 2; W2Ra does not.
    // Sweep configurations on both sides of the boundary under adversarial
    // jitter and crashes.
    for (s, t, r) in [(5, 1, 2), (5, 1, 3), (5, 1, 4), (3, 1, 2), (7, 2, 2), (9, 2, 4)] {
        let config = ClusterConfig::new(s, t, r, 2).unwrap();
        let cluster = sim_cluster(config, Protocol::W2Ra);
        for seed in 1..=8 {
            let schedule = random_schedule(&config, 3, seed * 13 + 1);
            let crash = (seed % 2 == 0).then_some(0);
            let (history, _, _) = run(&cluster, seed, &schedule, crash);
            assert!(
                check_atomicity(&history).is_ok(),
                "S={s} t={t} R={r} seed {seed}: adaptive read violated atomicity"
            );
        }
    }
}

#[test]
fn uncontended_adaptive_reads_are_all_fast() {
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    let cluster = sim_cluster(config, Protocol::W2Ra);
    // Strictly sequential: every read sees a settled maximum.
    let mut schedule = Vec::new();
    for i in 0..6u64 {
        schedule.push((
            SimTime::from_ticks(i * 100),
            ScheduledOp::Write { writer: (i % 2) as u32, value: Value::new(i + 1) },
        ));
        schedule.push((SimTime::from_ticks(i * 100 + 50), ScheduledOp::Read {
            reader: (i % 2) as u32,
        }));
    }
    let mut sim = cluster.build_sim(3);
    for (at, op) in &schedule {
        cluster.schedule(&mut sim, *at, *op).unwrap();
    }
    sim.run_until_quiescent().unwrap();
    let events = sim.drain_notifications();
    let slow_reads = events
        .iter()
        .filter(|(_, e)| matches!(e, ClientEvent::SecondRound { op } if op.client.as_reader().is_some()))
        .count();
    assert_eq!(slow_reads, 0, "sequential reads never need the fallback");
}

#[test]
fn adaptive_matches_w2r1_in_feasible_configs() {
    // Where Algorithm 1 is feasible, the adaptive cap equals R + 1 and the
    // fast path accepts the same values: results agree op-for-op on
    // identical schedules and seeds.
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    assert!(config.fast_read_feasible());
    for seed in 1..=10 {
        let schedule = random_schedule(&config, 3, seed);
        let (h_fast, _, _) = run(&sim_cluster(config, Protocol::W2R1), seed, &schedule, None);
        let (h_adaptive, _, slow) = run(&sim_cluster(config, Protocol::W2Ra), seed, &schedule, None);
        assert!(check_atomicity(&h_fast).is_ok());
        assert!(check_atomicity(&h_adaptive).is_ok());
        // Both are atomic; when no fallback fired the adaptive run is
        // message-for-message the W2R1 run.
        if slow == 0 {
            let reads_fast: Vec<_> =
                h_fast.reads().map(|o| (o.id, o.tagged_value())).collect();
            let reads_adaptive: Vec<_> =
                h_adaptive.reads().map(|o| (o.id, o.tagged_value())).collect();
            assert_eq!(reads_fast, reads_adaptive, "seed {seed}");
        }
    }
}

#[test]
fn contention_triggers_the_slow_fallback_but_never_unsafety() {
    // Infeasible config (R ≥ S/t − 2): Algorithm 1 would be unsound here;
    // the adaptive mode pays second round-trips instead.
    let config = ClusterConfig::new(5, 1, 4, 2).unwrap();
    assert!(!config.fast_read_feasible());
    let cluster = sim_cluster(config, Protocol::W2Ra);
    let mut total_fast = 0;
    let mut total_slow = 0;
    for seed in 1..=10 {
        let schedule = random_schedule(&config, 3, seed * 7 + 3);
        let (history, fast, slow) = run(&cluster, seed, &schedule, None);
        assert!(check_atomicity(&history).is_ok(), "seed {seed}");
        total_fast += fast;
        total_slow += slow;
    }
    assert!(total_slow > 0, "the stricter cap must trigger fallbacks under contention");
    assert!(total_fast > 0, "settled reads still take the fast path");
}

#[test]
fn live_runtime_supports_adaptive_reads() {
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    let cluster = Deployment::new(config)
        .protocol(Protocol::W2Ra)
        .backend(Backend::InMemory)
        .in_memory()
        .unwrap();
    let mut writer = cluster.writer(0).unwrap();
    let mut reader = cluster.reader(0).unwrap();
    let written = writer.write(Value::new(77)).unwrap();
    let read = reader.read().unwrap();
    assert_eq!(read, written);
    cluster.shutdown();
}
