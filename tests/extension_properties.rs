//! Property-based tests for the extension crates (`mwr-almost`,
//! `mwr-byz`) and the adaptive read mode: metric invariants, vouching
//! invariants, and cross-layer agreement, on randomized inputs.

use std::collections::BTreeSet;

use proptest::prelude::*;

use mwr::almost::{StalenessReport, TunableSpec};
use mwr::byz::{safe_max_tag, vouched_snapshots, vouched_values};
use mwr::check::{check_atomicity, History};
use mwr::core::{Protocol, ScheduledOp, SimCluster, Snapshot, ValueRecord};
use mwr::sim::{DelayModel, SimTime};
use mwr::types::{ClientId, ClusterConfig, Tag, TaggedValue, Value, WriterId};

mod common;
use common::{sim_cluster, tunable_cluster};

// --- generators --------------------------------------------------------------

fn arb_tag() -> impl Strategy<Value = Tag> {
    (0u64..6, 0u32..4).prop_map(|(ts, w)| {
        if ts == 0 {
            Tag::initial()
        } else {
            Tag::new(ts, WriterId::new(w))
        }
    })
}

fn arb_tagged_value() -> impl Strategy<Value = TaggedValue> {
    (arb_tag(), 0u64..50).prop_map(|(t, v)| TaggedValue::new(t, Value::new(v)))
}

fn arb_snapshot() -> impl Strategy<Value = Snapshot> {
    proptest::collection::vec((arb_tagged_value(), 0usize..3), 0..5).prop_map(|entries| {
        let mut seen = BTreeSet::new();
        Snapshot {
            entries: entries
                .into_iter()
                .filter(|(v, _)| seen.insert(*v))
                .map(|(value, n)| ValueRecord {
                    value,
                    updated: (0..n).map(|i| ClientId::reader(i as u32)).collect(),
                })
                .collect(),
        }
    })
}

fn arb_schedule(ops: usize) -> impl Strategy<Value = Vec<(SimTime, ScheduledOp)>> {
    proptest::collection::vec((0u64..400, any::<bool>(), 0u32..2), ops).prop_map(|raw| {
        let mut value = 0;
        raw.into_iter()
            .map(|(at, is_write, client)| {
                let op = if is_write {
                    value += 1;
                    ScheduledOp::Write { writer: client, value: Value::new(value) }
                } else {
                    ScheduledOp::Read { reader: client }
                };
                (SimTime::from_ticks(at), op)
            })
            .collect()
    })
}

// --- vouching invariants ------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Vouched sets shrink (weakly) as the threshold rises, and threshold 1
    /// admits every reported value.
    #[test]
    fn vouching_is_antitone_in_the_threshold(
        snaps in proptest::collection::vec(arb_snapshot(), 1..6)
    ) {
        let all: BTreeSet<TaggedValue> =
            snaps.iter().flat_map(|s| s.entries.iter().map(|e| e.value)).collect();
        let t1: BTreeSet<TaggedValue> = vouched_values(&snaps, 1).into_iter().collect();
        prop_assert_eq!(t1, all);
        let mut previous = usize::MAX;
        for threshold in 1..=snaps.len() + 1 {
            let vouched = vouched_values(&snaps, threshold);
            prop_assert!(vouched.len() <= previous);
            previous = vouched.len();
            // Every vouched value really does appear in ≥ threshold snapshots.
            for v in vouched {
                let count = snaps.iter().filter(|s| s.contains(v)).count();
                prop_assert!(count >= threshold);
            }
        }
    }

    /// Filtering snapshots to vouched values never invents entries and
    /// keeps the witness sets of surviving entries intact.
    #[test]
    fn vouched_snapshots_are_projections(
        snaps in proptest::collection::vec(arb_snapshot(), 1..6),
        threshold in 1usize..4,
    ) {
        let filtered = vouched_snapshots(&snaps, threshold);
        prop_assert_eq!(filtered.len(), snaps.len());
        for (orig, filt) in snaps.iter().zip(&filtered) {
            for entry in &filt.entries {
                prop_assert_eq!(
                    orig.updated_for(entry.value),
                    Some(entry.updated.as_slice()),
                    "witness sets preserved"
                );
            }
            prop_assert!(filt.entries.len() <= orig.entries.len());
        }
    }

    /// The safe maximum never exceeds the true maximum and never falls
    /// below any tag reported by more than `byz` servers.
    #[test]
    fn safe_max_is_bounded(
        tags in proptest::collection::vec(arb_tag(), 1..8),
        byz in 0usize..3,
    ) {
        let safe = safe_max_tag(&tags, byz);
        if tags.len() > byz {
            let max = *tags.iter().max().unwrap();
            prop_assert!(safe <= max);
            // Any tag with more than `byz` reports survives the discard.
            for t in &tags {
                let copies = tags.iter().filter(|x| *x == t).count();
                if copies > byz {
                    prop_assert!(safe >= *t);
                }
            }
        } else {
            prop_assert!(safe.is_initial());
        }
    }
}

// --- staleness metric invariants ----------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// On arbitrary tunable-register runs: the histogram partitions the
    /// reads, the report is deterministic, and `is_fresh`/`anomaly_free`
    /// agree with their defining quantities.
    #[test]
    fn staleness_report_internal_consistency(
        schedule in arb_schedule(10),
        seed in 1u64..500,
    ) {
        let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
        let cluster = tunable_cluster(config, TunableSpec::fastest());
        let mut sim = cluster.build_sim(seed);
        sim.network_mut().set_default_delay(DelayModel::Uniform {
            lo: SimTime::from_ticks(1),
            hi: SimTime::from_ticks(15),
        });
        for (at, op) in &schedule {
            cluster.schedule(&mut sim, *at, *op).unwrap();
        }
        sim.run_until_quiescent().unwrap();
        let history = History::from_events(&sim.drain_notifications()).unwrap();
        let report = StalenessReport::analyze(&history);

        let histogram_total: usize = report.histogram().values().sum();
        prop_assert_eq!(histogram_total, report.reads());
        prop_assert_eq!(report.per_read().len(), report.reads());
        prop_assert_eq!(
            report.is_fresh(),
            report.max_staleness() == 0 && report.inversions() == 0
        );
        prop_assert_eq!(
            report.anomaly_free(),
            report.is_fresh() && report.write_order_violations() == 0
        );
        prop_assert_eq!(report.k_atomicity_lower_bound(), report.max_staleness() + 1);
        prop_assert_eq!(&StalenessReport::analyze(&history), &report, "deterministic");
    }

    /// The paper's protocols under arbitrary schedules: atomic verdicts and
    /// clean anomaly reports, in every mode including adaptive.
    #[test]
    fn paper_protocols_are_atomic_and_anomaly_free_on_random_schedules(
        schedule in arb_schedule(8),
        seed in 1u64..200,
        protocol in prop_oneof![
            Just(Protocol::W2R2),
            Just(Protocol::W2R1),
            Just(Protocol::W2Ra),
        ],
    ) {
        let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
        let cluster = sim_cluster(config, protocol);
        let mut sim = cluster.build_sim(seed);
        sim.network_mut().set_default_delay(DelayModel::Uniform {
            lo: SimTime::from_ticks(1),
            hi: SimTime::from_ticks(15),
        });
        for (at, op) in &schedule {
            cluster.schedule(&mut sim, *at, *op).unwrap();
        }
        sim.run_until_quiescent().unwrap();
        let history = History::from_events(&sim.drain_notifications()).unwrap();
        prop_assert!(check_atomicity(&history).is_ok(), "{}", protocol);
        let report = StalenessReport::analyze(&history);
        prop_assert!(report.anomaly_free(), "{}: {report}", protocol);
    }
}

// --- W1Rk reduction sanity over randomized parameters --------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Expansion is an isomorphism on round-1 structure and inserts
    /// contiguous blocks: collapsing the expansion recovers the original.
    #[test]
    fn read_expansion_round_trips(
        servers in 3usize..6,
        i1 in 1usize..4,
        k in 0usize..4,
        rounds in 2u8..6,
    ) {
        let i1 = i1.min(servers);
        let k = k.min(servers);
        let base = mwr::chains::beta(servers, i1, mwr::chains::Stem::Prev, k);
        let expanded = mwr::chains::expand_reads(&base, rounds);
        // Collapse: drop rounds 3..=k and compare logs.
        let mut collapsed = mwr::chains::Execution::new(servers, "collapsed");
        for s in 0..servers {
            for &a in expanded.log(s) {
                match a {
                    mwr::chains::Arrival::Read(_, r) if r > 2 => {}
                    other => collapsed.append_at(s, other),
                }
            }
        }
        prop_assert!(collapsed.same_logs(&base));
    }
}
