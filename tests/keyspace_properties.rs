//! Integration: the keyspace's routing and wire-format invariants hold on
//! adversarial inputs.
//!
//! Three families of properties keep the sharded keyspace sound:
//!
//! - **Routing determinism** — a [`Router`] is a pure function of the
//!   keyspace shape. Two independently constructed routers (different
//!   processes, restarts, rejoining servers) must agree on every key's
//!   shard and group, or clients and recovering servers would talk past
//!   each other.
//! - **Shard balance** — rendezvous hashing must spread keys across
//!   shards without pathological hot spots, or "sharding" buys nothing.
//! - **Wire round-trip** — the [`Msg::ForRegister`] frame header must
//!   round-trip for every register id, and legacy single-register frames
//!   (discriminants 0–13) must decode unchanged, so a v1 peer still
//!   interoperates with a keyspace server.

use bytes::BytesMut;
use mwr::core::{Msg, OpHandle, OpId, Router, Snapshot, ValueRecord};
use mwr::types::codec::Wire;
use mwr::types::{ClientId, RegisterId, ServerId, Tag, TaggedValue, Value, WriterId};

use proptest::prelude::*;

/// A valid keyspace shape: `servers ≥ 3`, `1 ≤ group ≤ servers`, and a
/// shard count that keeps group enumeration cheap. The group size is
/// derived from a free draw so it always lands in range for the drawn
/// server count.
fn shape_strategy() -> impl Strategy<Value = (usize, usize, usize)> {
    (3usize..=16, any::<u32>(), 1usize..=64)
        .prop_map(|(servers, group_draw, shards)| {
            let group = 1 + group_draw as usize % servers;
            (servers, group, shards)
        })
}

fn tv(ts: u64, w: u32, v: u64) -> TaggedValue {
    TaggedValue::new(Tag::new(ts, WriterId::new(w)), Value::new(v))
}

fn handle(seq: u64, phase: u8) -> OpHandle {
    OpHandle { op: OpId { client: ClientId::writer(0), seq }, phase }
}

/// A sample of inner protocol messages a [`Msg::ForRegister`] frame can
/// carry, parameterized enough to exercise variable-length payloads.
fn inner_strategy() -> impl Strategy<Value = Msg> {
    (0usize..6, any::<u64>(), 0u64..1_000, 0u32..8, any::<u64>()).prop_map(
        |(variant, seq, ts, w, v)| {
            let phase = (seq % 3) as u8 + 1;
            match variant {
                0 => Msg::Query { handle: handle(seq, phase) },
                1 => Msg::Update {
                    handle: handle(seq, phase),
                    value: tv(ts, w, v),
                    floor: tv(ts / 2, w, v / 2),
                },
                2 => Msg::QueryAck { handle: handle(seq, phase), latest: tv(ts, w, v) },
                3 => Msg::UpdateAck { handle: handle(seq, phase) },
                4 => Msg::ReadFastDelta {
                    handle: handle(seq, phase),
                    acked: ts,
                    floor: tv(ts, w, v),
                    new_values: vec![tv(ts + 1, w, v), tv(ts + 2, w, v)],
                },
                _ => Msg::ReadFastAck {
                    handle: handle(seq, phase),
                    snapshot: Snapshot {
                        entries: vec![ValueRecord {
                            value: tv(ts, w, v),
                            updated: vec![ClientId::reader(0), ClientId::writer(1)],
                        }],
                    },
                },
            }
        },
    )
}

/// Encodes `msg` and decodes it back, asserting the `encoded_len`
/// contract along the way.
fn round_trip(msg: &Msg) -> Msg {
    let mut buf = BytesMut::new();
    msg.encode(&mut buf);
    assert_eq!(buf.len(), msg.encoded_len(), "encoded_len must match bytes written");
    let mut bytes: &[u8] = &buf;
    let decoded = Msg::decode(&mut bytes).expect("decode what we encoded");
    assert!(bytes.is_empty(), "decode must consume the whole frame");
    decoded
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same keyspace shape → same routing, from independently constructed
    /// routers: what a client process and a rejoining server each compute
    /// locally must agree.
    #[test]
    fn routing_is_deterministic_across_router_instances(
        shape in shape_strategy(),
        raw_keys in proptest::collection::vec(any::<u32>(), 1..32),
    ) {
        let (servers, group, shards) = shape;
        let a = Router::new(servers as u32, group as u32, shards as u32);
        let b = Router::new(servers as u32, group as u32, shards as u32);
        for &raw in &raw_keys {
            let key = RegisterId::new(raw);
            prop_assert_eq!(a.shard_of(key), b.shard_of(key));
            prop_assert_eq!(a.group_of(key), b.group_of(key));
            // The group is exactly `group` distinct in-range servers.
            let members = a.group_of(key);
            prop_assert_eq!(members.len(), group);
            let mut seen = std::collections::BTreeSet::new();
            for s in &members {
                prop_assert!((s.index() as usize) < servers, "member in range");
                prop_assert!(seen.insert(*s), "members distinct");
            }
        }
    }

    /// Group membership and the server-side shard inventory are two views
    /// of the same assignment: `s ∈ group(shard)` iff `shard ∈ shards_on(s)`.
    #[test]
    fn group_membership_matches_the_shard_inventory(shape in shape_strategy()) {
        let (servers, group, shards) = shape;
        let router = Router::new(servers as u32, group as u32, shards as u32);
        for s in 0..servers as u32 {
            let server = ServerId::new(s);
            let inventory: std::collections::BTreeSet<u32> =
                router.shards_on(server).into_iter().collect();
            for shard in 0..shards as u32 {
                let member = router.group(shard).contains(&server);
                prop_assert_eq!(
                    member,
                    inventory.contains(&shard),
                    "server {} shard {}: group says {}, inventory says {}",
                    s, shard, member, inventory.contains(&shard),
                );
            }
        }
    }

    /// Sequential register ids (the workload's key pattern) spread across
    /// shards without a pathological hot spot: no shard sees more than 4x
    /// its fair share of 2048 keys, and no shard starves below a quarter.
    #[test]
    fn shard_load_stays_balanced_under_sequential_keys(
        shards in 2usize..=32,
    ) {
        const KEYS: usize = 2048;
        let router = Router::new(11, 5, shards as u32);
        let mut load = vec![0usize; shards];
        for k in 0..KEYS as u32 {
            load[router.shard_of(RegisterId::new(k)) as usize] += 1;
        }
        let fair = KEYS as f64 / shards as f64;
        let max = *load.iter().max().expect("non-empty") as f64;
        let min = *load.iter().min().expect("non-empty") as f64;
        prop_assert!(
            max <= 4.0 * fair,
            "hottest shard holds {max} of {KEYS} keys (fair share {fair:.0}): {load:?}"
        );
        prop_assert!(
            min >= fair / 4.0,
            "coldest shard holds {min} of {KEYS} keys (fair share {fair:.0}): {load:?}"
        );
    }

    /// The wire-version-2 frame header round-trips for any register id and
    /// any inner message shape.
    #[test]
    fn for_register_frames_round_trip(
        register in any::<u32>(),
        inner in inner_strategy(),
    ) {
        let framed = Msg::ForRegister {
            register: RegisterId::new(register),
            inner: Box::new(inner.clone()),
        };
        prop_assert_eq!(round_trip(&framed), framed);
        // The header costs exactly the discriminant byte plus the compact
        // register id.
        let overhead = framed.encoded_len() - inner.encoded_len();
        prop_assert_eq!(overhead, 5, "frame header is discriminant + u32 register id");
    }

    /// Legacy single-register frames (discriminants 0–13) decode unchanged
    /// next to the new keyspace discriminants: upgrading the wire version
    /// never re-interprets an old frame.
    #[test]
    fn legacy_frames_decode_unchanged(inner in inner_strategy()) {
        prop_assert_eq!(round_trip(&inner), inner);
    }
}
