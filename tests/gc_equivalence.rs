//! Integration: the bounded-state fast path (delta snapshots +
//! acknowledged-floor GC) is equivalent to the paper's full-info model.
//!
//! Two tiers of equivalence are asserted over randomized schedules:
//!
//! 1. **Byte-for-byte** (delta wire, GC off): the reader reconstructs each
//!    server's logical snapshot exactly, so every operation returns the
//!    identical tagged value at the identical simulated time — the whole
//!    event stream matches the full-info run.
//! 2. **Verdict-identity** (delta wire, GC on): pruning drops only values
//!    below every client's completed-operation floor, so histories remain
//!    atomicity-equivalent to full-info runs even though server stores are
//!    bounded.

use mwr::check::{check_atomicity, History};
use mwr::core::{Cluster, FastWire, Protocol, ScheduledOp, SimCluster};
use mwr::sim::SimTime;
use mwr::types::{ClusterConfig, Value};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A random well-formed schedule: `ops` operations at random instants
/// spread over writers and readers, with unique write values so reads-from
/// stays observable.
fn random_schedule(seed: u64, writers: u32, readers: u32, ops: usize) -> Vec<(SimTime, ScheduledOp)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut next_value = 0u64;
    (0..ops)
        .map(|_| {
            let at = SimTime::from_ticks(rng.gen_range(0u64..800));
            let client = rng.gen_range(0u32..(writers + readers));
            let op = if client < writers {
                next_value += 1;
                ScheduledOp::Write { writer: client, value: Value::new(next_value) }
            } else {
                ScheduledOp::Read { reader: client - writers }
            };
            (at, op)
        })
        .collect()
}

/// With GC off, the delta wire is a pure compression of the full-info
/// protocol: identical event streams (same returned values, same virtual
/// times) on every seed, for both the fast and the adaptive reader.
#[test]
fn delta_wire_reproduces_full_info_byte_for_byte() {
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    for protocol in [Protocol::W2R1, Protocol::W2Ra] {
        for seed in 0..50u64 {
            let schedule = random_schedule(seed, 2, 2, 16);
            let full = Cluster::new(config, protocol)
                .with_fast_wire(FastWire::FullInfo)
                .with_gc(false)
                .run_schedule(seed, &schedule)
                .unwrap();
            let delta = Cluster::new(config, protocol)
                .with_fast_wire(FastWire::Delta)
                .with_gc(false)
                .run_schedule(seed, &schedule)
                .unwrap();
            assert_eq!(
                full, delta,
                "{protocol} seed {seed}: delta wire must not change behavior"
            );
        }
    }
}

/// With GC on, histories stay verdict-identical to full-info runs under
/// `check_atomicity` across ≥50 seeds (and, this being W2R1 in a feasible
/// configuration, that shared verdict is "atomic").
#[test]
fn gc_histories_are_verdict_identical_to_full_info() {
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    for seed in 0..50u64 {
        let schedule = random_schedule(seed.wrapping_mul(31).wrapping_add(7), 2, 2, 24);
        let full = Cluster::new(config, Protocol::W2R1)
            .with_fast_wire(FastWire::FullInfo)
            .with_gc(false)
            .run_schedule(seed, &schedule)
            .unwrap();
        let gc = Cluster::new(config, Protocol::W2R1)
            .with_fast_wire(FastWire::Delta)
            .with_gc(true)
            .run_schedule(seed, &schedule)
            .unwrap();
        let full_history = History::from_events(&full).unwrap();
        let gc_history = History::from_events(&gc).unwrap();
        let full_verdict = check_atomicity(&full_history).is_ok();
        let gc_verdict = check_atomicity(&gc_history).is_ok();
        assert_eq!(
            full_verdict, gc_verdict,
            "seed {seed}: GC changed the atomicity verdict\nfull:\n{full_history}\ngc:\n{gc_history}"
        );
        assert!(gc_verdict, "seed {seed}: W2R1 must stay atomic with GC on\n{gc_history}");
    }
}

/// Sequential read/write interleavings are the GC-friendliest schedules
/// (every client's floor advances constantly); even after hundreds of
/// operations the verdict and the returned values stay correct.
#[test]
fn long_sequential_run_with_gc_stays_atomic() {
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    let mut schedule = Vec::new();
    let mut value = 0u64;
    for i in 0..120u64 {
        let at = SimTime::from_ticks(i * 100);
        match i % 4 {
            0 => {
                value += 1;
                schedule.push((at, ScheduledOp::Write { writer: 0, value: Value::new(value) }));
            }
            1 => schedule.push((at, ScheduledOp::Read { reader: 0 })),
            2 => {
                value += 1;
                schedule.push((at, ScheduledOp::Write { writer: 1, value: Value::new(value) }));
            }
            _ => schedule.push((at, ScheduledOp::Read { reader: 1 })),
        }
    }
    let events = Cluster::new(config, Protocol::W2R1).run_schedule(5, &schedule).unwrap();
    let history = History::from_events(&events).unwrap();
    assert_eq!(history.len(), 120, "all operations complete");
    assert!(check_atomicity(&history).is_ok(), "long GC run stays atomic:\n{history}");
}
