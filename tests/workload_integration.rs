//! Integration: closed-loop workloads stay atomic for endorsed protocols,
//! and the latency ordering of Fig 2 holds under load.

use mwr::check::{check_atomicity, History};
use mwr::core::Protocol;
use mwr::sim::SimTime;
use mwr::types::ClusterConfig;
use mwr::workload::{run_closed_loop, WorkloadSpec};

mod common;
use common::{sim_cluster};

fn spec(seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        duration: SimTime::from_ticks(5_000),
        think_time: SimTime::from_ticks(9),
        seed,
    }
}

#[test]
fn endorsed_protocols_stay_atomic_under_sustained_load() {
    for (protocol, writers) in [
        (Protocol::W2R2, 2),
        (Protocol::W2R1, 2),
        (Protocol::AbdSwmrW1R2, 1),
        (Protocol::DuttaSwmrW1R1, 1),
    ] {
        let config = ClusterConfig::new(5, 1, 2, writers).unwrap();
        assert!(protocol.expected_atomic(&config));
        let cluster = sim_cluster(config, protocol);
        for seed in 0..5u64 {
            let report = run_closed_loop(&cluster, spec(seed)).unwrap();
            let history = History::from_events(&report.events).unwrap();
            assert!(history.len() > 50, "{protocol}: enough load");
            assert!(
                check_atomicity(&history).is_ok(),
                "{protocol} seed {seed} violated under load"
            );
        }
    }
}

#[test]
fn read_latency_orders_by_round_trips() {
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    let mut w2r2 = run_closed_loop(&sim_cluster(config, Protocol::W2R2), spec(11)).unwrap();
    let mut w2r1 = run_closed_loop(&sim_cluster(config, Protocol::W2R1), spec(11)).unwrap();
    let slow = w2r2.reads.summary();
    let fast = w2r1.reads.summary();
    assert!(
        fast.p50 < slow.p50,
        "one-round reads must beat two-round reads: {fast} vs {slow}"
    );
    // Writes are two-round in both protocols: no material difference.
    let sw = w2r2.writes.summary();
    let fw = w2r1.writes.summary();
    let ratio = fw.p50.ticks() as f64 / sw.p50.ticks().max(1) as f64;
    assert!((0.5..=2.0).contains(&ratio), "write latency should be similar: {sw} vs {fw}");
}

#[test]
fn throughput_scales_with_faster_reads() {
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    let slow = run_closed_loop(&sim_cluster(config, Protocol::W2R2), spec(4)).unwrap();
    let fast = run_closed_loop(&sim_cluster(config, Protocol::W2R1), spec(4)).unwrap();
    assert!(
        fast.throughput_per_kilotick() > slow.throughput_per_kilotick(),
        "closed-loop throughput rises when reads take one round-trip"
    );
}
