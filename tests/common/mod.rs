//! Shared facade helpers for the integration suites: every test that
//! needs a sim-side blueprint builds it through `Deployment` via these
//! one-liners, so the construction idiom lives in exactly one place.
//!
//! (Each integration test is its own crate, so any single suite uses only
//! a subset of these — hence the `dead_code` allowance.)

#![allow(dead_code)]

use mwr::almost::TunableSpec;
use mwr::byz::{ByzBehavior, ByzConfig, ByzReadMode};
use mwr::core::Protocol;
use mwr::register::{AnySimCluster, Deployment};
use mwr::types::ClusterConfig;

/// Facade-built sim blueprint for a core protocol.
pub fn sim_cluster(config: ClusterConfig, protocol: Protocol) -> AnySimCluster {
    Deployment::new(config).protocol(protocol).sim_cluster().unwrap()
}

/// Facade-built sim blueprint for a tunable-quorum spec.
pub fn tunable_cluster(config: ClusterConfig, spec: TunableSpec) -> AnySimCluster {
    Deployment::new(config).protocol(spec).sim_cluster().unwrap()
}

/// Facade-built sim blueprint for a Byzantine cluster (crash view t = b).
pub fn byz_cluster(
    config: ByzConfig,
    read_mode: ByzReadMode,
    behavior: ByzBehavior,
) -> AnySimCluster {
    Deployment::byz(config, read_mode, behavior).sim_cluster().unwrap()
}
