//! Integration: the mechanized impossibility results line up with the
//! feasibility conditions and with the implementations.

use mwr::chains::fastread::{fig9_outcome, Fig9Outcome};
use mwr::chains::sieve::sieve_chain;
use mwr::chains::{
    refute_strategy, verify_w1r2_impossibility, AlwaysOne, FirstServerRules, MajorityLastWrite,
    RefutationKind, W1R2Strategy,
};
use mwr::types::ClusterConfig;

/// Theorem 1 certificates verify for every small cluster size.
#[test]
fn w1r2_certificates_verify() {
    for servers in 3..=10 {
        let cert = verify_w1r2_impossibility(servers)
            .unwrap_or_else(|e| panic!("S={servers}: {e}"));
        assert_eq!(cert.cases.len(), 2 * servers);
        assert!(cert.total_links() >= 2 * servers * (5 * (servers - 1) + 3));
    }
}

/// Every example strategy is refuted, and the refutations are genuine
/// atomicity violations (never the non-determinism escape hatch).
#[test]
fn every_example_strategy_is_refuted() {
    let strategies: Vec<Box<dyn W1R2Strategy>> = vec![
        Box::new(MajorityLastWrite),
        Box::new(FirstServerRules),
        Box::new(AlwaysOne),
    ];
    for servers in 3..=6 {
        for strategy in &strategies {
            let refutation = refute_strategy(servers, strategy.as_ref());
            assert_ne!(
                refutation.kind,
                RefutationKind::NonDeterministic,
                "{} at S={servers}",
                strategy.name()
            );
        }
    }
}

/// The sieve composes with the chain argument whenever ≥ 3 servers
/// survive, and flags the degenerate case otherwise.
#[test]
fn sieve_composes_with_chains() {
    use std::collections::BTreeSet;
    for servers in 4..=8 {
        for affected in 0..servers {
            let sigma1: BTreeSet<usize> = (0..affected).collect();
            let report = sieve_chain(servers, &sigma1);
            assert_eq!(report.sigma2.len(), servers - affected);
            assert_eq!(report.viable, servers - affected >= 3);
            assert_eq!(report.surviving_certificate().is_ok(), report.viable);
        }
    }
}

/// The Fig 9 engine and the paper's feasibility condition never disagree:
/// a derived contradiction implies infeasibility (the engine is sound),
/// and the constructive band `S ≤ (R+1)t` always yields one.
#[test]
fn fig9_engine_is_sound_and_constructively_complete() {
    for s in 2..=10usize {
        for t in 1..s {
            for r in 1..=5usize {
                let Ok(config) = ClusterConfig::new(s, t, r, 1) else { continue };
                let outcome = fig9_outcome(s, t, r);
                if let Fig9Outcome::Impossible(_) = &outcome {
                    assert!(
                        !config.fast_read_feasible(),
                        "engine contradicted a feasible config S={s} t={t} R={r}"
                    );
                }
                if s <= (r + 1) * t {
                    assert!(
                        matches!(outcome, Fig9Outcome::Impossible(_)),
                        "constructive band must derive: S={s} t={t} R={r}: {outcome}"
                    );
                }
            }
        }
    }
}

/// The W2R1 implementation and the impossibility engine partition the
/// parameter space: wherever the engine derives a contradiction, the
/// implementation's feasibility predicate must already say "no".
#[test]
fn implementation_and_impossibility_partition_the_space() {
    for s in 3..=9usize {
        for t in 1..=2usize {
            if t >= s {
                continue;
            }
            for r in 1..=4usize {
                let Ok(config) = ClusterConfig::new(s, t, r, 2) else { continue };
                let feasible = config.fast_read_feasible();
                let derived = fig9_outcome(s, t, r).is_impossible();
                assert!(
                    !(feasible && derived),
                    "S={s} t={t} R={r}: both feasible and impossible"
                );
            }
        }
    }
}

trait OutcomeExt {
    fn is_impossible(&self) -> bool;
}

impl OutcomeExt for Fig9Outcome {
    fn is_impossible(&self) -> bool {
        matches!(self, Fig9Outcome::Impossible(_))
    }
}
