//! Integration tests for `mwr-byz`: masking-quorum protocols against
//! reply-corrupting adversaries, judged by the `mwr-check` checkers — the
//! executable form of the paper's §5 Byzantine remark.

use mwr::byz::{ByzBehavior, ByzConfig, ByzReadMode, ByzRegisterServer};
use mwr::check::{check_atomicity, History};
use mwr::core::{OpResult, Protocol, RegisterClient, RegisterServer, ScheduledOp, SimCluster};
use mwr::sim::{SimTime, Simulation};
use mwr::types::{ClusterConfig, ProcessId, Value};

mod common;
use common::{byz_cluster};

fn contended_schedule(rounds: u64, readers: u64) -> Vec<(SimTime, ScheduledOp)> {
    let mut ops = Vec::new();
    for i in 0..rounds {
        ops.push((
            SimTime::from_ticks(i * 9),
            ScheduledOp::Write { writer: (i % 2) as u32, value: Value::new(i + 1) },
        ));
        ops.push((
            SimTime::from_ticks(i * 9 + 4),
            ScheduledOp::Read { reader: (i % readers) as u32 },
        ));
    }
    ops
}

#[test]
fn masking_clients_stay_atomic_under_every_behavior() {
    let config = ByzConfig::new(5, 1, 2, 2).unwrap();
    let schedule = contended_schedule(6, 2);
    for behavior in ByzBehavior::ADVERSARIAL {
        for mode in [ByzReadMode::Slow, ByzReadMode::Fast] {
            let cluster = byz_cluster(config, mode, behavior);
            for seed in 1..=10 {
                let events = cluster.run_schedule(seed, &schedule).unwrap();
                let history = History::from_events(&events).unwrap();
                assert!(
                    check_atomicity(&history).is_ok(),
                    "{behavior}/{mode:?} seed {seed} violated atomicity"
                );
            }
        }
    }
}

#[test]
fn crash_tolerant_w2r2_is_broken_by_forgery_but_not_by_omission() {
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    let schedule = contended_schedule(5, 2);
    let run = |behavior: ByzBehavior, seed: u64| {
        let mut sim: Simulation<_, _> = Simulation::new(seed);
        sim.add_process(ProcessId::server(0), ByzRegisterServer::new(behavior));
        for s in config.server_ids().skip(1) {
            sim.add_process(s.into(), RegisterServer::new());
        }
        for w in config.writer_ids() {
            sim.add_process(w.into(), RegisterClient::writer(w, config, Protocol::W2R2.write_mode()));
        }
        for r in config.reader_ids() {
            sim.add_process(r.into(), RegisterClient::reader(r, config, Protocol::W2R2.read_mode()));
        }
        for (at, op) in &schedule {
            op.schedule_into(&mut sim, *at).unwrap();
        }
        sim.run_until_quiescent().unwrap();
        sim.drain_notifications()
    };

    // Forgery: reads adopt the inflated garbage value — atomicity (indeed
    // safety) is gone.
    let mut broken = false;
    for seed in 1..=10 {
        let events = run(ByzBehavior::TagInflater { boost: 10_000 }, seed);
        let history = History::from_events(&events).unwrap();
        broken |= !check_atomicity(&history).is_ok();
    }
    assert!(broken, "a forging server must break the crash-tolerant protocol");

    // Omission (stale replies, silence): the max over S − t − 1 honest
    // replies still wins — the crash-tolerant protocol survives.
    for behavior in [ByzBehavior::StaleReplier, ByzBehavior::Mute] {
        for seed in 1..=10 {
            let events = run(behavior, seed);
            let history = History::from_events(&events).unwrap();
            assert!(
                check_atomicity(&history).is_ok(),
                "{behavior} seed {seed}: omission alone should not break W2R2"
            );
        }
    }
}

/// The surgical below-frontier construction: with `S = 5, b = 1` the
/// conjectured fast-read frontier `2b(R + 3) < S` is unsatisfiable, and a
/// hold-crafted schedule (in the style of the paper's impossibility
/// executions) exhibits a concrete new/old inversion between two vouched
/// fast reads.
#[test]
fn constructed_witness_breaks_vouched_fast_reads_below_the_frontier() {
    let config = ByzConfig::new(5, 1, 2, 2).unwrap();
    assert!(!config.fast_read_conjecture());
    let cluster = byz_cluster(config, ByzReadMode::Fast, ByzBehavior::StaleReplier);
    let mut sim = cluster.build_sim(1);

    // Reader 0 never talks to s1; reader 1 never talks to s4.
    sim.network_mut().hold_between(ProcessId::reader(0), ProcessId::server(1));
    sim.network_mut().hold_between(ProcessId::reader(1), ProcessId::server(4));
    // Writer 1's *update* round reaches only s0 (which hides it), s3, s4:
    // the holds activate after its query round is in flight.
    sim.schedule_hold(
        SimTime::from_ticks(21),
        mwr::sim::LinkSelector::directed(ProcessId::writer(1), ProcessId::server(1)),
    );
    sim.schedule_hold(
        SimTime::from_ticks(21),
        mwr::sim::LinkSelector::directed(ProcessId::writer(1), ProcessId::server(2)),
    );

    // w0 writes 1 to completion; w1's write of 2 stays in flight on {s3, s4}.
    cluster
        .schedule(&mut sim, SimTime::ZERO, ScheduledOp::Write { writer: 0, value: Value::new(1) })
        .unwrap();
    cluster
        .schedule(&mut sim, SimTime::from_ticks(20), ScheduledOp::Write {
            writer: 1,
            value: Value::new(2),
        })
        .unwrap();
    // r0 reads from {s0, s2, s3, s4}: value 2 is vouched by s3, s4 → returned.
    cluster
        .schedule(&mut sim, SimTime::from_ticks(30), ScheduledOp::Read { reader: 0 })
        .unwrap();
    // r1 reads from {s0, s1, s2, s3}: value 2 has a single voucher → rejected.
    cluster
        .schedule(&mut sim, SimTime::from_ticks(40), ScheduledOp::Read { reader: 1 })
        .unwrap();
    sim.run_until_quiescent().unwrap();
    let events = sim.drain_notifications();

    let reads: Vec<Value> = events
        .iter()
        .filter_map(|(_, e)| match e {
            mwr::core::ClientEvent::Completed { result: OpResult::Read(tv), .. } => {
                Some(tv.value())
            }
            _ => None,
        })
        .collect();
    assert_eq!(reads, vec![Value::new(2), Value::new(1)], "new/old inversion exhibited");

    let history = History::from_events_with_open_ops(&events).unwrap();
    assert!(
        !check_atomicity(&history).is_ok(),
        "the checker must reject the constructed execution"
    );
}

#[test]
fn byzantine_budget_subsumes_crashes() {
    // b Byzantine = b crashed is the weakest use of the budget: everything
    // still works when the adversary simply crashes.
    let config = ByzConfig::new(9, 2, 3, 2).unwrap();
    let schedule = contended_schedule(6, 3);
    for mode in [ByzReadMode::Slow, ByzReadMode::Fast] {
        let cluster = byz_cluster(config, mode, ByzBehavior::Mute);
        let events = cluster.run_schedule(3, &schedule).unwrap();
        let history = History::from_events(&events).unwrap();
        assert_eq!(history.len(), 12, "{mode:?}: wait-freedom with 2 silent servers");
        assert!(check_atomicity(&history).is_ok());
    }
}

#[test]
fn forged_values_never_reach_any_client() {
    let config = ByzConfig::new(9, 2, 2, 2).unwrap();
    let schedule = contended_schedule(8, 2);
    for mode in [ByzReadMode::Slow, ByzReadMode::Fast] {
        let cluster = byz_cluster(config, mode, ByzBehavior::TagInflater { boost: 1 << 40 });
        for seed in 1..=10 {
            let events = cluster.run_schedule(seed, &schedule).unwrap();
            for (_, e) in &events {
                if let mwr::core::ClientEvent::Completed { result: OpResult::Read(tv), .. } = e {
                    assert!(tv.value().get() <= 8, "{mode:?} seed {seed}: forged read {tv}");
                    assert!(tv.tag().ts() < 1 << 40, "{mode:?} seed {seed}: forged tag {tv}");
                }
            }
        }
    }
}
