//! Integration: a multi-key keyspace over loopback TCP stays atomic —
//! register by register — while a server crashes and rejoins mid-traffic.
//!
//! Two writer threads and two reader threads hammer four registers whose
//! shard groups overlap on the victim server. Every operation flows
//! through a per-register streaming auditor at sample rate 1.0. Mid-run
//! the victim crashes (each of its shards loses one group member) and
//! then rejoins through per-shard quorum state transfer. The test
//! asserts:
//!
//! - zero linearizability violations on every touched register;
//! - no cross-key resurrection: each register only ever returns values
//!   from its own namespace, before and after the rejoin;
//! - no floor bleed: within one reader, a register's tags never move
//!   backwards across the crash/rejoin boundary;
//! - exactly the touched registers were audited — the rejoin manufactures
//!   no phantom registers.

use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;
use std::time::Duration;

use mwr::keyspace::{AuditConfig, Keyspace, KeyspaceConfig, RegisterId, RetryPolicy};
use mwr::types::{Tag, Value};

/// Each register writes values in its own namespace so a cross-key leak
/// is visible in the payload itself.
const NAMESPACE: u64 = 1_000_000;

const KEYS: [u32; 4] = [1, 9, 17, 42];

fn key_of(value: Value) -> u64 {
    value.get() / NAMESPACE
}

#[test]
fn audited_multi_key_crash_rejoin_over_tcp() {
    // 5 servers, t = 1, groups of 3, 8 shards, 2 readers + 2 writers:
    // groups overlap heavily, so the victim serves several of the keys.
    let config = KeyspaceConfig::new(5, 1, 3, 8, 2, 2).unwrap();
    let mut handle = Keyspace::new(config)
        .audit(AuditConfig::default())
        .timeout(Duration::from_secs(5))
        .retry(RetryPolicy { attempts: 4, backoff: Duration::from_millis(20) })
        .tcp()
        .unwrap();

    // Crash a server that serves the first key's group, so at least one
    // register demonstrably loses (and regains) a group member.
    let victim = handle.router().group_of(RegisterId::new(KEYS[0]))[0].index();

    // Mint every client up front: one writer and one reader per
    // (identity, key) pair, each identity's clients sharing one endpoint.
    let mut writers = Vec::new();
    for idx in 0..2u32 {
        let mut per_key = Vec::new();
        for &k in &KEYS {
            per_key.push((k, handle.writer(idx, RegisterId::new(k)).unwrap()));
        }
        writers.push(per_key);
    }
    let mut readers = Vec::new();
    for idx in 0..2u32 {
        let mut per_key = Vec::new();
        for &k in &KEYS {
            per_key.push((k, handle.reader(idx, RegisterId::new(k)).unwrap()));
        }
        readers.push(per_key);
    }

    let stop = AtomicBool::new(false);
    let (write_counts, read_counts) = thread::scope(|s| {
        let mut write_handles = Vec::new();
        for mut per_key in writers.drain(..) {
            write_handles.push(s.spawn({
                let stop = &stop;
                move || {
                    let mut seq = 0u64;
                    let mut ops = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        for (k, w) in &mut per_key {
                            seq += 1;
                            let value = Value::new(u64::from(*k) * NAMESPACE + seq);
                            w.write(value).expect("write survives crash and rejoin");
                            ops += 1;
                        }
                    }
                    ops
                }
            }));
        }
        let mut read_handles = Vec::new();
        for mut per_key in readers.drain(..) {
            read_handles.push(s.spawn({
                let stop = &stop;
                move || {
                    // Per-key high-water tag: one reader's view of one
                    // register must never move backwards, or the rejoined
                    // server resurrected pre-crash state (floor bleed).
                    let mut last_tag: Vec<Tag> = vec![Tag::initial(); per_key.len()];
                    let mut ops = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        for (i, (k, r)) in per_key.iter_mut().enumerate() {
                            let got = r.read().expect("read survives crash and rejoin");
                            if got.value() != Value::new(0) {
                                assert_eq!(
                                    key_of(got.value()),
                                    u64::from(*k),
                                    "register {k} returned another key's value {}",
                                    got.value()
                                );
                            }
                            assert!(
                                got.tag() >= last_tag[i],
                                "register {k} moved backwards: {:?} after {:?}",
                                got.tag(),
                                last_tag[i]
                            );
                            last_tag[i] = got.tag();
                            ops += 1;
                        }
                    }
                    ops
                }
            }));
        }

        // Traffic → crash → traffic over the degraded groups → rejoin
        // (per-shard quorum state transfer under load) → traffic over the
        // rejoined incarnation → stop.
        thread::sleep(Duration::from_millis(200));
        handle.crash_server(victim);
        thread::sleep(Duration::from_millis(300));
        handle.rejoin_server(victim).expect("live quorums answer every shard fetch");
        thread::sleep(Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);

        let writes: u64 = write_handles.into_iter().map(|h| h.join().unwrap()).sum();
        let reads: u64 = read_handles.into_iter().map(|h| h.join().unwrap()).sum();
        (writes, reads)
    });

    assert!(write_counts > 0, "writers made progress through the fault");
    assert!(read_counts > 0, "readers made progress through the fault");
    assert_eq!(handle.live_servers(), vec![0, 1, 2, 3, 4], "victim rejoined");

    let (handled, verdicts) = handle.shutdown_audited();
    assert!(handled > 0, "servers handled requests");
    let audited_keys: Vec<u32> = verdicts.keys().map(|k| k.index()).collect();
    let mut expected = KEYS.to_vec();
    expected.sort_unstable();
    assert_eq!(audited_keys, expected, "exactly the touched registers were audited");
    for (key, report) in &verdicts {
        assert!(
            report.verdict.is_ok(),
            "register {key} not atomic across crash+rejoin: {report}"
        );
        assert!(report.stats.audited > 0, "register {key} audited no operations");
    }
}

/// The keyspace analogue of the register-level reconfiguration test: two
/// fresh servers join and two originals retire through the per-shard
/// joint-quorum handover while writer and reader threads hammer four
/// registers. Pre-handover clients must keep serving (they re-derive
/// their shard groups when the config epoch moves), every register must
/// stay atomic and inside its own namespace, no register's tags may move
/// backwards across the handover (per-shard state transfer must not bleed
/// another key's GC floor), and the retired servers must leave the member
/// set entirely.
#[test]
fn audited_multi_key_reconfigure_over_tcp() {
    let config = KeyspaceConfig::new(5, 1, 3, 8, 2, 2).unwrap();
    // The fault-window client idiom: short per-round timeouts with many
    // retries, so rounds whose frames died with a retiring server re-
    // broadcast against the refreshed shard groups.
    let mut handle = Keyspace::new(config)
        .audit(AuditConfig::default())
        .timeout(Duration::from_millis(400))
        .retry(RetryPolicy { attempts: 10, backoff: Duration::from_millis(10) })
        .tcp()
        .unwrap();

    let mut writers = Vec::new();
    for idx in 0..2u32 {
        let mut per_key = Vec::new();
        for &k in &KEYS {
            per_key.push((k, handle.writer(idx, RegisterId::new(k)).unwrap()));
        }
        writers.push(per_key);
    }
    let mut readers = Vec::new();
    for idx in 0..2u32 {
        let mut per_key = Vec::new();
        for &k in &KEYS {
            per_key.push((k, handle.reader(idx, RegisterId::new(k)).unwrap()));
        }
        readers.push(per_key);
    }

    let stop = AtomicBool::new(false);
    let (write_counts, read_counts) = thread::scope(|s| {
        let mut write_handles = Vec::new();
        for mut per_key in writers.drain(..) {
            write_handles.push(s.spawn({
                let stop = &stop;
                move || {
                    let mut seq = 0u64;
                    let mut ops = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        for (k, w) in &mut per_key {
                            seq += 1;
                            let value = Value::new(u64::from(*k) * NAMESPACE + seq);
                            w.write(value).expect("write survives the handover");
                            ops += 1;
                        }
                    }
                    ops
                }
            }));
        }
        let mut read_handles = Vec::new();
        for mut per_key in readers.drain(..) {
            read_handles.push(s.spawn({
                let stop = &stop;
                move || {
                    // Per-key high-water tag: a register's view must never
                    // move backwards across the handover, or the shard
                    // transfer resurrected pruned state or leaked another
                    // register's floor.
                    let mut last_tag: Vec<Tag> = vec![Tag::initial(); per_key.len()];
                    let mut ops = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        for (i, (k, r)) in per_key.iter_mut().enumerate() {
                            let got = r.read().expect("read survives the handover");
                            if got.value() != Value::new(0) {
                                assert_eq!(
                                    key_of(got.value()),
                                    u64::from(*k),
                                    "register {k} returned another key's value {}",
                                    got.value()
                                );
                            }
                            assert!(
                                got.tag() >= last_tag[i],
                                "register {k} moved backwards: {:?} after {:?}",
                                got.tag(),
                                last_tag[i]
                            );
                            last_tag[i] = got.tag();
                            ops += 1;
                        }
                    }
                    ops
                }
            }));
        }

        // Traffic over the original members → live handover (servers 5
        // and 6 join, 0 and 1 retire, every shard's state moves under
        // load) → traffic over the new member set → stop.
        thread::sleep(Duration::from_millis(200));
        let added = handle.reconfigure(2, &[0, 1]).expect("every shard's transfer quorum answers");
        assert_eq!(added, vec![5, 6], "two fresh servers joined");
        thread::sleep(Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);

        let writes: u64 = write_handles.into_iter().map(|h| h.join().unwrap()).sum();
        let reads: u64 = read_handles.into_iter().map(|h| h.join().unwrap()).sum();
        (writes, reads)
    });

    assert!(write_counts > 0, "writers made progress through the handover");
    assert!(read_counts > 0, "readers made progress through the handover");
    assert_eq!(handle.members(), vec![2, 3, 4, 5, 6], "originals 0 and 1 retired");
    assert_eq!(handle.live_servers(), vec![2, 3, 4, 5, 6]);

    let (handled, verdicts) = handle.shutdown_audited();
    assert!(handled > 0, "servers handled requests");
    let audited_keys: Vec<u32> = verdicts.keys().map(|k| k.index()).collect();
    let mut expected = KEYS.to_vec();
    expected.sort_unstable();
    assert_eq!(audited_keys, expected, "exactly the touched registers were audited");
    for (key, report) in &verdicts {
        assert!(
            report.verdict.is_ok(),
            "register {key} not atomic across the handover: {report}"
        );
        assert!(report.stats.audited > 0, "register {key} audited no operations");
    }
}
