//! Integration: the Table 1 design-space matrix as assertions.
//!
//! Every protocol × configuration cell must behave as the theory column
//! predicts: protocols the paper proves correct stay atomic under random
//! and adversarial schedules; the impossible design points produce
//! checker-visible violations.

use mwr::check::{check_atomicity, check_regular, History};
use mwr::core::{Protocol, ScheduledOp, SimCluster};
use mwr::sim::SimTime;
use mwr::types::{ClusterConfig, Value};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

mod common;
use common::{sim_cluster};

fn random_schedule(
    config: &ClusterConfig,
    ops_per_client: usize,
    horizon: u64,
    seed: u64,
) -> Vec<(SimTime, ScheduledOp)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut ops = Vec::new();
    let mut value = 0u64;
    for w in config.writer_ids() {
        for _ in 0..ops_per_client {
            value += 1;
            ops.push((
                SimTime::from_ticks(rng.gen_range(0..horizon)),
                ScheduledOp::Write { writer: w.index(), value: Value::new(value) },
            ));
        }
    }
    for r in config.reader_ids() {
        for _ in 0..ops_per_client {
            ops.push((
                SimTime::from_ticks(rng.gen_range(0..horizon)),
                ScheduledOp::Read { reader: r.index() },
            ));
        }
    }
    ops
}

/// Protocols the theory endorses never violate atomicity, across many
/// seeds and tight (concurrency-heavy) horizons.
#[test]
fn endorsed_protocols_stay_atomic_under_random_schedules() {
    let cells = [
        (ClusterConfig::new(5, 1, 2, 2).unwrap(), Protocol::W2R2),
        (ClusterConfig::new(5, 1, 2, 2).unwrap(), Protocol::W2R1),
        (ClusterConfig::new(4, 1, 3, 2).unwrap(), Protocol::W2R2),
        (ClusterConfig::new(9, 2, 2, 2).unwrap(), Protocol::W2R1),
        (ClusterConfig::new(5, 1, 2, 1).unwrap(), Protocol::AbdSwmrW1R2),
        (ClusterConfig::new(5, 1, 2, 1).unwrap(), Protocol::DuttaSwmrW1R1),
    ];
    for (config, protocol) in cells {
        assert!(protocol.expected_atomic(&config), "precondition: {protocol} on {config}");
        let cluster = sim_cluster(config, protocol);
        for seed in 0..30u64 {
            let schedule = random_schedule(&config, 3, 400, seed);
            let events = cluster.run_schedule(seed, &schedule).unwrap();
            let history = History::from_events(&events).unwrap();
            let verdict = check_atomicity(&history);
            assert!(
                verdict.is_ok(),
                "{protocol} on {config}, seed {seed}: {:?}\n{history}",
                verdict.violation()
            );
        }
    }
}

/// The naive multi-writer fast write (Theorem 1's target) violates
/// atomicity on the deterministic writer-inversion schedule…
#[test]
fn naive_fast_write_violates_on_inversion() {
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    let schedule = [
        (SimTime::ZERO, ScheduledOp::Write { writer: 1, value: Value::new(2) }),
        (SimTime::from_ticks(1_000), ScheduledOp::Write { writer: 0, value: Value::new(1) }),
        (SimTime::from_ticks(2_000), ScheduledOp::Read { reader: 0 }),
    ];
    for protocol in [Protocol::NaiveW1R2, Protocol::NaiveW1R1] {
        let cluster = sim_cluster(config, protocol);
        let events = cluster.run_schedule(0, &schedule).unwrap();
        let history = History::from_events(&events).unwrap();
        assert!(!check_atomicity(&history).is_ok(), "{protocol} must violate");
        // The writer-inversion is so severe that even MW-regularity breaks:
        // the read returns a write that another write fully overwrote in
        // real time. The "weak consistency" production stores accept for
        // one-round writes is weaker than MW-regularity.
        assert!(!check_regular(&history).is_ok(), "{protocol} breaks regularity too");
    }
}

/// With a single writer the "naive" fast write *is* ABD — the violation
/// disappears, exactly the fine-grained boundary the paper draws (W ≥ 2).
#[test]
fn single_writer_fast_write_is_atomic() {
    let config = ClusterConfig::new(5, 1, 2, 1).unwrap();
    let cluster = sim_cluster(config, Protocol::AbdSwmrW1R2);
    for seed in 0..20u64 {
        let schedule = random_schedule(&config, 4, 300, seed);
        let events = cluster.run_schedule(seed, &schedule).unwrap();
        let history = History::from_events(&events).unwrap();
        assert!(check_atomicity(&history).is_ok(), "seed {seed}\n{history}");
    }
}

/// Determinism: the full matrix reproduces event-for-event across runs.
#[test]
fn runs_are_deterministic() {
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    for protocol in Protocol::ALL {
        let config = if protocol.is_single_writer() {
            ClusterConfig::new(5, 1, 2, 1).unwrap()
        } else {
            config
        };
        let cluster = sim_cluster(config, protocol);
        let schedule = random_schedule(&config, 3, 200, 77);
        let a = cluster.run_schedule(5, &schedule).unwrap();
        let b = cluster.run_schedule(5, &schedule).unwrap();
        assert_eq!(a, b, "{protocol}");
    }
}
