//! Integration: one `WorkloadSpec` runs closed-loop on all three backends
//! through `Deployment::run_closed_loop` — the genuinely new scenario the
//! facade opens (closed-loop contended workloads on the live runtime),
//! with one tick meaning one microsecond on the live backends.

use mwr::register::{Backend, Deployment, Protocol};
use mwr::sim::SimTime;
use mwr::types::ClusterConfig;
use mwr::workload::WorkloadSpec;

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        duration: SimTime::from_ticks(30_000), // 30k ticks sim; 30 ms live
        think_time: SimTime::from_ticks(300),
        seed: 5,
    }
}

#[test]
fn the_same_workload_spec_runs_on_all_three_backends() {
    let config = ClusterConfig::new(3, 1, 1, 1).unwrap();
    for backend in [Backend::Sim { seed: 5 }, Backend::InMemory, Backend::Tcp] {
        let report = Deployment::new(config)
            .protocol(Protocol::W2R1)
            .backend(backend)
            .run_closed_loop(spec())
            .unwrap_or_else(|e| panic!("{backend:?}: {e}"));
        assert!(report.reads.count() > 0, "{backend:?}: reads completed");
        assert!(report.writes.count() > 0, "{backend:?}: writes completed");
        assert!(report.throughput_per_kilotick() > 0.0, "{backend:?}");
        if matches!(backend, Backend::Sim { .. }) {
            assert!(!report.events.is_empty(), "sim runs carry a checkable history");
        } else {
            assert!(report.events.is_empty(), "live runs have no virtual-time history");
        }
    }
}

#[test]
fn contended_live_closed_loop_stays_wait_free() {
    // The new scenario the facade opens: contended closed-loop workloads
    // (2 writers + 2 readers issuing concurrently) on the live runtime.
    // Every client keeps completing operations — no timeout ever fires —
    // on both live transports. (Latency *ordering* across protocols is
    // asserted on the wire-bound TCP numbers by `live_latency`; the
    // CPU-bound in-memory transport does not price round-trips.)
    let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
    for backend in [Backend::InMemory, Backend::Tcp] {
        let report = Deployment::new(config)
            .protocol(Protocol::W2R1)
            .backend(backend)
            .run_closed_loop(WorkloadSpec {
                duration: SimTime::from_ticks(100_000), // 100 ms of issuing
                think_time: SimTime::from_ticks(200),
                seed: 0,
            })
            .unwrap_or_else(|e| panic!("{backend:?}: a contended client failed: {e}"));
        assert!(report.reads.count() > 50, "{backend:?}: reads kept flowing");
        assert!(report.writes.count() > 50, "{backend:?}: writes kept flowing");
    }
}
