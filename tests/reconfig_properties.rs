//! Property-based coverage for live server-set reconfiguration: the
//! config-epoch lattice, the joint-quorum acknowledgement rule, epoch
//! monotonicity under random add/remove/crash interleavings on a live
//! cluster, and GC-floor safety across the handover's state transfer.
//!
//! - the epoch adoption rule is a join: observing any frame moves a
//!   process forward, never back, and `next` is strictly increasing;
//! - a joint-window round terminates **only** with a quorum of the old
//!   configuration *and* a quorum of the new one — strangers never count,
//!   and extra acknowledgements never un-satisfy a round;
//! - on a live in-memory cluster, random interleavings of writes, reads,
//!   joint-quorum reconfigurations, and crash/rejoin cycles leave the
//!   epoch monotone (+2 per committed handover: joint, then stable), the
//!   member list equal to the live server set, and every read returning
//!   the last written value;
//! - a joiner installed from a transfer quorum adopts a GC floor no lower
//!   than its donors' and resurrects nothing beneath it — the floor a
//!   slot serves never regresses across the epoch change.

use std::collections::BTreeSet;
use std::time::Duration;

use proptest::prelude::*;

use mwr::core::{JointQuorum, ServerState};
use mwr::register::{Backend, Deployment, Protocol, RetryPolicy};
use mwr::types::{
    ClientId, ClusterConfig, ConfigEpoch, ServerId, Tag, TaggedValue, Value, WriterId,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `adopt` is max: it never moves a process backward, and `next` is
    /// strictly increasing — together, every epoch a process holds is the
    /// supremum of everything it has observed.
    #[test]
    fn epoch_adoption_is_a_monotone_join(a in 0u32..1000, b in 0u32..1000) {
        let (ea, eb) = (ConfigEpoch::new(a), ConfigEpoch::new(b));
        let adopted = ea.adopt(eb);
        prop_assert!(adopted >= ea && adopted >= eb);
        prop_assert_eq!(adopted.get(), a.max(b));
        prop_assert_eq!(ea.adopt(eb), eb.adopt(ea));
        prop_assert!(ea.next() > ea);
        // Re-observing anything already adopted is a no-op.
        prop_assert_eq!(adopted.adopt(ea).adopt(eb), adopted);
    }

    /// The joint window's only termination rule: a quorum of the old
    /// configuration AND a quorum of the new one. Acks from servers in
    /// neither configuration never help, and acknowledgements are
    /// monotone — growing the ack set cannot un-satisfy a round.
    #[test]
    fn joint_quorum_commit_requires_both_quorums(
        old_raw in proptest::collection::vec(0u32..12, 3..7),
        new_raw in proptest::collection::vec(0u32..12, 3..7),
        ack_raw in proptest::collection::vec(0u32..16, 0..14),
        extra in 0u32..16,
    ) {
        // Dedup, padding degenerate draws back to two members so the
        // t = 1 quorum arithmetic below stays well-defined.
        let dedup = |raw: &[u32], pad: u32| {
            let mut set: BTreeSet<u32> = raw.iter().copied().collect();
            for extra in pad.. {
                if set.len() >= 2 {
                    break;
                }
                set.insert(extra);
            }
            set.into_iter().map(ServerId::new).collect::<Vec<_>>()
        };
        let (old, new) = (dedup(&old_raw, 100), dedup(&new_raw, 200));
        let ack_raw: BTreeSet<u32> = ack_raw.into_iter().collect();
        // The paper's majority quorums at t = 1: |C| − 1 of each side.
        let (old_req, new_req) = (old.len() - 1, new.len() - 1);
        let joint = JointQuorum::new(old.clone(), old_req, new.clone(), new_req);

        let acks: Vec<ServerId> = ack_raw.iter().map(|&s| ServerId::new(s)).collect();
        let old_got = acks.iter().filter(|s| old.contains(s)).count();
        let new_got = acks.iter().filter(|s| new.contains(s)).count();
        let expect = old_got >= old_req && new_got >= new_req;
        prop_assert_eq!(
            joint.satisfied(acks.iter().copied()), expect,
            "old {}/{}, new {}/{}", old_got, old_req, new_got, new_req
        );

        // Monotone: one more ack (member or stranger) never un-satisfies.
        if expect {
            let mut more = acks.clone();
            more.push(ServerId::new(extra));
            prop_assert!(joint.satisfied(more.iter().copied()));
        }

        // The broadcast target covers every server either quorum needs.
        let union = joint.union();
        prop_assert!(old.iter().chain(new.iter()).all(|s| union.contains(s)));
        prop_assert!(joint.satisfied(union.iter().copied()));
    }
}

/// One step of the live interleaving: the raw tuple form keeps the
/// strategy flat and shrinkable.
#[derive(Debug, Clone, Copy)]
enum LiveOp {
    Write,
    Read,
    Reconfigure { add: usize, remove: usize },
    CrashRejoin(u32),
}

fn arb_live_ops(max: usize) -> impl Strategy<Value = Vec<LiveOp>> {
    proptest::collection::vec((0u32..4, 0usize..=2, 0usize..=2, 0u32..8), 1..max).prop_map(
        |raw| {
            raw.into_iter()
                .map(|(kind, add, remove, s)| match kind {
                    0 => LiveOp::Write,
                    1 => LiveOp::Read,
                    2 => LiveOp::Reconfigure { add, remove },
                    _ => LiveOp::CrashRejoin(s),
                })
                .collect()
        },
    )
}

proptest! {
    // Every case deploys a real threaded cluster; a handful of cases with
    // short interleavings covers the orderings without minutes of wall
    // clock.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Epochs only ever advance (+2 per committed handover), the member
    /// list always equals the live server set, and a single writer's
    /// reads stay exact through every reconfiguration and crash.
    #[test]
    fn live_epochs_and_members_stay_consistent_under_reconfiguration(
        ops in arb_live_ops(8)
    ) {
        let config = ClusterConfig::new(5, 1, 2, 2).expect("valid config");
        let mut handle = Deployment::new(config)
            .protocol(Protocol::W2Ra)
            .backend(Backend::InMemory)
            .timeout(Duration::from_secs(2))
            .retry(RetryPolicy { attempts: 6, backoff: Duration::from_millis(2) })
            .in_memory()
            .expect("in-memory cluster");
        let mut writer = handle.writer(0).expect("writer 0");
        let mut reader = handle.reader(0).expect("reader 0");

        let mut last: Option<TaggedValue> = None;
        let mut epoch = handle.cluster().epoch();
        let mut next_value = 0u64;

        for (step, op) in ops.iter().enumerate() {
            match *op {
                LiveOp::Write => {
                    next_value += 1;
                    last = Some(writer.write(Value::new(next_value)).expect("write"));
                }
                LiveOp::Read => {
                    let got = reader.read().expect("read");
                    if let Some(expected) = last {
                        prop_assert_eq!(
                            got, expected,
                            "step {}: read diverged from the last write", step
                        );
                    }
                }
                LiveOp::Reconfigure { add, remove } => {
                    let members = handle.members();
                    let removes: Vec<u32> = members.iter().copied().take(remove).collect();
                    let target = members.len() + add - removes.len();
                    // Skip no-ops and shapes the configuration refuses
                    // (too few servers for t, or unbounded growth).
                    if (add == 0 && removes.is_empty())
                        || !(3..=8).contains(&target)
                        || handle.config().reconfigured(target).is_err()
                    {
                        continue;
                    }
                    let before = handle.cluster().epoch().get();
                    match handle.reconfigure(add, &removes) {
                        Ok(added) => {
                            prop_assert_eq!(added.len(), add);
                            prop_assert_eq!(
                                handle.cluster().epoch().get(), before + 2,
                                "step {}: committed handover must land joint+stable", step
                            );
                            prop_assert_eq!(handle.members().len(), target);
                            prop_assert!(
                                removes.iter().all(|r| !handle.members().contains(r)),
                                "step {}: removed members survived the handover", step
                            );
                        }
                        Err(_) => {
                            // A refused handover rolls forward to a stable
                            // epoch over the old members — never back.
                            prop_assert!(handle.cluster().epoch().get() >= before);
                            prop_assert_eq!(handle.members().len(), members.len());
                        }
                    }
                }
                LiveOp::CrashRejoin(s) => {
                    let members = handle.members();
                    let id = members[s as usize % members.len()];
                    handle.crash_server(id);
                    handle.rejoin_server(id).expect("rejoin with live quorum");
                }
            }

            let now = handle.cluster().epoch();
            prop_assert!(
                now >= epoch,
                "step {}: epoch regressed from {} to {} after {:?}", step, epoch, now, op
            );
            epoch = now;
            let mut live = handle.live_servers();
            live.sort_unstable();
            prop_assert_eq!(
                live, handle.members(),
                "step {}: live servers diverged from the member list after {:?}", step, op
            );
        }

        // The surviving configuration still serves.
        next_value += 1;
        let written = writer.write(Value::new(next_value)).expect("final write");
        prop_assert_eq!(reader.read().expect("final read"), written);
        drop((writer, reader));
        handle.shutdown();
    }
}

const XFER_SERVERS: usize = 3;
const XFER_CLIENTS: u32 = 3;
/// R + W for the GC population: three readers plus the single writer.
const XFER_POPULATION: usize = XFER_CLIENTS as usize + 1;

/// One step of the state-transfer interleaving.
#[derive(Debug, Clone, Copy)]
enum XferOp {
    /// A client's first contact: every server notes it in GC membership.
    Join(u32),
    /// The writer registers the next value everywhere.
    Write,
    /// A joined client reports the latest value as its completed floor.
    Floor(u32),
    /// Slot `s` is handed to a **brand-new joiner** (the reconfiguration
    /// add path: spawned empty, installed from a transfer quorum of the
    /// surviving peers) — unlike a rejoin, there is no prior incarnation.
    Handover(u32),
}

fn arb_xfer_ops(max: usize) -> impl Strategy<Value = Vec<XferOp>> {
    proptest::collection::vec((0u32..4, 0u32..XFER_CLIENTS, 0u32..XFER_SERVERS as u32), 1..max)
        .prop_map(|raw| {
            raw.into_iter()
                .map(|(kind, c, s)| match kind {
                    0 => XferOp::Join(c),
                    1 => XferOp::Write,
                    2 => XferOp::Floor(c),
                    _ => XferOp::Handover(s),
                })
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The handover's state transfer preserves GC safety: a joiner
    /// installed from a quorum of donors adopts a floor no lower than any
    /// donor's, stores nothing beneath it (no resurrection), and the
    /// floor served from each slot stays monotone across the epoch
    /// change and every event after it.
    #[test]
    fn transferred_floors_stay_monotone_across_handovers(ops in arb_xfer_ops(40)) {
        let writer = ClientId::writer(0);
        let mut servers: Vec<ServerState> =
            (0..XFER_SERVERS).map(|_| ServerState::with_gc(XFER_POPULATION)).collect();
        let mut joined: BTreeSet<u32> = BTreeSet::new();
        let mut floors: Vec<TaggedValue> = vec![TaggedValue::initial(); XFER_SERVERS];
        let mut ts = 0u64;

        for (step, op) in ops.iter().enumerate() {
            match *op {
                XferOp::Join(c) => {
                    for s in &mut servers {
                        s.note_contact(ClientId::reader(c));
                    }
                    joined.insert(c);
                }
                XferOp::Write => {
                    ts += 1;
                    let tv = TaggedValue::new(Tag::new(ts, WriterId::new(0)), Value::new(ts));
                    for s in &mut servers {
                        s.update(tv, writer);
                    }
                }
                XferOp::Floor(c) => {
                    if joined.contains(&c) {
                        let floor = servers[0].latest();
                        for s in &mut servers {
                            s.record_floor(ClientId::reader(c), floor);
                        }
                    }
                }
                XferOp::Handover(idx) => {
                    let idx = idx as usize;
                    let transfers: Vec<_> = (0..XFER_SERVERS)
                        .filter(|&p| p != idx)
                        .map(|p| servers[p].export())
                        .collect();
                    let donor_floor =
                        transfers.iter().map(|t| t.pruned).max().expect("donors");
                    // A joiner is a fresh process: version beacon 0.
                    let mut fresh = ServerState::with_gc(XFER_POPULATION);
                    fresh.install(0, &transfers);
                    prop_assert!(
                        fresh.pruned_floor() >= donor_floor,
                        "step {step}: joiner floor {:?} below its donors' {:?}",
                        fresh.pruned_floor(), donor_floor
                    );
                    servers[idx] = fresh;
                }
            }

            for (i, s) in servers.iter().enumerate() {
                // The floor served from each slot is monotone through
                // every event — handovers included: the epoch change
                // never regresses GC.
                prop_assert!(
                    s.pruned_floor() >= floors[i],
                    "step {step}: slot {i} floor regressed from {:?} to {:?} after {op:?}",
                    floors[i], s.pruned_floor()
                );
                floors[i] = s.pruned_floor();
                // No resurrection: nothing stored below the floor except
                // the protocol-mandated latest.
                let t = s.export();
                prop_assert!(
                    t.entries.iter().all(|rec| {
                        rec.value >= s.pruned_floor() || rec.value == s.latest()
                    }),
                    "step {step}: slot {i} stores a value below its floor after {op:?}"
                );
            }
        }
    }
}
