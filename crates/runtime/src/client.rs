//! The blocking client API: the round-trip schema of §2.2 over a live
//! transport.
//!
//! Unlike the simulator's event-driven [`RegisterClient`], the live client
//! blocks the calling thread until a quorum of `S − t` replies arrives —
//! the shape a downstream application actually programs against. The
//! decision logic is shared with the simulator: tags, quorum sizes and the
//! fast read's `admissible(·)` selection all come from `mwr-core`.
//!
//! [`RegisterClient`]: mwr_core::RegisterClient

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::time::{Duration, Instant};

use mwr_core::{Admissibility, Msg, OpHandle, OpId, ReadMode, Snapshot, WriteMode};
use mwr_types::{
    ClientId, ClusterConfig, ProcessId, ReaderId, ServerId, Tag, TaggedValue, Value, WriterId,
};

use crate::transport::{Endpoint, TransportError};

/// Errors returned by live operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// A quorum did not assemble within the timeout (more than `t` servers
    /// down, or a partition).
    Timeout {
        /// How long the client waited.
        waited: Duration,
        /// Replies collected before giving up.
        collected: usize,
        /// Replies required.
        required: usize,
    },
    /// The transport failed.
    Transport(TransportError),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Timeout { waited, collected, required } => write!(
                f,
                "quorum timeout after {waited:?}: {collected}/{required} replies"
            ),
            RuntimeError::Transport(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<TransportError> for RuntimeError {
    fn from(e: TransportError) -> Self {
        RuntimeError::Transport(e)
    }
}

/// A blocking writer client.
///
/// # Examples
///
/// See [`LiveCluster`](crate::LiveCluster) for an end-to-end example.
#[derive(Debug)]
pub struct LiveWriter<E: Endpoint> {
    endpoint: E,
    id: WriterId,
    config: ClusterConfig,
    mode: WriteMode,
    local_ts: u64,
    next_seq: u64,
    timeout: Duration,
}

impl<E: Endpoint> LiveWriter<E> {
    /// Creates a writer over an endpoint.
    ///
    /// # Panics
    ///
    /// Panics if the endpoint's identity is not the given writer.
    pub fn new(endpoint: E, id: WriterId, config: ClusterConfig, mode: WriteMode) -> Self {
        assert_eq!(endpoint.id(), ProcessId::from(id), "endpoint identity mismatch");
        LiveWriter {
            endpoint,
            id,
            config,
            mode,
            local_ts: 0,
            next_seq: 0,
            timeout: Duration::from_secs(5),
        }
    }

    /// Sets the per-round-trip quorum timeout.
    pub fn set_timeout(&mut self, timeout: Duration) -> &mut Self {
        self.timeout = timeout;
        self
    }

    /// Writes `value`, blocking until the protocol's round-trips complete.
    /// Returns the tagged value the register now holds.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Timeout`] if a quorum cannot be assembled.
    pub fn write(&mut self, value: Value) -> Result<TaggedValue, RuntimeError> {
        let op = OpId { client: ClientId::Writer(self.id), seq: self.next_seq };
        self.next_seq += 1;
        let tag = match self.mode {
            WriteMode::Fast => {
                self.local_ts += 1;
                Tag::new(self.local_ts, self.id)
            }
            WriteMode::Slow => {
                let handle = OpHandle { op, phase: 1 };
                let acks = round_trip(
                    &self.endpoint,
                    &self.config,
                    Msg::Query { handle },
                    self.timeout,
                    |msg| match msg {
                        Msg::QueryAck { handle: h, latest } if *h == handle => Some(latest.tag()),
                        _ => None,
                    },
                )?;
                let max_tag = acks.values().copied().max().unwrap_or_else(Tag::initial);
                max_tag.next(self.id)
            }
        };
        let tagged = TaggedValue::new(tag, value);
        let phase = if self.mode == WriteMode::Fast { 1 } else { 2 };
        let handle = OpHandle { op, phase };
        round_trip(
            &self.endpoint,
            &self.config,
            Msg::Update { handle, value: tagged },
            self.timeout,
            |msg| match msg {
                Msg::UpdateAck { handle: h } if *h == handle => Some(()),
                _ => None,
            },
        )?;
        Ok(tagged)
    }
}

/// A blocking reader client.
#[derive(Debug)]
pub struct LiveReader<E: Endpoint> {
    endpoint: E,
    id: ReaderId,
    config: ClusterConfig,
    mode: ReadMode,
    val_queue: BTreeSet<TaggedValue>,
    next_seq: u64,
    timeout: Duration,
}

impl<E: Endpoint> LiveReader<E> {
    /// Creates a reader over an endpoint.
    ///
    /// # Panics
    ///
    /// Panics if the endpoint's identity is not the given reader.
    pub fn new(endpoint: E, id: ReaderId, config: ClusterConfig, mode: ReadMode) -> Self {
        assert_eq!(endpoint.id(), ProcessId::from(id), "endpoint identity mismatch");
        let mut val_queue = BTreeSet::new();
        val_queue.insert(TaggedValue::initial());
        LiveReader {
            endpoint,
            id,
            config,
            mode,
            val_queue,
            next_seq: 0,
            timeout: Duration::from_secs(5),
        }
    }

    /// Sets the per-round-trip quorum timeout.
    pub fn set_timeout(&mut self, timeout: Duration) -> &mut Self {
        self.timeout = timeout;
        self
    }

    /// Reads the register, blocking until the protocol's round-trips
    /// complete.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Timeout`] if a quorum cannot be assembled.
    pub fn read(&mut self) -> Result<TaggedValue, RuntimeError> {
        let op = OpId { client: ClientId::Reader(self.id), seq: self.next_seq };
        self.next_seq += 1;
        match self.mode {
            ReadMode::Slow => {
                let handle = OpHandle { op, phase: 1 };
                let acks = round_trip(
                    &self.endpoint,
                    &self.config,
                    Msg::Query { handle },
                    self.timeout,
                    |msg| match msg {
                        Msg::QueryAck { handle: h, latest } if *h == handle => Some(*latest),
                        _ => None,
                    },
                )?;
                let best = acks.values().copied().max().unwrap_or_default();
                let handle = OpHandle { op, phase: 2 };
                round_trip(
                    &self.endpoint,
                    &self.config,
                    Msg::Update { handle, value: best },
                    self.timeout,
                    |msg| match msg {
                        Msg::UpdateAck { handle: h } if *h == handle => Some(()),
                        _ => None,
                    },
                )?;
                Ok(best)
            }
            ReadMode::Fast | ReadMode::Adaptive => {
                let handle = OpHandle { op, phase: 1 };
                let val_queue: Vec<TaggedValue> = self.val_queue.iter().copied().collect();
                let acks = round_trip(
                    &self.endpoint,
                    &self.config,
                    Msg::ReadFast { handle, val_queue },
                    self.timeout,
                    |msg| match msg {
                        Msg::ReadFastAck { handle: h, snapshot } if *h == handle => {
                            Some(snapshot.clone())
                        }
                        _ => None,
                    },
                )?;
                let snaps: Vec<Snapshot> = acks.into_values().collect();
                for s in &snaps {
                    self.val_queue.extend(s.entries.iter().map(|e| e.value));
                }
                if self.mode == ReadMode::Fast {
                    let adm = Admissibility::new(
                        &snaps,
                        self.config.servers(),
                        self.config.max_faults(),
                        self.config.readers() + 1,
                    );
                    return Ok(adm.select_return_value());
                }
                // Adaptive: return the maximum fast when it is safely
                // admissible; secure it with a write-back otherwise.
                let cap = mwr_core::adaptive_degree_cap(
                    self.config.servers(),
                    self.config.max_faults(),
                    self.config.readers(),
                );
                let adm =
                    Admissibility::new(&snaps, self.config.servers(), self.config.max_faults(), cap);
                let max_v = adm
                    .candidates_descending()
                    .into_iter()
                    .next()
                    .unwrap_or_else(TaggedValue::initial);
                if adm.degree(max_v).is_some() {
                    return Ok(max_v);
                }
                let handle = OpHandle { op, phase: 2 };
                round_trip(
                    &self.endpoint,
                    &self.config,
                    Msg::Update { handle, value: max_v },
                    self.timeout,
                    |msg| match msg {
                        Msg::UpdateAck { handle: h } if *h == handle => Some(()),
                        _ => None,
                    },
                )?;
                Ok(max_v)
            }
        }
    }
}

/// Broadcasts one request to all servers and blocks until `S − t` matching
/// replies arrive, discarding stale or non-matching messages.
fn round_trip<E: Endpoint, T>(
    endpoint: &E,
    config: &ClusterConfig,
    request: Msg,
    timeout: Duration,
    mut matcher: impl FnMut(&Msg) -> Option<T>,
) -> Result<BTreeMap<ServerId, T>, RuntimeError> {
    for s in config.server_ids() {
        // A dead server is exactly the failure the quorum tolerates.
        let _ = endpoint.send(ProcessId::Server(s), request.clone());
    }
    let required = config.quorum_size();
    let mut acks: BTreeMap<ServerId, T> = BTreeMap::new();
    let deadline = Instant::now() + timeout;
    while acks.len() < required {
        let now = Instant::now();
        if now >= deadline {
            return Err(RuntimeError::Timeout {
                waited: timeout,
                collected: acks.len(),
                required,
            });
        }
        match endpoint.inbox().recv_timeout(deadline - now) {
            Ok((from, msg)) => {
                if let (ProcessId::Server(sid), Some(payload)) = (from, matcher(&msg)) {
                    acks.insert(sid, payload);
                }
            }
            Err(_) => {
                return Err(RuntimeError::Timeout {
                    waited: timeout,
                    collected: acks.len(),
                    required,
                })
            }
        }
    }
    Ok(acks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::spawn_server;
    use crate::transport::InMemoryTransport;

    fn cluster(
        config: ClusterConfig,
    ) -> (InMemoryTransport, Vec<crate::server::ServerHandle>) {
        let transport = InMemoryTransport::new();
        let servers = config
            .server_ids()
            .map(|s| spawn_server(transport.register(ProcessId::Server(s))))
            .collect();
        (transport, servers)
    }

    #[test]
    fn slow_write_then_fast_read_round_trips() {
        let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
        let (transport, servers) = cluster(config);
        let mut writer = LiveWriter::new(
            transport.register(ProcessId::writer(0)),
            WriterId::new(0),
            config,
            WriteMode::Slow,
        );
        let mut reader = LiveReader::new(
            transport.register(ProcessId::reader(0)),
            ReaderId::new(0),
            config,
            ReadMode::Fast,
        );
        let written = writer.write(Value::new(42)).unwrap();
        assert_eq!(written.tag(), Tag::new(1, WriterId::new(0)));
        let read = reader.read().unwrap();
        assert_eq!(read, written);
        for s in servers {
            assert!(s.shutdown() > 0);
        }
    }

    #[test]
    fn quorum_survives_t_dead_servers() {
        let config = ClusterConfig::new(3, 1, 1, 1).unwrap();
        let transport = InMemoryTransport::new();
        // Only bring up 2 of 3 servers: the third is "crashed".
        let s0 = spawn_server(transport.register(ProcessId::server(0)));
        let s1 = spawn_server(transport.register(ProcessId::server(1)));
        let mut writer = LiveWriter::new(
            transport.register(ProcessId::writer(0)),
            WriterId::new(0),
            config,
            WriteMode::Slow,
        );
        let written = writer.write(Value::new(7)).unwrap();
        assert_eq!(written.value(), Value::new(7));
        s0.shutdown();
        s1.shutdown();
    }

    #[test]
    fn timeout_when_quorum_is_unreachable() {
        let config = ClusterConfig::new(3, 1, 1, 1).unwrap();
        let transport = InMemoryTransport::new();
        // Only 1 of 3 servers up: quorum of 2 can never assemble.
        let s0 = spawn_server(transport.register(ProcessId::server(0)));
        let mut writer = LiveWriter::new(
            transport.register(ProcessId::writer(0)),
            WriterId::new(0),
            config,
            WriteMode::Slow,
        );
        writer.set_timeout(Duration::from_millis(100));
        let err = writer.write(Value::new(1)).unwrap_err();
        assert!(matches!(err, RuntimeError::Timeout { collected: 1, required: 2, .. }), "{err}");
        s0.shutdown();
    }

    #[test]
    fn sequential_writers_get_increasing_tags() {
        let config = ClusterConfig::new(5, 1, 1, 2).unwrap();
        let (transport, servers) = cluster(config);
        let mut w0 = LiveWriter::new(
            transport.register(ProcessId::writer(0)),
            WriterId::new(0),
            config,
            WriteMode::Slow,
        );
        let mut w1 = LiveWriter::new(
            transport.register(ProcessId::writer(1)),
            WriterId::new(1),
            config,
            WriteMode::Slow,
        );
        let t1 = w0.write(Value::new(1)).unwrap();
        let t2 = w1.write(Value::new(2)).unwrap();
        let t3 = w0.write(Value::new(3)).unwrap();
        assert!(t1 < t2 && t2 < t3, "MWA0 over the live runtime");
        drop(servers);
    }
}
