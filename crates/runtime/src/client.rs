//! The blocking client API: the round-trip schema of §2.2 over a live
//! transport.
//!
//! Unlike the simulator's event-driven [`RegisterClient`], the live client
//! blocks the calling thread until a quorum of `S − t` replies arrives —
//! the shape a downstream application actually programs against. The
//! decision logic is shared with the simulator: tags, quorum sizes and the
//! fast read's `admissible(·)` selection all come from `mwr-core`.
//!
//! [`RegisterClient`]: mwr_core::RegisterClient

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mwr_core::{
    FastReadState, FastWire, JointQuorum, Msg, OpHandle, OpId, OpKind, OpResult, ReadMode,
    Snapshot, SnapshotView, WitnessIndex, WriteMode,
};
use mwr_types::codec::Wire;
use mwr_types::{
    ClientId, ClusterConfig, ConfigEpoch, ProcessId, ReaderId, RegisterId, ServerId, Tag,
    TaggedValue, Value, WriterId,
};

use crate::tap::AuditTap;
use crate::transport::{Endpoint, TransportError};
use crate::view::ClusterView;

/// Errors returned by live operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// A quorum did not assemble within the timeout (more than `t` servers
    /// down, or a partition).
    Timeout {
        /// How long the client waited.
        waited: Duration,
        /// Replies collected before giving up.
        collected: usize,
        /// Replies required.
        required: usize,
    },
    /// The transport failed.
    Transport(TransportError),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Timeout { waited, collected, required } => write!(
                f,
                "quorum timeout after {waited:?}: {collected}/{required} replies"
            ),
            RuntimeError::Transport(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<TransportError> for RuntimeError {
    fn from(e: TransportError) -> Self {
        RuntimeError::Transport(e)
    }
}

/// Bounded retry for quorum round-trips that time out — the knob that
/// rides out a server crash–rejoin window instead of failing the op.
///
/// The default is **one attempt** (no retry): exactly the pre-existing
/// behavior. With `attempts = n`, a round trip that cannot assemble its
/// quorum re-broadcasts the *same* request (same [`OpHandle`], so servers
/// treat it idempotently and stragglers from earlier attempts still count)
/// up to `n` times, sleeping `backoff` between attempts. Acks are
/// deduplicated per server across attempts, so a retry can complete a
/// quorum started by its predecessor.
///
/// Every retried round is idempotent: `Query` is a pure read,
/// and `Update`/`ReadFast`/`ReadFastDelta` re-apply to the same state
/// (registration and store inserts are set-unions keyed by the same
/// handle's data).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per round trip (clamped to at least 1).
    pub attempts: u32,
    /// Sleep between consecutive attempts.
    pub backoff: Duration,
}

impl RetryPolicy {
    /// A policy with `attempts` total tries and `backoff` between them.
    pub const fn new(attempts: u32, backoff: Duration) -> Self {
        RetryPolicy { attempts, backoff }
    }
}

impl Default for RetryPolicy {
    /// One attempt, no backoff: fail the op on the first quorum timeout.
    fn default() -> Self {
        RetryPolicy { attempts: 1, backoff: Duration::ZERO }
    }
}

/// The round-trip scope of one client: which servers its broadcasts cover,
/// how many replies complete a quorum, and whether frames are wrapped for a
/// keyspace register.
///
/// The default scope is the whole cluster with bare (legacy) frames; a
/// keyspace client is scoped to its register's rendezvous group with
/// [`Msg::ForRegister`] framing, so one endpoint (and its per-peer writer
/// pipelines) multiplexes every register the client touches.
#[derive(Debug, Clone)]
struct Scope {
    /// The servers every round-trip broadcasts to.
    targets: Vec<ServerId>,
    /// Replies required: `|targets| − t` (stable epochs). Under a joint
    /// scope this holds `max(old_required, new_required)` and is used only
    /// for error reporting — satisfaction is the two-sided rule.
    quorum: usize,
    /// `Some(register)`: wrap requests in [`Msg::ForRegister`] and accept
    /// only replies wrapped with the same id.
    wrap: Option<RegisterId>,
    /// During a reconfiguration's transition window, the two-sided
    /// acknowledgement rule: a round completes only with a quorum in *both*
    /// the old and the new configuration.
    joint: Option<JointQuorum>,
    /// The configuration epoch the scope was derived from. Outgoing frames
    /// carry it (elided at epoch 0 — legacy byte-identity); a reply tagged
    /// with a higher epoch triggers a mid-round refresh from the view.
    epoch: ConfigEpoch,
}

impl Scope {
    /// The legacy whole-cluster scope of `config`.
    fn cluster(config: &ClusterConfig) -> Self {
        Scope {
            targets: config.server_ids().collect(),
            quorum: config.quorum_size(),
            wrap: None,
            joint: None,
            epoch: ConfigEpoch::ZERO,
        }
    }

    /// Re-derives the scope from the shared view if its epoch moved.
    /// Returns whether anything changed. The register binding (`wrap`)
    /// survives refreshes — only the coverage and the rule change.
    fn refresh_from(&mut self, view: &ClusterView) -> bool {
        if view.epoch() == self.epoch {
            return false;
        }
        let parts = view.scope_parts(self.wrap);
        self.targets = parts.targets;
        self.quorum = parts.quorum;
        self.joint = parts.joint;
        self.epoch = parts.epoch;
        true
    }

    /// Whether the collected per-server acks complete this scope's rule:
    /// the joint two-configuration rule in a transition epoch, otherwise a
    /// plain quorum counted over *members only* — a straggler ack from a
    /// server that has since been removed never counts toward a quorum of
    /// the configuration that replaced it.
    fn satisfied<T>(&self, acks: &BTreeMap<ServerId, T>) -> bool {
        match &self.joint {
            Some(joint) => joint.satisfied(acks.keys().copied()),
            None => {
                acks.keys().filter(|s| self.targets.contains(s)).count() >= self.quorum
            }
        }
    }

    /// Unwraps one inbound frame according to the scope: bare frames for a
    /// bare scope, matching-register frames for a wrapped scope, everything
    /// else discarded (cross-register strays can share the endpoint).
    fn unwrap(&self, msg: Msg) -> Option<Msg> {
        match (self.wrap, msg) {
            (None, Msg::ForRegister { .. }) => None,
            (None, msg) => Some(msg),
            (Some(mine), Msg::ForRegister { register, inner }) if register == mine => Some(*inner),
            (Some(_), _) => None,
        }
    }
}

/// A blocking writer client.
///
/// # Examples
///
/// See [`LiveCluster`](crate::LiveCluster) for an end-to-end example.
#[derive(Debug)]
pub struct LiveWriter<E: Endpoint> {
    endpoint: E,
    id: WriterId,
    config: ClusterConfig,
    scope: Scope,
    mode: WriteMode,
    local_ts: u64,
    next_seq: u64,
    timeout: Duration,
    retry: RetryPolicy,
    /// Completed-operation floor, piggybacked on updates for GC.
    floor: TaggedValue,
    tap: Option<AuditTap>,
    /// The shared configuration view, when the cluster reconfigures live.
    view: Option<Arc<ClusterView>>,
}

impl<E: Endpoint> LiveWriter<E> {
    /// Creates a writer over an endpoint.
    ///
    /// # Panics
    ///
    /// Panics if the endpoint's identity is not the given writer.
    pub fn new(endpoint: E, id: WriterId, config: ClusterConfig, mode: WriteMode) -> Self {
        assert_eq!(endpoint.id(), ProcessId::from(id), "endpoint identity mismatch");
        LiveWriter {
            endpoint,
            id,
            scope: Scope::cluster(&config),
            config,
            mode,
            local_ts: 0,
            next_seq: 0,
            timeout: Duration::from_secs(5),
            retry: RetryPolicy::default(),
            floor: TaggedValue::initial(),
            tap: None,
            view: None,
        }
    }

    /// Selects the quorum-timeout retry policy (builder-style). The
    /// default is one attempt — no retry.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Attaches the cluster's shared configuration view (builder-style):
    /// the writer re-derives its round-trip scope from the view at the
    /// start of every operation and mid-round whenever a reply carries a
    /// higher epoch, so it follows live reconfigurations without failing
    /// in-flight operations.
    pub fn with_view(mut self, view: Arc<ClusterView>) -> Self {
        self.scope.refresh_from(&view);
        self.view = Some(view);
        self
    }

    /// Attaches an audit tap (builder-style): every write emits invocation
    /// and completion records for the streaming auditor.
    pub fn with_tap(mut self, tap: AuditTap) -> Self {
        self.tap = Some(tap);
        self
    }

    /// Selects the per-round-trip quorum timeout (builder-style, like
    /// `Cluster::with_gc`).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Scopes this writer to one register of a keyspace (builder-style):
    /// round-trips broadcast only to `group`, wait for `|group| − t`
    /// replies, wrap every request in [`Msg::ForRegister`] and accept only
    /// replies wrapped with the same id. The register's group plays the
    /// paper's `S`.
    ///
    /// # Panics
    ///
    /// Panics if the group is not larger than the configured fault bound
    /// (no quorum could ever assemble).
    pub fn with_scope(mut self, register: RegisterId, group: Vec<ServerId>) -> Self {
        assert!(group.len() > self.config.max_faults(), "group must outnumber faults");
        self.scope = Scope {
            quorum: group.len() - self.config.max_faults(),
            targets: group,
            wrap: Some(register),
            joint: None,
            epoch: ConfigEpoch::ZERO,
        };
        // Re-bind to the register's group under the *current* epoch.
        if let Some(view) = &self.view {
            self.scope.refresh_from(view);
        }
        self
    }

    /// Sets the per-round-trip quorum timeout.
    #[deprecated(since = "0.2.0", note = "use the builder-style with_timeout")]
    pub fn set_timeout(&mut self, timeout: Duration) -> &mut Self {
        self.timeout = timeout;
        self
    }

    /// Re-derives the scope from the shared view when the epoch moved —
    /// the cheap per-operation check (one atomic load in the common case).
    fn refresh_scope(&mut self) {
        if let Some(view) = &self.view {
            self.scope.refresh_from(view);
        }
    }

    /// Writes `value`, blocking until the protocol's round-trips complete.
    /// Returns the tagged value the register now holds.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Timeout`] if a quorum cannot be assembled.
    pub fn write(&mut self, value: Value) -> Result<TaggedValue, RuntimeError> {
        self.refresh_scope();
        let op = OpId { client: ClientId::Writer(self.id), seq: self.next_seq };
        self.next_seq += 1;
        // Writes are always recorded: every read verdict depends on them.
        // The record goes out before the first protocol message so channel
        // arrival order remains a real-time witness.
        if let Some(tap) = &self.tap {
            tap.invoked(op.client, op.seq, OpKind::Write(value));
        }
        let tag = match self.mode {
            WriteMode::Fast => {
                self.local_ts += 1;
                Tag::new(self.local_ts, self.id)
            }
            WriteMode::Slow => {
                let handle = OpHandle { op, phase: 1 };
                let acks = round_trip(
                    &self.endpoint,
                    &self.scope,
                    self.view.as_deref(),
                    Msg::Query { handle },
                    self.timeout,
                    self.retry,
                    |msg| match msg {
                        Msg::QueryAck { handle: h, latest } if h == handle => Some(latest.tag()),
                        _ => None,
                    },
                )?;
                let max_tag = acks.values().copied().max().unwrap_or_else(Tag::initial);
                max_tag.next(self.id)
            }
        };
        let tagged = TaggedValue::new(tag, value);
        let phase = if self.mode == WriteMode::Fast { 1 } else { 2 };
        let handle = OpHandle { op, phase };
        round_trip(
            &self.endpoint,
            &self.scope,
            self.view.as_deref(),
            Msg::Update { handle, value: tagged, floor: self.floor },
            self.timeout,
            self.retry,
            |msg| match msg {
                Msg::UpdateAck { handle: h } if h == handle => Some(()),
                _ => None,
            },
        )?;
        self.floor = self.floor.max(tagged);
        if let Some(tap) = &self.tap {
            tap.completed(op.client, op.seq, OpResult::Written(tagged));
        }
        Ok(tagged)
    }

    /// Leaves the cluster: tells a quorum of servers to drop this writer's
    /// registrations and GC membership, consuming the client. See the
    /// "client churn" section of the server module docs for why a departed
    /// client never wedges the acknowledged-floor GC.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Timeout`] if a quorum cannot acknowledge
    /// the departure; the servers that did hear it have already cleaned up.
    pub fn depart(mut self) -> Result<(), RuntimeError> {
        self.refresh_scope();
        let op = OpId { client: ClientId::Writer(self.id), seq: self.next_seq };
        self.next_seq += 1;
        let handle = OpHandle { op, phase: 1 };
        round_trip(
            &self.endpoint,
            &self.scope,
            self.view.as_deref(),
            Msg::Depart { handle },
            self.timeout,
            self.retry,
            |msg| match msg {
                Msg::DepartAck { handle: h } if h == handle => Some(()),
                _ => None,
            },
        )?;
        Ok(())
    }
}

/// A blocking reader client.
#[derive(Debug)]
pub struct LiveReader<E: Endpoint> {
    endpoint: E,
    id: ReaderId,
    config: ClusterConfig,
    scope: Scope,
    mode: ReadMode,
    wire: FastWire,
    val_queue: BTreeSet<TaggedValue>,
    /// Per-server snapshot caches plus the incrementally-maintained
    /// witness index over them (delta wire only).
    state: FastReadState,
    gc_floor: TaggedValue,
    floor: TaggedValue,
    next_seq: u64,
    timeout: Duration,
    retry: RetryPolicy,
    measure_payload: bool,
    last_payload: u64,
    tap: Option<AuditTap>,
    /// The shared configuration view, when the cluster reconfigures live.
    view: Option<Arc<ClusterView>>,
}

impl<E: Endpoint> LiveReader<E> {
    /// Creates a reader over an endpoint with the default
    /// [`FastWire::Delta`] wire format.
    ///
    /// # Panics
    ///
    /// Panics if the endpoint's identity is not the given reader.
    pub fn new(endpoint: E, id: ReaderId, config: ClusterConfig, mode: ReadMode) -> Self {
        Self::with_wire(endpoint, id, config, mode, FastWire::default())
    }

    /// Creates a reader with an explicit fast-read wire format.
    ///
    /// # Panics
    ///
    /// Panics if the endpoint's identity is not the given reader.
    pub fn with_wire(
        endpoint: E,
        id: ReaderId,
        config: ClusterConfig,
        mode: ReadMode,
        wire: FastWire,
    ) -> Self {
        assert_eq!(endpoint.id(), ProcessId::from(id), "endpoint identity mismatch");
        let mut val_queue = BTreeSet::new();
        val_queue.insert(TaggedValue::initial());
        LiveReader {
            endpoint,
            id,
            scope: Scope::cluster(&config),
            config,
            mode,
            wire,
            val_queue,
            state: FastReadState::new(),
            gc_floor: TaggedValue::initial(),
            floor: TaggedValue::initial(),
            next_seq: 0,
            timeout: Duration::from_secs(5),
            retry: RetryPolicy::default(),
            measure_payload: false,
            last_payload: 0,
            tap: None,
            view: None,
        }
    }

    /// Selects the quorum-timeout retry policy (builder-style). The
    /// default is one attempt — no retry.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Attaches the cluster's shared configuration view (builder-style):
    /// the reader re-derives its round-trip scope from the view at the
    /// start of every operation and mid-round whenever a reply carries a
    /// higher epoch. During a reconfiguration's joint window every fast
    /// read is forced through a write-back round (see
    /// [`LiveReader::read`]'s mode logic), so fast selection never has to
    /// reason across two configurations.
    pub fn with_view(mut self, view: Arc<ClusterView>) -> Self {
        self.scope.refresh_from(&view);
        self.view = Some(view);
        self
    }

    /// Attaches an audit tap (builder-style): sampled reads emit
    /// invocation/completion records, and observed GC-floor advances are
    /// reported to the streaming auditor.
    pub fn with_tap(mut self, tap: AuditTap) -> Self {
        self.tap = Some(tap);
        self
    }

    /// Selects the per-round-trip quorum timeout (builder-style, like
    /// `Cluster::with_gc`).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Sets the per-round-trip quorum timeout.
    #[deprecated(since = "0.2.0", note = "use the builder-style with_timeout")]
    pub fn set_timeout(&mut self, timeout: Duration) -> &mut Self {
        self.timeout = timeout;
        self
    }

    /// Scopes this reader to one register of a keyspace (builder-style):
    /// round-trips broadcast only to `group`, wait for `|group| − t`
    /// replies, wrap every request in [`Msg::ForRegister`] and accept only
    /// replies wrapped with the same id. The register's group plays the
    /// paper's `S`, including in fast-read admissibility (the witness
    /// selector's `needed = S − a·t` uses the group size).
    ///
    /// # Panics
    ///
    /// Panics if the group is not larger than the configured fault bound
    /// (no quorum could ever assemble).
    pub fn with_scope(mut self, register: RegisterId, group: Vec<ServerId>) -> Self {
        assert!(group.len() > self.config.max_faults(), "group must outnumber faults");
        self.scope = Scope {
            quorum: group.len() - self.config.max_faults(),
            targets: group,
            wrap: Some(register),
            joint: None,
            epoch: ConfigEpoch::ZERO,
        };
        // Re-bind to the register's group under the *current* epoch.
        if let Some(view) = &self.view {
            self.scope.refresh_from(view);
        }
        self
    }

    /// Re-derives the scope from the shared view when the epoch moved —
    /// the cheap per-operation check (one atomic load in the common case).
    fn refresh_scope(&mut self) {
        if let Some(view) = &self.view {
            self.scope.refresh_from(view);
        }
    }

    /// Enables payload accounting (builder-style): each fast read
    /// additionally encodes its requests and processed replies to count
    /// logical wire bytes (the bench harness turns this on; it is off by
    /// default because the extra encode costs O(payload) inside the
    /// operation).
    pub fn with_measure_payload(mut self, on: bool) -> Self {
        self.measure_payload = on;
        self
    }

    /// Enables payload accounting.
    #[deprecated(since = "0.2.0", note = "use the builder-style with_measure_payload")]
    pub fn set_measure_payload(&mut self, on: bool) -> &mut Self {
        self.measure_payload = on;
        self
    }

    /// Wire bytes the last fast read moved (encoded requests to all servers
    /// plus every processed reply); 0 for slow reads or when payload
    /// accounting is off. The regression signal for payload growth:
    /// full-info grows with history, delta stays flat.
    pub fn last_read_payload_bytes(&self) -> u64 {
        self.last_payload
    }

    /// Number of `valQueue` entries currently held (bounded under GC).
    pub fn val_queue_len(&self) -> usize {
        self.val_queue.len()
    }

    /// Leaves the cluster: tells a quorum of servers to drop this reader's
    /// registrations and GC membership, consuming the client. See the
    /// "client churn" section of the server module docs for why a departed
    /// client never wedges the acknowledged-floor GC.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Timeout`] if a quorum cannot acknowledge
    /// the departure; the servers that did hear it have already cleaned up.
    pub fn depart(mut self) -> Result<(), RuntimeError> {
        self.refresh_scope();
        let op = OpId { client: ClientId::Reader(self.id), seq: self.next_seq };
        self.next_seq += 1;
        let handle = OpHandle { op, phase: 1 };
        round_trip(
            &self.endpoint,
            &self.scope,
            self.view.as_deref(),
            Msg::Depart { handle },
            self.timeout,
            self.retry,
            |msg| match msg {
                Msg::DepartAck { handle: h } if h == handle => Some(()),
                _ => None,
            },
        )?;
        Ok(())
    }

    /// Reads the register, blocking until the protocol's round-trips
    /// complete.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Timeout`] if a quorum cannot be assembled.
    pub fn read(&mut self) -> Result<TaggedValue, RuntimeError> {
        self.refresh_scope();
        let op = OpId { client: ClientId::Reader(self.id), seq: self.next_seq };
        self.next_seq += 1;
        // The sampling decision is made at invocation and held for the
        // completion so the auditor never sees half an operation.
        let sampled = self.tap.as_ref().is_some_and(|t| t.samples_read(op.seq));
        if sampled {
            if let Some(tap) = &self.tap {
                tap.invoked(op.client, op.seq, OpKind::Read);
            }
        }
        let floor_before = self.gc_floor;
        let returned = match self.mode {
            ReadMode::Slow => {
                let handle = OpHandle { op, phase: 1 };
                let acks = round_trip(
                    &self.endpoint,
                    &self.scope,
                    self.view.as_deref(),
                    Msg::Query { handle },
                    self.timeout,
                    self.retry,
                    |msg| match msg {
                        Msg::QueryAck { handle: h, latest } if h == handle => Some(latest),
                        _ => None,
                    },
                )?;
                let best = acks.values().copied().max().unwrap_or_default();
                let handle = OpHandle { op, phase: 2 };
                round_trip(
                    &self.endpoint,
                    &self.scope,
                    self.view.as_deref(),
                    Msg::Update { handle, value: best, floor: self.floor },
                    self.timeout,
                    self.retry,
                    |msg| match msg {
                        Msg::UpdateAck { handle: h } if h == handle => Some(()),
                        _ => None,
                    },
                )?;
                best
            }
            ReadMode::Fast | ReadMode::Adaptive => {
                let epoch_before = self.scope.epoch;
                let handle = OpHandle { op, phase: 1 };
                let replies = self.fast_round(handle)?;
                // A round that straddled a reconfiguration collected its
                // quorum under a refreshed *clone* of the scope (see
                // `round_trip_per_server`), so the persistent scope this
                // decision consults is stale. Re-derive it and, if the
                // epoch moved mid-round, force the write-back path: fast
                // selection's witness counting is only defined within the
                // single configuration the round started in. The view's
                // epoch is bumped before any server can produce the higher
                // tag, so an unchanged epoch here proves the round ran
                // entirely inside one configuration.
                self.refresh_scope();
                let straddled = self.scope.epoch != epoch_before;
                match replies {
                    FastReplies::Full(snaps) => {
                        for s in &snaps {
                            self.val_queue.extend(s.entries.iter().map(|e| e.value));
                        }
                        self.prune_val_queue();
                        let (index, mask) =
                            WitnessIndex::from_views(snaps.iter().map(SnapshotView::Full));
                        self.decide_fast_read(op, &index, mask, straddled)?
                    }
                    FastReplies::Delta { replied, resync } => {
                        // The deltas already merged into the caches and the
                        // standing index; fold the replied servers' values
                        // into the valQueue and select straight off the
                        // index, masked to this read's quorum.
                        let LiveReader { val_queue, state, .. } = &mut *self;
                        for v in state.index().values_in(replied) {
                            val_queue.insert(v);
                        }
                        self.prune_val_queue();
                        self.decide_fast_read(
                            op,
                            self.state.index(),
                            replied,
                            resync || straddled,
                        )?
                    }
                }
            }
        };
        self.floor = self.floor.max(returned);
        if let Some(tap) = &self.tap {
            if sampled {
                tap.completed(op.client, op.seq, OpResult::Read(returned));
            }
            if self.gc_floor > floor_before {
                tap.floor_advance(self.gc_floor);
            }
        }
        Ok(returned)
    }

    /// Drops `valQueue` entries below the announced GC floor: they are
    /// below every client's completed-operation floor, so no read can ever
    /// return them again (see the GC argument in the server module docs).
    fn prune_val_queue(&mut self) {
        if self.gc_floor > TaggedValue::initial() {
            let keep = self.gc_floor;
            self.val_queue.retain(|v| *v >= keep);
        }
    }

    /// The mode's return-value selection over an already-built witness
    /// index; the adaptive slow path pays its write-back round here.
    ///
    /// `resync` is set when a replying server was rebuilt by state
    /// transfer since our last contact (its delta restarted from 0): our
    /// own registrations on it may not have survived the crash, so fast
    /// selection's degree counts cannot be trusted for this read — it is
    /// forced through a write-back round, after which the registrations
    /// are re-established and fast reads resume.
    ///
    /// A joint scope (a reconfiguration's transition window) forces the
    /// same write-back unconditionally: fast selection's witness counting
    /// is defined within *one* configuration, and the write-back round —
    /// which under a joint scope lands on a quorum of both — is the
    /// classical, always-linearizable path. Fast reads resume the moment
    /// the new epoch commits and the scope turns stable again.
    fn decide_fast_read(
        &self,
        op: OpId,
        index: &WitnessIndex,
        mask: u128,
        resync: bool,
    ) -> Result<TaggedValue, RuntimeError> {
        let resync = resync || self.scope.joint.is_some();
        if self.mode == ReadMode::Fast {
            // A scoped reader's world is its register's group: the witness
            // selector's `needed = S − a·t` must use the group size, not the
            // whole cluster. The degree cap keeps the global `R` — an upper
            // bound on the readers actually touching this register, which
            // only deepens the (soundness-neutral) candidate search.
            let mut sel = index.selector(
                mask,
                self.scope.targets.len(),
                self.config.max_faults(),
                self.config.readers() + 1,
            );
            if resync || self.gc_floor > self.floor {
                // Late joiner: the announced floor outran our own
                // completed-op floor, so servers may have pruned every
                // value this client could witness at degree 1. Secure the
                // snapshot maximum with a write-back round instead of
                // trusting fast selection (mirrors the simulator client;
                // see the GC argument in the server module docs).
                let max_v = sel.max_candidate().unwrap_or_else(TaggedValue::initial);
                let handle = OpHandle { op, phase: 2 };
                round_trip(
                    &self.endpoint,
                    &self.scope,
                    self.view.as_deref(),
                    Msg::Update { handle, value: max_v, floor: self.floor },
                    self.timeout,
                    self.retry,
                    |msg| match msg {
                        Msg::UpdateAck { handle: h } if h == handle => Some(()),
                        _ => None,
                    },
                )?;
                return Ok(max_v);
            }
            return Ok(sel.select_return_value());
        }
        // Adaptive: return the maximum fast when it is safely admissible;
        // secure it with a write-back otherwise.
        let cap = mwr_core::adaptive_degree_cap(
            self.scope.targets.len(),
            self.config.max_faults(),
            self.config.readers(),
        );
        let mut sel =
            index.selector(mask, self.scope.targets.len(), self.config.max_faults(), cap);
        let max_v = sel.max_candidate().unwrap_or_else(TaggedValue::initial);
        if resync || sel.degree(max_v).is_none() {
            let handle = OpHandle { op, phase: 2 };
            round_trip(
                &self.endpoint,
                &self.scope,
                self.view.as_deref(),
                Msg::Update { handle, value: max_v, floor: self.floor },
                self.timeout,
                self.retry,
                |msg| match msg {
                    Msg::UpdateAck { handle: h } if h == handle => Some(()),
                    _ => None,
                },
            )?;
        }
        Ok(max_v)
    }

    /// Runs the fast-read round-trip on the configured wire, accounting
    /// payload bytes. On the delta wire the quorum's deltas merge straight
    /// into the reader's caches and standing witness index — nothing is
    /// reconstructed or cloned.
    fn fast_round(&mut self, handle: OpHandle) -> Result<FastReplies, RuntimeError> {
        let measure = self.measure_payload;
        let mut bytes = 0u64;
        let replies = match self.wire {
            FastWire::FullInfo => {
                let val_queue: Vec<TaggedValue> = self.val_queue.iter().copied().collect();
                let request = Msg::ReadFast { handle, val_queue };
                if measure {
                    bytes += request.encoded_len() as u64 * self.scope.targets.len() as u64;
                }
                let moved = std::cell::Cell::new(0u64);
                let acks = round_trip(
                    &self.endpoint,
                    &self.scope,
                    self.view.as_deref(),
                    request,
                    self.timeout,
                    self.retry,
                    |msg| {
                        if !matches!(&msg, Msg::ReadFastAck { handle: h, .. } if *h == handle) {
                            return None;
                        }
                        if measure {
                            moved.set(moved.get() + msg.encoded_len() as u64);
                        }
                        let Msg::ReadFastAck { snapshot, .. } = msg else { unreachable!() };
                        Some(snapshot)
                    },
                )?;
                bytes += moved.get();
                FastReplies::Full(acks.into_values().collect())
            }
            FastWire::Delta | FastWire::Runs => {
                let moved = std::cell::Cell::new(0u64);
                let state = &mut self.state;
                let val_queue = &self.val_queue;
                let floor = self.floor;
                // The Runs wire (v4) is the delta protocol with
                // run-length-encoded acks; only the frame kinds differ.
                let runs = matches!(self.wire, FastWire::Runs);
                let acks = round_trip_per_server(
                    &self.endpoint,
                    &self.scope,
                    self.view.as_deref(),
                    |sid| {
                        let cache = state.cache(sid);
                        let acked = cache.acked_version();
                        let new_values = cache.unacknowledged(val_queue);
                        let request = if runs {
                            Msg::ReadFastRuns { handle, acked, floor, new_values }
                        } else {
                            Msg::ReadFastDelta { handle, acked, floor, new_values }
                        };
                        if measure {
                            moved.set(moved.get() + request.encoded_len() as u64);
                        }
                        request
                    },
                    self.timeout,
                    self.retry,
                    |msg| {
                        if !matches!(
                            &msg,
                            Msg::ReadFastDeltaAck { handle: h, .. }
                            | Msg::ReadFastRunsAck { handle: h, .. } if *h == handle
                        ) {
                            return None;
                        }
                        if measure {
                            moved.set(moved.get() + msg.encoded_len() as u64);
                        }
                        let (Msg::ReadFastDeltaAck { delta, .. }
                        | Msg::ReadFastRunsAck { delta, .. }) = msg
                        else {
                            unreachable!()
                        };
                        Some(delta)
                    },
                )?;
                bytes += moved.get();
                let mut replied = 0u128;
                let mut resync = false;
                for (sid, delta) in &acks {
                    if delta.from < self.state.cache(*sid).acked_version() {
                        // The server was rebuilt by state transfer since
                        // our last contact: its delta restarts below what
                        // we acknowledged. Drop the stale cache mirror
                        // (and its witness-index bits) and resynchronize
                        // from the full refresh the server sent.
                        self.state.reset(*sid);
                        resync = true;
                    }
                    self.state.merge(*sid, delta);
                    self.gc_floor = self.gc_floor.max(delta.pruned);
                    replied |= FastReadState::mask_bit(*sid);
                }
                FastReplies::Delta { replied, resync }
            }
        };
        self.last_payload = bytes;
        Ok(replies)
    }
}

/// What one fast-read round-trip produced, per wire format.
enum FastReplies {
    /// Full-info: the quorum's owned snapshots.
    Full(Vec<Snapshot>),
    /// Delta: the deltas already merged into the reader state.
    Delta {
        /// Mask of servers that replied in this round's quorum.
        replied: u128,
        /// A replying server restarted its delta stream (state-transfer
        /// rebuild): this read must not trust fast selection.
        resync: bool,
    },
}

/// Broadcasts one request to the scope's servers and blocks until its
/// quorum of matching replies arrives, discarding stale or non-matching
/// messages. The matcher consumes each message, so matched payloads move
/// out without cloning.
fn round_trip<E: Endpoint, T>(
    endpoint: &E,
    scope: &Scope,
    view: Option<&ClusterView>,
    request: Msg,
    timeout: Duration,
    retry: RetryPolicy,
    matcher: impl FnMut(Msg) -> Option<T>,
) -> Result<BTreeMap<ServerId, T>, RuntimeError> {
    round_trip_per_server(endpoint, scope, view, |_| request.clone(), timeout, retry, matcher)
}

/// Broadcasts one (possibly per-server) request to every server in the
/// scope, wrapped for the scope's register and tagged with its epoch.
fn broadcast_scope<E: Endpoint>(
    endpoint: &E,
    scope: &Scope,
    request_for: &mut impl FnMut(ServerId) -> Msg,
) {
    // One batched broadcast: the transport amortizes its locking over
    // the whole fan-out, and a dead server is exactly the failure the
    // quorum tolerates (send_batch is best-effort by contract). Mixed-
    // register backlog coalesces into the same per-peer pipelines.
    let batch: Vec<(ProcessId, Msg)> = scope
        .targets
        .iter()
        .map(|&s| {
            let request = match scope.wrap {
                Some(register) => Msg::ForRegister { register, inner: Box::new(request_for(s)) },
                None => request_for(s),
            };
            // The epoch header goes outermost (elided at epoch 0, so the
            // legacy wire is byte-identical): servers adopt it before
            // unwrapping the register frame.
            (ProcessId::Server(s), request.in_epoch(scope.epoch))
        })
        .collect();
    endpoint.send_batch(batch);
}

/// Like [`round_trip`], but with a per-server request — the delta fast read
/// sends each server only what that server has not acknowledged.
///
/// Each attempt re-broadcasts and waits up to `timeout`; acks accumulate
/// in a per-server map *across* attempts, so a duplicate reply from a
/// re-broadcast can never double-count toward the quorum, and a straggler
/// from an earlier attempt still completes a later one.
///
/// A wrapped scope adds the [`Msg::ForRegister`] frame header on the way
/// out and strips it (register-checked) on the way in, so the matcher sees
/// only its own register's bare replies — a shared endpoint can carry many
/// scoped clients' traffic without cross-talk.
///
/// Epoch handling: every reply's epoch header is stripped before matching.
/// A reply tagged with a *higher* epoch than the scope means the cluster
/// reconfigured mid-round: the scope re-derives itself from the shared
/// view (which the coordinator installed before any server could produce
/// that tag) and the request is re-broadcast under the new coverage. The
/// acks already collected keep counting — each records an idempotent
/// server-side effect that happened, and the refreshed satisfaction rule
/// is re-evaluated over the whole map — so an in-flight operation rides
/// through a reconfiguration instead of timing out. The refresh works on
/// a local clone; the client's persistent scope catches up at the next
/// operation's `refresh_scope`.
fn round_trip_per_server<E: Endpoint, T>(
    endpoint: &E,
    scope: &Scope,
    view: Option<&ClusterView>,
    mut request_for: impl FnMut(ServerId) -> Msg,
    timeout: Duration,
    retry: RetryPolicy,
    mut matcher: impl FnMut(Msg) -> Option<T>,
) -> Result<BTreeMap<ServerId, T>, RuntimeError> {
    let mut scope = scope.clone();
    let mut acks: BTreeMap<ServerId, T> = BTreeMap::new();
    let attempts = retry.attempts.max(1);
    for attempt in 0..attempts {
        if attempt > 0 && !retry.backoff.is_zero() {
            std::thread::sleep(retry.backoff);
        }
        if let Some(view) = view {
            scope.refresh_from(view);
        }
        broadcast_scope(endpoint, &scope, &mut request_for);
        let deadline = Instant::now() + timeout;
        while !scope.satisfied(&acks) {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match endpoint.inbox().recv_timeout(deadline - now) {
                Ok((from, msg)) => {
                    let (frame_epoch, msg) = msg.into_epoch_parts();
                    if frame_epoch > scope.epoch {
                        if let Some(view) = view {
                            if scope.refresh_from(view) {
                                broadcast_scope(endpoint, &scope, &mut request_for);
                            }
                        }
                    }
                    let Some(msg) = scope.unwrap(msg) else { continue };
                    if let (ProcessId::Server(sid), Some(payload)) = (from, matcher(msg)) {
                        acks.insert(sid, payload);
                    }
                }
                Err(_) => break,
            }
        }
        if scope.satisfied(&acks) {
            return Ok(acks);
        }
    }
    Err(RuntimeError::Timeout {
        waited: timeout,
        collected: acks.len(),
        required: scope.quorum,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::spawn_server;
    use crate::transport::InMemoryTransport;

    fn cluster(
        config: ClusterConfig,
    ) -> (InMemoryTransport, Vec<crate::server::ServerHandle>) {
        let transport = InMemoryTransport::new();
        let servers = config
            .server_ids()
            .map(|s| spawn_server(transport.register(ProcessId::Server(s))))
            .collect();
        (transport, servers)
    }

    #[test]
    fn slow_write_then_fast_read_round_trips() {
        let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
        let (transport, servers) = cluster(config);
        let mut writer = LiveWriter::new(
            transport.register(ProcessId::writer(0)),
            WriterId::new(0),
            config,
            WriteMode::Slow,
        );
        let mut reader = LiveReader::new(
            transport.register(ProcessId::reader(0)),
            ReaderId::new(0),
            config,
            ReadMode::Fast,
        );
        let written = writer.write(Value::new(42)).unwrap();
        assert_eq!(written.tag(), Tag::new(1, WriterId::new(0)));
        let read = reader.read().unwrap();
        assert_eq!(read, written);
        for s in servers {
            assert!(s.shutdown() > 0);
        }
    }

    #[test]
    fn quorum_survives_t_dead_servers() {
        let config = ClusterConfig::new(3, 1, 1, 1).unwrap();
        let transport = InMemoryTransport::new();
        // Only bring up 2 of 3 servers: the third is "crashed".
        let s0 = spawn_server(transport.register(ProcessId::server(0)));
        let s1 = spawn_server(transport.register(ProcessId::server(1)));
        let mut writer = LiveWriter::new(
            transport.register(ProcessId::writer(0)),
            WriterId::new(0),
            config,
            WriteMode::Slow,
        );
        let written = writer.write(Value::new(7)).unwrap();
        assert_eq!(written.value(), Value::new(7));
        s0.shutdown();
        s1.shutdown();
    }

    #[test]
    fn timeout_when_quorum_is_unreachable() {
        let config = ClusterConfig::new(3, 1, 1, 1).unwrap();
        let transport = InMemoryTransport::new();
        // Only 1 of 3 servers up: quorum of 2 can never assemble.
        let s0 = spawn_server(transport.register(ProcessId::server(0)));
        let mut writer = LiveWriter::new(
            transport.register(ProcessId::writer(0)),
            WriterId::new(0),
            config,
            WriteMode::Slow,
        )
        .with_timeout(Duration::from_millis(100));
        let err = writer.write(Value::new(1)).unwrap_err();
        assert!(matches!(err, RuntimeError::Timeout { collected: 1, required: 2, .. }), "{err}");
        s0.shutdown();
    }

    /// With the retry knob on, a quorum that assembles only after the
    /// first attempt's timeout (a server coming up mid-recovery) completes
    /// the op instead of failing it. The default policy still fails fast —
    /// `timeout_when_quorum_is_unreachable` pins that.
    #[test]
    fn retry_rides_out_a_server_that_starts_late() {
        let config = ClusterConfig::new(3, 1, 1, 1).unwrap();
        let transport = InMemoryTransport::new();
        let s0 = spawn_server(transport.register(ProcessId::server(0)));
        let late = {
            let transport = transport.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(300));
                spawn_server(transport.register(ProcessId::server(1)))
            })
        };
        let mut writer = LiveWriter::new(
            transport.register(ProcessId::writer(0)),
            WriterId::new(0),
            config,
            WriteMode::Slow,
        )
        .with_timeout(Duration::from_millis(150))
        .with_retry(RetryPolicy::new(10, Duration::from_millis(50)));
        let written = writer.write(Value::new(9)).unwrap();
        assert_eq!(written.value(), Value::new(9));
        s0.shutdown();
        late.join().unwrap().shutdown();
    }

    /// Departing acknowledges through a quorum and unpins the GC floor the
    /// departed reader was holding down.
    #[test]
    fn depart_round_trips_and_consumes_the_client() {
        let config = ClusterConfig::new(3, 1, 1, 1).unwrap();
        let transport = InMemoryTransport::new();
        let servers: Vec<_> = config
            .server_ids()
            .map(|s| {
                crate::server::spawn_server_with(
                    transport.register(ProcessId::Server(s)),
                    mwr_core::RegisterServer::with_gc(config.readers() + config.writers()),
                )
            })
            .collect();
        let mut writer = LiveWriter::new(
            transport.register(ProcessId::writer(0)),
            WriterId::new(0),
            config,
            WriteMode::Slow,
        );
        let mut reader = LiveReader::new(
            transport.register(ProcessId::reader(0)),
            ReaderId::new(0),
            config,
            ReadMode::Fast,
        );
        writer.write(Value::new(1)).unwrap();
        reader.read().unwrap();
        reader.depart().unwrap();
        writer.depart().unwrap();
        for s in servers {
            s.shutdown();
        }
    }

    #[test]
    fn sequential_writers_get_increasing_tags() {
        let config = ClusterConfig::new(5, 1, 1, 2).unwrap();
        let (transport, servers) = cluster(config);
        let mut w0 = LiveWriter::new(
            transport.register(ProcessId::writer(0)),
            WriterId::new(0),
            config,
            WriteMode::Slow,
        );
        let mut w1 = LiveWriter::new(
            transport.register(ProcessId::writer(1)),
            WriterId::new(1),
            config,
            WriteMode::Slow,
        );
        let t1 = w0.write(Value::new(1)).unwrap();
        let t2 = w1.write(Value::new(2)).unwrap();
        let t3 = w0.write(Value::new(3)).unwrap();
        assert!(t1 < t2 && t2 < t3, "MWA0 over the live runtime");
        drop(servers);
    }
}
