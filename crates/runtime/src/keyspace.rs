//! Live keyspace clusters: one [`ServerBank`] thread per server, shard-aware
//! crash and rejoin.
//!
//! A keyspace cluster differs from [`RuntimeCluster`](crate::RuntimeCluster)
//! in what a server *is*: not one Algorithm 2 automaton but a bank of them,
//! lazily instantiated per register and multiplexed over a single endpoint
//! by the [`Msg::ForRegister`] frame header. Fault injection is the same
//! operation as on the single-register cluster; **rejoin** is where the
//! sharding shows. A rejoining server does not fetch "the" state — it
//! fetches one [`Msg::ShardFetch`] round per shard its rendezvous groups
//! assign it, and every shard must independently assemble a quorum
//! (`g − t`) of peer snapshots before the bank may serve again. Fewer could
//! miss a completed write on that shard, so one starved shard refuses the
//! whole rejoin — per-register soundness is never traded for availability.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mwr_core::{Msg, Protocol, RegisterTransfer, Router, ServerBank, StateTransfer, MAX_MEMBERS};
use mwr_types::{ConfigEpoch, KeyspaceConfig, ProcessId, RegisterId};

use crate::cluster::COORDINATOR;
use crate::server::{spawn_bank_with, ServerHandle};
use crate::tcp::TcpRegistry;
use crate::transport::{Endpoint, EndpointFactory, InMemoryTransport, TransportError};
use crate::view::{ClusterView, ViewPlan, ViewState};

/// A running keyspace cluster over any [`EndpointFactory`]: every server
/// hosts a [`ServerBank`], clients are minted per key by the `mwr-keyspace`
/// facade.
///
/// # Examples
///
/// ```
/// use mwr_core::Protocol;
/// use mwr_runtime::{InMemoryTransport, KeyspaceCluster};
/// use mwr_types::KeyspaceConfig;
///
/// let config = KeyspaceConfig::new(5, 1, 3, 8, 2, 2)?;
/// let cluster = KeyspaceCluster::start_on(InMemoryTransport::new(), config, Protocol::W2Ra)?;
/// assert_eq!(cluster.live_servers(), vec![0, 1, 2, 3, 4]);
/// cluster.shutdown();
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct KeyspaceCluster<F: EndpointFactory> {
    config: KeyspaceConfig,
    protocol: Protocol,
    router: Router,
    factory: F,
    servers: Vec<ServerHandle>,
    /// Bank-wide version beacons captured at crash time (max over the
    /// bank's registers): the floor every rebuilt register resumes above.
    crashed: HashMap<u32, u64>,
    /// Monotone nonce distinguishing shard-fetch rounds, as in the
    /// single-register cluster's rejoin.
    fetch_nonce: u64,
    /// The next server id a reconfiguration will mint (retired ids are
    /// never reused; the router's member bitset tracks the current set).
    next_server_id: u32,
    /// The configuration epoch the keyspace is in.
    epoch: ConfigEpoch,
    /// The shared view scoped clients follow through reconfigurations.
    view: Arc<ClusterView>,
}

/// A running in-memory keyspace cluster.
pub type LiveKeyspaceCluster = KeyspaceCluster<InMemoryTransport>;

/// A running TCP keyspace cluster on loopback.
pub type TcpKeyspaceCluster = KeyspaceCluster<TcpRegistry>;

impl<F: EndpointFactory> KeyspaceCluster<F> {
    /// Starts every server of `config` as a [`ServerBank`] thread over
    /// endpoints from `factory`, with acknowledged-floor GC sized to the
    /// client population (per register, as on the single-register cluster).
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] if a server endpoint cannot be opened.
    pub fn start_on(
        factory: F,
        config: KeyspaceConfig,
        protocol: Protocol,
    ) -> Result<Self, TransportError> {
        let router = Router::for_keyspace(&config);
        let population = config.readers() + config.writers();
        let mut servers = Vec::with_capacity(config.servers());
        for s in config.server_ids() {
            let endpoint = factory.open(ProcessId::Server(s))?;
            servers.push(spawn_bank_with(endpoint, ServerBank::new(population, router)));
        }
        let view = ClusterView::stable_keyspace(router, config.group_quorum());
        Ok(KeyspaceCluster {
            next_server_id: config.servers() as u32,
            config,
            protocol,
            router,
            factory,
            servers,
            crashed: HashMap::new(),
            fetch_nonce: 0,
            epoch: ConfigEpoch::ZERO,
            view,
        })
    }

    /// The keyspace configuration.
    pub fn config(&self) -> KeyspaceConfig {
        self.config
    }

    /// The protocol clients will run inside each shard group.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// The deterministic register → shard → group router.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// The transport factory, for opening client endpoints.
    pub fn factory(&self) -> &F {
        &self.factory
    }

    /// The current member server ids, ascending (the router's bitset).
    pub fn members(&self) -> Vec<u32> {
        self.router.member_ids().map(|s| s.index()).collect()
    }

    /// The configuration epoch the keyspace is in: 0 until the first
    /// reconfiguration, then `+2` per completed (or aborted) handover.
    pub fn epoch(&self) -> ConfigEpoch {
        self.epoch
    }

    /// The shared configuration view scoped clients follow. The facade
    /// attaches it to every per-key client it mints, so clients re-derive
    /// their register's group from the *current* router at each operation.
    pub fn view(&self) -> Arc<ClusterView> {
        Arc::clone(&self.view)
    }

    /// Crashes server `idx`: removes it from the transport's delivery map,
    /// stops its bank thread, and records the bank's version beacon (the
    /// max across its registers) as the floor a rejoin resumes above.
    ///
    /// # Panics
    ///
    /// Panics if the server was already crashed.
    pub fn crash_server(&mut self, idx: u32) {
        let pos = self
            .servers
            .iter()
            .position(|h| h.id() == ProcessId::server(idx))
            .unwrap_or_else(|| panic!("server {idx} already crashed or unknown"));
        let handle = self.servers.swap_remove(pos);
        self.factory.close(ProcessId::server(idx));
        let beacon = handle.beacon();
        handle.shutdown();
        // Read the beacon after the join so it covers every message the
        // bank ever processed — the stable-storage record of the crash
        // model, shared by all of the bank's registers.
        self.crashed
            .insert(idx, beacon.load(std::sync::atomic::Ordering::Acquire));
    }

    /// Brings a crashed server back with per-shard state transfer: one
    /// [`Msg::ShardFetch`] round per shard in
    /// [`Router::shards_on`]`(idx)`, each requiring a quorum (`g − t`) of
    /// that shard's surviving group members, then a
    /// [`ServerBank::recovered`] bank spawned only once **every** shard has
    /// its quorum. Registers a peer never instantiated are simply absent
    /// from its snapshot — lazy instantiation means the peer processed no
    /// message for them, so the empty transfer is vacuously complete.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Io`] with [`std::io::ErrorKind::TimedOut`]
    /// if any shard's quorum does not assemble within 5 seconds; the crash
    /// bookkeeping is preserved so the attempt can be retried.
    ///
    /// # Panics
    ///
    /// Panics if the server is still running.
    pub fn rejoin_server(&mut self, idx: u32) -> Result<(), TransportError> {
        self.rejoin_server_within(idx, Duration::from_secs(5))
    }

    /// [`rejoin_server`](Self::rejoin_server) with an explicit fetch window.
    ///
    /// # Errors
    ///
    /// As [`rejoin_server`](Self::rejoin_server).
    ///
    /// # Panics
    ///
    /// Panics if the server is still running.
    pub fn rejoin_server_within(
        &mut self,
        idx: u32,
        fetch_timeout: Duration,
    ) -> Result<(), TransportError> {
        assert!(
            self.servers.iter().all(|h| h.id() != ProcessId::server(idx)),
            "server {idx} is still running"
        );
        let version_floor = self.crashed.get(&idx).copied().unwrap_or(0);
        let me = ProcessId::server(idx);
        let endpoint = self.factory.open(me)?;
        self.fetch_nonce += 1;
        let nonce = self.fetch_nonce;
        let shards = self.router.shards_on(mwr_types::ServerId::new(idx));
        let required = self.config.group_quorum();
        // One fetch per (shard, surviving group member): groups differ per
        // shard, so the batch is assembled per shard rather than cluster-wide.
        let batch: Vec<(ProcessId, Msg)> = shards
            .iter()
            .flat_map(|&shard| {
                self.router
                    .group(shard)
                    .into_iter()
                    .map(ProcessId::Server)
                    .filter(|p| *p != me)
                    .map(move |p| (p, Msg::ShardFetch { shard, nonce }))
            })
            .collect();
        // shard → peer → that peer's per-register exports, deduped by peer
        // so a re-broadcast can never double-count a snapshot toward quorum.
        let mut gathered: BTreeMap<u32, BTreeMap<ProcessId, Vec<RegisterTransfer>>> =
            shards.iter().map(|&s| (s, BTreeMap::new())).collect();
        let quorate =
            |g: &BTreeMap<u32, BTreeMap<ProcessId, Vec<RegisterTransfer>>>| {
                g.values().all(|peers| peers.len() >= required)
            };
        let deadline = Instant::now() + fetch_timeout;
        // Same re-broadcast discipline as the single-register rejoin: the
        // round is idempotent and a peer's first reply can be lost to a
        // pipeline still aimed at this server's previous incarnation.
        let rebroadcast_every = (fetch_timeout / 10).max(Duration::from_millis(10));
        'fetch: while !quorate(&gathered) {
            if Instant::now() >= deadline {
                break;
            }
            endpoint.send_batch(batch.clone());
            let round_ends = (Instant::now() + rebroadcast_every).min(deadline);
            while !quorate(&gathered) {
                let now = Instant::now();
                if now >= round_ends {
                    break;
                }
                match endpoint.inbox().recv_timeout(round_ends - now) {
                    // Client traffic racing the fetch window is dropped:
                    // the bank is not serving yet. Past epoch 0 replies
                    // arrive epoch-tagged; strip the header first.
                    Ok((from, msg)) => {
                        if let (_, Msg::ShardSnapshot { nonce: n, shard, registers }) =
                            msg.into_epoch_parts()
                        {
                            if n == nonce {
                                if let Some(peers) = gathered.get_mut(&shard) {
                                    peers.insert(from, registers);
                                }
                            }
                        }
                    }
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => break,
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break 'fetch,
                }
            }
        }
        if !quorate(&gathered) {
            // One starved shard refuses the whole rejoin: a bank serving
            // shard A while shard B's transfer is partial could miss a
            // completed write on B. Withdraw the endpoint.
            self.factory.close(me);
            drop(endpoint);
            return Err(TransportError::Io { kind: std::io::ErrorKind::TimedOut });
        }
        let mut transfers: BTreeMap<RegisterId, Vec<StateTransfer>> = BTreeMap::new();
        for peers in gathered.into_values() {
            for registers in peers.into_values() {
                for t in registers {
                    transfers.entry(t.register).or_default().push(t.state);
                }
            }
        }
        let population = self.config.readers() + self.config.writers();
        let bank = ServerBank::recovered(population, self.router, version_floor, &transfers);
        let handle = spawn_bank_with(endpoint, bank);
        // The rejoined bank resumes in the keyspace's current epoch.
        handle.announce_epoch(self.epoch);
        self.servers.push(handle);
        self.crashed.remove(&idx);
        Ok(())
    }

    /// Reconfigures the live server set with per-shard handover: mints
    /// `add` fresh server ids, retires the members in `remove`, and
    /// re-routes every shard under the new rendezvous member set — while
    /// per-key clients keep serving.
    ///
    /// The schedule is the single-register
    /// [`RuntimeCluster::reconfigure`](crate::RuntimeCluster::reconfigure)
    /// run per shard group:
    ///
    /// 1. **Join** — added banks spawn empty; the view flips to a joint
    ///    epoch where each register's scope is the *union* of its old and
    ///    new groups with a `g − t` quorum required in each, and fast
    ///    reads write back.
    /// 2. **Transfer** — for every `(server, shard)` pair the new routing
    ///    adds (a joiner's shards, but also a *survivor* promoted into a
    ///    group when a removal changed the rendezvous ranking), the
    ///    coordinator fetches the shard from a `g − t` quorum of its old
    ///    group and installs it via [`Msg::ShardInstall`]. No quorum, no
    ///    commit.
    /// 3. **Commit** — the view flips to a stable epoch over the new
    ///    router; removed banks are torn down. Shards route only within
    ///    their own groups, so a handover on one shard never moves another
    ///    shard's floors (no cross-key bleed — pinned by the integration
    ///    tests).
    ///
    /// Returns the added servers' ids.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Io`] with [`std::io::ErrorKind::TimedOut`]
    /// on a refused handover (rolled forward to the old member set), or
    /// any endpoint-open error from the transport.
    ///
    /// Crashed members need not rejoin first: with at most `t` of a
    /// shard's old group down its transfer quorum still assembles; with
    /// more the handover refuses and rolls forward to the old routing.
    ///
    /// # Panics
    ///
    /// Panics if `remove` names a non-member, the change is empty, the
    /// resulting shape is invalid, or the id space would outgrow
    /// [`MAX_MEMBERS`].
    pub fn reconfigure(&mut self, add: usize, remove: &[u32]) -> Result<Vec<u32>, TransportError> {
        self.reconfigure_within(add, remove, Duration::from_secs(5))
    }

    /// [`reconfigure`](Self::reconfigure) with an explicit state-transfer
    /// window.
    ///
    /// # Errors
    ///
    /// As [`reconfigure`](Self::reconfigure).
    ///
    /// # Panics
    ///
    /// As [`reconfigure`](Self::reconfigure).
    pub fn reconfigure_within(
        &mut self,
        add: usize,
        remove: &[u32],
        window: Duration,
    ) -> Result<Vec<u32>, TransportError> {
        assert!(add > 0 || !remove.is_empty(), "reconfigure must change the member set");
        let old_router = self.router;
        for &r in remove {
            assert!(
                old_router.members() & (1u128 << r) != 0,
                "removed server {r} is not a member"
            );
        }
        assert!(
            (self.next_server_id as usize + add) <= MAX_MEMBERS,
            "server id space exhausted (max {MAX_MEMBERS} ids)"
        );
        let added: Vec<u32> = (0..add as u32).map(|i| self.next_server_id + i).collect();
        let mut new_mask = old_router.members();
        for &r in remove {
            new_mask &= !(1u128 << r);
        }
        for &a in &added {
            new_mask |= 1u128 << a;
        }
        let new_config = self
            .config
            .reconfigured(new_mask.count_ones() as usize)
            .unwrap_or_else(|e| panic!("invalid reconfigured shape: {e}"));
        let new_router =
            Router::with_members(new_mask, old_router.group_size(), old_router.shards());
        self.next_server_id += add as u32;

        // 1. Join: added banks spawn empty under the new router and serve
        // immediately — every joint-window round also spans the old group.
        let population = self.config.readers() + self.config.writers();
        for &id in &added {
            match self.factory.open(ProcessId::server(id)) {
                Ok(endpoint) => {
                    self.servers
                        .push(spawn_bank_with(endpoint, ServerBank::new(population, new_router)));
                }
                Err(e) => {
                    self.teardown(&added);
                    return Err(e);
                }
            }
        }
        let joint_epoch = self.epoch.next();
        self.view.install(ViewState {
            epoch: joint_epoch,
            plan: ViewPlan::JointKeyspace {
                old: old_router,
                new: new_router,
                quorum: self.config.group_quorum(),
            },
        });
        for h in &self.servers {
            h.announce_epoch(joint_epoch);
        }
        self.epoch = joint_epoch;

        // 2. Transfer: every (server, shard) pair the new routing adds.
        let mut plan: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for shard in 0..old_router.shards() {
            let old_group = old_router.group(shard);
            for s in new_router.group(shard) {
                if !old_group.contains(&s) {
                    plan.entry(shard).or_default().push(s.index());
                }
            }
        }
        if !plan.is_empty() {
            if let Err(e) = self.transfer_shards(&old_router, &plan, window) {
                let abort_epoch = self.epoch.next();
                self.view.install(ViewState {
                    epoch: abort_epoch,
                    plan: ViewPlan::StableKeyspace {
                        router: old_router,
                        quorum: self.config.group_quorum(),
                    },
                });
                for h in &self.servers {
                    h.announce_epoch(abort_epoch);
                }
                self.epoch = abort_epoch;
                self.teardown(&added);
                return Err(e);
            }
        }

        // 3. Commit: stable view over the new router, then retire.
        let commit_epoch = self.epoch.next();
        self.view.install(ViewState {
            epoch: commit_epoch,
            plan: ViewPlan::StableKeyspace {
                router: new_router,
                quorum: new_config.group_quorum(),
            },
        });
        for h in &self.servers {
            h.announce_epoch(commit_epoch);
        }
        self.epoch = commit_epoch;
        self.teardown(remove);
        for r in remove {
            // A removed id is retired for good — even a crashed one can
            // never rejoin under the new configuration.
            self.crashed.remove(r);
        }
        self.config = new_config;
        self.router = new_router;
        Ok(added)
    }

    /// Fetches every shard in `plan` from a `g − t` quorum of its *old*
    /// group and installs the merged registers on each planned receiver,
    /// all through one temporary coordinator endpoint.
    fn transfer_shards(
        &mut self,
        old_router: &Router,
        plan: &BTreeMap<u32, Vec<u32>>,
        window: Duration,
    ) -> Result<(), TransportError> {
        self.fetch_nonce += 1;
        let nonce = self.fetch_nonce;
        let endpoint = self.factory.open(COORDINATOR)?;
        let required = self.config.group_quorum();
        let fetch: Vec<(ProcessId, Msg)> = plan
            .keys()
            .flat_map(|&shard| {
                old_router
                    .group(shard)
                    .into_iter()
                    .map(move |s| (ProcessId::Server(s), Msg::ShardFetch { shard, nonce }))
            })
            .collect();
        let mut gathered: BTreeMap<u32, BTreeMap<ProcessId, Vec<RegisterTransfer>>> =
            plan.keys().map(|&s| (s, BTreeMap::new())).collect();
        let result = (|| {
            let quorate = |g: &BTreeMap<u32, BTreeMap<ProcessId, Vec<RegisterTransfer>>>| {
                g.values().all(|peers| peers.len() >= required)
            };
            let deadline = Instant::now() + window;
            let rebroadcast_every = (window / 10).max(Duration::from_millis(10));
            'fetch: while !quorate(&gathered) {
                if Instant::now() >= deadline {
                    break;
                }
                endpoint.send_batch(fetch.clone());
                let round_ends = (Instant::now() + rebroadcast_every).min(deadline);
                while !quorate(&gathered) {
                    let now = Instant::now();
                    if now >= round_ends {
                        break;
                    }
                    match endpoint.inbox().recv_timeout(round_ends - now) {
                        // Donor banks already run at the joint epoch, so
                        // replies arrive epoch-tagged: strip before matching.
                        Ok((from, msg)) => {
                            if let (_, Msg::ShardSnapshot { nonce: n, shard, registers }) =
                                msg.into_epoch_parts()
                            {
                                if n == nonce {
                                    if let Some(peers) = gathered.get_mut(&shard) {
                                        peers.insert(from, registers);
                                    }
                                }
                            }
                        }
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => break,
                        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break 'fetch,
                    }
                }
            }
            if !quorate(&gathered) {
                return Err(TransportError::Io { kind: std::io::ErrorKind::TimedOut });
            }
            // Install each shard's merged registers on its receivers and
            // wait for every (receiver, shard) ack — an uninstalled pair
            // covers no pre-joint write on that shard.
            let mut install: Vec<(ProcessId, Msg)> = Vec::new();
            let mut expected: std::collections::BTreeSet<(ProcessId, u32)> =
                std::collections::BTreeSet::new();
            for (&shard, receivers) in plan {
                let registers: Vec<RegisterTransfer> = gathered
                    .get(&shard)
                    .into_iter()
                    .flat_map(|peers| peers.values().flatten().cloned())
                    .collect();
                for &r in receivers {
                    let to = ProcessId::server(r);
                    expected.insert((to, shard));
                    install.push((
                        to,
                        Msg::ShardInstall { nonce, shard, registers: registers.clone() },
                    ));
                }
            }
            let mut acked: std::collections::BTreeSet<(ProcessId, u32)> =
                std::collections::BTreeSet::new();
            let deadline = Instant::now() + window;
            'install: while acked.len() < expected.len() {
                if Instant::now() >= deadline {
                    break;
                }
                endpoint.send_batch(install.clone());
                let round_ends = (Instant::now() + rebroadcast_every).min(deadline);
                while acked.len() < expected.len() {
                    let now = Instant::now();
                    if now >= round_ends {
                        break;
                    }
                    match endpoint.inbox().recv_timeout(round_ends - now) {
                        Ok((from, msg)) => {
                            if let (_, Msg::ShardInstallAck { nonce: n, shard }) =
                                msg.into_epoch_parts()
                            {
                                if n == nonce && expected.contains(&(from, shard)) {
                                    acked.insert((from, shard));
                                }
                            }
                        }
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => break,
                        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break 'install,
                    }
                }
            }
            if acked.len() < expected.len() {
                return Err(TransportError::Io { kind: std::io::ErrorKind::TimedOut });
            }
            Ok(())
        })();
        self.factory.close(COORDINATOR);
        drop(endpoint);
        result
    }

    /// Closes and joins the named banks (reconfiguration teardown).
    fn teardown(&mut self, ids: &[u32]) {
        for &id in ids {
            if let Some(pos) =
                self.servers.iter().position(|h| h.id() == ProcessId::server(id))
            {
                let handle = self.servers.swap_remove(pos);
                self.factory.close(ProcessId::server(id));
                handle.shutdown();
            }
        }
    }

    /// Indices of the currently-running servers, ascending.
    pub fn live_servers(&self) -> Vec<u32> {
        let mut live: Vec<u32> = self
            .servers
            .iter()
            .filter_map(|h| match h.id() {
                ProcessId::Server(s) => Some(s.index()),
                ProcessId::Client(_) => None,
            })
            .collect();
        live.sort_unstable();
        live
    }

    /// Shuts down all remaining servers; returns total requests handled.
    pub fn shutdown(self) -> u64 {
        self.servers.into_iter().map(ServerHandle::shutdown).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{LiveReader, LiveWriter};
    use mwr_types::{ReaderId, Value, WriterId};

    /// Per-key clients over *shared* endpoints, exactly as the facade mints
    /// them: one endpoint per client id, `Arc`-cloned into each key's
    /// scoped client so all keys multiplex the same pipelines.
    struct ClientHub<F: EndpointFactory> {
        writer_ep: std::sync::Arc<F::Endpoint>,
        reader_ep: std::sync::Arc<F::Endpoint>,
    }

    impl<F: EndpointFactory> ClientHub<F> {
        fn new(cluster: &KeyspaceCluster<F>) -> Self {
            ClientHub {
                writer_ep: std::sync::Arc::new(
                    cluster.factory().open(WriterId::new(0).into()).unwrap(),
                ),
                reader_ep: std::sync::Arc::new(
                    cluster.factory().open(ReaderId::new(0).into()).unwrap(),
                ),
            }
        }

        #[allow(clippy::type_complexity)]
        fn scoped(
            &self,
            cluster: &KeyspaceCluster<F>,
            key: RegisterId,
        ) -> (
            LiveWriter<std::sync::Arc<F::Endpoint>>,
            LiveReader<std::sync::Arc<F::Endpoint>>,
        ) {
            let config = cluster.config().group_config();
            let group = cluster.router().group_of(key);
            let w = LiveWriter::new(
                std::sync::Arc::clone(&self.writer_ep),
                WriterId::new(0),
                config,
                cluster.protocol().write_mode(),
            )
            .with_scope(key, group.clone())
            .with_view(cluster.view());
            let r = LiveReader::new(
                std::sync::Arc::clone(&self.reader_ep),
                ReaderId::new(0),
                config,
                cluster.protocol().read_mode(),
            )
            .with_scope(key, group)
            .with_view(cluster.view());
            (w, r)
        }
    }

    #[test]
    fn keyspace_cluster_end_to_end_on_one_key() {
        let config = KeyspaceConfig::new(5, 1, 3, 8, 1, 1).unwrap();
        let cluster =
            KeyspaceCluster::start_on(InMemoryTransport::new(), config, Protocol::W2Ra).unwrap();
        let key = RegisterId::new(7);
        let hub = ClientHub::new(&cluster);
        let (mut w, mut r) = hub.scoped(&cluster, key);
        let written = w.write(Value::new(70)).unwrap();
        assert_eq!(r.read().unwrap(), written);
        drop((w, r));
        assert!(cluster.shutdown() > 0);
    }

    /// Crash a server, keep writing on two keys whose groups contain it,
    /// rejoin, then crash a different group member: the quorum for both
    /// keys can now only assemble through the rejoined bank, so the reads
    /// prove the per-shard transfers carried real state.
    #[test]
    fn rejoined_bank_serves_quorums_per_shard() {
        let config = KeyspaceConfig::new(4, 1, 4, 4, 1, 1).unwrap();
        let cluster =
            KeyspaceCluster::start_on(InMemoryTransport::new(), config, Protocol::W2R2).unwrap();
        // g = S = 4: every key's group is the whole cluster, so any server
        // serves every shard and the test controls membership exactly.
        let (k1, k2) = (RegisterId::new(1), RegisterId::new(2));
        let mut cluster = cluster;
        let hub = ClientHub::new(&cluster);
        let (mut w1, mut r1) = hub.scoped(&cluster, k1);
        let (mut w2, mut r2) = hub.scoped(&cluster, k2);
        w1.write(Value::new(10)).unwrap();
        w2.write(Value::new(20)).unwrap();
        cluster.crash_server(0);
        let d1 = w1.write(Value::new(11)).unwrap();
        let d2 = w2.write(Value::new(21)).unwrap();
        cluster.rejoin_server(0).unwrap();
        assert_eq!(cluster.live_servers(), vec![0, 1, 2, 3]);
        cluster.crash_server(1);
        let a1 = w1.write(Value::new(12)).unwrap();
        assert!(a1 > d1, "rejoined bank resumed k1's tags above the crash");
        assert_eq!(r1.read().unwrap(), a1, "k1 quorum through the rejoined bank");
        let a2 = r2.read().unwrap();
        assert!(a2 >= d2, "k2 never rewinds below its pre-rejoin write");
        assert_eq!(a2.value(), Value::new(21), "k2 state survived via transfer");
        drop((w1, r1, w2, r2));
        cluster.shutdown();
    }

    /// A rejoin with a starved shard quorum must refuse and withdraw its
    /// endpoint so the attempt can repeat.
    #[test]
    fn rejoin_without_shard_quorums_is_refused() {
        let config = KeyspaceConfig::new(3, 1, 3, 4, 1, 1).unwrap();
        let mut cluster =
            KeyspaceCluster::start_on(InMemoryTransport::new(), config, Protocol::W2R2).unwrap();
        cluster.crash_server(0);
        cluster.crash_server(1);
        let window = Duration::from_millis(300);
        assert!(matches!(
            cluster.rejoin_server_within(0, window),
            Err(TransportError::Io { kind: std::io::ErrorKind::TimedOut })
        ));
        assert_eq!(cluster.live_servers(), vec![2]);
        assert!(cluster.rejoin_server_within(0, window).is_err());
        cluster.shutdown();
    }

    /// Per-shard handover: add two servers, retire two originals, and
    /// check both that every key keeps serving through its (possibly
    /// reshaped) group and that one key's post-handover writes never bleed
    /// into another key.
    #[test]
    fn keyspace_reconfigure_keeps_keys_serving_and_shards_isolated() {
        let config = KeyspaceConfig::new(5, 1, 3, 8, 1, 1).unwrap();
        let mut cluster =
            KeyspaceCluster::start_on(InMemoryTransport::new(), config, Protocol::W2Ra).unwrap();
        let hub = ClientHub::new(&cluster);
        let (k1, k2) = (RegisterId::new(1), RegisterId::new(7));
        let (mut w1, mut r1) = hub.scoped(&cluster, k1);
        let (mut w2, mut r2) = hub.scoped(&cluster, k2);
        let b1 = w1.write(Value::new(10)).unwrap();
        let b2 = w2.write(Value::new(20)).unwrap();

        let added = cluster.reconfigure(2, &[0, 1]).unwrap();
        assert_eq!(added, vec![5, 6]);
        assert_eq!(cluster.members(), vec![2, 3, 4, 5, 6]);
        assert_eq!(cluster.epoch(), mwr_types::ConfigEpoch::new(2));

        // Both keys survive the handover with their values intact, and the
        // same scoped clients keep serving over the re-routed groups.
        assert_eq!(r1.read().unwrap(), b1, "k1 state survived the handover");
        assert_eq!(r2.read().unwrap(), b2, "k2 state survived the handover");
        let a1 = w1.write(Value::new(11)).unwrap();
        assert!(a1 > b1, "tags never re-minted across epochs");
        assert_eq!(r1.read().unwrap(), a1);
        assert_eq!(r2.read().unwrap(), b2, "no cross-key bleed from k1's writes");
        drop((w1, r1, w2, r2));
        cluster.shutdown();
    }

    /// A keyspace handover with starved shard quorums refuses and rolls
    /// forward to the old routing.
    #[test]
    fn keyspace_reconfigure_refuses_without_shard_quorums() {
        let config = KeyspaceConfig::new(5, 1, 3, 8, 1, 1).unwrap();
        let mut cluster =
            KeyspaceCluster::start_on(InMemoryTransport::new(), config, Protocol::W2Ra).unwrap();
        // Four of five down: every group of 3 is missing at least two
        // members, so no shard's g − t = 2 donor quorum can assemble.
        for s in [0, 1, 2, 3] {
            cluster.crash_server(s);
        }
        let err = cluster
            .reconfigure_within(2, &[0], Duration::from_millis(300))
            .unwrap_err();
        assert!(matches!(err, TransportError::Io { kind: std::io::ErrorKind::TimedOut }));
        assert_eq!(cluster.members(), vec![0, 1, 2, 3, 4], "routing unchanged");
        assert_eq!(cluster.live_servers(), vec![4], "joiners torn down");
        assert_eq!(cluster.epoch(), mwr_types::ConfigEpoch::new(2), "rolled forward");
        cluster.shutdown();
    }

    #[test]
    fn tcp_keyspace_cluster_end_to_end() {
        let config = KeyspaceConfig::new(3, 1, 3, 4, 1, 1).unwrap();
        let cluster =
            KeyspaceCluster::start_on(TcpRegistry::new(), config, Protocol::W2R1).unwrap();
        let key = RegisterId::new(3);
        let hub = ClientHub::new(&cluster);
        let (mut w, mut r) = hub.scoped(&cluster, key);
        let written = w.write(Value::new(30)).unwrap();
        assert_eq!(r.read().unwrap(), written);
        drop((w, r));
        assert!(cluster.shutdown() > 0);
    }
}
