//! Message transports for the live runtime.

use std::fmt;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

use mwr_core::Msg;
use mwr_types::ProcessId;

/// Errors raised by transports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The destination process is not registered with the transport.
    UnknownDestination {
        /// The unreachable process.
        to: ProcessId,
    },
    /// The destination's inbox is gone (process shut down).
    Disconnected {
        /// The closed process.
        to: ProcessId,
    },
    /// An I/O error (TCP transport). Carries the [`std::io::ErrorKind`]
    /// instead of a rendered string: classifying the failure stays a
    /// `match`, and the hot path never allocates a message that nobody
    /// reads.
    Io {
        /// The failure's kind, preserved from the originating
        /// [`std::io::Error`].
        kind: std::io::ErrorKind,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::UnknownDestination { to } => {
                write!(f, "no transport endpoint registered for {to}")
            }
            TransportError::Disconnected { to } => write!(f, "endpoint {to} is disconnected"),
            TransportError::Io { kind } => write!(f, "transport i/o error: {kind}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// An inbound message: sender plus payload.
pub type Inbound = (ProcessId, Msg);

/// A transport that can mint [`Endpoint`]s on demand: the one seam the
/// generic live cluster needs. [`InMemoryTransport`] and
/// [`TcpRegistry`](crate::TcpRegistry) both implement it, which is how
/// `RuntimeCluster` (and the `mwr-register` facade above it) run the same
/// cluster logic over channels and over sockets.
pub trait EndpointFactory: Clone {
    /// The endpoint type this factory produces.
    type Endpoint: Endpoint + 'static;

    /// Opens the endpoint for process `id` and registers it for delivery.
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] if the endpoint cannot be created
    /// (e.g. a socket cannot be bound).
    fn open(&self, id: ProcessId) -> Result<Self::Endpoint, TransportError>;

    /// Removes process `id` from the delivery map: future sends to it fail
    /// (in-memory) or are black-holed (TCP) — the crash model either way.
    fn close(&self, id: ProcessId);
}

/// A process's endpoint on a transport: an inbox and the ability to send.
pub trait Endpoint: Send {
    /// This endpoint's process identity.
    fn id(&self) -> ProcessId;

    /// Sends `msg` to `to`.
    ///
    /// Delivery is best-effort past the transport's bookkeeping: a
    /// destination the transport has never heard of fails with
    /// [`TransportError::UnknownDestination`], but a known peer that has
    /// since crashed may be reported asynchronously — on TCP the writer
    /// pipeline accepts the frame and later drops it when the connection
    /// cannot be (re)established, which is exactly the crash model's
    /// message loss. Callers that need to *observe* a dead peer must use
    /// timeouts (as the quorum round-trips do), not this result.
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] if the destination is unknown or its
    /// endpoint is already closed.
    fn send(&self, to: ProcessId, msg: Msg) -> Result<(), TransportError>;

    /// Sends every `(destination, message)` pair of `batch`, best-effort:
    /// per-destination failures are dropped rather than reported, because a
    /// dead peer is exactly the failure the quorum protocols tolerate (the
    /// single-destination [`send`](Endpoint::send) is the error-reporting
    /// path).
    ///
    /// This is the transport's batching seam: a round-trip broadcast is one
    /// call, so implementations can amortize their lookup locking across
    /// the whole fan-out (and, on TCP, hand all frames to the per-peer
    /// writer pipelines in one pass). The default just loops over `send`.
    fn send_batch(&self, batch: Vec<(ProcessId, Msg)>) {
        for (to, msg) in batch {
            let _ = self.send(to, msg);
        }
    }

    /// The receiving side of this endpoint's inbox.
    fn inbox(&self) -> &Receiver<Inbound>;
}

/// A process-addressed in-memory transport over crossbeam channels.
///
/// # Examples
///
/// ```
/// use mwr_runtime::{Endpoint, InMemoryTransport};
/// use mwr_core::Msg;
/// use mwr_types::ProcessId;
///
/// let transport = InMemoryTransport::new();
/// let a = transport.register(ProcessId::reader(0));
/// let b = transport.register(ProcessId::server(0));
/// a.send(ProcessId::server(0), Msg::InvokeRead)?;
/// let (from, msg) = b.inbox().recv().unwrap();
/// assert_eq!(from, ProcessId::reader(0));
/// assert_eq!(msg, Msg::InvokeRead);
/// # Ok::<(), mwr_runtime::TransportError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct InMemoryTransport {
    inboxes: Arc<RwLock<HashMap<ProcessId, Sender<Inbound>>>>,
}

impl InMemoryTransport {
    /// Creates an empty transport.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a process and returns its endpoint.
    ///
    /// # Panics
    ///
    /// Panics if the process is already registered.
    pub fn register(&self, id: ProcessId) -> InMemoryEndpoint {
        let (tx, rx) = unbounded();
        let prev = self.inboxes.write().insert(id, tx);
        assert!(prev.is_none(), "duplicate endpoint {id}");
        InMemoryEndpoint { id, transport: self.clone(), inbox: rx }
    }

    /// Removes a process's inbox (future sends to it fail).
    pub fn deregister(&self, id: ProcessId) {
        self.inboxes.write().remove(&id);
    }

    fn send_from(&self, from: ProcessId, to: ProcessId, msg: Msg) -> Result<(), TransportError> {
        let guard = self.inboxes.read();
        let tx = guard
            .get(&to)
            .ok_or(TransportError::UnknownDestination { to })?;
        tx.send((from, msg))
            .map_err(|_| TransportError::Disconnected { to })
    }
}

impl EndpointFactory for InMemoryTransport {
    type Endpoint = InMemoryEndpoint;

    /// Opens an endpoint; infallible for the in-memory transport.
    ///
    /// # Panics
    ///
    /// Panics if the process is already registered.
    fn open(&self, id: ProcessId) -> Result<InMemoryEndpoint, TransportError> {
        Ok(self.register(id))
    }

    fn close(&self, id: ProcessId) {
        self.deregister(id);
    }
}

/// One process's handle on an [`InMemoryTransport`].
#[derive(Debug)]
pub struct InMemoryEndpoint {
    id: ProcessId,
    transport: InMemoryTransport,
    inbox: Receiver<Inbound>,
}

impl Endpoint for InMemoryEndpoint {
    fn id(&self) -> ProcessId {
        self.id
    }

    fn send(&self, to: ProcessId, msg: Msg) -> Result<(), TransportError> {
        self.transport.send_from(self.id, to, msg)
    }

    /// One read-lock acquisition for the whole broadcast instead of one
    /// per destination.
    fn send_batch(&self, batch: Vec<(ProcessId, Msg)>) {
        let guard = self.transport.inboxes.read();
        for (to, msg) in batch {
            if let Some(tx) = guard.get(&to) {
                let _ = tx.send((self.id, msg));
            }
        }
    }

    fn inbox(&self) -> &Receiver<Inbound> {
        &self.inbox
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwr_types::Value;

    #[test]
    fn messages_flow_between_endpoints() {
        let t = InMemoryTransport::new();
        let client = t.register(ProcessId::writer(0));
        let server = t.register(ProcessId::server(0));
        client.send(ProcessId::server(0), Msg::InvokeWrite(Value::new(1))).unwrap();
        client.send(ProcessId::server(0), Msg::InvokeRead).unwrap();
        assert_eq!(server.inbox().len(), 2);
        let (from, _) = server.inbox().recv().unwrap();
        assert_eq!(from, ProcessId::writer(0));
    }

    #[test]
    fn unknown_destination_is_an_error() {
        let t = InMemoryTransport::new();
        let client = t.register(ProcessId::writer(0));
        assert_eq!(
            client.send(ProcessId::server(9), Msg::InvokeRead),
            Err(TransportError::UnknownDestination { to: ProcessId::server(9) })
        );
    }

    #[test]
    fn send_batch_is_best_effort_across_destinations() {
        let t = InMemoryTransport::new();
        let client = t.register(ProcessId::writer(0));
        let s0 = t.register(ProcessId::server(0));
        let s2 = t.register(ProcessId::server(2));
        // server(1) is never registered: its message is dropped, the rest
        // of the broadcast still lands.
        client.send_batch(vec![
            (ProcessId::server(0), Msg::InvokeRead),
            (ProcessId::server(1), Msg::InvokeRead),
            (ProcessId::server(2), Msg::InvokeRead),
        ]);
        assert_eq!(s0.inbox().len(), 1);
        assert_eq!(s2.inbox().len(), 1);
    }

    #[test]
    fn io_error_display_keeps_the_transport_prefix() {
        let e = TransportError::Io { kind: std::io::ErrorKind::ConnectionRefused };
        let rendered = e.to_string();
        assert!(rendered.starts_with("transport i/o error: "), "{rendered}");
    }

    #[test]
    fn deregistered_endpoint_becomes_unreachable() {
        let t = InMemoryTransport::new();
        let client = t.register(ProcessId::writer(0));
        let _server = t.register(ProcessId::server(0));
        t.deregister(ProcessId::server(0));
        assert!(client.send(ProcessId::server(0), Msg::InvokeRead).is_err());
    }

    #[test]
    #[should_panic(expected = "duplicate endpoint")]
    fn duplicate_registration_panics() {
        let t = InMemoryTransport::new();
        let _a = t.register(ProcessId::server(0));
        let _b = t.register(ProcessId::server(0));
    }
}
