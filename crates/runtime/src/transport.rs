//! Message transports for the live runtime.

use std::fmt;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

use mwr_core::Msg;
use mwr_types::ProcessId;

/// Errors raised by transports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The destination process is not registered with the transport.
    UnknownDestination {
        /// The unreachable process.
        to: ProcessId,
    },
    /// The destination's inbox is gone (process shut down).
    Disconnected {
        /// The closed process.
        to: ProcessId,
    },
    /// An I/O error (TCP transport). Carries the [`std::io::ErrorKind`]
    /// instead of a rendered string: classifying the failure stays a
    /// `match`, and the hot path never allocates a message that nobody
    /// reads.
    Io {
        /// The failure's kind, preserved from the originating
        /// [`std::io::Error`].
        kind: std::io::ErrorKind,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::UnknownDestination { to } => {
                write!(f, "no transport endpoint registered for {to}")
            }
            TransportError::Disconnected { to } => write!(f, "endpoint {to} is disconnected"),
            TransportError::Io { kind } => write!(f, "transport i/o error: {kind}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// An inbound message: sender plus payload.
pub type Inbound = (ProcessId, Msg);

/// Registered inboxes by process id, each stamped with the registration
/// generation that minted it.
type InboxMap = HashMap<ProcessId, (u64, Sender<Inbound>)>;

/// A transport that can mint [`Endpoint`]s on demand: the one seam the
/// generic live cluster needs. [`InMemoryTransport`] and
/// [`TcpRegistry`](crate::TcpRegistry) both implement it, which is how
/// `RuntimeCluster` (and the `mwr-register` facade above it) run the same
/// cluster logic over channels and over sockets.
pub trait EndpointFactory: Clone {
    /// The endpoint type this factory produces.
    type Endpoint: Endpoint + 'static;

    /// Opens the endpoint for process `id` and registers it for delivery.
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] if the endpoint cannot be created
    /// (e.g. a socket cannot be bound).
    fn open(&self, id: ProcessId) -> Result<Self::Endpoint, TransportError>;

    /// Removes process `id` from the delivery map: future sends to it fail
    /// (in-memory) or are black-holed (TCP) — the crash model either way.
    fn close(&self, id: ProcessId);
}

/// A process's endpoint on a transport: an inbox and the ability to send.
///
/// `Sync` is part of the contract: every method takes `&self`, and the
/// keyspace layer shares one endpoint across the per-register clients of a
/// handle (see the [`Arc`] blanket impl below).
pub trait Endpoint: Send + Sync {
    /// This endpoint's process identity.
    fn id(&self) -> ProcessId;

    /// Sends `msg` to `to`.
    ///
    /// Delivery is best-effort past the transport's bookkeeping: a
    /// destination the transport has never heard of fails with
    /// [`TransportError::UnknownDestination`], but a known peer that has
    /// since crashed may be reported asynchronously — on TCP the writer
    /// pipeline accepts the frame and later drops it when the connection
    /// cannot be (re)established, which is exactly the crash model's
    /// message loss. Callers that need to *observe* a dead peer must use
    /// timeouts (as the quorum round-trips do), not this result.
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] if the destination is unknown or its
    /// endpoint is already closed.
    fn send(&self, to: ProcessId, msg: Msg) -> Result<(), TransportError>;

    /// Sends every `(destination, message)` pair of `batch`, best-effort:
    /// per-destination failures are dropped rather than reported, because a
    /// dead peer is exactly the failure the quorum protocols tolerate (the
    /// single-destination [`send`](Endpoint::send) is the error-reporting
    /// path).
    ///
    /// This is the transport's batching seam: a round-trip broadcast is one
    /// call, so implementations can amortize their lookup locking across
    /// the whole fan-out (and, on TCP, hand all frames to the per-peer
    /// writer pipelines in one pass). The default just loops over `send`.
    fn send_batch(&self, batch: Vec<(ProcessId, Msg)>) {
        for (to, msg) in batch {
            let _ = self.send(to, msg);
        }
    }

    /// The receiving side of this endpoint's inbox.
    fn inbox(&self) -> &Receiver<Inbound>;
}

/// A shared endpoint is an endpoint: every method takes `&self`, so an
/// `Arc<E>` delegates directly.
///
/// This is the keyspace multiplexing seam — one physical endpoint (one
/// inbox, one set of per-peer TCP pipelines) shared by the many per-register
/// clients a keyspace handle mints, so mixed-register traffic coalesces
/// into the same connections instead of opening one socket set per key.
impl<E: Endpoint> Endpoint for Arc<E> {
    fn id(&self) -> ProcessId {
        (**self).id()
    }

    fn send(&self, to: ProcessId, msg: Msg) -> Result<(), TransportError> {
        (**self).send(to, msg)
    }

    fn send_batch(&self, batch: Vec<(ProcessId, Msg)>) {
        (**self).send_batch(batch);
    }

    fn inbox(&self) -> &Receiver<Inbound> {
        (**self).inbox()
    }
}

/// A process-addressed in-memory transport over crossbeam channels.
///
/// # Examples
///
/// ```
/// use mwr_runtime::{Endpoint, InMemoryTransport};
/// use mwr_core::Msg;
/// use mwr_types::ProcessId;
///
/// let transport = InMemoryTransport::new();
/// let a = transport.register(ProcessId::reader(0));
/// let b = transport.register(ProcessId::server(0));
/// a.send(ProcessId::server(0), Msg::InvokeRead)?;
/// let (from, msg) = b.inbox().recv().unwrap();
/// assert_eq!(from, ProcessId::reader(0));
/// assert_eq!(msg, Msg::InvokeRead);
/// # Ok::<(), mwr_runtime::TransportError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct InMemoryTransport {
    inboxes: Arc<RwLock<InboxMap>>,
    /// Monotone registration generation, so a late-dropped old endpoint
    /// can never evict a newer registration for the same id (churn mints
    /// and drops endpoints for the same slot concurrently).
    generation: Arc<std::sync::atomic::AtomicU64>,
}

impl InMemoryTransport {
    /// Creates an empty transport.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a process and returns its endpoint.
    ///
    /// Dropping the returned endpoint deregisters the process (unless a
    /// newer endpoint has re-registered the same id in the meantime), so
    /// short-lived churn clients can re-mint a slot without an explicit
    /// `deregister` call.
    ///
    /// # Panics
    ///
    /// Panics if the process is already registered.
    pub fn register(&self, id: ProcessId) -> InMemoryEndpoint {
        let (tx, rx) = unbounded();
        let generation = self
            .generation
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let prev = self.inboxes.write().insert(id, (generation, tx));
        assert!(prev.is_none(), "duplicate endpoint {id}");
        InMemoryEndpoint { id, generation, transport: self.clone(), inbox: rx }
    }

    /// Removes a process's inbox (future sends to it fail).
    pub fn deregister(&self, id: ProcessId) {
        self.inboxes.write().remove(&id);
    }

    /// Removes `id` only if its registration generation still matches —
    /// the endpoint-Drop path, which must not race a re-registration.
    fn deregister_generation(&self, id: ProcessId, generation: u64) {
        let mut guard = self.inboxes.write();
        if guard.get(&id).is_some_and(|(g, _)| *g == generation) {
            guard.remove(&id);
        }
    }

    fn send_from(&self, from: ProcessId, to: ProcessId, msg: Msg) -> Result<(), TransportError> {
        let guard = self.inboxes.read();
        let (_, tx) = guard
            .get(&to)
            .ok_or(TransportError::UnknownDestination { to })?;
        tx.send((from, msg))
            .map_err(|_| TransportError::Disconnected { to })
    }
}

impl EndpointFactory for InMemoryTransport {
    type Endpoint = InMemoryEndpoint;

    /// Opens an endpoint; infallible for the in-memory transport.
    ///
    /// # Panics
    ///
    /// Panics if the process is already registered.
    fn open(&self, id: ProcessId) -> Result<InMemoryEndpoint, TransportError> {
        Ok(self.register(id))
    }

    fn close(&self, id: ProcessId) {
        self.deregister(id);
    }
}

/// One process's handle on an [`InMemoryTransport`].
///
/// Dropping the endpoint deregisters its process from the transport —
/// generation-guarded, so dropping a stale endpoint after the same id has
/// been re-registered leaves the new registration untouched.
#[derive(Debug)]
pub struct InMemoryEndpoint {
    id: ProcessId,
    generation: u64,
    transport: InMemoryTransport,
    inbox: Receiver<Inbound>,
}

impl Drop for InMemoryEndpoint {
    fn drop(&mut self) {
        self.transport.deregister_generation(self.id, self.generation);
    }
}

impl Endpoint for InMemoryEndpoint {
    fn id(&self) -> ProcessId {
        self.id
    }

    fn send(&self, to: ProcessId, msg: Msg) -> Result<(), TransportError> {
        self.transport.send_from(self.id, to, msg)
    }

    /// One read-lock acquisition for the whole broadcast instead of one
    /// per destination.
    fn send_batch(&self, batch: Vec<(ProcessId, Msg)>) {
        let guard = self.transport.inboxes.read();
        for (to, msg) in batch {
            if let Some((_, tx)) = guard.get(&to) {
                let _ = tx.send((self.id, msg));
            }
        }
    }

    fn inbox(&self) -> &Receiver<Inbound> {
        &self.inbox
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwr_types::Value;

    #[test]
    fn messages_flow_between_endpoints() {
        let t = InMemoryTransport::new();
        let client = t.register(ProcessId::writer(0));
        let server = t.register(ProcessId::server(0));
        client.send(ProcessId::server(0), Msg::InvokeWrite(Value::new(1))).unwrap();
        client.send(ProcessId::server(0), Msg::InvokeRead).unwrap();
        assert_eq!(server.inbox().len(), 2);
        let (from, _) = server.inbox().recv().unwrap();
        assert_eq!(from, ProcessId::writer(0));
    }

    #[test]
    fn unknown_destination_is_an_error() {
        let t = InMemoryTransport::new();
        let client = t.register(ProcessId::writer(0));
        assert_eq!(
            client.send(ProcessId::server(9), Msg::InvokeRead),
            Err(TransportError::UnknownDestination { to: ProcessId::server(9) })
        );
    }

    #[test]
    fn send_batch_is_best_effort_across_destinations() {
        let t = InMemoryTransport::new();
        let client = t.register(ProcessId::writer(0));
        let s0 = t.register(ProcessId::server(0));
        let s2 = t.register(ProcessId::server(2));
        // server(1) is never registered: its message is dropped, the rest
        // of the broadcast still lands.
        client.send_batch(vec![
            (ProcessId::server(0), Msg::InvokeRead),
            (ProcessId::server(1), Msg::InvokeRead),
            (ProcessId::server(2), Msg::InvokeRead),
        ]);
        assert_eq!(s0.inbox().len(), 1);
        assert_eq!(s2.inbox().len(), 1);
    }

    #[test]
    fn io_error_display_keeps_the_transport_prefix() {
        let e = TransportError::Io { kind: std::io::ErrorKind::ConnectionRefused };
        let rendered = e.to_string();
        assert!(rendered.starts_with("transport i/o error: "), "{rendered}");
    }

    #[test]
    fn deregistered_endpoint_becomes_unreachable() {
        let t = InMemoryTransport::new();
        let client = t.register(ProcessId::writer(0));
        let _server = t.register(ProcessId::server(0));
        t.deregister(ProcessId::server(0));
        assert!(client.send(ProcessId::server(0), Msg::InvokeRead).is_err());
    }

    #[test]
    #[should_panic(expected = "duplicate endpoint")]
    fn duplicate_registration_panics() {
        let t = InMemoryTransport::new();
        let _a = t.register(ProcessId::server(0));
        let _b = t.register(ProcessId::server(0));
    }

    /// Churn's lifecycle: drop the endpoint, re-mint the same slot.
    #[test]
    fn dropping_an_endpoint_frees_the_slot_for_reminting() {
        let t = InMemoryTransport::new();
        let client = t.register(ProcessId::writer(0));
        let first = t.register(ProcessId::reader(7));
        drop(first);
        // Would panic on a duplicate if Drop had not deregistered.
        let second = t.register(ProcessId::reader(7));
        client.send(ProcessId::reader(7), Msg::InvokeRead).unwrap();
        assert_eq!(second.inbox().len(), 1);
    }

    /// A stale endpoint dropped *after* its id was re-registered (explicit
    /// deregister + re-mint while the old handle lingers) must not evict
    /// the newer registration.
    #[test]
    fn late_drop_of_a_stale_endpoint_keeps_the_new_registration() {
        let t = InMemoryTransport::new();
        let client = t.register(ProcessId::writer(0));
        let stale = t.register(ProcessId::reader(7));
        t.deregister(ProcessId::reader(7));
        let fresh = t.register(ProcessId::reader(7));
        drop(stale); // generation mismatch: no-op
        client.send(ProcessId::reader(7), Msg::InvokeRead).unwrap();
        assert_eq!(fresh.inbox().len(), 1);
    }
}
