//! A TCP transport: length-prefixed frames carrying the hand-rolled wire
//! codec from `mwr-types`, sent through per-peer writer pipelines.
//!
//! Every process owns a listening socket; a registry maps process ids to
//! socket addresses. Frames are `u32` big-endian length followed by
//! `Wire`-encoded `(ProcessId, Msg)`.
//!
//! # Hot path
//!
//! The transport is built for throughput:
//!
//! - **Per-peer writer pipelines.** Each destination gets its own I/O
//!   state (connection + reusable encode buffer) behind its own lock,
//!   plus a bounded queue drained by a dedicated thread. When the peer is
//!   idle, a send writes **inline** on the sender's thread — one lock,
//!   one encode, one `write_all`, no handoff. When the peer's I/O is busy
//!   (another thread mid-write, a write blocked on a slow peer, a
//!   reconnect in progress), the sender enqueues and moves on: one
//!   stalled destination cannot stall the rest of a broadcast, which the
//!   pre-pipeline path's endpoint-wide lock guaranteed it would.
//! - **Frame coalescing.** Whatever backlog accumulates for one peer
//!   (up to [`TcpTuning::batch`] frames) is encoded into one reusable
//!   buffer and written with a single `write_all` — one syscall per
//!   batch, sized exactly via `Wire::encoded_len`, no per-message buffer.
//!   The inline path writes length-prefix and body as one syscall too,
//!   where the old path issued two.
//! - **Reconnect backoff + stall bounding.** Connection management lives
//!   inside the pipeline: a failed `connect` is negative-cached for
//!   [`TcpTuning::reconnect_backoff`], so a crashed peer costs one failed
//!   syscall per backoff window instead of one per message, and pipeline
//!   sockets carry a [`TcpTuning::write_timeout`] so a stalled peer
//!   (connected but not reading) can block a sender for at most the
//!   timeout before being negative-cached too. Frames to an unreachable
//!   peer are dropped — precisely the crash model the quorum protocols
//!   tolerate. The cache is **forgiven early by inbound traffic**: a
//!   frame arriving *from* a negative-cached peer after its last failure
//!   is proof the peer is back, so the next send reconnects immediately
//!   instead of silently dropping frames for the rest of the backoff —
//!   without this, a recovered peer stayed unreachable for up to a full
//!   backoff window after it had already resumed talking to us.
//! - **Receive-buffer reuse.** Connections are read through a buffered
//!   reader (many frames per syscall) into one per-connection body buffer,
//!   decoded in place (`Wire::decode` works on `&mut &[u8]`) — no
//!   allocation per frame.
//!
//! Dropping the endpoint tears the pipelines down cleanly: queued frames
//! are flushed, writer threads join, and the acceptor stops. The
//! pre-pipeline hot path (direct-write sends under one endpoint-wide
//! lock, per-frame receive allocations) is kept behind
//! [`TcpTuning::legacy_send`] so `live_throughput` can measure the
//! before/after on the same build.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use bytes::{BufMut as _, Bytes, BytesMut};
use crossbeam::channel::{bounded, unbounded, Receiver, SendError, Sender};
use parking_lot::Mutex;

use mwr_core::Msg;
use mwr_types::codec::Wire;
use mwr_types::ProcessId;

use crate::transport::{Endpoint, EndpointFactory, Inbound, TransportError};

/// Maximum accepted frame size (16 MiB) — guards against corrupt peers.
const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Largest buffer capacity a pipeline or reader retains across frames;
/// anything bigger (a full-info burst) is released after use.
const BUF_RETAIN: usize = 1024 * 1024;

/// How often a reader thread re-marks a peer as heard-from. Coarser than
/// per-frame so a busy connection costs one map update per interval, but
/// far finer than any sensible [`TcpTuning::reconnect_backoff`].
const INBOUND_MARK_INTERVAL: Duration = Duration::from_millis(5);

/// When each peer was last *heard from* (an inbound frame decoded with its
/// id), shared by the endpoint's reader threads (who write marks) and its
/// writer pipelines (who read them in [`PeerIo::try_connect`] to forgive
/// the reconnect negative cache early).
type InboundSeen = Arc<Mutex<HashMap<ProcessId, Instant>>>;

fn io_err(e: std::io::Error) -> TransportError {
    TransportError::Io { kind: e.kind() }
}

/// Tuning knobs for the TCP send path.
///
/// The defaults are right for the loopback clusters the workspace runs;
/// the `mwr-register` facade exposes them as a TCP-only deployment knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpTuning {
    /// Maximum frames one writer-pipeline batch coalesces into a single
    /// `write_all` syscall.
    pub batch: usize,
    /// Bounded per-peer queue depth; senders block (backpressure) while a
    /// live peer's queue is full.
    pub queue_depth: usize,
    /// After a failed `connect` (or a failed/timed-out write cycle),
    /// frames to that peer are dropped without another syscall until this
    /// much time has passed.
    pub reconnect_backoff: Duration,
    /// Socket write timeout for pipeline connections, bounding how long a
    /// stalled peer (connected but not reading, TCP window full) can
    /// block a sender or a teardown flush; the frames are then dropped
    /// and the peer negative-cached like a failed connect.
    /// `Duration::ZERO` disables the timeout.
    pub write_timeout: Duration,
    /// Restore the pre-pipeline transport hot path: direct-write sends
    /// under one endpoint-wide lock (two syscalls and a fresh buffer per
    /// message, connect-per-message on a dead peer) and the per-frame
    /// allocating receive loop. Exists so benchmarks can measure the
    /// pipeline against its predecessor on the same binary.
    pub legacy_send: bool,
}

impl Default for TcpTuning {
    fn default() -> Self {
        TcpTuning {
            batch: 64,
            queue_depth: 1024,
            reconnect_backoff: Duration::from_millis(50),
            write_timeout: Duration::from_secs(1),
            legacy_send: false,
        }
    }
}

/// Counters of one peer pipeline, for tests and diagnostics. Snapshot via
/// [`TcpEndpoint::peer_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PeerStats {
    /// `connect` syscalls attempted (capped by the reconnect backoff).
    pub connect_attempts: u64,
    /// Frames written to the socket.
    pub frames_sent: u64,
    /// Coalesced `write_all` batches issued (≤ `frames_sent`).
    pub batches: u64,
    /// Frames dropped because the peer stayed unreachable.
    pub frames_dropped: u64,
}

#[derive(Debug, Default)]
struct PipelineStats {
    connect_attempts: AtomicU64,
    frames_sent: AtomicU64,
    batches: AtomicU64,
    frames_dropped: AtomicU64,
}

impl PipelineStats {
    fn snapshot(&self) -> PeerStats {
        PeerStats {
            connect_attempts: self.connect_attempts.load(Ordering::Relaxed),
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            frames_dropped: self.frames_dropped.load(Ordering::Relaxed),
        }
    }
}

/// Shared process-id → address registry, carrying the send-path tuning its
/// endpoints are opened with.
#[derive(Debug, Clone, Default)]
pub struct TcpRegistry {
    addrs: Arc<Mutex<HashMap<ProcessId, SocketAddr>>>,
    tuning: TcpTuning,
}

impl TcpRegistry {
    /// Creates an empty registry with default [`TcpTuning`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the send-path tuning for endpoints opened through this
    /// registry (builder-style).
    pub fn with_tuning(mut self, tuning: TcpTuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// The send-path tuning endpoints are opened with.
    pub fn tuning(&self) -> TcpTuning {
        self.tuning
    }

    /// Records where a process listens.
    pub fn insert(&self, id: ProcessId, addr: SocketAddr) {
        self.addrs.lock().insert(id, addr);
    }

    /// Looks up a process's address.
    pub fn lookup(&self, id: ProcessId) -> Option<SocketAddr> {
        self.addrs.lock().get(&id).copied()
    }

    /// Forgets a process's address: peers get
    /// [`TransportError::UnknownDestination`] from then on, without a
    /// single connect syscall.
    pub fn remove(&self, id: ProcessId) {
        self.addrs.lock().remove(&id);
    }
}

impl EndpointFactory for TcpRegistry {
    type Endpoint = TcpEndpoint;

    fn open(&self, id: ProcessId) -> Result<TcpEndpoint, TransportError> {
        TcpEndpoint::bind(id, self)
    }

    fn close(&self, id: ProcessId) {
        self.remove(id);
    }
}

/// The I/O half of a peer pipeline: the connection, the reusable encode
/// buffer, and the reconnect negative cache. Shared by the inline fast
/// path (sender thread) and the drain thread, under one per-peer mutex.
#[derive(Debug)]
struct PeerIo {
    from: ProcessId,
    to: ProcessId,
    registry: TcpRegistry,
    tuning: TcpTuning,
    conn: Option<TcpStream>,
    buf: BytesMut,
    last_failed: Option<Instant>,
    inbound: InboundSeen,
}

impl PeerIo {
    /// Encodes `msgs` as one coalesced frame batch and writes it with a
    /// single `write_all`. Reconnects (under the negative-cache backoff)
    /// inside the pipeline; on a dead cached connection, reconnects once
    /// and retries the whole batch (parity with the old per-message
    /// retry). An unreachable peer drops the batch — the crash model's
    /// message loss.
    fn write_frames(&mut self, msgs: &[Msg], stats: &PipelineStats) {
        self.buf.clear();
        let mut framed = 0u64;
        for msg in msgs {
            let len = self.from.encoded_len() + msg.encoded_len();
            // Enforce the receiver's frame bound on the send side too: an
            // oversized message would make the peer drop the connection
            // (taking every coalesced neighbour with it) on every retry.
            if len as u64 > u64::from(MAX_FRAME) {
                stats.frames_dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            framed += 1;
            self.buf.put_u32(len as u32);
            self.from.encode(&mut self.buf);
            msg.encode(&mut self.buf);
        }
        if framed == 0 {
            return;
        }
        let mut delivered = false;
        for _ in 0..2 {
            if self.conn.is_none() {
                self.conn = self.try_connect(stats);
            }
            let Some(stream) = self.conn.as_mut() else { break };
            if stream.write_all(&self.buf).and_then(|()| stream.flush()).is_ok() {
                delivered = true;
                break;
            }
            self.conn = None;
        }
        if delivered {
            stats.batches.fetch_add(1, Ordering::Relaxed);
            stats.frames_sent.fetch_add(framed, Ordering::Relaxed);
        } else {
            // Failed delivery (dead socket, stalled peer hitting the
            // write timeout) negative-caches the peer like a failed
            // connect, so the next batches drop fast instead of stalling
            // the sender for another timeout each.
            self.last_failed = Some(Instant::now());
            stats.frames_dropped.fetch_add(framed, Ordering::Relaxed);
        }
        // Don't let one full-info burst pin its high-water capacity for
        // the pipeline's lifetime.
        if self.buf.capacity() > BUF_RETAIN {
            self.buf = BytesMut::new();
        }
    }

    /// Attempts one connection, respecting the negative cache: after a
    /// failed connect, no syscall is issued until the backoff has elapsed
    /// — unless the peer has been *heard from* since the failure, which
    /// forgives the cache immediately (a restarted peer that already
    /// resumed sending must not keep losing our frames for the rest of
    /// the backoff window).
    fn try_connect(&mut self, stats: &PipelineStats) -> Option<TcpStream> {
        if let Some(at) = self.last_failed {
            let forgiven = self.inbound.lock().get(&self.to).is_some_and(|&seen| seen > at);
            if forgiven {
                self.last_failed = None;
            } else if at.elapsed() < self.tuning.reconnect_backoff {
                return None;
            }
        }
        // A deregistered peer (crashed server) costs a map lookup, never a
        // connect syscall.
        let addr = self.registry.lookup(self.to)?;
        stats.connect_attempts.fetch_add(1, Ordering::Relaxed);
        match TcpStream::connect(addr) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                if !self.tuning.write_timeout.is_zero() {
                    let _ = stream.set_write_timeout(Some(self.tuning.write_timeout));
                }
                self.last_failed = None;
                Some(stream)
            }
            Err(_) => {
                self.last_failed = Some(Instant::now());
                None
            }
        }
    }
}

/// The drain thread's spawn-once state: the queue's receiver is parked
/// here until the first fallback enqueue needs a drain thread.
#[derive(Debug)]
struct DrainState {
    rx: Option<Receiver<Msg>>,
    join: Option<JoinHandle<()>>,
}

/// One destination's writer pipeline: per-peer I/O state behind its own
/// lock, a bounded overflow queue, and a lazily-spawned drain thread.
///
/// The fast path writes **inline** on the sender's thread — when the peer
/// is idle (queue empty, I/O lock free) a send is one lock, one encode
/// into the reusable buffer, one `write_all`. The queue + drain thread
/// take over exactly when that would hurt: the peer's I/O is busy (another
/// thread mid-write, or a write blocked on a slow peer), so the sender
/// enqueues and moves on — one stalled destination cannot stall the rest
/// of a broadcast — and the drain thread coalesces the backlog into
/// batched writes. The drain thread is spawned on the first fallback, so
/// uncontended endpoints (the common case: one sending thread per
/// endpoint) never pay a parked thread per peer.
#[derive(Debug)]
struct PeerPipeline {
    from: ProcessId,
    to: ProcessId,
    tuning: TcpTuning,
    tx: Sender<Msg>,
    /// Frames enqueued but not yet written/dropped by the drain thread.
    /// Checked (under the I/O lock) by the inline path: writing inline
    /// while a queued frame is pending would reorder the peer's stream.
    pending: Arc<AtomicU64>,
    io: Arc<Mutex<PeerIo>>,
    stats: Arc<PipelineStats>,
    drain: Arc<Mutex<DrainState>>,
}

impl PeerPipeline {
    fn new(
        from: ProcessId,
        to: ProcessId,
        registry: TcpRegistry,
        tuning: TcpTuning,
        inbound: InboundSeen,
    ) -> PeerPipeline {
        // Clamp at the transport layer, not just in the facade's knob
        // validation: a zero-capacity bounded channel can never accept a
        // frame, which would wedge the first fallback send forever.
        let (tx, rx) = bounded(tuning.queue_depth.max(1));
        PeerPipeline {
            from,
            to,
            tuning,
            tx,
            pending: Arc::new(AtomicU64::new(0)),
            io: Arc::new(Mutex::new(PeerIo {
                from,
                to,
                registry,
                tuning,
                conn: None,
                buf: BytesMut::new(),
                last_failed: None,
                inbound,
            })),
            stats: Arc::new(PipelineStats::default()),
            drain: Arc::new(Mutex::new(DrainState { rx: Some(rx), join: None })),
        }
    }

    /// The cheaply-cloneable pieces a sender needs, so the endpoint's
    /// pipeline map lock is released before any I/O or enqueue happens.
    fn handles(&self) -> PipelineHandles {
        PipelineHandles {
            from: self.from,
            to: self.to,
            tuning: self.tuning,
            tx: self.tx.clone(),
            pending: Arc::clone(&self.pending),
            io: Arc::clone(&self.io),
            stats: Arc::clone(&self.stats),
            drain: Arc::clone(&self.drain),
        }
    }

    /// Drops the queue's sender (letting any drain thread flush what is
    /// queued and exit) and joins it.
    fn shutdown(self) {
        let PeerPipeline { tx, drain, .. } = self;
        drop(tx);
        let join = drain.lock().join.take();
        if let Some(join) = join {
            let _ = join.join();
        }
    }
}

/// A sender's view of one pipeline, detached from the endpoint's map.
struct PipelineHandles {
    from: ProcessId,
    to: ProcessId,
    tuning: TcpTuning,
    tx: Sender<Msg>,
    pending: Arc<AtomicU64>,
    io: Arc<Mutex<PeerIo>>,
    stats: Arc<PipelineStats>,
    drain: Arc<Mutex<DrainState>>,
}

impl PipelineHandles {
    /// Sends `msg` through the fast inline path when the peer is idle,
    /// falling back to the queue + drain thread when it is busy. Blocks
    /// only when a live peer's bounded queue is full (backpressure); a
    /// dead peer's pipeline drains by dropping, so it cannot exert
    /// backpressure on the sender.
    fn send(&self, msg: Msg) -> Result<(), SendError<Msg>> {
        if let Some(mut io) = self.io.try_lock() {
            // Holding the I/O lock proves the drain thread is not
            // mid-write; zero pending frames proves none are waiting to
            // be written. Together they make the inline write FIFO-safe.
            if self.pending.load(Ordering::SeqCst) == 0 {
                io.write_frames(std::slice::from_ref(&msg), &self.stats);
                return Ok(());
            }
        }
        // The drain thread must exist before anything is queued behind the
        // bounded channel, or a full queue would have no consumer. If the
        // OS refuses the thread, the frame is dropped like any other
        // unreachable-peer loss rather than wedging the sender.
        if self.ensure_drain().is_err() {
            self.stats.frames_dropped.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        self.pending.fetch_add(1, Ordering::SeqCst);
        self.tx.send(msg)
    }

    /// Spawns the drain thread on first use.
    ///
    /// # Errors
    ///
    /// Fails if the OS refuses the thread — including on every later
    /// call once a spawn has failed (the receiver was consumed by the
    /// failed attempt), so fallback sends keep dropping instead of
    /// queueing onto a consumer-less channel.
    fn ensure_drain(&self) -> std::io::Result<()> {
        let mut drain = self.drain.lock();
        if let Some(rx) = drain.rx.take() {
            // Deliberately never touches the per-peer io lock: the drain
            // thread is being spawned precisely because that lock may be
            // held across a stalled write right now.
            let io = Arc::clone(&self.io);
            let pending = Arc::clone(&self.pending);
            let stats = Arc::clone(&self.stats);
            let (from, to, tuning) = (self.from, self.to, self.tuning);
            drain.join = Some(
                thread::Builder::new()
                    .name(format!("tcp-writer-{from}-{to}"))
                    .spawn(move || drain_loop(&rx, tuning, &io, &pending, &stats))?,
            );
        } else if drain.join.is_none() {
            // A previous spawn failed and consumed the receiver: this
            // pipeline can never drain a queue, so the caller must keep
            // dropping.
            return Err(std::io::Error::from(std::io::ErrorKind::WouldBlock));
        }
        Ok(())
    }
}

fn drain_loop(
    rx: &Receiver<Msg>,
    tuning: TcpTuning,
    io: &Mutex<PeerIo>,
    pending: &AtomicU64,
    stats: &PipelineStats,
) {
    let mut batch: Vec<Msg> = Vec::with_capacity(tuning.batch);
    // `recv` keeps yielding queued frames after the endpoint drops its
    // sender, so teardown flushes the queue before the thread exits.
    while let Ok(first) = rx.recv() {
        let mut io = io.lock();
        batch.push(first);
        while batch.len() < tuning.batch {
            match rx.try_recv() {
                Ok(msg) => batch.push(msg),
                Err(_) => break,
            }
        }
        io.write_frames(&batch, stats);
        // Decrement before releasing the I/O lock: an inline sender that
        // acquires it next must see these frames accounted as written.
        pending.fetch_sub(batch.len() as u64, Ordering::SeqCst);
        batch.clear();
    }
}

/// One process's TCP endpoint: a listener thread feeding an inbox, plus a
/// writer pipeline per destination.
#[derive(Debug)]
pub struct TcpEndpoint {
    id: ProcessId,
    registry: TcpRegistry,
    inbox: Receiver<Inbound>,
    tuning: TcpTuning,
    pipelines: Mutex<HashMap<ProcessId, PeerPipeline>>,
    /// Cached connections for the [`TcpTuning::legacy_send`] path only.
    legacy_outbound: Mutex<HashMap<ProcessId, TcpStream>>,
    /// Last-heard-from marks written by the reader threads, read by the
    /// writer pipelines to forgive the reconnect negative cache.
    inbound: InboundSeen,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<thread::JoinHandle<()>>,
}

impl TcpEndpoint {
    /// Binds a listener on `127.0.0.1` (ephemeral port), registers it, and
    /// spawns the acceptor thread.
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] if binding fails.
    pub fn bind(id: ProcessId, registry: &TcpRegistry) -> Result<TcpEndpoint, TransportError> {
        let listener = TcpListener::bind("127.0.0.1:0").map_err(io_err)?;
        let local_addr = listener.local_addr().map_err(io_err)?;
        registry.insert(id, local_addr);
        let (tx, rx) = unbounded();
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor_stop = Arc::clone(&stop);
        let legacy = registry.tuning().legacy_send;
        let inbound: InboundSeen = Arc::default();
        let acceptor_inbound = Arc::clone(&inbound);
        let acceptor = thread::Builder::new()
            .name(format!("tcp-acceptor-{id}"))
            .spawn(move || acceptor_loop(listener, tx, acceptor_stop, legacy, acceptor_inbound))
            .map_err(io_err)?;
        Ok(TcpEndpoint {
            id,
            registry: registry.clone(),
            inbox: rx,
            tuning: registry.tuning(),
            pipelines: Mutex::new(HashMap::new()),
            legacy_outbound: Mutex::new(HashMap::new()),
            inbound,
            local_addr,
            stop,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A snapshot of the writer-pipeline counters for `to`, or `None` if
    /// nothing was ever sent there (or the endpoint runs the legacy path).
    pub fn peer_stats(&self, to: ProcessId) -> Option<PeerStats> {
        self.pipelines.lock().get(&to).map(|p| p.stats.snapshot())
    }

    /// Hands `msg` to the writer pipeline for `to`, spawning it on first
    /// use.
    ///
    /// Destinations that were never registered fail synchronously with
    /// [`TransportError::UnknownDestination`] (a map probe, never a
    /// syscall). Once a pipeline exists, the process-global registry is
    /// not consulted again on the hot path: a peer that crashes later is
    /// detected inside the pipeline (dropped frames, reconnect backoff)
    /// rather than by re-checking the shared registry lock per send.
    fn pipeline_send(&self, to: ProcessId, msg: Msg) -> Result<(), TransportError> {
        // Stage the pipeline's handles under the map lock, but do all I/O
        // and enqueueing outside it: one peer's backpressure must not
        // serialize sends to the others.
        let handles = {
            let mut pipelines = self.pipelines.lock();
            match pipelines.entry(to) {
                Entry::Occupied(e) => e.get().handles(),
                Entry::Vacant(e) => {
                    if self.registry.lookup(to).is_none() {
                        return Err(TransportError::UnknownDestination { to });
                    }
                    e.insert(PeerPipeline::new(
                        self.id,
                        to,
                        self.registry.clone(),
                        self.tuning,
                        Arc::clone(&self.inbound),
                    ))
                    .handles()
                }
            }
        };
        handles.send(msg).map_err(|_| TransportError::Disconnected { to })
    }

    /// The pre-pipeline send path: one endpoint-wide lock held across
    /// every syscall, a fresh encode buffer and two `write` syscalls per
    /// message, and a connect attempt per message when the peer is down.
    fn legacy_send(&self, to: ProcessId, msg: Msg) -> Result<(), TransportError> {
        let addr = self
            .registry
            .lookup(to)
            .ok_or(TransportError::UnknownDestination { to })?;
        let mut cache = self.legacy_outbound.lock();
        // Try the cached connection first; on failure, reconnect once.
        if let Some(stream) = cache.get_mut(&to) {
            if TcpEndpoint::write_frame(stream, self.id, &msg).is_ok() {
                return Ok(());
            }
            cache.remove(&to);
        }
        let mut stream = TcpStream::connect(addr).map_err(io_err)?;
        stream.set_nodelay(true).map_err(io_err)?;
        TcpEndpoint::write_frame(&mut stream, self.id, &msg).map_err(io_err)?;
        cache.insert(to, stream);
        Ok(())
    }

    fn write_frame(stream: &mut TcpStream, from: ProcessId, msg: &Msg) -> std::io::Result<()> {
        let mut body = BytesMut::new();
        from.encode(&mut body);
        msg.encode(&mut body);
        let len = body.len() as u32;
        stream.write_all(&len.to_be_bytes())?;
        stream.write_all(&body)?;
        stream.flush()
    }
}

impl Drop for TcpEndpoint {
    fn drop(&mut self) {
        // Stop the acceptor so the listener closes and the port is freed:
        // set the flag, poke the listener awake with a throwaway
        // connection, then *join* the acceptor thread. The join makes stop
        // synchronous: once Drop returns, the listener socket is closed
        // and the port free, so a crash–rebind on the same address can
        // never race a zombie acceptor that steals one connection.
        // Best-effort — never fail in Drop.
        self.stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Tear down the writer pipelines: each drains its queued frames
        // and exits once its sender is gone; joining bounds the teardown
        // so no writer thread outlives the endpoint.
        let pipelines: Vec<PeerPipeline> =
            self.pipelines.lock().drain().map(|(_, p)| p).collect();
        for pipeline in pipelines {
            pipeline.shutdown();
        }
    }
}

fn acceptor_loop(
    listener: TcpListener,
    tx: Sender<Inbound>,
    stop: Arc<AtomicBool>,
    legacy: bool,
    inbound: InboundSeen,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            return;
        }
        let Ok(stream) = stream else { break };
        let tx = tx.clone();
        let inbound = Arc::clone(&inbound);
        let _ = thread::Builder::new().name("tcp-reader".into()).spawn(move || {
            if legacy {
                reader_loop_legacy(stream, &tx);
            } else {
                reader_loop(stream, &tx, &inbound);
            }
        });
    }
}

fn reader_loop(stream: TcpStream, tx: &Sender<Inbound>, inbound: &InboundSeen) {
    // Buffered reads pull many frames per syscall, and one body buffer
    // lives for the connection's lifetime (grown to the largest frame
    // seen) with frames decoded from it in place — no read syscall for
    // the 4-byte length prefix, no allocation per frame.
    let mut stream = std::io::BufReader::with_capacity(64 * 1024, stream);
    let mut body: Vec<u8> = Vec::new();
    let mut last_mark: Option<Instant> = None;
    loop {
        let mut len_buf = [0u8; 4];
        if stream.read_exact(&mut len_buf).is_err() {
            return;
        }
        let len = u32::from_be_bytes(len_buf);
        if len > MAX_FRAME {
            return;
        }
        body.resize(len as usize, 0);
        if stream.read_exact(&mut body).is_err() {
            return;
        }
        let mut cursor: &[u8] = &body;
        let Ok(from) = ProcessId::decode(&mut cursor) else { return };
        let Ok(msg) = Msg::decode(&mut cursor) else { return };
        // Mark the peer heard-from (throttled per connection) so a send
        // pipeline holding a negative-cache entry for it reconnects on
        // the next send instead of waiting out the backoff.
        let now = Instant::now();
        match last_mark {
            Some(at) if now.duration_since(at) < INBOUND_MARK_INTERVAL => {}
            _ => {
                inbound.lock().insert(from, now);
                last_mark = Some(now);
            }
        }
        if tx.send((from, msg)).is_err() {
            return;
        }
        if body.capacity() > BUF_RETAIN {
            body = Vec::new();
        }
    }
}

/// The pre-pipeline receive path: two read syscalls and a fresh
/// allocation per frame. Kept for [`TcpTuning::legacy_send`]'s
/// before/after measurements.
fn reader_loop_legacy(mut stream: TcpStream, tx: &Sender<Inbound>) {
    loop {
        let mut len_buf = [0u8; 4];
        if stream.read_exact(&mut len_buf).is_err() {
            return;
        }
        let len = u32::from_be_bytes(len_buf);
        if len > MAX_FRAME {
            return;
        }
        let mut body = vec![0u8; len as usize];
        if stream.read_exact(&mut body).is_err() {
            return;
        }
        let mut bytes = Bytes::from(body);
        let Ok(from) = ProcessId::decode(&mut bytes) else { return };
        let Ok(msg) = Msg::decode(&mut bytes) else { return };
        if tx.send((from, msg)).is_err() {
            return;
        }
    }
}

impl Endpoint for TcpEndpoint {
    fn id(&self) -> ProcessId {
        self.id
    }

    fn send(&self, to: ProcessId, msg: Msg) -> Result<(), TransportError> {
        if self.tuning.legacy_send {
            self.legacy_send(to, msg)
        } else {
            self.pipeline_send(to, msg)
        }
    }

    /// A broadcast takes the pipeline map lock once for the whole batch,
    /// then sends with the lock released.
    fn send_batch(&self, batch: Vec<(ProcessId, Msg)>) {
        if self.tuning.legacy_send {
            for (to, msg) in batch {
                let _ = self.legacy_send(to, msg);
            }
            return;
        }
        let mut staged = Vec::with_capacity(batch.len());
        {
            let mut pipelines = self.pipelines.lock();
            for (to, msg) in batch {
                let pipeline = match pipelines.entry(to) {
                    Entry::Occupied(e) => e.into_mut(),
                    Entry::Vacant(e) => {
                        if self.registry.lookup(to).is_none() {
                            continue; // dead peer: the tolerated failure
                        }
                        e.insert(PeerPipeline::new(
                            self.id,
                            to,
                            self.registry.clone(),
                            self.tuning,
                            Arc::clone(&self.inbound),
                        ))
                    }
                };
                staged.push((pipeline.handles(), msg));
            }
        }
        for (handles, msg) in staged {
            let _ = handles.send(msg);
        }
    }

    fn inbox(&self) -> &Receiver<Inbound> {
        &self.inbox
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwr_types::Value;
    use std::time::Duration;

    #[test]
    fn frames_round_trip_over_loopback() {
        let registry = TcpRegistry::new();
        let a = TcpEndpoint::bind(ProcessId::writer(0), &registry).unwrap();
        let b = TcpEndpoint::bind(ProcessId::server(0), &registry).unwrap();
        a.send(ProcessId::server(0), Msg::InvokeWrite(Value::new(7))).unwrap();
        let (from, msg) = b.inbox().recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(from, ProcessId::writer(0));
        assert_eq!(msg, Msg::InvokeWrite(Value::new(7)));
    }

    #[test]
    fn bidirectional_traffic_reuses_connections() {
        let registry = TcpRegistry::new();
        let a = TcpEndpoint::bind(ProcessId::reader(0), &registry).unwrap();
        let b = TcpEndpoint::bind(ProcessId::server(1), &registry).unwrap();
        for i in 0..10 {
            a.send(ProcessId::server(1), Msg::InvokeWrite(Value::new(i))).unwrap();
        }
        for _ in 0..10 {
            b.inbox().recv_timeout(Duration::from_secs(5)).unwrap();
        }
        b.send(ProcessId::reader(0), Msg::InvokeRead).unwrap();
        let (from, _) = a.inbox().recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(from, ProcessId::server(1));
        let stats = a.peer_stats(ProcessId::server(1)).unwrap();
        assert_eq!(stats.frames_sent, 10, "all frames delivered: {stats:?}");
        assert_eq!(stats.connect_attempts, 1, "one connection reused: {stats:?}");
        assert!(stats.batches <= stats.frames_sent);
    }

    /// Dropping an endpoint joins the acceptor thread, so the listener is
    /// provably closed before Drop returns: an immediate rebind of the
    /// same process id never races a zombie acceptor that could steal the
    /// rebound endpoint's first connection. Exercised in a tight loop —
    /// the old race window was exactly this crash/rebind interleaving.
    #[test]
    fn crash_rebind_loop_never_leaves_a_zombie_acceptor() {
        let registry = TcpRegistry::new();
        let client = TcpEndpoint::bind(ProcessId::writer(0), &registry).unwrap();
        for round in 0..10 {
            let server = TcpEndpoint::bind(ProcessId::server(0), &registry).unwrap();
            let old_addr = server.local_addr();
            drop(server); // crash: must join the acceptor synchronously
            // The old listener is gone *now*, not eventually: a fresh
            // connection to its address is refused, so it cannot steal a
            // connection meant for the rebound endpoint.
            assert!(
                TcpStream::connect(old_addr).is_err(),
                "round {round}: old listener still accepting after drop"
            );
            let rebound = TcpEndpoint::bind(ProcessId::server(0), &registry).unwrap();
            assert_ne!(rebound.local_addr(), old_addr, "ephemeral rebind");
            // Frames reach the rebound acceptor. A frame written into the
            // crashed connection's dead socket can be lost (that is the
            // crash model), so send until one lands.
            let received = (0..20).any(|_| {
                let _ = client.send(ProcessId::server(0), Msg::InvokeWrite(Value::new(round)));
                rebound.inbox().recv_timeout(Duration::from_millis(500)).is_ok()
            });
            assert!(received, "round {round}: rebound acceptor never heard a frame");
        }
    }

    #[test]
    fn unknown_process_is_reported() {
        let registry = TcpRegistry::new();
        let a = TcpEndpoint::bind(ProcessId::reader(0), &registry).unwrap();
        assert!(matches!(
            a.send(ProcessId::server(42), Msg::InvokeRead),
            Err(TransportError::UnknownDestination { .. })
        ));
    }

    #[test]
    fn removed_registry_entry_fails_fast_without_a_pipeline() {
        let registry = TcpRegistry::new();
        let a = TcpEndpoint::bind(ProcessId::reader(0), &registry).unwrap();
        let _b = TcpEndpoint::bind(ProcessId::server(0), &registry).unwrap();
        registry.remove(ProcessId::server(0));
        for _ in 0..20 {
            assert!(matches!(
                a.send(ProcessId::server(0), Msg::InvokeRead),
                Err(TransportError::UnknownDestination { .. })
            ));
        }
        // No pipeline was ever spawned for the deregistered peer, so not
        // one connect syscall was spent on the 20 sends.
        assert!(a.peer_stats(ProcessId::server(0)).is_none());
    }

    #[test]
    fn failed_connects_are_negative_cached() {
        let tuning = TcpTuning { reconnect_backoff: Duration::from_secs(30), ..TcpTuning::default() };
        let registry = TcpRegistry::new().with_tuning(tuning);
        let a = TcpEndpoint::bind(ProcessId::writer(0), &registry).unwrap();
        // Register an address nobody listens on: grab an ephemeral port,
        // then close the listener so connects are refused.
        let dead = TcpListener::bind("127.0.0.1:0").unwrap();
        let dead_addr = dead.local_addr().unwrap();
        drop(dead);
        registry.insert(ProcessId::server(9), dead_addr);
        for _ in 0..50 {
            a.send(ProcessId::server(9), Msg::InvokeRead).unwrap();
        }
        // Give the pipeline time to drain the queue against the dead peer.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let stats = a.peer_stats(ProcessId::server(9)).unwrap();
            if stats.frames_dropped + stats.frames_sent == 50 {
                assert!(
                    stats.connect_attempts <= 2,
                    "negative cache must stop the connect storm: {stats:?}"
                );
                assert!(stats.frames_dropped > 0, "dead peer drops frames: {stats:?}");
                break;
            }
            assert!(Instant::now() < deadline, "pipeline never drained: {stats:?}");
            thread::yield_now();
        }
    }

    #[test]
    fn inbound_traffic_forgives_a_negative_cached_peer() {
        // Backoff far longer than the test: if the recovered peer gets a
        // frame at all, it got it because inbound traffic forgave the
        // cache, not because the backoff expired.
        let tuning = TcpTuning { reconnect_backoff: Duration::from_secs(30), ..TcpTuning::default() };
        let registry = TcpRegistry::new().with_tuning(tuning);
        let a = TcpEndpoint::bind(ProcessId::writer(0), &registry).unwrap();
        let b = TcpEndpoint::bind(ProcessId::server(0), &registry).unwrap();

        // Healthy traffic establishes a's pipeline to b.
        a.send(ProcessId::server(0), Msg::InvokeWrite(Value::new(1))).unwrap();
        b.inbox().recv_timeout(Duration::from_secs(5)).unwrap();

        // Crash b and keep sending until the pipeline negative-caches it
        // (the first write after a close can still land in the OS buffer,
        // so poll for the drop instead of assuming the first send fails).
        drop(b);
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            a.send(ProcessId::server(0), Msg::InvokeRead).unwrap();
            let stats = a.peer_stats(ProcessId::server(0)).unwrap();
            if stats.frames_dropped > 0 {
                break;
            }
            assert!(Instant::now() < deadline, "crashed peer never negative-cached: {stats:?}");
            thread::sleep(Duration::from_millis(1));
        }

        // Restart b under the same id: `bind` re-registers the (new)
        // address. Its first outbound frame is the proof-of-life that must
        // forgive a's negative cache.
        let b2 = TcpEndpoint::bind(ProcessId::server(0), &registry).unwrap();
        b2.send(ProcessId::writer(0), Msg::InvokeRead).unwrap();
        // Receiving it means a's reader thread decoded (and marked) the
        // peer before handing the frame to the inbox.
        let (from, _) = a.inbox().recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(from, ProcessId::server(0));

        // The very next send must go through — 30 s before the backoff
        // would have allowed a reconnect.
        a.send(ProcessId::server(0), Msg::InvokeWrite(Value::new(42))).unwrap();
        let (_, msg) = b2.inbox().recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(msg, Msg::InvokeWrite(Value::new(42)), "send resumed after forgiveness");

        let stats = a.peer_stats(ProcessId::server(0)).unwrap();
        assert!(stats.frames_dropped >= 1, "crash phase dropped frames: {stats:?}");
        assert!(
            stats.connect_attempts <= 4,
            "forgiveness must not open a connect storm: {stats:?}"
        );
    }

    #[test]
    fn legacy_send_path_still_works() {
        let tuning = TcpTuning { legacy_send: true, ..TcpTuning::default() };
        let registry = TcpRegistry::new().with_tuning(tuning);
        let a = TcpEndpoint::bind(ProcessId::writer(0), &registry).unwrap();
        let b = TcpEndpoint::bind(ProcessId::server(0), &registry).unwrap();
        for i in 0..5 {
            a.send(ProcessId::server(0), Msg::InvokeWrite(Value::new(i))).unwrap();
        }
        for _ in 0..5 {
            b.inbox().recv_timeout(Duration::from_secs(5)).unwrap();
        }
        assert!(a.peer_stats(ProcessId::server(0)).is_none(), "legacy path has no pipeline");
    }

    #[test]
    fn drop_flushes_queued_frames() {
        let registry = TcpRegistry::new();
        let b = TcpEndpoint::bind(ProcessId::server(3), &registry).unwrap();
        {
            let a = TcpEndpoint::bind(ProcessId::writer(1), &registry).unwrap();
            for i in 0..100 {
                a.send(ProcessId::server(3), Msg::InvokeWrite(Value::new(i))).unwrap();
            }
            // `a` drops here: the pipeline must deliver everything queued
            // before its writer thread exits.
        }
        for i in 0..100 {
            let (_, msg) = b.inbox().recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(msg, Msg::InvokeWrite(Value::new(i)), "FIFO preserved through teardown");
        }
    }

    #[test]
    fn send_batch_fans_out_in_one_call() {
        let registry = TcpRegistry::new();
        let a = TcpEndpoint::bind(ProcessId::writer(0), &registry).unwrap();
        let b = TcpEndpoint::bind(ProcessId::server(0), &registry).unwrap();
        let c = TcpEndpoint::bind(ProcessId::server(1), &registry).unwrap();
        a.send_batch(vec![
            (ProcessId::server(0), Msg::InvokeRead),
            (ProcessId::server(1), Msg::InvokeRead),
            (ProcessId::server(7), Msg::InvokeRead), // unknown: dropped
        ]);
        assert!(b.inbox().recv_timeout(Duration::from_secs(5)).is_ok());
        assert!(c.inbox().recv_timeout(Duration::from_secs(5)).is_ok());
    }
}
