//! A TCP transport: length-prefixed frames carrying the hand-rolled wire
//! codec from `mwr-types`.
//!
//! Every process owns a listening socket; a registry maps process ids to
//! socket addresses. Outbound connections are cached per destination and
//! re-established on failure. Frames are `u32` big-endian length followed
//! by `Wire`-encoded `(ProcessId, Msg)`.

use std::collections::HashMap;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use bytes::{Bytes, BytesMut};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use mwr_core::Msg;
use mwr_types::codec::Wire;
use mwr_types::ProcessId;

use crate::transport::{Endpoint, EndpointFactory, Inbound, TransportError};

/// Maximum accepted frame size (16 MiB) — guards against corrupt peers.
const MAX_FRAME: u32 = 16 * 1024 * 1024;

fn io_err(e: std::io::Error) -> TransportError {
    TransportError::Io { message: e.to_string() }
}

/// Shared process-id → address registry.
#[derive(Debug, Clone, Default)]
pub struct TcpRegistry {
    addrs: Arc<Mutex<HashMap<ProcessId, SocketAddr>>>,
}

impl TcpRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records where a process listens.
    pub fn insert(&self, id: ProcessId, addr: SocketAddr) {
        self.addrs.lock().insert(id, addr);
    }

    /// Looks up a process's address.
    pub fn lookup(&self, id: ProcessId) -> Option<SocketAddr> {
        self.addrs.lock().get(&id).copied()
    }

    /// Forgets a process's address: peers without a cached connection get
    /// [`TransportError::UnknownDestination`] from then on.
    pub fn remove(&self, id: ProcessId) {
        self.addrs.lock().remove(&id);
    }
}

impl EndpointFactory for TcpRegistry {
    type Endpoint = TcpEndpoint;

    fn open(&self, id: ProcessId) -> Result<TcpEndpoint, TransportError> {
        TcpEndpoint::bind(id, self)
    }

    fn close(&self, id: ProcessId) {
        self.remove(id);
    }
}

/// One process's TCP endpoint: a listener thread feeding an inbox, plus
/// cached outbound connections.
#[derive(Debug)]
pub struct TcpEndpoint {
    id: ProcessId,
    registry: TcpRegistry,
    inbox: Receiver<Inbound>,
    outbound: Mutex<HashMap<ProcessId, TcpStream>>,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl TcpEndpoint {
    /// Binds a listener on `127.0.0.1` (ephemeral port), registers it, and
    /// spawns the acceptor thread.
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] if binding fails.
    pub fn bind(id: ProcessId, registry: &TcpRegistry) -> Result<TcpEndpoint, TransportError> {
        let listener = TcpListener::bind("127.0.0.1:0").map_err(io_err)?;
        let local_addr = listener.local_addr().map_err(io_err)?;
        registry.insert(id, local_addr);
        let (tx, rx) = unbounded();
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor_stop = Arc::clone(&stop);
        thread::Builder::new()
            .name(format!("tcp-acceptor-{id}"))
            .spawn(move || acceptor_loop(listener, tx, acceptor_stop))
            .map_err(io_err)?;
        Ok(TcpEndpoint {
            id,
            registry: registry.clone(),
            inbox: rx,
            outbound: Mutex::new(HashMap::new()),
            local_addr,
            stop,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    fn write_frame(stream: &mut TcpStream, from: ProcessId, msg: &Msg) -> std::io::Result<()> {
        let mut body = BytesMut::new();
        from.encode(&mut body);
        msg.encode(&mut body);
        let len = body.len() as u32;
        stream.write_all(&len.to_be_bytes())?;
        stream.write_all(&body)?;
        stream.flush()
    }
}

impl Drop for TcpEndpoint {
    fn drop(&mut self) {
        // Stop the acceptor so the listener closes and the port is freed:
        // set the flag, then poke the listener awake with a throwaway
        // connection. Best-effort — never fail in Drop.
        self.stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.local_addr);
    }
}

fn acceptor_loop(listener: TcpListener, tx: Sender<Inbound>, stop: Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            return;
        }
        let Ok(stream) = stream else { break };
        let tx = tx.clone();
        let _ = thread::Builder::new()
            .name("tcp-reader".into())
            .spawn(move || reader_loop(stream, tx));
    }
}

fn reader_loop(mut stream: TcpStream, tx: Sender<Inbound>) {
    loop {
        let mut len_buf = [0u8; 4];
        if stream.read_exact(&mut len_buf).is_err() {
            return;
        }
        let len = u32::from_be_bytes(len_buf);
        if len > MAX_FRAME {
            return;
        }
        let mut body = vec![0u8; len as usize];
        if stream.read_exact(&mut body).is_err() {
            return;
        }
        let mut bytes = Bytes::from(body);
        let Ok(from) = ProcessId::decode(&mut bytes) else { return };
        let Ok(msg) = Msg::decode(&mut bytes) else { return };
        if tx.send((from, msg)).is_err() {
            return;
        }
    }
}

impl Endpoint for TcpEndpoint {
    fn id(&self) -> ProcessId {
        self.id
    }

    fn send(&self, to: ProcessId, msg: Msg) -> Result<(), TransportError> {
        let addr = self
            .registry
            .lookup(to)
            .ok_or(TransportError::UnknownDestination { to })?;
        let mut cache = self.outbound.lock();
        // Try the cached connection first; on failure, reconnect once.
        if let Some(stream) = cache.get_mut(&to) {
            if TcpEndpoint::write_frame(stream, self.id, &msg).is_ok() {
                return Ok(());
            }
            cache.remove(&to);
        }
        let mut stream = TcpStream::connect(addr).map_err(io_err)?;
        stream.set_nodelay(true).map_err(io_err)?;
        TcpEndpoint::write_frame(&mut stream, self.id, &msg).map_err(io_err)?;
        cache.insert(to, stream);
        Ok(())
    }

    fn inbox(&self) -> &Receiver<Inbound> {
        &self.inbox
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwr_types::Value;
    use std::time::Duration;

    #[test]
    fn frames_round_trip_over_loopback() {
        let registry = TcpRegistry::new();
        let a = TcpEndpoint::bind(ProcessId::writer(0), &registry).unwrap();
        let b = TcpEndpoint::bind(ProcessId::server(0), &registry).unwrap();
        a.send(ProcessId::server(0), Msg::InvokeWrite(Value::new(7))).unwrap();
        let (from, msg) = b.inbox().recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(from, ProcessId::writer(0));
        assert_eq!(msg, Msg::InvokeWrite(Value::new(7)));
    }

    #[test]
    fn bidirectional_traffic_reuses_connections() {
        let registry = TcpRegistry::new();
        let a = TcpEndpoint::bind(ProcessId::reader(0), &registry).unwrap();
        let b = TcpEndpoint::bind(ProcessId::server(1), &registry).unwrap();
        for i in 0..10 {
            a.send(ProcessId::server(1), Msg::InvokeWrite(Value::new(i))).unwrap();
        }
        for _ in 0..10 {
            b.inbox().recv_timeout(Duration::from_secs(5)).unwrap();
        }
        b.send(ProcessId::reader(0), Msg::InvokeRead).unwrap();
        let (from, _) = a.inbox().recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(from, ProcessId::server(1));
    }

    #[test]
    fn unknown_process_is_reported() {
        let registry = TcpRegistry::new();
        let a = TcpEndpoint::bind(ProcessId::reader(0), &registry).unwrap();
        assert!(matches!(
            a.send(ProcessId::server(42), Msg::InvokeRead),
            Err(TransportError::UnknownDestination { .. })
        ));
    }
}
