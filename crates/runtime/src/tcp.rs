//! A TCP transport: length-prefixed frames carrying the hand-rolled wire
//! codec from `mwr-types`, sent through per-peer writer pipelines.
//!
//! Every process owns a listening socket; a registry maps process ids to
//! socket addresses. Frames are `u32` big-endian length followed by
//! `Wire`-encoded `(ProcessId, Msg)`.
//!
//! # Hot path
//!
//! The transport is built for throughput:
//!
//! - **Per-peer writer pipelines.** Each destination gets its own I/O
//!   state (connection + reusable encode buffer) behind its own lock,
//!   plus a bounded queue drained by a dedicated thread. When the peer is
//!   idle, a send writes **inline** on the sender's thread — one lock,
//!   one encode, one `write_all`, no handoff. When the peer's I/O is busy
//!   (another thread mid-write, a write blocked on a slow peer, a
//!   reconnect in progress), the sender enqueues and moves on: one
//!   stalled destination cannot stall the rest of a broadcast, which the
//!   pre-pipeline path's endpoint-wide lock guaranteed it would.
//! - **Frame coalescing.** Whatever backlog accumulates for one peer
//!   (up to [`TcpTuning::batch`] frames) is encoded into one reusable
//!   buffer and written with a single `write_all` — one syscall per
//!   batch, sized exactly via `Wire::encoded_len`, no per-message buffer.
//!   The inline path writes length-prefix and body as one syscall too,
//!   where the old path issued two.
//! - **Reconnect backoff + stall bounding.** Connection management lives
//!   inside the pipeline: a failed `connect` is negative-cached for
//!   [`TcpTuning::reconnect_backoff`], so a crashed peer costs one failed
//!   syscall per backoff window instead of one per message, and pipeline
//!   sockets carry a [`TcpTuning::write_timeout`] so a stalled peer
//!   (connected but not reading) can block a sender for at most the
//!   timeout before being negative-cached too. Frames to an unreachable
//!   peer are dropped — precisely the crash model the quorum protocols
//!   tolerate. The cache is **forgiven early by inbound traffic**: a
//!   frame arriving *from* a negative-cached peer after its last failure
//!   is proof the peer is back, so the next send reconnects immediately
//!   instead of silently dropping frames for the rest of the backoff —
//!   without this, a recovered peer stayed unreachable for up to a full
//!   backoff window after it had already resumed talking to us.
//! - **One shared reader per endpoint.** Accepted connections are set
//!   non-blocking and adopted by a single readiness-driven reader thread
//!   (poll(2) through the vendored `polling` stand-in) instead of parking
//!   one blocking thread per connection. An 8×8 cluster endpoint owns one
//!   reader, not sixteen; one `poll` wake-up drains every ready socket
//!   before sleeping again, so bursty quorum traffic costs a fraction of
//!   a wake-up per frame (measured by [`ReaderStats`]). Each adopted
//!   socket keeps a reusable buffer that frames are decoded from in
//!   place — the per-connection buffering the old reader threads had,
//!   carried into the shared reader — and a per-drain byte budget yields
//!   a fire-hosing socket back to the poller so its peers on the same
//!   reader are never starved. The pre-shared-reader receive path (one
//!   blocking `BufReader` thread per connection) is kept behind
//!   [`TcpTuning::shared_reader`]` = false` so benchmarks can measure the
//!   before/after, and is the automatic fallback on targets with no
//!   readiness queue.
//!
//! Dropping the endpoint tears the pipelines down cleanly: queued frames
//! are flushed, writer threads join, the acceptor stops, and the shared
//! reader is joined — which closes every adopted connection *before*
//! `drop` returns, observable through [`TcpEndpoint::connection_gauge`].
//! The pre-pipeline hot path (direct-write sends under one endpoint-wide
//! lock, per-frame receive allocations) is kept behind
//! [`TcpTuning::legacy_send`] so `live_throughput` can measure the
//! before/after on the same build.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use bytes::{BufMut as _, Bytes, BytesMut};
use crossbeam::channel::{bounded, unbounded, Receiver, SendError, Sender};
use parking_lot::Mutex;
use polling::{Event, Poller};

use mwr_core::Msg;
use mwr_types::codec::Wire;
use mwr_types::ProcessId;

use crate::transport::{Endpoint, EndpointFactory, Inbound, TransportError};

/// Maximum accepted frame size (16 MiB) — guards against corrupt peers.
const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Largest buffer capacity a pipeline or reader retains across frames;
/// anything bigger (a full-info burst) is released after use.
const BUF_RETAIN: usize = 1024 * 1024;

/// How often a reader thread re-marks a peer as heard-from. Coarser than
/// per-frame so a busy connection costs one map update per interval, but
/// far finer than any sensible [`TcpTuning::reconnect_backoff`].
const INBOUND_MARK_INTERVAL: Duration = Duration::from_millis(5);

/// When each peer was last *heard from* (an inbound frame decoded with its
/// id), shared by the endpoint's reader threads (who write marks) and its
/// writer pipelines (who read them in [`PeerIo::try_connect`] to forgive
/// the reconnect negative cache early).
type InboundSeen = Arc<Mutex<HashMap<ProcessId, Instant>>>;

fn io_err(e: std::io::Error) -> TransportError {
    TransportError::Io { kind: e.kind() }
}

/// Tuning knobs for the TCP send path.
///
/// The defaults are right for the loopback clusters the workspace runs;
/// the `mwr-register` facade exposes them as a TCP-only deployment knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpTuning {
    /// Maximum frames one writer-pipeline batch coalesces into a single
    /// `write_all` syscall.
    pub batch: usize,
    /// Bounded per-peer queue depth; senders block (backpressure) while a
    /// live peer's queue is full.
    pub queue_depth: usize,
    /// After a failed `connect` (or a failed/timed-out write cycle),
    /// frames to that peer are dropped without another syscall until this
    /// much time has passed.
    pub reconnect_backoff: Duration,
    /// Socket write timeout for pipeline connections, bounding how long a
    /// stalled peer (connected but not reading, TCP window full) can
    /// block a sender or a teardown flush; the frames are then dropped
    /// and the peer negative-cached like a failed connect.
    /// `Duration::ZERO` disables the timeout.
    pub write_timeout: Duration,
    /// Restore the pre-pipeline transport hot path: direct-write sends
    /// under one endpoint-wide lock (two syscalls and a fresh buffer per
    /// message, connect-per-message on a dead peer) and the per-frame
    /// allocating receive loop. Exists so benchmarks can measure the
    /// pipeline against its predecessor on the same binary. Implies
    /// thread-per-connection receive (`shared_reader` is ignored).
    pub legacy_send: bool,
    /// Drain all accepted connections with one readiness-driven reader
    /// thread per endpoint instead of one blocking thread per connection
    /// (the default). `false` restores the thread-per-connection receive
    /// path so benchmarks can measure the fan-in on the same binary; on
    /// targets with no readiness queue the transport falls back to
    /// thread-per-connection automatically.
    pub shared_reader: bool,
}

impl Default for TcpTuning {
    fn default() -> Self {
        TcpTuning {
            batch: 64,
            queue_depth: 1024,
            reconnect_backoff: Duration::from_millis(50),
            write_timeout: Duration::from_secs(1),
            legacy_send: false,
            shared_reader: true,
        }
    }
}

/// Counters of one peer pipeline, for tests and diagnostics. Snapshot via
/// [`TcpEndpoint::peer_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PeerStats {
    /// `connect` syscalls attempted (capped by the reconnect backoff).
    pub connect_attempts: u64,
    /// Frames written to the socket.
    pub frames_sent: u64,
    /// Coalesced `write_all` batches issued (≤ `frames_sent`).
    pub batches: u64,
    /// Frames dropped because the peer stayed unreachable.
    pub frames_dropped: u64,
}

#[derive(Debug, Default)]
struct PipelineStats {
    connect_attempts: AtomicU64,
    frames_sent: AtomicU64,
    batches: AtomicU64,
    frames_dropped: AtomicU64,
}

impl PipelineStats {
    fn snapshot(&self) -> PeerStats {
        PeerStats {
            connect_attempts: self.connect_attempts.load(Ordering::Relaxed),
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            frames_dropped: self.frames_dropped.load(Ordering::Relaxed),
        }
    }
}

/// Counters of an endpoint's shared reader, for tests and the bench
/// harness's wake-per-frame metric. Snapshot via
/// [`TcpEndpoint::reader_stats`]; `None` when the endpoint runs a
/// thread-per-connection receive path instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReaderStats {
    /// Poll wake-ups that reported at least one ready socket. Every wake
    /// drains *all* ready sockets, so under load this is far smaller than
    /// `frames` — the fan-in batching the shared reader exists for.
    pub wakes: u64,
    /// Frames decoded and delivered to the inbox.
    pub frames: u64,
    /// Accepted connections currently adopted by the reader.
    pub open_connections: usize,
}

/// Shared process-id → address registry, carrying the send-path tuning its
/// endpoints are opened with.
#[derive(Debug, Clone, Default)]
pub struct TcpRegistry {
    addrs: Arc<Mutex<HashMap<ProcessId, SocketAddr>>>,
    /// Shared readers of every endpoint opened through this registry, for
    /// deployment-wide [`TcpRegistry::reader_totals`]. Weak: the registry
    /// must not keep a dropped endpoint's reader state alive.
    readers: Arc<Mutex<Vec<std::sync::Weak<ReaderShared>>>>,
    tuning: TcpTuning,
}

impl TcpRegistry {
    /// Creates an empty registry with default [`TcpTuning`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the send-path tuning for endpoints opened through this
    /// registry (builder-style).
    pub fn with_tuning(mut self, tuning: TcpTuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// The send-path tuning endpoints are opened with.
    pub fn tuning(&self) -> TcpTuning {
        self.tuning
    }

    /// Records where a process listens.
    pub fn insert(&self, id: ProcessId, addr: SocketAddr) {
        self.addrs.lock().insert(id, addr);
    }

    /// Looks up a process's address.
    pub fn lookup(&self, id: ProcessId) -> Option<SocketAddr> {
        self.addrs.lock().get(&id).copied()
    }

    /// Forgets a process's address: peers get
    /// [`TransportError::UnknownDestination`] from then on, without a
    /// single connect syscall.
    pub fn remove(&self, id: ProcessId) {
        self.addrs.lock().remove(&id);
    }

    /// Sums the shared-reader counters across every live endpoint opened
    /// through this registry — the bench harness's deployment-wide
    /// wake-per-frame metric. Endpoints on a per-connection receive path
    /// contribute nothing; dropped endpoints are pruned.
    pub fn reader_totals(&self) -> ReaderStats {
        let mut totals = ReaderStats::default();
        self.readers.lock().retain(|weak| {
            let Some(shared) = weak.upgrade() else { return false };
            totals.wakes += shared.wakes.load(Ordering::Relaxed);
            totals.frames += shared.frames.load(Ordering::Relaxed);
            totals.open_connections += shared.conns.load(Ordering::SeqCst);
            true
        });
        totals
    }
}

impl EndpointFactory for TcpRegistry {
    type Endpoint = TcpEndpoint;

    fn open(&self, id: ProcessId) -> Result<TcpEndpoint, TransportError> {
        TcpEndpoint::bind(id, self)
    }

    fn close(&self, id: ProcessId) {
        self.remove(id);
    }
}

/// The I/O half of a peer pipeline: the connection, the reusable encode
/// buffer, and the reconnect negative cache. Shared by the inline fast
/// path (sender thread) and the drain thread, under one per-peer mutex.
#[derive(Debug)]
struct PeerIo {
    from: ProcessId,
    to: ProcessId,
    registry: TcpRegistry,
    tuning: TcpTuning,
    conn: Option<TcpStream>,
    buf: BytesMut,
    last_failed: Option<Instant>,
    inbound: InboundSeen,
}

impl PeerIo {
    /// Encodes `msgs` as one coalesced frame batch and writes it with a
    /// single `write_all`. Reconnects (under the negative-cache backoff)
    /// inside the pipeline; on a dead cached connection, reconnects once
    /// and retries the whole batch (parity with the old per-message
    /// retry). An unreachable peer drops the batch — the crash model's
    /// message loss.
    fn write_frames(&mut self, msgs: &[Msg], stats: &PipelineStats) {
        self.buf.clear();
        let mut framed = 0u64;
        for msg in msgs {
            let len = self.from.encoded_len() + msg.encoded_len();
            // Enforce the receiver's frame bound on the send side too: an
            // oversized message would make the peer drop the connection
            // (taking every coalesced neighbour with it) on every retry.
            if len as u64 > u64::from(MAX_FRAME) {
                stats.frames_dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            framed += 1;
            self.buf.put_u32(len as u32);
            self.from.encode(&mut self.buf);
            msg.encode(&mut self.buf);
        }
        if framed == 0 {
            return;
        }
        let mut delivered = false;
        for _ in 0..2 {
            if self.conn.is_none() {
                self.conn = self.try_connect(stats);
            }
            let Some(stream) = self.conn.as_mut() else { break };
            if stream.write_all(&self.buf).and_then(|()| stream.flush()).is_ok() {
                delivered = true;
                break;
            }
            self.conn = None;
        }
        if delivered {
            stats.batches.fetch_add(1, Ordering::Relaxed);
            stats.frames_sent.fetch_add(framed, Ordering::Relaxed);
        } else {
            // Failed delivery (dead socket, stalled peer hitting the
            // write timeout) negative-caches the peer like a failed
            // connect, so the next batches drop fast instead of stalling
            // the sender for another timeout each.
            self.last_failed = Some(Instant::now());
            stats.frames_dropped.fetch_add(framed, Ordering::Relaxed);
        }
        // Don't let one full-info burst pin its high-water capacity for
        // the pipeline's lifetime.
        if self.buf.capacity() > BUF_RETAIN {
            self.buf = BytesMut::new();
        }
    }

    /// Attempts one connection, respecting the negative cache: after a
    /// failed connect, no syscall is issued until the backoff has elapsed
    /// — unless the peer has been *heard from* since the failure, which
    /// forgives the cache immediately (a restarted peer that already
    /// resumed sending must not keep losing our frames for the rest of
    /// the backoff window).
    fn try_connect(&mut self, stats: &PipelineStats) -> Option<TcpStream> {
        if let Some(at) = self.last_failed {
            let forgiven = self.inbound.lock().get(&self.to).is_some_and(|&seen| seen > at);
            if forgiven {
                self.last_failed = None;
            } else if at.elapsed() < self.tuning.reconnect_backoff {
                return None;
            }
        }
        // A deregistered peer (crashed server) costs a map lookup, never a
        // connect syscall.
        let addr = self.registry.lookup(self.to)?;
        stats.connect_attempts.fetch_add(1, Ordering::Relaxed);
        match TcpStream::connect(addr) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                if !self.tuning.write_timeout.is_zero() {
                    let _ = stream.set_write_timeout(Some(self.tuning.write_timeout));
                }
                self.last_failed = None;
                Some(stream)
            }
            Err(_) => {
                self.last_failed = Some(Instant::now());
                None
            }
        }
    }
}

/// The drain thread's spawn-once state: the queue's receiver is parked
/// here until the first fallback enqueue needs a drain thread.
#[derive(Debug)]
struct DrainState {
    rx: Option<Receiver<Msg>>,
    join: Option<JoinHandle<()>>,
}

/// One destination's writer pipeline: per-peer I/O state behind its own
/// lock, a bounded overflow queue, and a lazily-spawned drain thread.
///
/// The fast path writes **inline** on the sender's thread — when the peer
/// is idle (queue empty, I/O lock free) a send is one lock, one encode
/// into the reusable buffer, one `write_all`. The queue + drain thread
/// take over exactly when that would hurt: the peer's I/O is busy (another
/// thread mid-write, or a write blocked on a slow peer), so the sender
/// enqueues and moves on — one stalled destination cannot stall the rest
/// of a broadcast — and the drain thread coalesces the backlog into
/// batched writes. The drain thread is spawned on the first fallback, so
/// uncontended endpoints (the common case: one sending thread per
/// endpoint) never pay a parked thread per peer.
#[derive(Debug)]
struct PeerPipeline {
    from: ProcessId,
    to: ProcessId,
    tuning: TcpTuning,
    tx: Sender<Msg>,
    /// Frames enqueued but not yet written/dropped by the drain thread.
    /// Checked (under the I/O lock) by the inline path: writing inline
    /// while a queued frame is pending would reorder the peer's stream.
    pending: Arc<AtomicU64>,
    io: Arc<Mutex<PeerIo>>,
    stats: Arc<PipelineStats>,
    drain: Arc<Mutex<DrainState>>,
}

impl PeerPipeline {
    fn new(
        from: ProcessId,
        to: ProcessId,
        registry: TcpRegistry,
        tuning: TcpTuning,
        inbound: InboundSeen,
    ) -> PeerPipeline {
        // Clamp at the transport layer, not just in the facade's knob
        // validation: a zero-capacity bounded channel can never accept a
        // frame, which would wedge the first fallback send forever.
        let (tx, rx) = bounded(tuning.queue_depth.max(1));
        PeerPipeline {
            from,
            to,
            tuning,
            tx,
            pending: Arc::new(AtomicU64::new(0)),
            io: Arc::new(Mutex::new(PeerIo {
                from,
                to,
                registry,
                tuning,
                conn: None,
                buf: BytesMut::new(),
                last_failed: None,
                inbound,
            })),
            stats: Arc::new(PipelineStats::default()),
            drain: Arc::new(Mutex::new(DrainState { rx: Some(rx), join: None })),
        }
    }

    /// The cheaply-cloneable pieces a sender needs, so the endpoint's
    /// pipeline map lock is released before any I/O or enqueue happens.
    fn handles(&self) -> PipelineHandles {
        PipelineHandles {
            from: self.from,
            to: self.to,
            tuning: self.tuning,
            tx: self.tx.clone(),
            pending: Arc::clone(&self.pending),
            io: Arc::clone(&self.io),
            stats: Arc::clone(&self.stats),
            drain: Arc::clone(&self.drain),
        }
    }

    /// Drops the queue's sender (letting any drain thread flush what is
    /// queued and exit) and joins it.
    fn shutdown(self) {
        let PeerPipeline { tx, drain, .. } = self;
        drop(tx);
        let join = drain.lock().join.take();
        if let Some(join) = join {
            let _ = join.join();
        }
    }
}

/// A sender's view of one pipeline, detached from the endpoint's map.
struct PipelineHandles {
    from: ProcessId,
    to: ProcessId,
    tuning: TcpTuning,
    tx: Sender<Msg>,
    pending: Arc<AtomicU64>,
    io: Arc<Mutex<PeerIo>>,
    stats: Arc<PipelineStats>,
    drain: Arc<Mutex<DrainState>>,
}

impl PipelineHandles {
    /// Sends `msg` through the fast inline path when the peer is idle,
    /// falling back to the queue + drain thread when it is busy. Blocks
    /// only when a live peer's bounded queue is full (backpressure); a
    /// dead peer's pipeline drains by dropping, so it cannot exert
    /// backpressure on the sender.
    fn send(&self, msg: Msg) -> Result<(), SendError<Msg>> {
        if let Some(mut io) = self.io.try_lock() {
            // Holding the I/O lock proves the drain thread is not
            // mid-write; zero pending frames proves none are waiting to
            // be written. Together they make the inline write FIFO-safe.
            if self.pending.load(Ordering::SeqCst) == 0 {
                io.write_frames(std::slice::from_ref(&msg), &self.stats);
                return Ok(());
            }
        }
        // The drain thread must exist before anything is queued behind the
        // bounded channel, or a full queue would have no consumer. If the
        // OS refuses the thread, the frame is dropped like any other
        // unreachable-peer loss rather than wedging the sender.
        if self.ensure_drain().is_err() {
            self.stats.frames_dropped.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        self.pending.fetch_add(1, Ordering::SeqCst);
        self.tx.send(msg)
    }

    /// Spawns the drain thread on first use.
    ///
    /// # Errors
    ///
    /// Fails if the OS refuses the thread — including on every later
    /// call once a spawn has failed (the receiver was consumed by the
    /// failed attempt), so fallback sends keep dropping instead of
    /// queueing onto a consumer-less channel.
    fn ensure_drain(&self) -> std::io::Result<()> {
        let mut drain = self.drain.lock();
        if let Some(rx) = drain.rx.take() {
            // Deliberately never touches the per-peer io lock: the drain
            // thread is being spawned precisely because that lock may be
            // held across a stalled write right now.
            let io = Arc::clone(&self.io);
            let pending = Arc::clone(&self.pending);
            let stats = Arc::clone(&self.stats);
            let (from, to, tuning) = (self.from, self.to, self.tuning);
            drain.join = Some(
                thread::Builder::new()
                    .name(format!("tcp-writer-{from}-{to}"))
                    .spawn(move || drain_loop(&rx, tuning, &io, &pending, &stats))?,
            );
        } else if drain.join.is_none() {
            // A previous spawn failed and consumed the receiver: this
            // pipeline can never drain a queue, so the caller must keep
            // dropping.
            return Err(std::io::Error::from(std::io::ErrorKind::WouldBlock));
        }
        Ok(())
    }
}

fn drain_loop(
    rx: &Receiver<Msg>,
    tuning: TcpTuning,
    io: &Mutex<PeerIo>,
    pending: &AtomicU64,
    stats: &PipelineStats,
) {
    let mut batch: Vec<Msg> = Vec::with_capacity(tuning.batch);
    // `recv` keeps yielding queued frames after the endpoint drops its
    // sender, so teardown flushes the queue before the thread exits.
    while let Ok(first) = rx.recv() {
        let mut io = io.lock();
        batch.push(first);
        while batch.len() < tuning.batch {
            match rx.try_recv() {
                Ok(msg) => batch.push(msg),
                Err(_) => break,
            }
        }
        io.write_frames(&batch, stats);
        // Decrement before releasing the I/O lock: an inline sender that
        // acquires it next must see these frames accounted as written.
        pending.fetch_sub(batch.len() as u64, Ordering::SeqCst);
        batch.clear();
    }
}

/// Bytes one socket read pulls at a time in the shared reader; the
/// per-socket buffer grows in these steps (and past them for frames
/// larger than one chunk).
const READ_CHUNK: usize = 64 * 1024;

/// Per-drain byte budget of the shared reader: after this many bytes from
/// one socket it moves on, and the level-triggered poller re-reports the
/// leftover readiness on the next wait — a fire-hosing peer cannot starve
/// the other connections on the same reader thread.
const DRAIN_BUDGET: usize = 1024 * 1024;

/// State shared between an endpoint's shared reader thread, its acceptor
/// (which hands fresh sockets over), and its owner (stop/stats).
#[derive(Debug)]
struct ReaderShared {
    poller: Poller,
    /// Accepted, not-yet-adopted connections; the acceptor pushes and
    /// notifies, the reader drains on its next wake.
    handoff: Mutex<Vec<TcpStream>>,
    stop: AtomicBool,
    wakes: AtomicU64,
    frames: AtomicU64,
    /// Adopted-connection gauge — the endpoint's [`TcpEndpoint::connection_gauge`].
    conns: Arc<AtomicUsize>,
}

/// The shared reader thread's handle held by the endpoint.
#[derive(Debug)]
struct ReaderHandle {
    shared: Arc<ReaderShared>,
    join: Option<JoinHandle<()>>,
}

#[cfg(unix)]
fn stream_fd(stream: &TcpStream) -> polling::Source {
    use std::os::unix::io::AsRawFd as _;
    stream.as_raw_fd()
}

#[cfg(not(unix))]
fn stream_fd(_stream: &TcpStream) -> polling::Source {
    // Unreachable in practice: `Poller::new` fails on non-Unix targets, so
    // the endpoint falls back to thread-per-connection and never adopts.
    -1
}

/// One connection adopted by the shared reader: the non-blocking socket
/// plus its reusable receive buffer (`buf[..filled]` holds bytes read but
/// not yet decoded), carried across wake-ups like the per-connection
/// reader threads carried theirs across frames.
#[derive(Debug)]
struct SharedConn {
    stream: TcpStream,
    buf: Vec<u8>,
    filled: usize,
    last_mark: Option<Instant>,
}

impl SharedConn {
    fn new(stream: TcpStream) -> SharedConn {
        SharedConn { stream, buf: Vec::new(), filled: 0, last_mark: None }
    }

    /// Reads until `WouldBlock`, EOF, or the fairness budget is spent,
    /// decoding every complete frame accumulated in the buffer. Returns
    /// `false` when the connection must be dropped (EOF, I/O error, or a
    /// corrupt/oversized frame — the same conditions that ended a
    /// per-connection reader thread).
    fn drain(&mut self, tx: &Sender<Inbound>, inbound: &InboundSeen, frames: &AtomicU64) -> bool {
        let mut budget = DRAIN_BUDGET;
        loop {
            if self.buf.len() < self.filled + READ_CHUNK {
                self.buf.resize(self.filled + READ_CHUNK, 0);
            }
            match self.stream.read(&mut self.buf[self.filled..]) {
                Ok(0) => return false,
                Ok(n) => {
                    self.filled += n;
                    if !self.decode_frames(tx, inbound, frames) {
                        return false;
                    }
                    budget = budget.saturating_sub(n);
                    if budget == 0 {
                        self.release();
                        return true;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    self.release();
                    return true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
    }

    /// Decodes every complete frame in `buf[..filled]` in place and
    /// compacts the leftover partial frame (if any) to the front.
    fn decode_frames(&mut self, tx: &Sender<Inbound>, inbound: &InboundSeen, frames: &AtomicU64) -> bool {
        let mut parsed = 0usize;
        while self.filled - parsed >= 4 {
            let len = u32::from_be_bytes(self.buf[parsed..parsed + 4].try_into().expect("4 bytes"));
            if len > MAX_FRAME {
                return false;
            }
            let total = 4 + len as usize;
            if self.filled - parsed < total {
                break;
            }
            let mut cursor: &[u8] = &self.buf[parsed + 4..parsed + total];
            let Ok(from) = ProcessId::decode(&mut cursor) else { return false };
            let Ok(msg) = Msg::decode(&mut cursor) else { return false };
            parsed += total;
            frames.fetch_add(1, Ordering::Relaxed);
            // Throttled heard-from mark, as in the per-connection readers,
            // so writer pipelines forgive their negative caches early.
            let now = Instant::now();
            match self.last_mark {
                Some(at) if now.duration_since(at) < INBOUND_MARK_INTERVAL => {}
                _ => {
                    inbound.lock().insert(from, now);
                    self.last_mark = Some(now);
                }
            }
            if tx.send((from, msg)).is_err() {
                return false;
            }
        }
        if parsed > 0 {
            self.buf.copy_within(parsed..self.filled, 0);
            self.filled -= parsed;
        }
        true
    }

    /// Releases a full-info burst's high-water capacity once drained, as
    /// the per-connection readers did with their body buffers.
    fn release(&mut self) {
        if self.buf.capacity() > BUF_RETAIN && self.filled <= BUF_RETAIN {
            let mut fresh = Vec::with_capacity(self.filled.max(READ_CHUNK));
            fresh.extend_from_slice(&self.buf[..self.filled]);
            self.buf = fresh;
        }
    }
}

/// The endpoint's shared reader: sleeps in `poll` until any adopted socket
/// is readable (or the acceptor/owner notifies), then drains every ready
/// socket into the inbox before sleeping again.
fn shared_reader_loop(shared: &ReaderShared, tx: &Sender<Inbound>, inbound: &InboundSeen) {
    let mut conns: HashMap<usize, SharedConn> = HashMap::new();
    let mut next_key = 0usize;
    let mut events: Vec<Event> = Vec::new();
    loop {
        events.clear();
        if shared.poller.wait(&mut events, None).is_err() {
            break;
        }
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        // Adopt connections the acceptor handed over. Any bytes already
        // waiting on them surface on the next (level-triggered) wait.
        let fresh: Vec<TcpStream> = std::mem::take(&mut *shared.handoff.lock());
        for stream in fresh {
            let key = next_key;
            next_key += 1;
            if shared.poller.add(stream_fd(&stream), Event::readable(key)).is_err() {
                continue; // socket drops; the peer reconnects (crash model)
            }
            shared.conns.fetch_add(1, Ordering::SeqCst);
            conns.insert(key, SharedConn::new(stream));
        }
        if !events.is_empty() {
            shared.wakes.fetch_add(1, Ordering::Relaxed);
        }
        for event in &events {
            let Some(conn) = conns.get_mut(&event.key) else { continue };
            if !conn.drain(tx, inbound, &shared.frames) {
                let conn = conns.remove(&event.key).expect("drained conn is present");
                let _ = shared.poller.delete(stream_fd(&conn.stream));
                shared.conns.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
    // Teardown: close every adopted socket before the thread exits, so
    // once the endpoint's Drop joins this thread the gauge reads zero.
    for (_, conn) in conns.drain() {
        let _ = shared.poller.delete(stream_fd(&conn.stream));
        shared.conns.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Where the acceptor routes an accepted connection: the legacy per-frame
/// reader, a per-connection buffered reader thread, or the endpoint's
/// shared readiness-driven reader.
enum AcceptSink {
    Legacy { tx: Sender<Inbound> },
    PerConn { tx: Sender<Inbound>, inbound: InboundSeen, gauge: Arc<AtomicUsize> },
    Shared { shared: Arc<ReaderShared> },
}

/// One process's TCP endpoint: a listener thread feeding an inbox, plus a
/// writer pipeline per destination.
#[derive(Debug)]
pub struct TcpEndpoint {
    id: ProcessId,
    registry: TcpRegistry,
    inbox: Receiver<Inbound>,
    tuning: TcpTuning,
    pipelines: Mutex<HashMap<ProcessId, PeerPipeline>>,
    /// Cached connections for the [`TcpTuning::legacy_send`] path only.
    legacy_outbound: Mutex<HashMap<ProcessId, TcpStream>>,
    /// Last-heard-from marks written by the reader threads, read by the
    /// writer pipelines to forgive the reconnect negative cache.
    inbound: InboundSeen,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<thread::JoinHandle<()>>,
    /// The shared reader, when this endpoint runs one (default tuning on
    /// Unix); `None` on the thread-per-connection fallbacks.
    reader: Option<ReaderHandle>,
    /// Accepted connections currently held by this endpoint's readers.
    conn_gauge: Arc<AtomicUsize>,
}

impl TcpEndpoint {
    /// Binds a listener on `127.0.0.1` (ephemeral port), registers it, and
    /// spawns the acceptor thread.
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] if binding fails.
    pub fn bind(id: ProcessId, registry: &TcpRegistry) -> Result<TcpEndpoint, TransportError> {
        let listener = TcpListener::bind("127.0.0.1:0").map_err(io_err)?;
        let local_addr = listener.local_addr().map_err(io_err)?;
        registry.insert(id, local_addr);
        let (tx, rx) = unbounded();
        let stop = Arc::new(AtomicBool::new(false));
        let tuning = registry.tuning();
        let inbound: InboundSeen = Arc::default();
        let conn_gauge = Arc::new(AtomicUsize::new(0));

        // Pick the receive path: legacy per-frame readers, per-connection
        // buffered reader threads, or (the default) one shared
        // readiness-driven reader — falling back to thread-per-connection
        // where no readiness queue exists (`Poller::new` fails).
        let mut reader = None;
        let per_conn_sink = || AcceptSink::PerConn {
            tx: tx.clone(),
            inbound: Arc::clone(&inbound),
            gauge: Arc::clone(&conn_gauge),
        };
        let sink = if tuning.legacy_send {
            AcceptSink::Legacy { tx: tx.clone() }
        } else if tuning.shared_reader {
            match Poller::new() {
                Ok(poller) => {
                    let shared = Arc::new(ReaderShared {
                        poller,
                        handoff: Mutex::new(Vec::new()),
                        stop: AtomicBool::new(false),
                        wakes: AtomicU64::new(0),
                        frames: AtomicU64::new(0),
                        conns: Arc::clone(&conn_gauge),
                    });
                    let thread_shared = Arc::clone(&shared);
                    let thread_tx = tx.clone();
                    let thread_inbound = Arc::clone(&inbound);
                    let join = thread::Builder::new()
                        .name(format!("tcp-shared-reader-{id}"))
                        .spawn(move || {
                            shared_reader_loop(&thread_shared, &thread_tx, &thread_inbound);
                        })
                        .map_err(io_err)?;
                    registry.readers.lock().push(Arc::downgrade(&shared));
                    reader = Some(ReaderHandle { shared: Arc::clone(&shared), join: Some(join) });
                    AcceptSink::Shared { shared }
                }
                Err(_) => per_conn_sink(),
            }
        } else {
            per_conn_sink()
        };
        let acceptor_stop = Arc::clone(&stop);
        let acceptor = thread::Builder::new()
            .name(format!("tcp-acceptor-{id}"))
            .spawn(move || acceptor_loop(&listener, &acceptor_stop, &sink))
            .map_err(io_err)?;
        Ok(TcpEndpoint {
            id,
            registry: registry.clone(),
            inbox: rx,
            tuning,
            pipelines: Mutex::new(HashMap::new()),
            legacy_outbound: Mutex::new(HashMap::new()),
            inbound,
            local_addr,
            stop,
            acceptor: Some(acceptor),
            reader,
            conn_gauge,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A snapshot of the writer-pipeline counters for `to`, or `None` if
    /// nothing was ever sent there (or the endpoint runs the legacy path).
    pub fn peer_stats(&self, to: ProcessId) -> Option<PeerStats> {
        self.pipelines.lock().get(&to).map(|p| p.stats.snapshot())
    }

    /// A snapshot of the shared reader's counters, or `None` when this
    /// endpoint receives through per-connection threads (legacy tuning,
    /// `shared_reader: false`, or the non-Unix fallback).
    pub fn reader_stats(&self) -> Option<ReaderStats> {
        self.reader.as_ref().map(|r| ReaderStats {
            wakes: r.shared.wakes.load(Ordering::Relaxed),
            frames: r.shared.frames.load(Ordering::Relaxed),
            open_connections: self.conn_gauge.load(Ordering::SeqCst),
        })
    }

    /// The gauge of accepted connections this endpoint's readers currently
    /// hold. The `Arc` outlives the endpoint, so tests can assert teardown
    /// really closed everything: with the shared reader, the gauge reads
    /// zero by the time `drop` returns (the reader thread is joined);
    /// per-connection reader threads drain it as their sockets die.
    pub fn connection_gauge(&self) -> Arc<AtomicUsize> {
        Arc::clone(&self.conn_gauge)
    }

    /// Hands `msg` to the writer pipeline for `to`, spawning it on first
    /// use.
    ///
    /// Destinations that were never registered fail synchronously with
    /// [`TransportError::UnknownDestination`] (a map probe, never a
    /// syscall). Once a pipeline exists, the process-global registry is
    /// not consulted again on the hot path: a peer that crashes later is
    /// detected inside the pipeline (dropped frames, reconnect backoff)
    /// rather than by re-checking the shared registry lock per send.
    fn pipeline_send(&self, to: ProcessId, msg: Msg) -> Result<(), TransportError> {
        // Stage the pipeline's handles under the map lock, but do all I/O
        // and enqueueing outside it: one peer's backpressure must not
        // serialize sends to the others.
        let handles = {
            let mut pipelines = self.pipelines.lock();
            match pipelines.entry(to) {
                Entry::Occupied(e) => e.get().handles(),
                Entry::Vacant(e) => {
                    if self.registry.lookup(to).is_none() {
                        return Err(TransportError::UnknownDestination { to });
                    }
                    e.insert(PeerPipeline::new(
                        self.id,
                        to,
                        self.registry.clone(),
                        self.tuning,
                        Arc::clone(&self.inbound),
                    ))
                    .handles()
                }
            }
        };
        handles.send(msg).map_err(|_| TransportError::Disconnected { to })
    }

    /// The pre-pipeline send path: one endpoint-wide lock held across
    /// every syscall, a fresh encode buffer and two `write` syscalls per
    /// message, and a connect attempt per message when the peer is down.
    fn legacy_send(&self, to: ProcessId, msg: Msg) -> Result<(), TransportError> {
        let addr = self
            .registry
            .lookup(to)
            .ok_or(TransportError::UnknownDestination { to })?;
        let mut cache = self.legacy_outbound.lock();
        // Try the cached connection first; on failure, reconnect once.
        if let Some(stream) = cache.get_mut(&to) {
            if TcpEndpoint::write_frame(stream, self.id, &msg).is_ok() {
                return Ok(());
            }
            cache.remove(&to);
        }
        let mut stream = TcpStream::connect(addr).map_err(io_err)?;
        stream.set_nodelay(true).map_err(io_err)?;
        TcpEndpoint::write_frame(&mut stream, self.id, &msg).map_err(io_err)?;
        cache.insert(to, stream);
        Ok(())
    }

    fn write_frame(stream: &mut TcpStream, from: ProcessId, msg: &Msg) -> std::io::Result<()> {
        let mut body = BytesMut::new();
        from.encode(&mut body);
        msg.encode(&mut body);
        let len = body.len() as u32;
        stream.write_all(&len.to_be_bytes())?;
        stream.write_all(&body)?;
        stream.flush()
    }
}

impl Drop for TcpEndpoint {
    fn drop(&mut self) {
        // Stop the acceptor so the listener closes and the port is freed:
        // set the flag, poke the listener awake with a throwaway
        // connection, then *join* the acceptor thread. The join makes stop
        // synchronous: once Drop returns, the listener socket is closed
        // and the port free, so a crash–rebind on the same address can
        // never race a zombie acceptor that steals one connection.
        // Best-effort — never fail in Drop.
        self.stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Stop the shared reader (after the acceptor, so no more sockets
        // are handed off) and join it: the join makes connection teardown
        // synchronous — every adopted socket is closed and the connection
        // gauge reads zero before Drop returns.
        if let Some(mut reader) = self.reader.take() {
            reader.shared.stop.store(true, Ordering::Release);
            let _ = reader.shared.poller.notify();
            if let Some(join) = reader.join.take() {
                let _ = join.join();
            }
        }
        // Tear down the writer pipelines: each drains its queued frames
        // and exits once its sender is gone; joining bounds the teardown
        // so no writer thread outlives the endpoint.
        let pipelines: Vec<PeerPipeline> =
            self.pipelines.lock().drain().map(|(_, p)| p).collect();
        for pipeline in pipelines {
            pipeline.shutdown();
        }
    }
}

fn acceptor_loop(listener: &TcpListener, stop: &AtomicBool, sink: &AcceptSink) {
    for stream in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            return;
        }
        let Ok(stream) = stream else { break };
        match sink {
            AcceptSink::Legacy { tx } => {
                let tx = tx.clone();
                let _ = thread::Builder::new()
                    .name("tcp-reader".into())
                    .spawn(move || reader_loop_legacy(stream, &tx));
            }
            AcceptSink::PerConn { tx, inbound, gauge } => {
                let tx = tx.clone();
                let inbound = Arc::clone(inbound);
                gauge.fetch_add(1, Ordering::SeqCst);
                let thread_gauge = Arc::clone(gauge);
                let spawned = thread::Builder::new().name("tcp-reader".into()).spawn(move || {
                    reader_loop(stream, &tx, &inbound);
                    thread_gauge.fetch_sub(1, Ordering::SeqCst);
                });
                if spawned.is_err() {
                    gauge.fetch_sub(1, Ordering::SeqCst);
                }
            }
            AcceptSink::Shared { shared } => {
                // Non-blocking before adoption: the shared reader must
                // never block on one socket's read.
                if stream.set_nonblocking(true).is_err() {
                    continue; // socket drops; the peer reconnects
                }
                shared.handoff.lock().push(stream);
                let _ = shared.poller.notify();
            }
        }
    }
}

fn reader_loop(stream: TcpStream, tx: &Sender<Inbound>, inbound: &InboundSeen) {
    // Buffered reads pull many frames per syscall, and one body buffer
    // lives for the connection's lifetime (grown to the largest frame
    // seen) with frames decoded from it in place — no read syscall for
    // the 4-byte length prefix, no allocation per frame.
    let mut stream = std::io::BufReader::with_capacity(64 * 1024, stream);
    let mut body: Vec<u8> = Vec::new();
    let mut last_mark: Option<Instant> = None;
    loop {
        let mut len_buf = [0u8; 4];
        if stream.read_exact(&mut len_buf).is_err() {
            return;
        }
        let len = u32::from_be_bytes(len_buf);
        if len > MAX_FRAME {
            return;
        }
        body.resize(len as usize, 0);
        if stream.read_exact(&mut body).is_err() {
            return;
        }
        let mut cursor: &[u8] = &body;
        let Ok(from) = ProcessId::decode(&mut cursor) else { return };
        let Ok(msg) = Msg::decode(&mut cursor) else { return };
        // Mark the peer heard-from (throttled per connection) so a send
        // pipeline holding a negative-cache entry for it reconnects on
        // the next send instead of waiting out the backoff.
        let now = Instant::now();
        match last_mark {
            Some(at) if now.duration_since(at) < INBOUND_MARK_INTERVAL => {}
            _ => {
                inbound.lock().insert(from, now);
                last_mark = Some(now);
            }
        }
        if tx.send((from, msg)).is_err() {
            return;
        }
        if body.capacity() > BUF_RETAIN {
            body = Vec::new();
        }
    }
}

/// The pre-pipeline receive path: two read syscalls and a fresh
/// allocation per frame. Kept for [`TcpTuning::legacy_send`]'s
/// before/after measurements.
fn reader_loop_legacy(mut stream: TcpStream, tx: &Sender<Inbound>) {
    loop {
        let mut len_buf = [0u8; 4];
        if stream.read_exact(&mut len_buf).is_err() {
            return;
        }
        let len = u32::from_be_bytes(len_buf);
        if len > MAX_FRAME {
            return;
        }
        let mut body = vec![0u8; len as usize];
        if stream.read_exact(&mut body).is_err() {
            return;
        }
        let mut bytes = Bytes::from(body);
        let Ok(from) = ProcessId::decode(&mut bytes) else { return };
        let Ok(msg) = Msg::decode(&mut bytes) else { return };
        if tx.send((from, msg)).is_err() {
            return;
        }
    }
}

impl Endpoint for TcpEndpoint {
    fn id(&self) -> ProcessId {
        self.id
    }

    fn send(&self, to: ProcessId, msg: Msg) -> Result<(), TransportError> {
        if self.tuning.legacy_send {
            self.legacy_send(to, msg)
        } else {
            self.pipeline_send(to, msg)
        }
    }

    /// A broadcast takes the pipeline map lock once for the whole batch,
    /// then sends with the lock released.
    fn send_batch(&self, batch: Vec<(ProcessId, Msg)>) {
        if self.tuning.legacy_send {
            for (to, msg) in batch {
                let _ = self.legacy_send(to, msg);
            }
            return;
        }
        let mut staged = Vec::with_capacity(batch.len());
        {
            let mut pipelines = self.pipelines.lock();
            for (to, msg) in batch {
                let pipeline = match pipelines.entry(to) {
                    Entry::Occupied(e) => e.into_mut(),
                    Entry::Vacant(e) => {
                        if self.registry.lookup(to).is_none() {
                            continue; // dead peer: the tolerated failure
                        }
                        e.insert(PeerPipeline::new(
                            self.id,
                            to,
                            self.registry.clone(),
                            self.tuning,
                            Arc::clone(&self.inbound),
                        ))
                    }
                };
                staged.push((pipeline.handles(), msg));
            }
        }
        for (handles, msg) in staged {
            let _ = handles.send(msg);
        }
    }

    fn inbox(&self) -> &Receiver<Inbound> {
        &self.inbox
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwr_types::Value;
    use std::time::Duration;

    #[test]
    fn frames_round_trip_over_loopback() {
        let registry = TcpRegistry::new();
        let a = TcpEndpoint::bind(ProcessId::writer(0), &registry).unwrap();
        let b = TcpEndpoint::bind(ProcessId::server(0), &registry).unwrap();
        a.send(ProcessId::server(0), Msg::InvokeWrite(Value::new(7))).unwrap();
        let (from, msg) = b.inbox().recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(from, ProcessId::writer(0));
        assert_eq!(msg, Msg::InvokeWrite(Value::new(7)));
    }

    #[test]
    fn bidirectional_traffic_reuses_connections() {
        let registry = TcpRegistry::new();
        let a = TcpEndpoint::bind(ProcessId::reader(0), &registry).unwrap();
        let b = TcpEndpoint::bind(ProcessId::server(1), &registry).unwrap();
        for i in 0..10 {
            a.send(ProcessId::server(1), Msg::InvokeWrite(Value::new(i))).unwrap();
        }
        for _ in 0..10 {
            b.inbox().recv_timeout(Duration::from_secs(5)).unwrap();
        }
        b.send(ProcessId::reader(0), Msg::InvokeRead).unwrap();
        let (from, _) = a.inbox().recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(from, ProcessId::server(1));
        let stats = a.peer_stats(ProcessId::server(1)).unwrap();
        assert_eq!(stats.frames_sent, 10, "all frames delivered: {stats:?}");
        assert_eq!(stats.connect_attempts, 1, "one connection reused: {stats:?}");
        assert!(stats.batches <= stats.frames_sent);
    }

    /// Dropping an endpoint joins the acceptor thread, so the listener is
    /// provably closed before Drop returns: an immediate rebind of the
    /// same process id never races a zombie acceptor that could steal the
    /// rebound endpoint's first connection. Exercised in a tight loop —
    /// the old race window was exactly this crash/rebind interleaving.
    #[test]
    fn crash_rebind_loop_never_leaves_a_zombie_acceptor() {
        let registry = TcpRegistry::new();
        let client = TcpEndpoint::bind(ProcessId::writer(0), &registry).unwrap();
        for round in 0..10 {
            let server = TcpEndpoint::bind(ProcessId::server(0), &registry).unwrap();
            let old_addr = server.local_addr();
            drop(server); // crash: must join the acceptor synchronously
            // The old listener is gone *now*, not eventually: a fresh
            // connection to its address is refused, so it cannot steal a
            // connection meant for the rebound endpoint.
            assert!(
                TcpStream::connect(old_addr).is_err(),
                "round {round}: old listener still accepting after drop"
            );
            let rebound = TcpEndpoint::bind(ProcessId::server(0), &registry).unwrap();
            assert_ne!(rebound.local_addr(), old_addr, "ephemeral rebind");
            // Frames reach the rebound acceptor. A frame written into the
            // crashed connection's dead socket can be lost (that is the
            // crash model), so send until one lands.
            let received = (0..20).any(|_| {
                let _ = client.send(ProcessId::server(0), Msg::InvokeWrite(Value::new(round)));
                rebound.inbox().recv_timeout(Duration::from_millis(500)).is_ok()
            });
            assert!(received, "round {round}: rebound acceptor never heard a frame");
        }
    }

    #[test]
    fn unknown_process_is_reported() {
        let registry = TcpRegistry::new();
        let a = TcpEndpoint::bind(ProcessId::reader(0), &registry).unwrap();
        assert!(matches!(
            a.send(ProcessId::server(42), Msg::InvokeRead),
            Err(TransportError::UnknownDestination { .. })
        ));
    }

    #[test]
    fn removed_registry_entry_fails_fast_without_a_pipeline() {
        let registry = TcpRegistry::new();
        let a = TcpEndpoint::bind(ProcessId::reader(0), &registry).unwrap();
        let _b = TcpEndpoint::bind(ProcessId::server(0), &registry).unwrap();
        registry.remove(ProcessId::server(0));
        for _ in 0..20 {
            assert!(matches!(
                a.send(ProcessId::server(0), Msg::InvokeRead),
                Err(TransportError::UnknownDestination { .. })
            ));
        }
        // No pipeline was ever spawned for the deregistered peer, so not
        // one connect syscall was spent on the 20 sends.
        assert!(a.peer_stats(ProcessId::server(0)).is_none());
    }

    #[test]
    fn failed_connects_are_negative_cached() {
        let tuning = TcpTuning { reconnect_backoff: Duration::from_secs(30), ..TcpTuning::default() };
        let registry = TcpRegistry::new().with_tuning(tuning);
        let a = TcpEndpoint::bind(ProcessId::writer(0), &registry).unwrap();
        // Register an address nobody listens on: grab an ephemeral port,
        // then close the listener so connects are refused.
        let dead = TcpListener::bind("127.0.0.1:0").unwrap();
        let dead_addr = dead.local_addr().unwrap();
        drop(dead);
        registry.insert(ProcessId::server(9), dead_addr);
        for _ in 0..50 {
            a.send(ProcessId::server(9), Msg::InvokeRead).unwrap();
        }
        // Give the pipeline time to drain the queue against the dead peer.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let stats = a.peer_stats(ProcessId::server(9)).unwrap();
            if stats.frames_dropped + stats.frames_sent == 50 {
                assert!(
                    stats.connect_attempts <= 2,
                    "negative cache must stop the connect storm: {stats:?}"
                );
                assert!(stats.frames_dropped > 0, "dead peer drops frames: {stats:?}");
                break;
            }
            assert!(Instant::now() < deadline, "pipeline never drained: {stats:?}");
            thread::yield_now();
        }
    }

    #[test]
    fn inbound_traffic_forgives_a_negative_cached_peer() {
        // Backoff far longer than the test: if the recovered peer gets a
        // frame at all, it got it because inbound traffic forgave the
        // cache, not because the backoff expired.
        let tuning = TcpTuning { reconnect_backoff: Duration::from_secs(30), ..TcpTuning::default() };
        let registry = TcpRegistry::new().with_tuning(tuning);
        let a = TcpEndpoint::bind(ProcessId::writer(0), &registry).unwrap();
        let b = TcpEndpoint::bind(ProcessId::server(0), &registry).unwrap();

        // Healthy traffic establishes a's pipeline to b.
        a.send(ProcessId::server(0), Msg::InvokeWrite(Value::new(1))).unwrap();
        b.inbox().recv_timeout(Duration::from_secs(5)).unwrap();

        // Crash b and keep sending until the pipeline negative-caches it
        // (the first write after a close can still land in the OS buffer,
        // so poll for the drop instead of assuming the first send fails).
        drop(b);
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            a.send(ProcessId::server(0), Msg::InvokeRead).unwrap();
            let stats = a.peer_stats(ProcessId::server(0)).unwrap();
            if stats.frames_dropped > 0 {
                break;
            }
            assert!(Instant::now() < deadline, "crashed peer never negative-cached: {stats:?}");
            thread::sleep(Duration::from_millis(1));
        }

        // Restart b under the same id: `bind` re-registers the (new)
        // address. Its first outbound frame is the proof-of-life that must
        // forgive a's negative cache.
        let b2 = TcpEndpoint::bind(ProcessId::server(0), &registry).unwrap();
        b2.send(ProcessId::writer(0), Msg::InvokeRead).unwrap();
        // Receiving it means a's reader thread decoded (and marked) the
        // peer before handing the frame to the inbox.
        let (from, _) = a.inbox().recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(from, ProcessId::server(0));

        // The very next send must go through — 30 s before the backoff
        // would have allowed a reconnect.
        a.send(ProcessId::server(0), Msg::InvokeWrite(Value::new(42))).unwrap();
        let (_, msg) = b2.inbox().recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(msg, Msg::InvokeWrite(Value::new(42)), "send resumed after forgiveness");

        let stats = a.peer_stats(ProcessId::server(0)).unwrap();
        assert!(stats.frames_dropped >= 1, "crash phase dropped frames: {stats:?}");
        assert!(
            stats.connect_attempts <= 4,
            "forgiveness must not open a connect storm: {stats:?}"
        );
    }

    #[test]
    fn legacy_send_path_still_works() {
        let tuning = TcpTuning { legacy_send: true, ..TcpTuning::default() };
        let registry = TcpRegistry::new().with_tuning(tuning);
        let a = TcpEndpoint::bind(ProcessId::writer(0), &registry).unwrap();
        let b = TcpEndpoint::bind(ProcessId::server(0), &registry).unwrap();
        for i in 0..5 {
            a.send(ProcessId::server(0), Msg::InvokeWrite(Value::new(i))).unwrap();
        }
        for _ in 0..5 {
            b.inbox().recv_timeout(Duration::from_secs(5)).unwrap();
        }
        assert!(a.peer_stats(ProcessId::server(0)).is_none(), "legacy path has no pipeline");
    }

    #[test]
    fn drop_flushes_queued_frames() {
        let registry = TcpRegistry::new();
        let b = TcpEndpoint::bind(ProcessId::server(3), &registry).unwrap();
        {
            let a = TcpEndpoint::bind(ProcessId::writer(1), &registry).unwrap();
            for i in 0..100 {
                a.send(ProcessId::server(3), Msg::InvokeWrite(Value::new(i))).unwrap();
            }
            // `a` drops here: the pipeline must deliver everything queued
            // before its writer thread exits.
        }
        for i in 0..100 {
            let (_, msg) = b.inbox().recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(msg, Msg::InvokeWrite(Value::new(i)), "FIFO preserved through teardown");
        }
    }

    /// The tentpole path: many senders fan in to one endpoint through a
    /// single shared reader thread. Every frame arrives, the reader's
    /// frame counter accounts for all of them, the connection gauge sees
    /// one adopted socket per sender, and peer EOFs (dropped senders) are
    /// reaped back to zero.
    #[test]
    fn shared_reader_fans_in_many_connections_on_one_thread() {
        let registry = TcpRegistry::new();
        let hub = TcpEndpoint::bind(ProcessId::server(0), &registry).unwrap();
        assert!(hub.reader_stats().is_some(), "default tuning runs the shared reader");
        let senders: Vec<TcpEndpoint> = (0..8)
            .map(|i| TcpEndpoint::bind(ProcessId::writer(i), &registry).unwrap())
            .collect();
        for (i, sender) in senders.iter().enumerate() {
            for j in 0..25 {
                let v = Value::new((i * 25 + j) as u64);
                sender.send(ProcessId::server(0), Msg::InvokeWrite(v)).unwrap();
            }
        }
        for _ in 0..200 {
            hub.inbox().recv_timeout(Duration::from_secs(5)).unwrap();
        }
        let stats = hub.reader_stats().unwrap();
        assert_eq!(stats.frames, 200, "{stats:?}");
        assert_eq!(stats.open_connections, 8, "one adopted socket per sender: {stats:?}");
        assert!(stats.wakes >= 1 && stats.wakes <= stats.frames, "{stats:?}");

        // Dropping the senders closes their sockets; the shared reader
        // observes the EOFs and reaps the connections.
        drop(senders);
        let deadline = Instant::now() + Duration::from_secs(5);
        while hub.reader_stats().unwrap().open_connections > 0 {
            assert!(Instant::now() < deadline, "EOF'd connections never reaped");
            thread::yield_now();
        }
    }

    /// `shared_reader: false` restores the thread-per-connection receive
    /// path (the bench matrix's "pipeline" cell).
    #[test]
    fn per_connection_reader_mode_still_works() {
        let tuning = TcpTuning { shared_reader: false, ..TcpTuning::default() };
        let registry = TcpRegistry::new().with_tuning(tuning);
        let a = TcpEndpoint::bind(ProcessId::writer(0), &registry).unwrap();
        let b = TcpEndpoint::bind(ProcessId::server(0), &registry).unwrap();
        assert!(b.reader_stats().is_none(), "no shared reader in per-connection mode");
        for i in 0..20 {
            a.send(ProcessId::server(0), Msg::InvokeWrite(Value::new(i))).unwrap();
        }
        for i in 0..20 {
            let (_, msg) = b.inbox().recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(msg, Msg::InvokeWrite(Value::new(i)), "FIFO per connection");
        }
        assert_eq!(b.connection_gauge().load(Ordering::SeqCst), 1);
    }

    /// Dropping an endpoint joins its shared reader, so every adopted
    /// connection is provably closed by the time `drop` returns — the
    /// gauge outlives the endpoint to make that assertable.
    #[test]
    fn endpoint_drop_closes_every_adopted_connection() {
        let registry = TcpRegistry::new();
        let hub = TcpEndpoint::bind(ProcessId::server(0), &registry).unwrap();
        let senders: Vec<TcpEndpoint> = (0..4)
            .map(|i| TcpEndpoint::bind(ProcessId::reader(i), &registry).unwrap())
            .collect();
        for sender in &senders {
            sender.send(ProcessId::server(0), Msg::InvokeRead).unwrap();
        }
        for _ in 0..4 {
            hub.inbox().recv_timeout(Duration::from_secs(5)).unwrap();
        }
        let gauge = hub.connection_gauge();
        assert_eq!(gauge.load(Ordering::SeqCst), 4);
        drop(hub);
        assert_eq!(
            gauge.load(Ordering::SeqCst),
            0,
            "teardown must close adopted connections synchronously"
        );
    }

    /// A corrupt length prefix (oversized frame) drops exactly that
    /// connection — the shared reader's equivalent of a per-connection
    /// reader thread exiting — without disturbing its neighbours.
    #[test]
    fn oversized_frame_drops_only_the_offending_connection() {
        let registry = TcpRegistry::new();
        let hub = TcpEndpoint::bind(ProcessId::server(0), &registry).unwrap();
        let good = TcpEndpoint::bind(ProcessId::writer(0), &registry).unwrap();
        good.send(ProcessId::server(0), Msg::InvokeRead).unwrap();
        hub.inbox().recv_timeout(Duration::from_secs(5)).unwrap();

        let mut evil = TcpStream::connect(hub.local_addr()).unwrap();
        evil.write_all(&(MAX_FRAME + 1).to_be_bytes()).unwrap();
        evil.flush().unwrap();
        // The evil connection is adopted and then dropped on decode: our
        // end observes EOF (or a reset) once the endpoint closes it.
        evil.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let mut probe = [0u8; 1];
            match evil.read(&mut probe) {
                Ok(0) => break,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    assert!(Instant::now() < deadline, "corrupt connection never dropped");
                }
                Err(_) => break, // reset: closed too
                Ok(_) => panic!("the endpoint never writes on accepted connections"),
            }
        }
        // The good connection is untouched.
        good.send(ProcessId::server(0), Msg::InvokeWrite(Value::new(9))).unwrap();
        let (_, msg) = hub.inbox().recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(msg, Msg::InvokeWrite(Value::new(9)));
        assert_eq!(hub.reader_stats().unwrap().open_connections, 1);
    }

    #[test]
    fn send_batch_fans_out_in_one_call() {
        let registry = TcpRegistry::new();
        let a = TcpEndpoint::bind(ProcessId::writer(0), &registry).unwrap();
        let b = TcpEndpoint::bind(ProcessId::server(0), &registry).unwrap();
        let c = TcpEndpoint::bind(ProcessId::server(1), &registry).unwrap();
        a.send_batch(vec![
            (ProcessId::server(0), Msg::InvokeRead),
            (ProcessId::server(1), Msg::InvokeRead),
            (ProcessId::server(7), Msg::InvokeRead), // unknown: dropped
        ]);
        assert!(b.inbox().recv_timeout(Duration::from_secs(5)).is_ok());
        assert!(c.inbox().recv_timeout(Duration::from_secs(5)).is_ok());
    }
}
