//! Deterministic fault plans: crash/rejoin/churn/delay events scheduled at
//! fixed operation counts or elapsed times.
//!
//! A [`FaultPlan`] is pure data — a bounded, `Copy` schedule that rides on
//! the `mwr-register` facade's `Deployment` knob the same way `TcpTuning`
//! does. Execution lives in the workload driver (`mwr-workload`), which
//! owns the cluster handle and the shared completed-op counter: an
//! injector thread walks the plan in order and fires each step when its
//! [`FaultTrigger`] comes due. Steps fire **in plan order** even if a
//! later step's trigger is reached first, which keeps runs reproducible:
//! the sequence of cluster mutations is exactly the plan, every time.
//!
//! The audited chaos scenarios (rolling restart, crash→rejoin→crash the
//! other minority, churn storms) are canned plans built with the preset
//! constructors.

use std::time::Duration;

/// Maximum steps in one plan. Bounded so the plan stays `Copy` and can be
/// embedded in the facade's `Deployment` by value.
pub const MAX_FAULT_STEPS: usize = 32;

/// What a fault step does to the cluster when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Crash server `idx` (capture its version beacon for the rejoin).
    CrashServer(u32),
    /// Bring server `idx` back through quorum state transfer.
    RejoinServer(u32),
    /// Run a burst of short-lived clients: each joins, performs
    /// `ops_each` reads, then departs floor-safely.
    ChurnBurst {
        /// Number of short-lived clients, run sequentially on one
        /// reserved churn slot.
        clients: u32,
        /// Reads each churn client performs before departing.
        ops_each: u32,
    },
    /// Sleep the injector: a quiet period between fault phases.
    Delay(Duration),
    /// Live server-set reconfiguration: add `add` fresh servers and
    /// retire the `remove` lowest-indexed current members through the
    /// joint-quorum handover, while clients keep serving. `remove` is a
    /// count (not explicit indices) so the plan stays `Copy`; the driver
    /// resolves it against the cluster's live member list when the step
    /// fires.
    Reconfigure {
        /// Fresh servers to mint and state-transfer into the new
        /// configuration.
        add: u32,
        /// How many of the lowest-indexed current members to retire.
        remove: u32,
    },
}

/// When a fault step fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTrigger {
    /// Fires once the cluster-wide completed-operation counter reaches
    /// this count.
    Ops(u64),
    /// Fires once this much wall-clock time has elapsed since the drive
    /// started.
    Elapsed(Duration),
}

/// One scheduled step: fire `event` when `trigger` comes due.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultStep {
    /// When the step fires.
    pub trigger: FaultTrigger,
    /// What the step does.
    pub event: FaultEvent,
}

/// A bounded, copyable schedule of fault steps, executed in order.
///
/// # Examples
///
/// ```
/// use mwr_runtime::{FaultEvent, FaultPlan, FaultTrigger};
///
/// let plan = FaultPlan::new()
///     .at_ops(100, FaultEvent::CrashServer(0))
///     .at_ops(200, FaultEvent::RejoinServer(0));
/// assert_eq!(plan.steps().len(), 2);
/// assert_eq!(plan.steps()[0].trigger, FaultTrigger::Ops(100));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    steps: [Option<FaultStep>; MAX_FAULT_STEPS],
    len: usize,
}

impl FaultPlan {
    /// An empty plan.
    pub const fn new() -> Self {
        FaultPlan { steps: [None; MAX_FAULT_STEPS], len: 0 }
    }

    /// Appends a step (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if the plan already holds [`MAX_FAULT_STEPS`] steps.
    pub fn then(mut self, trigger: FaultTrigger, event: FaultEvent) -> Self {
        assert!(self.len < MAX_FAULT_STEPS, "fault plan full ({MAX_FAULT_STEPS} steps)");
        self.steps[self.len] = Some(FaultStep { trigger, event });
        self.len += 1;
        self
    }

    /// Appends a step firing at a completed-op count (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if the plan is full.
    pub fn at_ops(self, ops: u64, event: FaultEvent) -> Self {
        self.then(FaultTrigger::Ops(ops), event)
    }

    /// Appends a step firing after a wall-clock delay from drive start
    /// (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if the plan is full.
    pub fn after(self, elapsed: Duration, event: FaultEvent) -> Self {
        self.then(FaultTrigger::Elapsed(elapsed), event)
    }

    /// The scheduled steps, in execution order.
    pub fn steps(&self) -> Vec<FaultStep> {
        self.steps[..self.len].iter().map(|s| s.expect("dense prefix")).collect()
    }

    /// True if the plan holds no steps.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The largest server index any step crashes or rejoins, if any — the
    /// facade validates it against the deployment's server count.
    pub fn max_server(&self) -> Option<u32> {
        self.steps[..self.len]
            .iter()
            .filter_map(|s| match s.expect("dense prefix").event {
                FaultEvent::CrashServer(i) | FaultEvent::RejoinServer(i) => Some(i),
                FaultEvent::ChurnBurst { .. }
                | FaultEvent::Delay(_)
                | FaultEvent::Reconfigure { .. } => None,
            })
            .max()
    }

    /// Rolling restart: crash and rejoin every server of an `S`-server
    /// cluster one at a time, a crash every `stride` completed ops and the
    /// matching rejoin half a stride later. Every server is down at most
    /// alone, so the cluster never exceeds one fault at a time.
    ///
    /// # Panics
    ///
    /// Panics if `2 * servers` exceeds [`MAX_FAULT_STEPS`].
    pub fn rolling_restart(servers: u32, stride: u64) -> Self {
        let mut plan = FaultPlan::new();
        for s in 0..servers {
            let at = stride * (s as u64 + 1);
            plan = plan
                .at_ops(at, FaultEvent::CrashServer(s))
                .at_ops(at + stride / 2, FaultEvent::RejoinServer(s));
        }
        plan
    }

    /// Churn storm: `clients` short-lived readers join, read `ops_each`
    /// times and depart, starting once the cluster has completed
    /// `warmup_ops` operations.
    pub fn churn_storm(clients: u32, ops_each: u32, warmup_ops: u64) -> Self {
        FaultPlan::new().at_ops(warmup_ops, FaultEvent::ChurnBurst { clients, ops_each })
    }

    /// Rolling reconfiguration: once the cluster has completed
    /// `warmup_ops` operations, add `add` fresh servers and retire
    /// `remove` of the original members through the joint-quorum
    /// handover, mid-traffic.
    pub fn reconfigure(add: u32, remove: u32, warmup_ops: u64) -> Self {
        FaultPlan::new().at_ops(warmup_ops, FaultEvent::Reconfigure { add, remove })
    }

    /// True if any step reconfigures the server set — such plans require
    /// a driver that owns the cluster mutably for the whole run.
    pub fn reconfigures(&self) -> bool {
        self.steps[..self.len]
            .iter()
            .any(|s| matches!(s.expect("dense prefix").event, FaultEvent::Reconfigure { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_build_in_order_and_stay_copy() {
        let plan = FaultPlan::new()
            .at_ops(10, FaultEvent::CrashServer(2))
            .after(Duration::from_millis(5), FaultEvent::Delay(Duration::from_millis(1)))
            .at_ops(20, FaultEvent::RejoinServer(2));
        let copy = plan; // Copy: usable twice
        assert_eq!(plan.steps().len(), copy.steps().len());
        assert_eq!(plan.steps()[0].event, FaultEvent::CrashServer(2));
        assert_eq!(plan.steps()[2].event, FaultEvent::RejoinServer(2));
        assert_eq!(plan.max_server(), Some(2));
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
        assert_eq!(FaultPlan::new().max_server(), None);
    }

    #[test]
    fn rolling_restart_covers_every_server_once() {
        let plan = FaultPlan::rolling_restart(5, 100);
        let steps = plan.steps();
        assert_eq!(steps.len(), 10);
        for s in 0..5u32 {
            assert!(steps.iter().any(|st| st.event == FaultEvent::CrashServer(s)));
            assert!(steps.iter().any(|st| st.event == FaultEvent::RejoinServer(s)));
        }
        // Each crash precedes its own rejoin and the next crash.
        for pair in steps.chunks(2) {
            assert!(matches!(pair[0].event, FaultEvent::CrashServer(_)));
            assert!(matches!(pair[1].event, FaultEvent::RejoinServer(_)));
        }
        assert_eq!(plan.max_server(), Some(4));
    }

    #[test]
    fn churn_storm_is_one_burst() {
        let plan = FaultPlan::churn_storm(500, 2, 50);
        assert_eq!(plan.steps().len(), 1);
        assert_eq!(
            plan.steps()[0].event,
            FaultEvent::ChurnBurst { clients: 500, ops_each: 2 }
        );
    }

    #[test]
    fn reconfigure_preset_is_one_step_and_flagged() {
        let plan = FaultPlan::reconfigure(2, 2, 100);
        assert_eq!(plan.steps().len(), 1);
        assert_eq!(plan.steps()[0].trigger, FaultTrigger::Ops(100));
        assert_eq!(plan.steps()[0].event, FaultEvent::Reconfigure { add: 2, remove: 2 });
        assert!(plan.reconfigures());
        assert_eq!(plan.max_server(), None);
        assert!(!FaultPlan::rolling_restart(3, 10).reconfigures());
    }

    #[test]
    #[should_panic(expected = "fault plan full")]
    fn overflowing_the_plan_panics() {
        let mut plan = FaultPlan::new();
        for i in 0..=MAX_FAULT_STEPS as u64 {
            plan = plan.at_ops(i, FaultEvent::Delay(Duration::ZERO));
        }
    }
}
