//! Thread-per-server execution of the Algorithm 2 server.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

use crossbeam::channel::{bounded, select, Sender};

use mwr_core::{RegisterServer, ServerBank};
use mwr_types::{ConfigEpoch, ProcessId};

use crate::transport::Endpoint;

/// A running server thread.
#[derive(Debug)]
pub struct ServerHandle {
    id: ProcessId,
    shutdown: Sender<()>,
    join: Option<JoinHandle<u64>>,
    version: Arc<AtomicU64>,
    epoch: Arc<AtomicU32>,
}

impl ServerHandle {
    /// The server's process id.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// The server's published version high-water mark: the state's
    /// monotone version counter, updated by the server thread after every
    /// handled message.
    ///
    /// This is the live runtime's stand-in for the one stable-storage
    /// record crash–recover models customarily assume: a recovering
    /// process knows a bound on the state stamps it issued before the
    /// crash. [`RuntimeCluster::crash_server`](crate::RuntimeCluster::crash_server)
    /// captures it at crash time and feeds it back to
    /// [`mwr_core::ServerState::install`] on rejoin so the new
    /// incarnation resumes its version counter *above* everything the old
    /// one ever acknowledged to readers.
    pub fn version_floor(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// The beacon cell itself, so a crash can join the thread first and
    /// *then* read the final version (the last message's bump included).
    pub(crate) fn beacon(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.version)
    }

    /// Announces a configuration epoch to the running server — the
    /// reconfiguration coordinator's fence. The server thread adopts the
    /// cell *before* handling each message, so from the moment this store
    /// returns, every reply the server produces is tagged `≥ epoch`: any
    /// round that later completes on lower-epoch acknowledgements had all
    /// its server-side effects before the announcement, and is therefore
    /// covered by any old-configuration quorum the handover's state
    /// transfer reads afterwards.
    ///
    /// Monotone (`fetch_max`): announcements racing a frame-carried
    /// adoption can only move the epoch forward.
    pub fn announce_epoch(&self, epoch: ConfigEpoch) {
        self.epoch.fetch_max(epoch.get(), Ordering::AcqRel);
    }

    /// Signals shutdown and waits for the thread; returns the number of
    /// requests the server handled.
    pub fn shutdown(mut self) -> u64 {
        let _ = self.shutdown.send(());
        self.join
            .take()
            .expect("handle joined twice")
            .join()
            .expect("server thread panicked")
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // Best-effort shutdown; never block or fail in Drop (C-DTOR-FAIL).
        let _ = self.shutdown.send(());
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// Spawns a register server serving requests from `endpoint`.
///
/// The server logic is exactly `mwr-core`'s [`RegisterServer`] (Algorithm
/// 2); only the transport differs from the simulator.
///
/// # Panics
///
/// Panics if the OS refuses to spawn a thread.
///
/// # Examples
///
/// ```
/// use mwr_runtime::{spawn_server, InMemoryTransport};
/// use mwr_types::ProcessId;
///
/// let transport = InMemoryTransport::new();
/// let endpoint = transport.register(ProcessId::server(0));
/// let handle = spawn_server(endpoint);
/// assert_eq!(handle.id(), ProcessId::server(0));
/// assert_eq!(handle.shutdown(), 0);
/// ```
pub fn spawn_server(endpoint: impl Endpoint + 'static) -> ServerHandle {
    spawn_server_with(endpoint, RegisterServer::new())
}

/// Spawns a register server with explicit initial state — e.g.
/// [`RegisterServer::with_gc`] to enable acknowledged-floor GC.
///
/// # Panics
///
/// Panics if the OS refuses to spawn a thread.
pub fn spawn_server_with(
    endpoint: impl Endpoint + 'static,
    mut server: RegisterServer,
) -> ServerHandle {
    let id = endpoint.id();
    let (shutdown_tx, shutdown_rx) = bounded::<()>(1);
    let version = Arc::new(AtomicU64::new(server.state().version()));
    let beacon = Arc::clone(&version);
    let epoch = Arc::new(AtomicU32::new(server.epoch().get()));
    let epoch_cell = Arc::clone(&epoch);
    let join = thread::Builder::new()
        .name(format!("mwr-server-{id}"))
        .spawn(move || {
            let mut handled: u64 = 0;
            loop {
                select! {
                    recv(endpoint.inbox()) -> inbound => {
                        let Ok((from, msg)) = inbound else { return handled };
                        // Adopt any announced epoch before the message is
                        // processed: every reply from here on is tagged with
                        // at least the announced epoch (the reconfiguration
                        // fence — see `ServerHandle::announce_epoch`).
                        server.set_epoch(ConfigEpoch::new(epoch_cell.load(Ordering::Acquire)));
                        let reply = server.handle(from, &msg);
                        // Publish the version high-water *before* the reply
                        // leaves, so no reader ever holds an acknowledged
                        // version the beacon has not yet reported — a crash
                        // immediately after the send still recovers a floor
                        // covering that ack.
                        beacon.store(server.state().version(), Ordering::Release);
                        if let Some(reply) = reply {
                            handled += 1;
                            // A dead client is not a server error.
                            let _ = endpoint.send(from, reply);
                        }
                    }
                    recv(shutdown_rx) -> _ => return handled,
                }
            }
        })
        .expect("failed to spawn server thread");
    ServerHandle { id, shutdown: shutdown_tx, join: Some(join), version, epoch }
}

/// Spawns a keyspace server: a [`ServerBank`] of per-register automata
/// behind one endpoint, multiplexing every register by frame header.
///
/// The returned handle's version beacon publishes the bank's *maximum*
/// version across registers — a conservative bound that a rejoin feeds back
/// as every rebuilt register's version floor (see
/// [`ServerBank::max_version`] for why an overestimate is sound).
///
/// # Panics
///
/// Panics if the OS refuses to spawn a thread.
pub fn spawn_bank_with(endpoint: impl Endpoint + 'static, mut bank: ServerBank) -> ServerHandle {
    let id = endpoint.id();
    let (shutdown_tx, shutdown_rx) = bounded::<()>(1);
    let version = Arc::new(AtomicU64::new(bank.max_version()));
    let beacon = Arc::clone(&version);
    let epoch = Arc::new(AtomicU32::new(bank.epoch().get()));
    let epoch_cell = Arc::clone(&epoch);
    let join = thread::Builder::new()
        .name(format!("mwr-bank-{id}"))
        .spawn(move || {
            let mut handled: u64 = 0;
            loop {
                select! {
                    recv(endpoint.inbox()) -> inbound => {
                        let Ok((from, msg)) = inbound else { return handled };
                        // Same fence as `spawn_server_with`.
                        bank.set_epoch(ConfigEpoch::new(epoch_cell.load(Ordering::Acquire)));
                        let reply = bank.handle(from, &msg);
                        // Same ordering as `spawn_server_with`: the beacon
                        // covers this message's version bumps before any
                        // reader can acknowledge them.
                        beacon.store(bank.max_version(), Ordering::Release);
                        if let Some(reply) = reply {
                            handled += 1;
                            let _ = endpoint.send(from, reply);
                        }
                    }
                    recv(shutdown_rx) -> _ => return handled,
                }
            }
        })
        .expect("failed to spawn bank thread");
    ServerHandle { id, shutdown: shutdown_tx, join: Some(join), version, epoch }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::InMemoryTransport;
    use mwr_core::{Msg, OpHandle, OpId};
    use mwr_types::{ClientId, TaggedValue};
    use std::time::Duration;

    #[test]
    fn server_replies_to_queries() {
        let transport = InMemoryTransport::new();
        let server_ep = transport.register(ProcessId::server(0));
        let client_ep = transport.register(ProcessId::reader(0));
        let handle = spawn_server(server_ep);

        let op = OpHandle { op: OpId { client: ClientId::reader(0), seq: 0 }, phase: 1 };
        client_ep.send(ProcessId::server(0), Msg::Query { handle: op }).unwrap();
        let (from, reply) = client_ep
            .inbox()
            .recv_timeout(Duration::from_secs(5))
            .expect("reply");
        assert_eq!(from, ProcessId::server(0));
        assert_eq!(reply, Msg::QueryAck { handle: op, latest: TaggedValue::initial() });
        assert_eq!(handle.shutdown(), 1);
    }
}
