//! One-call live clusters, generic over the transport.
//!
//! [`RuntimeCluster`] is written once against [`EndpointFactory`]; the two
//! transports instantiate it as [`LiveCluster`] (crossbeam channels) and
//! [`TcpCluster`] (loopback sockets). Handle construction, fault injection
//! and shutdown therefore behave identically on both — a crashed TCP
//! server and a crashed in-memory server are the same operation.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mwr_core::{FastWire, JointQuorum, Msg, Protocol, RegisterServer, StateTransfer};
use mwr_types::{ClusterConfig, ConfigEpoch, ProcessId, ReaderId, ServerId, WriterId};

use crate::client::{LiveReader, LiveWriter};
use crate::server::{spawn_server_with, ServerHandle};
use crate::tcp::TcpRegistry;
use crate::transport::{Endpoint, EndpointFactory, InMemoryTransport, TransportError};
use crate::view::{ClusterView, ViewPlan, ViewState};

/// The process id reconfiguration coordinators open their temporary
/// endpoint under. It is a *server* id so that state-transfer messages pass
/// the servers' `from.as_server()` gate, but far outside any real member id
/// (members are minted monotonically from 0), so it can never collide with
/// a member, enter a client's scope, or touch the fast-read reply masks.
pub(crate) const COORDINATOR: ProcessId = ProcessId::Server(ServerId::new(u32::MAX - 1));

/// The server blueprint live clusters spawn: acknowledged-floor GC sized to
/// the cluster's client population, so server stores stay bounded once
/// every client keeps completing operations.
fn gc_server(config: &ClusterConfig) -> RegisterServer {
    RegisterServer::with_gc(config.readers() + config.writers())
}

/// A running live cluster over any [`EndpointFactory`]: all servers up,
/// clients on demand.
///
/// Most callers should not name this type: construct clusters through the
/// `mwr-register` facade (`mwr::register::Deployment`), which picks the
/// factory from its backend knob and layers wire/timeout configuration on
/// top.
///
/// # Examples
///
/// ```
/// use mwr_core::Protocol;
/// use mwr_runtime::{InMemoryTransport, RuntimeCluster};
/// use mwr_types::{ClusterConfig, Value};
///
/// let config = ClusterConfig::new(5, 1, 2, 2)?;
/// let cluster = RuntimeCluster::start_on(InMemoryTransport::new(), config, Protocol::W2R1)?;
/// let mut writer = cluster.writer(0)?;
/// let mut reader = cluster.reader(0)?;
/// let written = writer.write(Value::new(9))?;
/// assert_eq!(reader.read()?, written);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct RuntimeCluster<F: EndpointFactory> {
    config: ClusterConfig,
    protocol: Protocol,
    factory: F,
    servers: Vec<ServerHandle>,
    /// Version beacons captured at crash time, keyed by server index: the
    /// pre-crash version high-water a rejoin must resume above.
    crashed: HashMap<u32, u64>,
    /// Monotone nonce distinguishing state-fetch rounds, so a straggler
    /// snapshot from an earlier rejoin can never corrupt a later one.
    fetch_nonce: u64,
    /// The current member server ids, ascending. Starts as `{0..S}`;
    /// reconfiguration removes ids and mints fresh ones — retired ids are
    /// never reused, so a straggler frame addressed to (or from) a removed
    /// server can never be confused with a later member.
    members: Vec<u32>,
    /// The next server id a reconfiguration will mint.
    next_server_id: u32,
    /// The configuration epoch the cluster is in (the view's epoch).
    epoch: ConfigEpoch,
    /// The shared view every minted client follows through
    /// reconfigurations.
    view: Arc<ClusterView>,
}

/// A running in-memory cluster: [`RuntimeCluster`] over crossbeam channels.
pub type LiveCluster = RuntimeCluster<InMemoryTransport>;

/// A running TCP cluster on loopback: [`RuntimeCluster`] over sockets.
pub type TcpCluster = RuntimeCluster<TcpRegistry>;

impl<F: EndpointFactory> RuntimeCluster<F> {
    /// Starts every server of `config` on its own thread over endpoints
    /// from `factory`, with acknowledged-floor GC enabled.
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] if a server endpoint cannot be opened
    /// (e.g. a socket cannot be bound).
    pub fn start_on(
        factory: F,
        config: ClusterConfig,
        protocol: Protocol,
    ) -> Result<Self, TransportError> {
        let mut servers = Vec::with_capacity(config.servers());
        for s in config.server_ids() {
            let endpoint = factory.open(ProcessId::Server(s))?;
            servers.push(spawn_server_with(endpoint, gc_server(&config)));
        }
        let members: Vec<u32> = (0..config.servers() as u32).collect();
        let view = ClusterView::stable(config.server_ids().collect(), config.quorum_size());
        Ok(RuntimeCluster {
            next_server_id: config.servers() as u32,
            config,
            protocol,
            factory,
            servers,
            crashed: HashMap::new(),
            fetch_nonce: 0,
            members,
            epoch: ConfigEpoch::ZERO,
            view,
        })
    }

    /// The cluster configuration.
    pub fn config(&self) -> ClusterConfig {
        self.config
    }

    /// The protocol clients will run.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// The transport factory, for opening auxiliary endpoints.
    pub fn factory(&self) -> &F {
        &self.factory
    }

    /// The current member server ids, ascending. Identical to
    /// `0..config.servers()` until the first reconfiguration; afterwards
    /// removed ids are gone for good and added ids extend monotonically.
    pub fn members(&self) -> &[u32] {
        &self.members
    }

    /// The configuration epoch the cluster is in: 0 until the first
    /// reconfiguration, then `+2` per completed (or aborted) handover —
    /// one step into the joint window, one step out.
    pub fn epoch(&self) -> ConfigEpoch {
        self.epoch
    }

    /// The shared configuration view minted clients follow. Exposed so
    /// facade layers can attach it to clients they build around their own
    /// endpoints.
    pub fn view(&self) -> Arc<ClusterView> {
        Arc::clone(&self.view)
    }

    /// Creates writer `idx`'s blocking client.
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] if the client endpoint cannot be
    /// opened.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or the writer was already created.
    pub fn writer(&self, idx: u32) -> Result<LiveWriter<F::Endpoint>, TransportError> {
        assert!((idx as usize) < self.config.writers(), "writer {idx} out of range");
        let id = WriterId::new(idx);
        Ok(LiveWriter::new(
            self.factory.open(id.into())?,
            id,
            self.config,
            self.protocol.write_mode(),
        )
        .with_view(self.view()))
    }

    /// Creates reader `idx`'s blocking client on the default
    /// [`FastWire::Delta`] wire.
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] if the client endpoint cannot be
    /// opened.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or the reader was already created.
    pub fn reader(&self, idx: u32) -> Result<LiveReader<F::Endpoint>, TransportError> {
        self.reader_with_wire(idx, FastWire::default())
    }

    /// Creates reader `idx`'s blocking client with an explicit fast-read
    /// wire format ([`FastWire::FullInfo`] restores the paper's O(history)
    /// payloads, for comparison runs).
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] if the client endpoint cannot be
    /// opened.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or the reader was already created.
    pub fn reader_with_wire(
        &self,
        idx: u32,
        wire: FastWire,
    ) -> Result<LiveReader<F::Endpoint>, TransportError> {
        assert!((idx as usize) < self.config.readers(), "reader {idx} out of range");
        let id = ReaderId::new(idx);
        Ok(LiveReader::with_wire(
            self.factory.open(id.into())?,
            id,
            self.config,
            self.protocol.read_mode(),
            wire,
        )
        .with_view(self.view()))
    }

    /// Crashes server `idx`: removes it from the transport's delivery map
    /// and stops its thread. At most `t` crashes keep the register
    /// wait-free; on TCP the crashed server's listener closes, so cached
    /// client connections fail exactly like connections to a dead host.
    ///
    /// # Panics
    ///
    /// Panics if the server was already crashed.
    pub fn crash_server(&mut self, idx: u32) {
        let pos = self
            .servers
            .iter()
            .position(|h| h.id() == ProcessId::server(idx))
            .unwrap_or_else(|| panic!("server {idx} already crashed or unknown"));
        let handle = self.servers.swap_remove(pos);
        self.factory.close(ProcessId::server(idx));
        let beacon = handle.beacon();
        handle.shutdown();
        // Read the beacon *after* the join: it then covers every message
        // the server ever processed. This is the stable-storage version
        // record crash–recover models assume; rejoin resumes above it.
        self.crashed
            .insert(idx, beacon.load(std::sync::atomic::Ordering::Acquire));
    }

    /// Brings a crashed server back: opens a fresh endpoint (on TCP, a
    /// fresh listener re-registered under the same process id), fetches
    /// catch-up state from a **quorum** (`S − t`) of live peers via
    /// [`Msg::StateFetch`], installs the merged transfer with
    /// [`RegisterServer::recovered`], and only then spawns the serving
    /// thread — the rejoined server answers no quorum round before its
    /// state covers every completed operation (see the state-transfer
    /// soundness argument in `mwr-core`'s server module docs).
    ///
    /// Client requests arriving during the fetch window are dropped, which
    /// is indistinguishable from the crash lasting a moment longer.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Io`] with [`std::io::ErrorKind::TimedOut`]
    /// if a quorum of peers does not answer the state fetch within 5
    /// seconds — fewer snapshots could miss a completed write, so the
    /// server refuses to rejoin (and may be retried later; the crash
    /// bookkeeping is preserved).
    ///
    /// # Panics
    ///
    /// Panics if the server is still running.
    pub fn rejoin_server(&mut self, idx: u32) -> Result<(), TransportError> {
        self.rejoin_server_within(idx, Duration::from_secs(5))
    }

    /// [`rejoin_server`](Self::rejoin_server) with an explicit state-fetch
    /// window.
    ///
    /// # Errors
    ///
    /// As [`rejoin_server`](Self::rejoin_server).
    ///
    /// # Panics
    ///
    /// Panics if the server is still running.
    pub fn rejoin_server_within(
        &mut self,
        idx: u32,
        fetch_timeout: Duration,
    ) -> Result<(), TransportError> {
        assert!(
            self.servers.iter().all(|h| h.id() != ProcessId::server(idx)),
            "server {idx} is still running"
        );
        assert!(self.members.contains(&idx), "server {idx} is not a member");
        let version_floor = self.crashed.get(&idx).copied().unwrap_or(0);
        let endpoint = self.factory.open(ProcessId::server(idx))?;
        self.fetch_nonce += 1;
        let nonce = self.fetch_nonce;
        let batch: Vec<(ProcessId, Msg)> = self
            .members
            .iter()
            .filter(|&&s| s != idx)
            .map(|&s| (ProcessId::server(s), Msg::StateFetch { nonce }))
            .collect();
        let required = self.config.quorum_size();
        let mut transfers: BTreeMap<ProcessId, StateTransfer> = BTreeMap::new();
        let deadline = Instant::now() + fetch_timeout;
        // Re-broadcast the fetch periodically within the window: the round
        // is idempotent (snapshots dedupe by peer, stale nonces are
        // ignored), and a peer's first reply can be lost to a pipeline
        // still pointing at this server's *previous* incarnation — its
        // send fails, the pipeline re-resolves, and only a later reply
        // gets through. One lost one-shot must not starve the quorum.
        let rebroadcast_every = (fetch_timeout / 10).max(Duration::from_millis(10));
        'fetch: while transfers.len() < required {
            if Instant::now() >= deadline {
                break;
            }
            endpoint.send_batch(batch.clone());
            let round_ends = (Instant::now() + rebroadcast_every).min(deadline);
            while transfers.len() < required {
                let now = Instant::now();
                if now >= round_ends {
                    break;
                }
                match endpoint.inbox().recv_timeout(round_ends - now) {
                    // Client traffic racing the fetch window is dropped:
                    // the server is not serving yet. Past epoch 0 replies
                    // arrive epoch-tagged; strip the header before
                    // matching.
                    Ok((from, msg)) => {
                        if let (_, Msg::StateSnapshot { nonce: n, state }) =
                            msg.into_epoch_parts()
                        {
                            if n == nonce {
                                transfers.insert(from, *state);
                            }
                        }
                    }
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => break,
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break 'fetch,
                }
            }
        }
        if transfers.len() < required {
            // Not enough peers: a partial transfer could miss a completed
            // write, so refuse to serve. Withdraw the endpoint.
            self.factory.close(ProcessId::server(idx));
            drop(endpoint);
            return Err(TransportError::Io { kind: std::io::ErrorKind::TimedOut });
        }
        let population = self.config.readers() + self.config.writers();
        let transfers: Vec<StateTransfer> = transfers.into_values().collect();
        let server = RegisterServer::recovered(population, version_floor, &transfers);
        let handle = spawn_server_with(endpoint, server);
        // The rejoined incarnation resumes in the cluster's current epoch:
        // its replies are tagged like every other member's, so a stale
        // client learns of any reconfiguration from its first ack.
        handle.announce_epoch(self.epoch);
        self.servers.push(handle);
        self.crashed.remove(&idx);
        Ok(())
    }

    /// Reconfigures the live server set: mints `add` fresh server ids and
    /// retires the members in `remove`, while clients keep serving.
    ///
    /// The handover runs the joint-quorum schedule (RAMBO-style, with
    /// viewstamp-like epochs in every frame past epoch 0):
    ///
    /// 1. **Join** — the added servers spawn empty and the shared view
    ///    flips to a *joint* epoch `e+1`: every client round now broadcasts
    ///    to the union and completes only with a quorum in **both** the old
    ///    and the new configuration, and every fast read is forced through
    ///    its write-back round. The epoch is then announced to all servers
    ///    (the fence): any round that completes on lower-epoch acks had all
    ///    its server-side effects before the announcement.
    /// 2. **Transfer** — a temporary coordinator endpoint fetches state
    ///    snapshots from an old-configuration quorum (`|old| − t`) and
    ///    installs the merge on every added server ([`Msg::StateInstall`],
    ///    the rejoin machinery on a running server). By the fence, that old
    ///    quorum covers every operation that ever completed without a
    ///    new-configuration quorum.
    /// 3. **Commit** — the view flips to a stable epoch `e+2` over the new
    ///    member set, the epoch is announced, and the removed servers are
    ///    torn down (endpoints closed, threads joined). Straggler acks from
    ///    removed servers no longer count: stable satisfaction counts
    ///    members only.
    ///
    /// If the transfer cannot assemble its old quorum or an install ack is
    /// missing within `window`, the reconfiguration **refuses to commit**:
    /// it rolls *forward* to a stable epoch over the unchanged old member
    /// set, tears the added servers down, and returns the timeout — client
    /// traffic is never left on a configuration that might miss a
    /// completed write.
    ///
    /// Returns the added servers' ids (empty for a pure removal).
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Io`] with [`std::io::ErrorKind::TimedOut`]
    /// on a refused handover, or any endpoint-open error propagated from
    /// the transport.
    ///
    /// Crashed members need not rejoin first: with at most `t` of the old
    /// configuration down the transfer quorum still assembles (and a
    /// crashed id listed in `remove` is simply retired for good); with
    /// more than `t` down the handover refuses, exactly like every other
    /// quorum-starved round.
    ///
    /// # Panics
    ///
    /// Panics if `remove` names a non-member, if the change is empty, or
    /// if the resulting shape is invalid (e.g. quorums would not
    /// intersect).
    pub fn reconfigure(&mut self, add: usize, remove: &[u32]) -> Result<Vec<u32>, TransportError> {
        self.reconfigure_within(add, remove, Duration::from_secs(5))
    }

    /// [`reconfigure`](Self::reconfigure) with an explicit state-transfer
    /// window.
    ///
    /// # Errors
    ///
    /// As [`reconfigure`](Self::reconfigure).
    ///
    /// # Panics
    ///
    /// As [`reconfigure`](Self::reconfigure).
    pub fn reconfigure_within(
        &mut self,
        add: usize,
        remove: &[u32],
        window: Duration,
    ) -> Result<Vec<u32>, TransportError> {
        assert!(add > 0 || !remove.is_empty(), "reconfigure must change the member set");
        for &r in remove {
            assert!(self.members.contains(&r), "removed server {r} is not a member");
        }
        let old_members = self.members.clone();
        let added: Vec<u32> = (0..add as u32).map(|i| self.next_server_id + i).collect();
        let mut new_members: Vec<u32> = old_members
            .iter()
            .copied()
            .filter(|m| !remove.contains(m))
            .chain(added.iter().copied())
            .collect();
        new_members.sort_unstable();
        // Validates the new shape (including quorum intersection) before
        // anything is touched; t, R and W are unchanged.
        let new_config = self
            .config
            .reconfigured(new_members.len())
            .unwrap_or_else(|e| panic!("invalid reconfigured shape: {e}"));
        self.next_server_id += add as u32;

        // 1. Join: added servers spawn empty and serve immediately — sound
        // because every joint-window round also spans an old quorum (reads
        // are write-back-secured, and a query's maximum over the union is
        // its maximum over the old side it must include).
        for &id in &added {
            match self.factory.open(ProcessId::server(id)) {
                Ok(endpoint) => {
                    self.servers.push(spawn_server_with(endpoint, gc_server(&new_config)));
                }
                Err(e) => {
                    // Unwind the servers already added; nothing announced.
                    self.teardown(&added);
                    return Err(e);
                }
            }
        }
        let t = self.config.max_faults();
        let joint = JointQuorum::new(
            old_members.iter().map(|&s| ServerId::new(s)).collect(),
            old_members.len() - t,
            new_members.iter().map(|&s| ServerId::new(s)).collect(),
            new_members.len() - t,
        );
        let joint_epoch = self.epoch.next();
        // View before fence: by the time any server can tag a reply with
        // the joint epoch, clients can already read the joint plan.
        self.view.install(ViewState {
            epoch: joint_epoch,
            plan: ViewPlan::Joint { joint },
        });
        for h in &self.servers {
            h.announce_epoch(joint_epoch);
        }
        self.epoch = joint_epoch;

        // 2. Transfer: old-quorum fetch, install on every added server.
        if !added.is_empty() {
            if let Err(e) = self.transfer_state(&old_members, &added, window) {
                // Refuse to commit: roll forward to a stable epoch over the
                // unchanged old member set and tear the joiners down. Epochs
                // never go backwards, so in-flight rounds refresh cleanly.
                let abort_epoch = self.epoch.next();
                self.view.install(ViewState {
                    epoch: abort_epoch,
                    plan: ViewPlan::Stable {
                        targets: old_members.iter().map(|&s| ServerId::new(s)).collect(),
                        quorum: self.config.quorum_size(),
                    },
                });
                for h in &self.servers {
                    h.announce_epoch(abort_epoch);
                }
                self.epoch = abort_epoch;
                self.teardown(&added);
                return Err(e);
            }
        }

        // 3. Commit: stable view over the new members, then retire.
        let commit_epoch = self.epoch.next();
        self.view.install(ViewState {
            epoch: commit_epoch,
            plan: ViewPlan::Stable {
                targets: new_members.iter().map(|&s| ServerId::new(s)).collect(),
                quorum: new_config.quorum_size(),
            },
        });
        for h in &self.servers {
            h.announce_epoch(commit_epoch);
        }
        self.epoch = commit_epoch;
        self.teardown(remove);
        for r in remove {
            // A removed id is retired for good — even a crashed one can
            // never rejoin under the new configuration.
            self.crashed.remove(r);
        }
        self.config = new_config;
        self.members = new_members;
        Ok(added)
    }

    /// Fetches a state snapshot from an old-configuration quorum and
    /// installs the merge on every server in `receivers`, all through one
    /// temporary coordinator endpoint.
    fn transfer_state(
        &mut self,
        donors: &[u32],
        receivers: &[u32],
        window: Duration,
    ) -> Result<(), TransportError> {
        self.fetch_nonce += 1;
        let nonce = self.fetch_nonce;
        let endpoint = self.factory.open(COORDINATOR)?;
        let required = donors.len() - self.config.max_faults();
        let fetch: Vec<(ProcessId, Msg)> = donors
            .iter()
            .map(|&s| (ProcessId::server(s), Msg::StateFetch { nonce }))
            .collect();
        let mut transfers: BTreeMap<ProcessId, StateTransfer> = BTreeMap::new();
        let result = (|| {
            // Same rebroadcast discipline as `rejoin_server_within`: the
            // fetch is idempotent and a first reply can be lost to a stale
            // pipeline.
            let deadline = Instant::now() + window;
            let rebroadcast_every = (window / 10).max(Duration::from_millis(10));
            'fetch: while transfers.len() < required {
                if Instant::now() >= deadline {
                    break;
                }
                endpoint.send_batch(fetch.clone());
                let round_ends = (Instant::now() + rebroadcast_every).min(deadline);
                while transfers.len() < required {
                    let now = Instant::now();
                    if now >= round_ends {
                        break;
                    }
                    match endpoint.inbox().recv_timeout(round_ends - now) {
                        // Donors already run at the joint epoch, so their
                        // replies arrive epoch-tagged: strip before matching.
                        Ok((from, msg)) => {
                            if let (_, Msg::StateSnapshot { nonce: n, state }) =
                                msg.into_epoch_parts()
                            {
                                if n == nonce {
                                    transfers.insert(from, *state);
                                }
                            }
                        }
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => break,
                        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break 'fetch,
                    }
                }
            }
            if transfers.len() < required {
                return Err(TransportError::Io { kind: std::io::ErrorKind::TimedOut });
            }
            // Install the merged quorum state on every receiver and wait
            // for all acks — a receiver that has not installed covers no
            // pre-joint write, so committing without its ack is unsound.
            let transfers: Vec<StateTransfer> = transfers.values().cloned().collect();
            let install: Vec<(ProcessId, Msg)> = receivers
                .iter()
                .map(|&s| {
                    (
                        ProcessId::server(s),
                        Msg::StateInstall { nonce, transfers: transfers.clone() },
                    )
                })
                .collect();
            let mut acked: BTreeMap<ProcessId, ()> = BTreeMap::new();
            let deadline = Instant::now() + window;
            'install: while acked.len() < receivers.len() {
                if Instant::now() >= deadline {
                    break;
                }
                endpoint.send_batch(install.clone());
                let round_ends = (Instant::now() + rebroadcast_every).min(deadline);
                while acked.len() < receivers.len() {
                    let now = Instant::now();
                    if now >= round_ends {
                        break;
                    }
                    match endpoint.inbox().recv_timeout(round_ends - now) {
                        Ok((from, msg)) => {
                            if let (_, Msg::StateInstallAck { nonce: n }) = msg.into_epoch_parts() {
                                if n == nonce {
                                    acked.insert(from, ());
                                }
                            }
                        }
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => break,
                        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break 'install,
                    }
                }
            }
            if acked.len() < receivers.len() {
                return Err(TransportError::Io { kind: std::io::ErrorKind::TimedOut });
            }
            Ok(())
        })();
        self.factory.close(COORDINATOR);
        drop(endpoint);
        result
    }

    /// Closes and joins the named servers (reconfiguration teardown: the
    /// crash path without crash bookkeeping — these ids never come back).
    fn teardown(&mut self, ids: &[u32]) {
        for &id in ids {
            if let Some(pos) =
                self.servers.iter().position(|h| h.id() == ProcessId::server(id))
            {
                let handle = self.servers.swap_remove(pos);
                self.factory.close(ProcessId::server(id));
                handle.shutdown();
            }
        }
    }

    /// Indices of the currently-running servers, ascending.
    pub fn live_servers(&self) -> Vec<u32> {
        let mut live: Vec<u32> = self
            .servers
            .iter()
            .filter_map(|h| match h.id() {
                ProcessId::Server(s) => Some(s.index()),
                ProcessId::Client(_) => None,
            })
            .collect();
        live.sort_unstable();
        live
    }

    /// Shuts down all remaining servers; returns total requests handled.
    pub fn shutdown(self) -> u64 {
        self.servers.into_iter().map(ServerHandle::shutdown).sum()
    }
}

impl RuntimeCluster<InMemoryTransport> {
    /// Starts an in-memory cluster on a fresh transport.
    #[deprecated(
        since = "0.2.0",
        note = "construct clusters through mwr::register::Deployment (Backend::InMemory), \
                or RuntimeCluster::start_on(InMemoryTransport::new(), ..)"
    )]
    pub fn start(config: ClusterConfig, protocol: Protocol) -> Self {
        Self::start_on(InMemoryTransport::new(), config, protocol)
            .expect("in-memory endpoints cannot fail to open")
    }
}

impl RuntimeCluster<TcpRegistry> {
    /// Binds and starts every server on loopback sockets in a fresh
    /// registry.
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] if a socket cannot be bound.
    #[deprecated(
        since = "0.2.0",
        note = "construct clusters through mwr::register::Deployment (Backend::Tcp), \
                or RuntimeCluster::start_on(TcpRegistry::new(), ..)"
    )]
    pub fn start(config: ClusterConfig, protocol: Protocol) -> Result<Self, TransportError> {
        Self::start_on(TcpRegistry::new(), config, protocol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwr_types::Value;

    #[test]
    fn in_memory_cluster_end_to_end() {
        let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
        let cluster =
            RuntimeCluster::start_on(InMemoryTransport::new(), config, Protocol::W2R1).unwrap();
        let mut w = cluster.writer(0).unwrap();
        let mut r = cluster.reader(0).unwrap();
        let written = w.write(Value::new(11)).unwrap();
        assert_eq!(r.read().unwrap(), written);
        assert!(cluster.shutdown() > 0);
    }

    #[test]
    fn cluster_survives_t_crashes() {
        let config = ClusterConfig::new(5, 1, 1, 1).unwrap();
        let mut cluster =
            RuntimeCluster::start_on(InMemoryTransport::new(), config, Protocol::W2R2).unwrap();
        let mut w = cluster.writer(0).unwrap();
        let mut r = cluster.reader(0).unwrap();
        w.write(Value::new(1)).unwrap();
        cluster.crash_server(4);
        let written = w.write(Value::new(2)).unwrap();
        assert_eq!(r.read().unwrap(), written);
        cluster.shutdown();
    }

    /// Crash → rejoin → crash the *other* minority: the rejoined server
    /// must be serving real state, because after the second crash the
    /// quorum can only assemble through it.
    #[test]
    fn rejoined_server_serves_quorums_after_the_other_minority_crashes() {
        let config = ClusterConfig::new(3, 1, 1, 1).unwrap();
        let mut cluster =
            RuntimeCluster::start_on(InMemoryTransport::new(), config, Protocol::W2R1).unwrap();
        let mut w = cluster.writer(0).unwrap();
        let mut r = cluster.reader(0).unwrap();
        w.write(Value::new(1)).unwrap();
        cluster.crash_server(0);
        let during = w.write(Value::new(2)).unwrap();
        cluster.rejoin_server(0).unwrap();
        assert_eq!(cluster.live_servers(), vec![0, 1, 2]);
        // Crash a server that was up the whole time: any quorum now
        // includes the rejoined server 0.
        cluster.crash_server(1);
        let after = w.write(Value::new(3)).unwrap();
        assert!(after > during);
        assert_eq!(r.read().unwrap(), after, "quorum through the rejoined server");
        cluster.shutdown();
    }

    /// A rejoin without a live quorum of peers must refuse (a partial
    /// transfer could miss a completed write), withdraw its endpoint
    /// cleanly, and keep the crash bookkeeping so the attempt can repeat.
    #[test]
    fn rejoin_without_a_peer_quorum_is_refused() {
        let config = ClusterConfig::new(3, 1, 1, 1).unwrap();
        let mut cluster =
            RuntimeCluster::start_on(InMemoryTransport::new(), config, Protocol::W2R1).unwrap();
        let mut w = cluster.writer(0).unwrap();
        w.write(Value::new(1)).unwrap();
        cluster.crash_server(0);
        cluster.crash_server(1);
        // Only server 2 is alive: a quorum of 2 snapshots cannot assemble.
        let window = Duration::from_millis(300);
        assert!(matches!(
            cluster.rejoin_server_within(0, window),
            Err(TransportError::Io { kind: std::io::ErrorKind::TimedOut })
        ));
        assert_eq!(cluster.live_servers(), vec![2]);
        // The refused attempt withdrew its endpoint registration: a second
        // attempt opens it again (a leak would panic on the duplicate).
        assert!(cluster.rejoin_server_within(0, window).is_err());
        cluster.shutdown();
    }

    /// Rolling reconfiguration end to end: add two servers, retire two
    /// originals, keep the same clients writing and reading throughout,
    /// and finish with a quorum that can only assemble through the added
    /// servers — proving the handover transferred real state.
    #[test]
    fn reconfigure_add_and_remove_keeps_clients_serving() {
        let config = ClusterConfig::new(5, 1, 1, 1).unwrap();
        let mut cluster =
            RuntimeCluster::start_on(InMemoryTransport::new(), config, Protocol::W2R1).unwrap();
        let mut w = cluster.writer(0).unwrap();
        let mut r = cluster.reader(0).unwrap();
        let before = w.write(Value::new(1)).unwrap();
        assert_eq!(r.read().unwrap(), before);

        let added = cluster.reconfigure(2, &[0, 1]).unwrap();
        assert_eq!(added, vec![5, 6], "fresh ids, never reusing retired ones");
        assert_eq!(cluster.members(), &[2, 3, 4, 5, 6]);
        assert_eq!(cluster.epoch(), ConfigEpoch::new(2), "joint then committed");
        assert_eq!(cluster.live_servers(), vec![2, 3, 4, 5, 6]);

        // The same clients keep serving in the new configuration; the
        // pre-reconfiguration write is still there.
        let read = r.read().unwrap();
        assert_eq!(read, before, "pre-handover write visible post-commit");
        let after = w.write(Value::new(2)).unwrap();
        assert!(after > before, "tags never re-minted across epochs");
        // Crash one survivor: every quorum of the new 5-server config now
        // includes both added servers.
        cluster.crash_server(2);
        assert_eq!(r.read().unwrap(), after, "quorum through the added servers");
        cluster.shutdown();
    }

    /// A reconfiguration that cannot assemble its old-configuration
    /// transfer quorum refuses to commit: it rolls forward to the old
    /// member set, tears the joiners down, and leaves the cluster shape
    /// unchanged.
    #[test]
    fn reconfigure_refuses_without_an_old_quorum() {
        let config = ClusterConfig::new(5, 1, 1, 1).unwrap();
        let mut cluster =
            RuntimeCluster::start_on(InMemoryTransport::new(), config, Protocol::W2R1).unwrap();
        let mut w = cluster.writer(0).unwrap();
        w.write(Value::new(1)).unwrap();
        // Two of five down is beyond t = 1: the |old| − t = 4 snapshot
        // quorum can never assemble.
        cluster.crash_server(3);
        cluster.crash_server(4);
        let err = cluster
            .reconfigure_within(2, &[0], Duration::from_millis(300))
            .unwrap_err();
        assert!(matches!(err, TransportError::Io { kind: std::io::ErrorKind::TimedOut }));
        assert_eq!(cluster.members(), &[0, 1, 2, 3, 4], "member set unchanged");
        assert_eq!(cluster.live_servers(), vec![0, 1, 2], "joiners torn down");
        assert_eq!(cluster.epoch(), ConfigEpoch::new(2), "rolled forward, never back");
        cluster.shutdown();
    }

    /// Removing a crashed member retires its id for good.
    #[test]
    fn reconfigure_can_retire_a_crashed_member() {
        let config = ClusterConfig::new(5, 1, 1, 1).unwrap();
        let mut cluster =
            RuntimeCluster::start_on(InMemoryTransport::new(), config, Protocol::W2R1).unwrap();
        let mut w = cluster.writer(0).unwrap();
        let before = w.write(Value::new(4)).unwrap();
        cluster.crash_server(1);
        let added = cluster.reconfigure(1, &[1]).unwrap();
        assert_eq!(added, vec![5]);
        assert_eq!(cluster.members(), &[0, 2, 3, 4, 5]);
        let mut r = cluster.reader(0).unwrap();
        assert_eq!(r.read().unwrap(), before);
        cluster.shutdown();
    }

    #[test]
    fn tcp_cluster_end_to_end() {
        let config = ClusterConfig::new(3, 1, 1, 1).unwrap();
        let cluster =
            RuntimeCluster::start_on(TcpRegistry::new(), config, Protocol::W2R1).unwrap();
        let mut w = cluster.writer(0).unwrap();
        let mut r = cluster.reader(0).unwrap();
        let written = w.write(Value::new(33)).unwrap();
        assert_eq!(r.read().unwrap(), written);
        assert!(cluster.shutdown() > 0);
    }

    #[test]
    fn tcp_cluster_survives_t_crashes() {
        let config = ClusterConfig::new(5, 1, 1, 1).unwrap();
        let mut cluster =
            RuntimeCluster::start_on(TcpRegistry::new(), config, Protocol::W2R1).unwrap();
        let mut w = cluster.writer(0).unwrap();
        let mut r = cluster.reader(0).unwrap();
        w.write(Value::new(1)).unwrap();
        cluster.crash_server(0);
        let written = w.write(Value::new(2)).unwrap();
        assert_eq!(r.read().unwrap(), written, "fast read completes with a crashed minority");
        cluster.shutdown();
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_constructors_still_work() {
        let config = ClusterConfig::new(3, 1, 1, 1).unwrap();
        let cluster = LiveCluster::start(config, Protocol::W2R2);
        let mut w = cluster.writer(0).unwrap();
        let mut r = cluster.reader(0).unwrap();
        let written = w.write(Value::new(5)).unwrap();
        assert_eq!(r.read().unwrap(), written);
        cluster.shutdown();

        let cluster = TcpCluster::start(config, Protocol::W2R2).unwrap();
        let mut w = cluster.writer(0).unwrap();
        assert!(w.write(Value::new(6)).is_ok());
        cluster.shutdown();
    }
}
