//! One-call live clusters over either transport.

use mwr_core::{FastWire, Protocol, RegisterServer};
use mwr_types::{ClusterConfig, ProcessId, ReaderId, WriterId};

use crate::client::{LiveReader, LiveWriter};
use crate::server::{spawn_server_with, ServerHandle};
use crate::tcp::{TcpEndpoint, TcpRegistry};
use crate::transport::{InMemoryEndpoint, InMemoryTransport, TransportError};

/// The server blueprint live clusters spawn: acknowledged-floor GC sized to
/// the cluster's client population, so server stores stay bounded once
/// every client keeps completing operations.
fn gc_server(config: &ClusterConfig) -> RegisterServer {
    RegisterServer::with_gc(config.readers() + config.writers())
}

/// A running in-memory cluster: all servers up, clients on demand.
///
/// # Examples
///
/// ```
/// use mwr_core::Protocol;
/// use mwr_runtime::LiveCluster;
/// use mwr_types::{ClusterConfig, Value};
///
/// let config = ClusterConfig::new(5, 1, 2, 2)?;
/// let cluster = LiveCluster::start(config, Protocol::W2R1);
/// let mut writer = cluster.writer(0);
/// let mut reader = cluster.reader(0);
/// let written = writer.write(Value::new(9))?;
/// assert_eq!(reader.read()?, written);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct LiveCluster {
    config: ClusterConfig,
    protocol: Protocol,
    transport: InMemoryTransport,
    servers: Vec<ServerHandle>,
}

impl LiveCluster {
    /// Starts every server of `config` on its own thread, with
    /// acknowledged-floor GC enabled.
    pub fn start(config: ClusterConfig, protocol: Protocol) -> Self {
        let transport = InMemoryTransport::new();
        let servers = config
            .server_ids()
            .map(|s| {
                spawn_server_with(transport.register(ProcessId::Server(s)), gc_server(&config))
            })
            .collect();
        LiveCluster { config, protocol, transport, servers }
    }

    /// The cluster configuration.
    pub fn config(&self) -> ClusterConfig {
        self.config
    }

    /// The protocol clients will run.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// Creates writer `idx`'s blocking client.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or the writer was already created.
    pub fn writer(&self, idx: u32) -> LiveWriter<InMemoryEndpoint> {
        assert!((idx as usize) < self.config.writers(), "writer {idx} out of range");
        let id = WriterId::new(idx);
        LiveWriter::new(
            self.transport.register(id.into()),
            id,
            self.config,
            self.protocol.write_mode(),
        )
    }

    /// Creates reader `idx`'s blocking client on the default
    /// [`FastWire::Delta`] wire.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or the reader was already created.
    pub fn reader(&self, idx: u32) -> LiveReader<InMemoryEndpoint> {
        self.reader_with_wire(idx, FastWire::default())
    }

    /// Creates reader `idx`'s blocking client with an explicit fast-read
    /// wire format ([`FastWire::FullInfo`] restores the paper's O(history)
    /// payloads, for comparison runs).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or the reader was already created.
    pub fn reader_with_wire(&self, idx: u32, wire: FastWire) -> LiveReader<InMemoryEndpoint> {
        assert!((idx as usize) < self.config.readers(), "reader {idx} out of range");
        let id = ReaderId::new(idx);
        LiveReader::with_wire(
            self.transport.register(id.into()),
            id,
            self.config,
            self.protocol.read_mode(),
            wire,
        )
    }

    /// Crashes server `idx` (stops its thread). At most `t` crashes keep
    /// the register wait-free.
    ///
    /// # Panics
    ///
    /// Panics if the server was already crashed.
    pub fn crash_server(&mut self, idx: u32) {
        let pos = self
            .servers
            .iter()
            .position(|h| h.id() == ProcessId::server(idx))
            .unwrap_or_else(|| panic!("server {idx} already crashed or unknown"));
        let handle = self.servers.swap_remove(pos);
        self.transport.deregister(ProcessId::server(idx));
        handle.shutdown();
    }

    /// Shuts down all remaining servers; returns total requests handled.
    pub fn shutdown(self) -> u64 {
        self.servers.into_iter().map(ServerHandle::shutdown).sum()
    }
}

/// A running TCP cluster on loopback: same shape as [`LiveCluster`] with
/// sockets underneath.
#[derive(Debug)]
pub struct TcpCluster {
    config: ClusterConfig,
    protocol: Protocol,
    registry: TcpRegistry,
    servers: Vec<ServerHandle>,
}

impl TcpCluster {
    /// Binds and starts every server of `config` on loopback sockets, with
    /// acknowledged-floor GC enabled.
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] if a socket cannot be bound.
    pub fn start(config: ClusterConfig, protocol: Protocol) -> Result<Self, TransportError> {
        let registry = TcpRegistry::new();
        let mut servers = Vec::new();
        for s in config.server_ids() {
            let endpoint = TcpEndpoint::bind(ProcessId::Server(s), &registry)?;
            servers.push(spawn_server_with(endpoint, gc_server(&config)));
        }
        Ok(TcpCluster { config, protocol, registry, servers })
    }

    /// The cluster configuration.
    pub fn config(&self) -> ClusterConfig {
        self.config
    }

    /// Creates writer `idx`'s blocking client over TCP.
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] if the client socket cannot be bound.
    pub fn writer(&self, idx: u32) -> Result<LiveWriter<TcpEndpoint>, TransportError> {
        let id = WriterId::new(idx);
        let endpoint = TcpEndpoint::bind(id.into(), &self.registry)?;
        Ok(LiveWriter::new(endpoint, id, self.config, self.protocol.write_mode()))
    }

    /// Creates reader `idx`'s blocking client over TCP on the default
    /// [`FastWire::Delta`] wire.
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] if the client socket cannot be bound.
    pub fn reader(&self, idx: u32) -> Result<LiveReader<TcpEndpoint>, TransportError> {
        self.reader_with_wire(idx, FastWire::default())
    }

    /// Creates reader `idx`'s blocking client over TCP with an explicit
    /// fast-read wire format.
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] if the client socket cannot be bound.
    pub fn reader_with_wire(
        &self,
        idx: u32,
        wire: FastWire,
    ) -> Result<LiveReader<TcpEndpoint>, TransportError> {
        let id = ReaderId::new(idx);
        let endpoint = TcpEndpoint::bind(id.into(), &self.registry)?;
        Ok(LiveReader::with_wire(endpoint, id, self.config, self.protocol.read_mode(), wire))
    }

    /// Shuts down all servers; returns total requests handled.
    pub fn shutdown(self) -> u64 {
        self.servers.into_iter().map(ServerHandle::shutdown).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwr_types::Value;

    #[test]
    fn in_memory_cluster_end_to_end() {
        let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
        let cluster = LiveCluster::start(config, Protocol::W2R1);
        let mut w = cluster.writer(0);
        let mut r = cluster.reader(0);
        let written = w.write(Value::new(11)).unwrap();
        assert_eq!(r.read().unwrap(), written);
        assert!(cluster.shutdown() > 0);
    }

    #[test]
    fn cluster_survives_t_crashes() {
        let config = ClusterConfig::new(5, 1, 1, 1).unwrap();
        let mut cluster = LiveCluster::start(config, Protocol::W2R2);
        let mut w = cluster.writer(0);
        let mut r = cluster.reader(0);
        w.write(Value::new(1)).unwrap();
        cluster.crash_server(4);
        let written = w.write(Value::new(2)).unwrap();
        assert_eq!(r.read().unwrap(), written);
        cluster.shutdown();
    }

    #[test]
    fn tcp_cluster_end_to_end() {
        let config = ClusterConfig::new(3, 1, 1, 1).unwrap();
        let cluster = TcpCluster::start(config, Protocol::W2R1).unwrap();
        let mut w = cluster.writer(0).unwrap();
        let mut r = cluster.reader(0).unwrap();
        let written = w.write(Value::new(33)).unwrap();
        assert_eq!(r.read().unwrap(), written);
        assert!(cluster.shutdown() > 0);
    }
}
