//! One-call live clusters, generic over the transport.
//!
//! [`RuntimeCluster`] is written once against [`EndpointFactory`]; the two
//! transports instantiate it as [`LiveCluster`] (crossbeam channels) and
//! [`TcpCluster`] (loopback sockets). Handle construction, fault injection
//! and shutdown therefore behave identically on both — a crashed TCP
//! server and a crashed in-memory server are the same operation.

use std::collections::{BTreeMap, HashMap};
use std::time::{Duration, Instant};

use mwr_core::{FastWire, Msg, Protocol, RegisterServer, StateTransfer};
use mwr_types::{ClusterConfig, ProcessId, ReaderId, WriterId};

use crate::client::{LiveReader, LiveWriter};
use crate::server::{spawn_server_with, ServerHandle};
use crate::tcp::TcpRegistry;
use crate::transport::{Endpoint, EndpointFactory, InMemoryTransport, TransportError};

/// The server blueprint live clusters spawn: acknowledged-floor GC sized to
/// the cluster's client population, so server stores stay bounded once
/// every client keeps completing operations.
fn gc_server(config: &ClusterConfig) -> RegisterServer {
    RegisterServer::with_gc(config.readers() + config.writers())
}

/// A running live cluster over any [`EndpointFactory`]: all servers up,
/// clients on demand.
///
/// Most callers should not name this type: construct clusters through the
/// `mwr-register` facade (`mwr::register::Deployment`), which picks the
/// factory from its backend knob and layers wire/timeout configuration on
/// top.
///
/// # Examples
///
/// ```
/// use mwr_core::Protocol;
/// use mwr_runtime::{InMemoryTransport, RuntimeCluster};
/// use mwr_types::{ClusterConfig, Value};
///
/// let config = ClusterConfig::new(5, 1, 2, 2)?;
/// let cluster = RuntimeCluster::start_on(InMemoryTransport::new(), config, Protocol::W2R1)?;
/// let mut writer = cluster.writer(0)?;
/// let mut reader = cluster.reader(0)?;
/// let written = writer.write(Value::new(9))?;
/// assert_eq!(reader.read()?, written);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct RuntimeCluster<F: EndpointFactory> {
    config: ClusterConfig,
    protocol: Protocol,
    factory: F,
    servers: Vec<ServerHandle>,
    /// Version beacons captured at crash time, keyed by server index: the
    /// pre-crash version high-water a rejoin must resume above.
    crashed: HashMap<u32, u64>,
    /// Monotone nonce distinguishing state-fetch rounds, so a straggler
    /// snapshot from an earlier rejoin can never corrupt a later one.
    fetch_nonce: u64,
}

/// A running in-memory cluster: [`RuntimeCluster`] over crossbeam channels.
pub type LiveCluster = RuntimeCluster<InMemoryTransport>;

/// A running TCP cluster on loopback: [`RuntimeCluster`] over sockets.
pub type TcpCluster = RuntimeCluster<TcpRegistry>;

impl<F: EndpointFactory> RuntimeCluster<F> {
    /// Starts every server of `config` on its own thread over endpoints
    /// from `factory`, with acknowledged-floor GC enabled.
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] if a server endpoint cannot be opened
    /// (e.g. a socket cannot be bound).
    pub fn start_on(
        factory: F,
        config: ClusterConfig,
        protocol: Protocol,
    ) -> Result<Self, TransportError> {
        let mut servers = Vec::with_capacity(config.servers());
        for s in config.server_ids() {
            let endpoint = factory.open(ProcessId::Server(s))?;
            servers.push(spawn_server_with(endpoint, gc_server(&config)));
        }
        Ok(RuntimeCluster {
            config,
            protocol,
            factory,
            servers,
            crashed: HashMap::new(),
            fetch_nonce: 0,
        })
    }

    /// The cluster configuration.
    pub fn config(&self) -> ClusterConfig {
        self.config
    }

    /// The protocol clients will run.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// The transport factory, for opening auxiliary endpoints.
    pub fn factory(&self) -> &F {
        &self.factory
    }

    /// Creates writer `idx`'s blocking client.
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] if the client endpoint cannot be
    /// opened.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or the writer was already created.
    pub fn writer(&self, idx: u32) -> Result<LiveWriter<F::Endpoint>, TransportError> {
        assert!((idx as usize) < self.config.writers(), "writer {idx} out of range");
        let id = WriterId::new(idx);
        Ok(LiveWriter::new(
            self.factory.open(id.into())?,
            id,
            self.config,
            self.protocol.write_mode(),
        ))
    }

    /// Creates reader `idx`'s blocking client on the default
    /// [`FastWire::Delta`] wire.
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] if the client endpoint cannot be
    /// opened.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or the reader was already created.
    pub fn reader(&self, idx: u32) -> Result<LiveReader<F::Endpoint>, TransportError> {
        self.reader_with_wire(idx, FastWire::default())
    }

    /// Creates reader `idx`'s blocking client with an explicit fast-read
    /// wire format ([`FastWire::FullInfo`] restores the paper's O(history)
    /// payloads, for comparison runs).
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] if the client endpoint cannot be
    /// opened.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or the reader was already created.
    pub fn reader_with_wire(
        &self,
        idx: u32,
        wire: FastWire,
    ) -> Result<LiveReader<F::Endpoint>, TransportError> {
        assert!((idx as usize) < self.config.readers(), "reader {idx} out of range");
        let id = ReaderId::new(idx);
        Ok(LiveReader::with_wire(
            self.factory.open(id.into())?,
            id,
            self.config,
            self.protocol.read_mode(),
            wire,
        ))
    }

    /// Crashes server `idx`: removes it from the transport's delivery map
    /// and stops its thread. At most `t` crashes keep the register
    /// wait-free; on TCP the crashed server's listener closes, so cached
    /// client connections fail exactly like connections to a dead host.
    ///
    /// # Panics
    ///
    /// Panics if the server was already crashed.
    pub fn crash_server(&mut self, idx: u32) {
        let pos = self
            .servers
            .iter()
            .position(|h| h.id() == ProcessId::server(idx))
            .unwrap_or_else(|| panic!("server {idx} already crashed or unknown"));
        let handle = self.servers.swap_remove(pos);
        self.factory.close(ProcessId::server(idx));
        let beacon = handle.beacon();
        handle.shutdown();
        // Read the beacon *after* the join: it then covers every message
        // the server ever processed. This is the stable-storage version
        // record crash–recover models assume; rejoin resumes above it.
        self.crashed
            .insert(idx, beacon.load(std::sync::atomic::Ordering::Acquire));
    }

    /// Brings a crashed server back: opens a fresh endpoint (on TCP, a
    /// fresh listener re-registered under the same process id), fetches
    /// catch-up state from a **quorum** (`S − t`) of live peers via
    /// [`Msg::StateFetch`], installs the merged transfer with
    /// [`RegisterServer::recovered`], and only then spawns the serving
    /// thread — the rejoined server answers no quorum round before its
    /// state covers every completed operation (see the state-transfer
    /// soundness argument in `mwr-core`'s server module docs).
    ///
    /// Client requests arriving during the fetch window are dropped, which
    /// is indistinguishable from the crash lasting a moment longer.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Io`] with [`std::io::ErrorKind::TimedOut`]
    /// if a quorum of peers does not answer the state fetch within 5
    /// seconds — fewer snapshots could miss a completed write, so the
    /// server refuses to rejoin (and may be retried later; the crash
    /// bookkeeping is preserved).
    ///
    /// # Panics
    ///
    /// Panics if the server is still running.
    pub fn rejoin_server(&mut self, idx: u32) -> Result<(), TransportError> {
        self.rejoin_server_within(idx, Duration::from_secs(5))
    }

    /// [`rejoin_server`](Self::rejoin_server) with an explicit state-fetch
    /// window.
    ///
    /// # Errors
    ///
    /// As [`rejoin_server`](Self::rejoin_server).
    ///
    /// # Panics
    ///
    /// Panics if the server is still running.
    pub fn rejoin_server_within(
        &mut self,
        idx: u32,
        fetch_timeout: Duration,
    ) -> Result<(), TransportError> {
        assert!(
            self.servers.iter().all(|h| h.id() != ProcessId::server(idx)),
            "server {idx} is still running"
        );
        let version_floor = self.crashed.get(&idx).copied().unwrap_or(0);
        let endpoint = self.factory.open(ProcessId::server(idx))?;
        self.fetch_nonce += 1;
        let nonce = self.fetch_nonce;
        let batch: Vec<(ProcessId, Msg)> = self
            .config
            .server_ids()
            .filter(|s| ProcessId::Server(*s) != ProcessId::server(idx))
            .map(|s| (ProcessId::Server(s), Msg::StateFetch { nonce }))
            .collect();
        let required = self.config.quorum_size();
        let mut transfers: BTreeMap<ProcessId, StateTransfer> = BTreeMap::new();
        let deadline = Instant::now() + fetch_timeout;
        // Re-broadcast the fetch periodically within the window: the round
        // is idempotent (snapshots dedupe by peer, stale nonces are
        // ignored), and a peer's first reply can be lost to a pipeline
        // still pointing at this server's *previous* incarnation — its
        // send fails, the pipeline re-resolves, and only a later reply
        // gets through. One lost one-shot must not starve the quorum.
        let rebroadcast_every = (fetch_timeout / 10).max(Duration::from_millis(10));
        'fetch: while transfers.len() < required {
            if Instant::now() >= deadline {
                break;
            }
            endpoint.send_batch(batch.clone());
            let round_ends = (Instant::now() + rebroadcast_every).min(deadline);
            while transfers.len() < required {
                let now = Instant::now();
                if now >= round_ends {
                    break;
                }
                match endpoint.inbox().recv_timeout(round_ends - now) {
                    // Client traffic racing the fetch window is dropped:
                    // the server is not serving yet.
                    Ok((from, Msg::StateSnapshot { nonce: n, state })) if n == nonce => {
                        transfers.insert(from, *state);
                    }
                    Ok(_) => {}
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => break,
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break 'fetch,
                }
            }
        }
        if transfers.len() < required {
            // Not enough peers: a partial transfer could miss a completed
            // write, so refuse to serve. Withdraw the endpoint.
            self.factory.close(ProcessId::server(idx));
            drop(endpoint);
            return Err(TransportError::Io { kind: std::io::ErrorKind::TimedOut });
        }
        let population = self.config.readers() + self.config.writers();
        let transfers: Vec<StateTransfer> = transfers.into_values().collect();
        let server = RegisterServer::recovered(population, version_floor, &transfers);
        self.servers.push(spawn_server_with(endpoint, server));
        self.crashed.remove(&idx);
        Ok(())
    }

    /// Indices of the currently-running servers, ascending.
    pub fn live_servers(&self) -> Vec<u32> {
        let mut live: Vec<u32> = self
            .servers
            .iter()
            .filter_map(|h| match h.id() {
                ProcessId::Server(s) => Some(s.index()),
                ProcessId::Client(_) => None,
            })
            .collect();
        live.sort_unstable();
        live
    }

    /// Shuts down all remaining servers; returns total requests handled.
    pub fn shutdown(self) -> u64 {
        self.servers.into_iter().map(ServerHandle::shutdown).sum()
    }
}

impl RuntimeCluster<InMemoryTransport> {
    /// Starts an in-memory cluster on a fresh transport.
    #[deprecated(
        since = "0.2.0",
        note = "construct clusters through mwr::register::Deployment (Backend::InMemory), \
                or RuntimeCluster::start_on(InMemoryTransport::new(), ..)"
    )]
    pub fn start(config: ClusterConfig, protocol: Protocol) -> Self {
        Self::start_on(InMemoryTransport::new(), config, protocol)
            .expect("in-memory endpoints cannot fail to open")
    }
}

impl RuntimeCluster<TcpRegistry> {
    /// Binds and starts every server on loopback sockets in a fresh
    /// registry.
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] if a socket cannot be bound.
    #[deprecated(
        since = "0.2.0",
        note = "construct clusters through mwr::register::Deployment (Backend::Tcp), \
                or RuntimeCluster::start_on(TcpRegistry::new(), ..)"
    )]
    pub fn start(config: ClusterConfig, protocol: Protocol) -> Result<Self, TransportError> {
        Self::start_on(TcpRegistry::new(), config, protocol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwr_types::Value;

    #[test]
    fn in_memory_cluster_end_to_end() {
        let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
        let cluster =
            RuntimeCluster::start_on(InMemoryTransport::new(), config, Protocol::W2R1).unwrap();
        let mut w = cluster.writer(0).unwrap();
        let mut r = cluster.reader(0).unwrap();
        let written = w.write(Value::new(11)).unwrap();
        assert_eq!(r.read().unwrap(), written);
        assert!(cluster.shutdown() > 0);
    }

    #[test]
    fn cluster_survives_t_crashes() {
        let config = ClusterConfig::new(5, 1, 1, 1).unwrap();
        let mut cluster =
            RuntimeCluster::start_on(InMemoryTransport::new(), config, Protocol::W2R2).unwrap();
        let mut w = cluster.writer(0).unwrap();
        let mut r = cluster.reader(0).unwrap();
        w.write(Value::new(1)).unwrap();
        cluster.crash_server(4);
        let written = w.write(Value::new(2)).unwrap();
        assert_eq!(r.read().unwrap(), written);
        cluster.shutdown();
    }

    /// Crash → rejoin → crash the *other* minority: the rejoined server
    /// must be serving real state, because after the second crash the
    /// quorum can only assemble through it.
    #[test]
    fn rejoined_server_serves_quorums_after_the_other_minority_crashes() {
        let config = ClusterConfig::new(3, 1, 1, 1).unwrap();
        let mut cluster =
            RuntimeCluster::start_on(InMemoryTransport::new(), config, Protocol::W2R1).unwrap();
        let mut w = cluster.writer(0).unwrap();
        let mut r = cluster.reader(0).unwrap();
        w.write(Value::new(1)).unwrap();
        cluster.crash_server(0);
        let during = w.write(Value::new(2)).unwrap();
        cluster.rejoin_server(0).unwrap();
        assert_eq!(cluster.live_servers(), vec![0, 1, 2]);
        // Crash a server that was up the whole time: any quorum now
        // includes the rejoined server 0.
        cluster.crash_server(1);
        let after = w.write(Value::new(3)).unwrap();
        assert!(after > during);
        assert_eq!(r.read().unwrap(), after, "quorum through the rejoined server");
        cluster.shutdown();
    }

    /// A rejoin without a live quorum of peers must refuse (a partial
    /// transfer could miss a completed write), withdraw its endpoint
    /// cleanly, and keep the crash bookkeeping so the attempt can repeat.
    #[test]
    fn rejoin_without_a_peer_quorum_is_refused() {
        let config = ClusterConfig::new(3, 1, 1, 1).unwrap();
        let mut cluster =
            RuntimeCluster::start_on(InMemoryTransport::new(), config, Protocol::W2R1).unwrap();
        let mut w = cluster.writer(0).unwrap();
        w.write(Value::new(1)).unwrap();
        cluster.crash_server(0);
        cluster.crash_server(1);
        // Only server 2 is alive: a quorum of 2 snapshots cannot assemble.
        let window = Duration::from_millis(300);
        assert!(matches!(
            cluster.rejoin_server_within(0, window),
            Err(TransportError::Io { kind: std::io::ErrorKind::TimedOut })
        ));
        assert_eq!(cluster.live_servers(), vec![2]);
        // The refused attempt withdrew its endpoint registration: a second
        // attempt opens it again (a leak would panic on the duplicate).
        assert!(cluster.rejoin_server_within(0, window).is_err());
        cluster.shutdown();
    }

    #[test]
    fn tcp_cluster_end_to_end() {
        let config = ClusterConfig::new(3, 1, 1, 1).unwrap();
        let cluster =
            RuntimeCluster::start_on(TcpRegistry::new(), config, Protocol::W2R1).unwrap();
        let mut w = cluster.writer(0).unwrap();
        let mut r = cluster.reader(0).unwrap();
        let written = w.write(Value::new(33)).unwrap();
        assert_eq!(r.read().unwrap(), written);
        assert!(cluster.shutdown() > 0);
    }

    #[test]
    fn tcp_cluster_survives_t_crashes() {
        let config = ClusterConfig::new(5, 1, 1, 1).unwrap();
        let mut cluster =
            RuntimeCluster::start_on(TcpRegistry::new(), config, Protocol::W2R1).unwrap();
        let mut w = cluster.writer(0).unwrap();
        let mut r = cluster.reader(0).unwrap();
        w.write(Value::new(1)).unwrap();
        cluster.crash_server(0);
        let written = w.write(Value::new(2)).unwrap();
        assert_eq!(r.read().unwrap(), written, "fast read completes with a crashed minority");
        cluster.shutdown();
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_constructors_still_work() {
        let config = ClusterConfig::new(3, 1, 1, 1).unwrap();
        let cluster = LiveCluster::start(config, Protocol::W2R2);
        let mut w = cluster.writer(0).unwrap();
        let mut r = cluster.reader(0).unwrap();
        let written = w.write(Value::new(5)).unwrap();
        assert_eq!(r.read().unwrap(), written);
        cluster.shutdown();

        let cluster = TcpCluster::start(config, Protocol::W2R2).unwrap();
        let mut w = cluster.writer(0).unwrap();
        assert!(w.write(Value::new(6)).is_ok());
        cluster.shutdown();
    }
}
