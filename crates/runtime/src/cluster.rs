//! One-call live clusters, generic over the transport.
//!
//! [`RuntimeCluster`] is written once against [`EndpointFactory`]; the two
//! transports instantiate it as [`LiveCluster`] (crossbeam channels) and
//! [`TcpCluster`] (loopback sockets). Handle construction, fault injection
//! and shutdown therefore behave identically on both — a crashed TCP
//! server and a crashed in-memory server are the same operation.

use mwr_core::{FastWire, Protocol, RegisterServer};
use mwr_types::{ClusterConfig, ProcessId, ReaderId, WriterId};

use crate::client::{LiveReader, LiveWriter};
use crate::server::{spawn_server_with, ServerHandle};
use crate::tcp::TcpRegistry;
use crate::transport::{EndpointFactory, InMemoryTransport, TransportError};

/// The server blueprint live clusters spawn: acknowledged-floor GC sized to
/// the cluster's client population, so server stores stay bounded once
/// every client keeps completing operations.
fn gc_server(config: &ClusterConfig) -> RegisterServer {
    RegisterServer::with_gc(config.readers() + config.writers())
}

/// A running live cluster over any [`EndpointFactory`]: all servers up,
/// clients on demand.
///
/// Most callers should not name this type: construct clusters through the
/// `mwr-register` facade (`mwr::register::Deployment`), which picks the
/// factory from its backend knob and layers wire/timeout configuration on
/// top.
///
/// # Examples
///
/// ```
/// use mwr_core::Protocol;
/// use mwr_runtime::{InMemoryTransport, RuntimeCluster};
/// use mwr_types::{ClusterConfig, Value};
///
/// let config = ClusterConfig::new(5, 1, 2, 2)?;
/// let cluster = RuntimeCluster::start_on(InMemoryTransport::new(), config, Protocol::W2R1)?;
/// let mut writer = cluster.writer(0)?;
/// let mut reader = cluster.reader(0)?;
/// let written = writer.write(Value::new(9))?;
/// assert_eq!(reader.read()?, written);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct RuntimeCluster<F: EndpointFactory> {
    config: ClusterConfig,
    protocol: Protocol,
    factory: F,
    servers: Vec<ServerHandle>,
}

/// A running in-memory cluster: [`RuntimeCluster`] over crossbeam channels.
pub type LiveCluster = RuntimeCluster<InMemoryTransport>;

/// A running TCP cluster on loopback: [`RuntimeCluster`] over sockets.
pub type TcpCluster = RuntimeCluster<TcpRegistry>;

impl<F: EndpointFactory> RuntimeCluster<F> {
    /// Starts every server of `config` on its own thread over endpoints
    /// from `factory`, with acknowledged-floor GC enabled.
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] if a server endpoint cannot be opened
    /// (e.g. a socket cannot be bound).
    pub fn start_on(
        factory: F,
        config: ClusterConfig,
        protocol: Protocol,
    ) -> Result<Self, TransportError> {
        let mut servers = Vec::with_capacity(config.servers());
        for s in config.server_ids() {
            let endpoint = factory.open(ProcessId::Server(s))?;
            servers.push(spawn_server_with(endpoint, gc_server(&config)));
        }
        Ok(RuntimeCluster { config, protocol, factory, servers })
    }

    /// The cluster configuration.
    pub fn config(&self) -> ClusterConfig {
        self.config
    }

    /// The protocol clients will run.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// The transport factory, for opening auxiliary endpoints.
    pub fn factory(&self) -> &F {
        &self.factory
    }

    /// Creates writer `idx`'s blocking client.
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] if the client endpoint cannot be
    /// opened.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or the writer was already created.
    pub fn writer(&self, idx: u32) -> Result<LiveWriter<F::Endpoint>, TransportError> {
        assert!((idx as usize) < self.config.writers(), "writer {idx} out of range");
        let id = WriterId::new(idx);
        Ok(LiveWriter::new(
            self.factory.open(id.into())?,
            id,
            self.config,
            self.protocol.write_mode(),
        ))
    }

    /// Creates reader `idx`'s blocking client on the default
    /// [`FastWire::Delta`] wire.
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] if the client endpoint cannot be
    /// opened.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or the reader was already created.
    pub fn reader(&self, idx: u32) -> Result<LiveReader<F::Endpoint>, TransportError> {
        self.reader_with_wire(idx, FastWire::default())
    }

    /// Creates reader `idx`'s blocking client with an explicit fast-read
    /// wire format ([`FastWire::FullInfo`] restores the paper's O(history)
    /// payloads, for comparison runs).
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] if the client endpoint cannot be
    /// opened.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or the reader was already created.
    pub fn reader_with_wire(
        &self,
        idx: u32,
        wire: FastWire,
    ) -> Result<LiveReader<F::Endpoint>, TransportError> {
        assert!((idx as usize) < self.config.readers(), "reader {idx} out of range");
        let id = ReaderId::new(idx);
        Ok(LiveReader::with_wire(
            self.factory.open(id.into())?,
            id,
            self.config,
            self.protocol.read_mode(),
            wire,
        ))
    }

    /// Crashes server `idx`: removes it from the transport's delivery map
    /// and stops its thread. At most `t` crashes keep the register
    /// wait-free; on TCP the crashed server's listener closes, so cached
    /// client connections fail exactly like connections to a dead host.
    ///
    /// # Panics
    ///
    /// Panics if the server was already crashed.
    pub fn crash_server(&mut self, idx: u32) {
        let pos = self
            .servers
            .iter()
            .position(|h| h.id() == ProcessId::server(idx))
            .unwrap_or_else(|| panic!("server {idx} already crashed or unknown"));
        let handle = self.servers.swap_remove(pos);
        self.factory.close(ProcessId::server(idx));
        handle.shutdown();
    }

    /// Shuts down all remaining servers; returns total requests handled.
    pub fn shutdown(self) -> u64 {
        self.servers.into_iter().map(ServerHandle::shutdown).sum()
    }
}

impl RuntimeCluster<InMemoryTransport> {
    /// Starts an in-memory cluster on a fresh transport.
    #[deprecated(
        since = "0.2.0",
        note = "construct clusters through mwr::register::Deployment (Backend::InMemory), \
                or RuntimeCluster::start_on(InMemoryTransport::new(), ..)"
    )]
    pub fn start(config: ClusterConfig, protocol: Protocol) -> Self {
        Self::start_on(InMemoryTransport::new(), config, protocol)
            .expect("in-memory endpoints cannot fail to open")
    }
}

impl RuntimeCluster<TcpRegistry> {
    /// Binds and starts every server on loopback sockets in a fresh
    /// registry.
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] if a socket cannot be bound.
    #[deprecated(
        since = "0.2.0",
        note = "construct clusters through mwr::register::Deployment (Backend::Tcp), \
                or RuntimeCluster::start_on(TcpRegistry::new(), ..)"
    )]
    pub fn start(config: ClusterConfig, protocol: Protocol) -> Result<Self, TransportError> {
        Self::start_on(TcpRegistry::new(), config, protocol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwr_types::Value;

    #[test]
    fn in_memory_cluster_end_to_end() {
        let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
        let cluster =
            RuntimeCluster::start_on(InMemoryTransport::new(), config, Protocol::W2R1).unwrap();
        let mut w = cluster.writer(0).unwrap();
        let mut r = cluster.reader(0).unwrap();
        let written = w.write(Value::new(11)).unwrap();
        assert_eq!(r.read().unwrap(), written);
        assert!(cluster.shutdown() > 0);
    }

    #[test]
    fn cluster_survives_t_crashes() {
        let config = ClusterConfig::new(5, 1, 1, 1).unwrap();
        let mut cluster =
            RuntimeCluster::start_on(InMemoryTransport::new(), config, Protocol::W2R2).unwrap();
        let mut w = cluster.writer(0).unwrap();
        let mut r = cluster.reader(0).unwrap();
        w.write(Value::new(1)).unwrap();
        cluster.crash_server(4);
        let written = w.write(Value::new(2)).unwrap();
        assert_eq!(r.read().unwrap(), written);
        cluster.shutdown();
    }

    #[test]
    fn tcp_cluster_end_to_end() {
        let config = ClusterConfig::new(3, 1, 1, 1).unwrap();
        let cluster =
            RuntimeCluster::start_on(TcpRegistry::new(), config, Protocol::W2R1).unwrap();
        let mut w = cluster.writer(0).unwrap();
        let mut r = cluster.reader(0).unwrap();
        let written = w.write(Value::new(33)).unwrap();
        assert_eq!(r.read().unwrap(), written);
        assert!(cluster.shutdown() > 0);
    }

    #[test]
    fn tcp_cluster_survives_t_crashes() {
        let config = ClusterConfig::new(5, 1, 1, 1).unwrap();
        let mut cluster =
            RuntimeCluster::start_on(TcpRegistry::new(), config, Protocol::W2R1).unwrap();
        let mut w = cluster.writer(0).unwrap();
        let mut r = cluster.reader(0).unwrap();
        w.write(Value::new(1)).unwrap();
        cluster.crash_server(0);
        let written = w.write(Value::new(2)).unwrap();
        assert_eq!(r.read().unwrap(), written, "fast read completes with a crashed minority");
        cluster.shutdown();
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_constructors_still_work() {
        let config = ClusterConfig::new(3, 1, 1, 1).unwrap();
        let cluster = LiveCluster::start(config, Protocol::W2R2);
        let mut w = cluster.writer(0).unwrap();
        let mut r = cluster.reader(0).unwrap();
        let written = w.write(Value::new(5)).unwrap();
        assert_eq!(r.read().unwrap(), written);
        cluster.shutdown();

        let cluster = TcpCluster::start(config, Protocol::W2R2).unwrap();
        let mut w = cluster.writer(0).unwrap();
        assert!(w.write(Value::new(6)).is_ok());
        cluster.shutdown();
    }
}
