//! The shared client-side view of the cluster's current configuration.
//!
//! A [`ClusterView`] is the one piece of state the reconfiguration
//! coordinator and every live client share: which epoch the cluster is in,
//! which servers a round-trip must cover, and which acknowledgement rule
//! completes it (a plain `S − t` quorum in a stable epoch, a
//! [`JointQuorum`] over both configurations in a transition epoch).
//!
//! Clients re-derive their round-trip scope from the view at the start of
//! every operation, and — because every server reply is epoch-tagged past
//! epoch 0 — *mid-round* the moment any reply carries a higher epoch than
//! the scope was built from. The coordinator always installs the new view
//! **before** announcing the epoch to servers, so by the time a client can
//! observe an epoch, the view describing it is already readable: refresh
//! never races ahead of the data it needs.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, RwLock};

use mwr_core::{JointQuorum, Router};
use mwr_types::{ConfigEpoch, RegisterId, ServerId};

/// How round-trips must cover the cluster in the current epoch.
#[derive(Debug, Clone)]
pub(crate) enum ViewPlan {
    /// A stable epoch of a single-register cluster: broadcast to `targets`,
    /// wait for `quorum` member replies.
    Stable {
        /// The member servers.
        targets: Vec<ServerId>,
        /// Replies required (`|targets| − t`).
        quorum: usize,
    },
    /// A joint (transition) epoch of a single-register cluster: broadcast
    /// to the union, complete on a quorum of **both** configurations.
    Joint {
        /// The two-sided acknowledgement rule.
        joint: JointQuorum,
    },
    /// A stable epoch of a keyspace: each register's scope is its shard
    /// group under `router`, with `quorum = g − t` replies.
    StableKeyspace {
        /// Routing over the current member set.
        router: Router,
        /// Per-group replies required (`g − t`).
        quorum: usize,
    },
    /// A joint epoch of a keyspace: each register's scope is the union of
    /// its old and new shard groups, with a `g − t` quorum required in each.
    JointKeyspace {
        /// Routing over the old member set.
        old: Router,
        /// Routing over the new member set.
        new: Router,
        /// Per-group replies required on each side (`g − t`).
        quorum: usize,
    },
}

/// One epoch's complete client-side description.
#[derive(Debug, Clone)]
pub(crate) struct ViewState {
    pub(crate) epoch: ConfigEpoch,
    pub(crate) plan: ViewPlan,
}

/// The pieces a client needs to rebuild its round-trip scope for one
/// register (or the whole cluster) under the current epoch.
#[derive(Debug, Clone)]
pub(crate) struct ScopeParts {
    pub(crate) epoch: ConfigEpoch,
    pub(crate) targets: Vec<ServerId>,
    pub(crate) quorum: usize,
    pub(crate) joint: Option<JointQuorum>,
}

/// The live, shared configuration view. Cheap to poll (`epoch` is one
/// atomic load) and cloned behind an [`Arc`] into every client the cluster
/// mints.
#[derive(Debug)]
pub struct ClusterView {
    /// Fast path: the current epoch, readable without the lock. Written
    /// *after* `state` under the lock, so `epoch() ≥ state.epoch` is never
    /// observed — a client that sees the new epoch finds the new state.
    epoch: AtomicU32,
    state: RwLock<ViewState>,
}

impl ClusterView {
    pub(crate) fn new(state: ViewState) -> Arc<Self> {
        Arc::new(ClusterView {
            epoch: AtomicU32::new(state.epoch.get()),
            state: RwLock::new(state),
        })
    }

    /// A stable epoch-0 view of the contiguous cluster `{0..servers}`.
    pub(crate) fn stable(targets: Vec<ServerId>, quorum: usize) -> Arc<Self> {
        ClusterView::new(ViewState {
            epoch: ConfigEpoch::ZERO,
            plan: ViewPlan::Stable { targets, quorum },
        })
    }

    /// A stable epoch-0 keyspace view.
    pub(crate) fn stable_keyspace(router: Router, quorum: usize) -> Arc<Self> {
        ClusterView::new(ViewState {
            epoch: ConfigEpoch::ZERO,
            plan: ViewPlan::StableKeyspace { router, quorum },
        })
    }

    /// The current epoch (one atomic load — the per-operation check).
    pub fn epoch(&self) -> ConfigEpoch {
        ConfigEpoch::new(self.epoch.load(Ordering::Acquire))
    }

    /// Installs a new epoch's state. The coordinator calls this *before*
    /// announcing the epoch to any server, and the atomic is stored after
    /// the state under the lock, so clients always find the state their
    /// observed epoch describes.
    ///
    /// # Panics
    ///
    /// Panics if the epoch moves backwards — the coordinator drives epochs
    /// strictly forward.
    pub(crate) fn install(&self, state: ViewState) {
        let mut guard = self.state.write().expect("view lock poisoned");
        assert!(state.epoch > guard.epoch, "view epochs move strictly forward");
        let raw = state.epoch.get();
        *guard = state;
        self.epoch.store(raw, Ordering::Release);
    }

    /// Rebuilds the scope pieces for `register` (`None`: the whole-cluster
    /// legacy scope) under the current epoch.
    pub(crate) fn scope_parts(&self, register: Option<RegisterId>) -> ScopeParts {
        let state = self.state.read().expect("view lock poisoned");
        let (targets, quorum, joint) = match (&state.plan, register) {
            (ViewPlan::Stable { targets, quorum }, _) => (targets.clone(), *quorum, None),
            (ViewPlan::Joint { joint }, _) => {
                let targets = joint.union();
                let quorum = joint.old_required().max(joint.new_required());
                (targets, quorum, Some(joint.clone()))
            }
            (ViewPlan::StableKeyspace { router, quorum }, Some(register)) => {
                (router.group_of(register), *quorum, None)
            }
            (ViewPlan::JointKeyspace { old, new, quorum }, Some(register)) => {
                let joint = JointQuorum::new(
                    old.group_of(register),
                    *quorum,
                    new.group_of(register),
                    *quorum,
                );
                (joint.union(), *quorum, Some(joint))
            }
            // A keyspace view asked for a whole-cluster scope: the cluster
            // facade never does this (every keyspace client is scoped to a
            // register), but answer with the union of members defensively.
            (ViewPlan::StableKeyspace { router, quorum }, None) => {
                (router.member_ids().collect(), *quorum, None)
            }
            (ViewPlan::JointKeyspace { new, quorum, .. }, None) => {
                (new.member_ids().collect(), *quorum, None)
            }
        };
        ScopeParts { epoch: state.epoch, targets, quorum, joint }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[u32]) -> Vec<ServerId> {
        raw.iter().copied().map(ServerId::new).collect()
    }

    #[test]
    fn install_moves_epoch_forward_and_swaps_the_plan() {
        let view = ClusterView::stable(ids(&[0, 1, 2]), 2);
        assert_eq!(view.epoch(), ConfigEpoch::ZERO);
        let parts = view.scope_parts(None);
        assert_eq!((parts.targets, parts.quorum), (ids(&[0, 1, 2]), 2));
        assert!(parts.joint.is_none());

        let joint = JointQuorum::new(ids(&[0, 1, 2]), 2, ids(&[1, 2, 3]), 2);
        view.install(ViewState {
            epoch: ConfigEpoch::new(1),
            plan: ViewPlan::Joint { joint: joint.clone() },
        });
        assert_eq!(view.epoch(), ConfigEpoch::new(1));
        let parts = view.scope_parts(None);
        assert_eq!(parts.targets, ids(&[0, 1, 2, 3]), "joint scope broadcasts to the union");
        assert_eq!(parts.joint, Some(joint));
    }

    #[test]
    #[should_panic(expected = "strictly forward")]
    fn epochs_never_move_backwards() {
        let view = ClusterView::stable(ids(&[0, 1]), 1);
        view.install(ViewState {
            epoch: ConfigEpoch::ZERO,
            plan: ViewPlan::Stable { targets: ids(&[0, 1]), quorum: 1 },
        });
    }

    #[test]
    fn keyspace_scopes_are_per_register_groups() {
        let old = Router::new(5, 3, 8);
        let view = ClusterView::stable_keyspace(old, 2);
        let k = RegisterId::new(7);
        let parts = view.scope_parts(Some(k));
        assert_eq!(parts.targets, old.group_of(k));
        assert_eq!(parts.quorum, 2);

        // Joint keyspace: union of the old and new groups, one g−t quorum
        // required on each side.
        let new = Router::with_members(((1u128 << 7) - 1) & !1, 3, 8);
        view.install(ViewState {
            epoch: ConfigEpoch::new(1),
            plan: ViewPlan::JointKeyspace { old, new, quorum: 2 },
        });
        let parts = view.scope_parts(Some(k));
        let joint = parts.joint.expect("joint window");
        assert_eq!(joint.old_members(), old.group_of(k));
        assert_eq!(joint.new_members(), new.group_of(k));
        let mut union = old.group_of(k);
        union.extend(new.group_of(k));
        union.sort_unstable();
        union.dedup();
        assert_eq!(parts.targets, union);
    }
}
