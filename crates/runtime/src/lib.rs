//! Live thread-per-process runtime for the `mwr` register protocols.
//!
//! The simulator (`mwr-sim`) answers *analysis* questions deterministically;
//! this crate runs the same protocols for real: each server is a thread
//! executing `mwr-core`'s Algorithm 2 [`RegisterServer`] verbatim, and
//! clients are blocking handles implementing the round-trip schema of §2.2
//! over a pluggable [`Endpoint`]:
//!
//! - [`InMemoryTransport`] — crossbeam channels, for tests and examples;
//! - [`TcpEndpoint`] / [`TcpRegistry`] — real sockets with length-prefixed
//!   frames over the hand-rolled wire codec from `mwr-types`.
//!
//! [`RegisterServer`]: mwr_core::RegisterServer
//!
//! # Examples
//!
//! The paper's W2R1 register over an in-memory cluster:
//!
//! ```
//! use mwr_core::Protocol;
//! use mwr_runtime::{InMemoryTransport, RuntimeCluster};
//! use mwr_types::{ClusterConfig, Value};
//!
//! let config = ClusterConfig::new(5, 1, 2, 2)?;
//! let cluster = RuntimeCluster::start_on(InMemoryTransport::new(), config, Protocol::W2R1)?;
//! let mut writer = cluster.writer(0)?;
//! let mut reader = cluster.reader(0)?;
//! writer.write(Value::new(1))?;
//! let tagged = reader.read()?; // one round-trip
//! assert_eq!(tagged.value(), Value::new(1));
//! cluster.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Applications normally construct live clusters through the
//! `mwr-register` facade (`mwr::register::Deployment`), which selects the
//! transport with a backend knob instead of a type.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod client;
mod cluster;
mod faults;
mod keyspace;
mod server;
mod tap;
mod tcp;
mod transport;
mod view;

pub use client::{LiveReader, LiveWriter, RetryPolicy, RuntimeError};
pub use view::ClusterView;
pub use cluster::{LiveCluster, RuntimeCluster, TcpCluster};
pub use faults::{FaultEvent, FaultPlan, FaultStep, FaultTrigger, MAX_FAULT_STEPS};
pub use keyspace::{KeyspaceCluster, LiveKeyspaceCluster, TcpKeyspaceCluster};
pub use server::{spawn_bank_with, spawn_server, spawn_server_with, ServerHandle};
pub use tap::{AuditReceiver, AuditTap, DEFAULT_TAP_CAPACITY};
pub use tcp::{PeerStats, ReaderStats, TcpEndpoint, TcpRegistry, TcpTuning};
pub use transport::{
    Endpoint, EndpointFactory, InMemoryEndpoint, InMemoryTransport, Inbound, TransportError,
};
