//! The event-tap seam: sampled [`AuditRecord`]s out of live clients.
//!
//! An [`AuditTap`] is handed to [`LiveWriter`](crate::LiveWriter) /
//! [`LiveReader`](crate::LiveReader) via their `with_tap` builders; the
//! clients emit an `Invoked` record *before* an operation's first message
//! and a `Completed` record *after* its last ack, so the channel's arrival
//! order is a faithful real-time witness (the property the streaming
//! auditor's truncation proof leans on). The receiving half is consumed by
//! an audit sidecar (see `mwr-register`).
//!
//! Sampling: writes are always recorded — they are the scarce events every
//! read's verdict depends on — while reads are sampled per client at
//! `1/sample_every` by a deterministic counter, so the sampled stream stays
//! well-formed per client. The sampling decision is made at invocation and
//! remembered for the completion, so no half-operations ever reach the
//! auditor.
//!
//! The channel is bounded: a stalled auditor applies backpressure to the
//! sampled operations rather than growing without bound or silently
//! dropping the records the verdict depends on.

use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{bounded, Receiver, Sender};
use mwr_core::{AuditRecord, OpKind, OpResult};
use mwr_types::{ClientId, TaggedValue};

/// Default bound on in-flight audit records.
pub const DEFAULT_TAP_CAPACITY: usize = 65_536;

/// The receiving half of an [`AuditTap`]: the audit sidecar drains this
/// until every tap clone is gone.
pub type AuditReceiver = Receiver<AuditRecord>;

#[derive(Debug)]
struct TapShared {
    tx: Sender<AuditRecord>,
    epoch: Instant,
    /// Record every `sample_every`-th read per client; 1 = every read.
    sample_every: u64,
}

/// A cloneable handle that live clients emit sampled operation records
/// into. One tap serves a whole deployment; every clone stamps times from
/// the same epoch.
#[derive(Debug, Clone)]
pub struct AuditTap {
    shared: Arc<TapShared>,
}

impl AuditTap {
    /// Creates a tap and the receiving half for the audit sidecar.
    /// `sample_rate` is clamped to `(0, 1]` and converted to a per-client
    /// read sampling period of `round(1/sample_rate)`.
    pub fn bounded(sample_rate: f64, capacity: usize) -> (AuditTap, AuditReceiver) {
        let rate = if sample_rate.is_finite() { sample_rate.clamp(1e-9, 1.0) } else { 1.0 };
        let sample_every = (1.0 / rate).round().max(1.0) as u64;
        let (tx, rx) = bounded(capacity.max(1));
        (
            AuditTap {
                shared: Arc::new(TapShared { tx, epoch: Instant::now(), sample_every }),
            },
            rx,
        )
    }

    /// Microseconds since this tap's epoch.
    pub fn now_micros(&self) -> u64 {
        u64::try_from(self.shared.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// The per-client read sampling period (`1` = every read).
    pub fn sample_every(&self) -> u64 {
        self.shared.sample_every
    }

    /// Whether the read with per-client ordinal `ordinal` is sampled.
    pub(crate) fn samples_read(&self, ordinal: u64) -> bool {
        ordinal.is_multiple_of(self.shared.sample_every)
    }

    fn emit(&self, record: AuditRecord) {
        // A closed receiver means auditing was torn down; keep serving
        // traffic rather than failing operations.
        let _ = self.shared.tx.send(record);
    }

    pub(crate) fn invoked(&self, client: ClientId, seq: u64, kind: OpKind) {
        self.emit(AuditRecord::Invoked { client, seq, kind, at_micros: self.now_micros() });
    }

    pub(crate) fn completed(&self, client: ClientId, seq: u64, result: OpResult) {
        self.emit(AuditRecord::Completed { client, seq, result, at_micros: self.now_micros() });
    }

    pub(crate) fn floor_advance(&self, floor: TaggedValue) {
        self.emit(AuditRecord::FloorAdvance { floor });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_period_from_rate() {
        let (tap, _rx) = AuditTap::bounded(0.1, 16);
        assert_eq!(tap.sample_every(), 10);
        assert!(tap.samples_read(0) && tap.samples_read(10) && !tap.samples_read(3));
        let (tap, _rx) = AuditTap::bounded(1.0, 16);
        assert_eq!(tap.sample_every(), 1);
        let (tap, _rx) = AuditTap::bounded(7.0, 16); // nonsense clamps to 1.0
        assert_eq!(tap.sample_every(), 1);
    }

    #[test]
    fn records_flow_in_order() {
        let (tap, rx) = AuditTap::bounded(1.0, 16);
        tap.invoked(ClientId::writer(0), 0, OpKind::Write(mwr_types::Value::new(1)));
        tap.completed(
            ClientId::writer(0),
            0,
            OpResult::Written(TaggedValue::initial()),
        );
        assert!(matches!(rx.recv().unwrap(), AuditRecord::Invoked { seq: 0, .. }));
        assert!(matches!(rx.recv().unwrap(), AuditRecord::Completed { seq: 0, .. }));
    }

    #[test]
    fn tap_survives_a_dropped_receiver() {
        let (tap, rx) = AuditTap::bounded(1.0, 1);
        drop(rx);
        tap.floor_advance(TaggedValue::initial()); // must not block or panic
    }
}
