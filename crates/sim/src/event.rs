//! Scheduled events and link selectors.

use mwr_types::ProcessId;

use crate::automaton::TimerId;
use crate::time::SimTime;

/// Selects a set of directed links, with `None` acting as a wildcard.
///
/// Used by hold/release controls: the proofs' "operation *O* skips server
/// *s*" is expressed by holding both directed links between the client and
/// the server for the duration of the round-trip.
///
/// # Examples
///
/// ```
/// use mwr_sim::LinkStatus; // re-exported alongside the selector helpers
/// use mwr_types::ProcessId;
///
/// let sel = mwr_sim::EventKind::<()>::link_between(
///     ProcessId::reader(0),
///     ProcessId::server(2),
/// );
/// assert_eq!(sel.len(), 2); // both directions
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSelector {
    /// Source endpoint; `None` matches any source.
    pub from: Option<ProcessId>,
    /// Destination endpoint; `None` matches any destination.
    pub to: Option<ProcessId>,
}

impl LinkSelector {
    /// Selects the single directed link `from → to`.
    pub const fn directed(from: ProcessId, to: ProcessId) -> Self {
        LinkSelector {
            from: Some(from),
            to: Some(to),
        }
    }

    /// Selects every link into `to`.
    pub const fn into(to: ProcessId) -> Self {
        LinkSelector { from: None, to: Some(to) }
    }

    /// Selects every link out of `from`.
    pub const fn out_of(from: ProcessId) -> Self {
        LinkSelector { from: Some(from), to: None }
    }

    /// Whether this selector matches the directed link `from → to`.
    pub fn matches(&self, from: ProcessId, to: ProcessId) -> bool {
        self.from.is_none_or(|f| f == from) && self.to.is_none_or(|t| t == to)
    }
}

/// Network control actions, schedulable like any other event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlAction {
    /// Start holding messages on the selected links.
    Hold(LinkSelector),
    /// Stop holding and re-inject parked messages on the selected links.
    Release(LinkSelector),
}

/// The payload of a scheduled event.
#[derive(Debug, Clone)]
pub enum EventKind<M> {
    /// A message arriving at a process.
    Deliver {
        /// Sender.
        from: ProcessId,
        /// Recipient.
        to: ProcessId,
        /// The message.
        msg: M,
    },
    /// An external input injected by the harness (e.g. an operation
    /// invocation delivered to a client automaton).
    External {
        /// Recipient.
        to: ProcessId,
        /// The input.
        msg: M,
    },
    /// A timer set by an automaton firing.
    Timer {
        /// The process whose timer fires.
        process: ProcessId,
        /// The identifier returned when the timer was set.
        timer: TimerId,
    },
    /// A process crashing (it stops processing everything afterwards).
    Crash {
        /// The crashing process.
        process: ProcessId,
    },
    /// A network control action.
    Control(ControlAction),
}

impl<M> EventKind<M> {
    /// Convenience: the pair of selectors covering both directions between
    /// two processes (the shape used to make an operation "skip" a server).
    pub fn link_between(a: ProcessId, b: ProcessId) -> Vec<LinkSelector> {
        vec![LinkSelector::directed(a, b), LinkSelector::directed(b, a)]
    }
}

/// An event in the priority queue: ordered by `(at, seq)` so that ties in
/// virtual time are broken deterministically by scheduling order.
#[derive(Debug)]
pub(crate) struct Scheduled<M> {
    pub at: SimTime,
    pub seq: u64,
    pub kind: EventKind<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<M> Eq for Scheduled<M> {}

impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selector_wildcards_match() {
        let r = ProcessId::reader(0);
        let s = ProcessId::server(1);
        let exact = LinkSelector::directed(r, s);
        assert!(exact.matches(r, s));
        assert!(!exact.matches(s, r));

        let any_into = LinkSelector::into(s);
        assert!(any_into.matches(r, s));
        assert!(any_into.matches(ProcessId::writer(0), s));
        assert!(!any_into.matches(s, r));

        let any_from = LinkSelector::out_of(r);
        assert!(any_from.matches(r, s));
        assert!(!any_from.matches(s, r));
    }

    #[test]
    fn link_between_covers_both_directions() {
        let r = ProcessId::reader(0);
        let s = ProcessId::server(0);
        let sels = EventKind::<()>::link_between(r, s);
        assert!(sels.iter().any(|sel| sel.matches(r, s)));
        assert!(sels.iter().any(|sel| sel.matches(s, r)));
    }

    #[test]
    fn scheduled_orders_by_time_then_seq() {
        let a = Scheduled::<()> { at: SimTime::from_ticks(1), seq: 5, kind: EventKind::Crash { process: ProcessId::server(0) } };
        let b = Scheduled::<()> { at: SimTime::from_ticks(1), seq: 6, kind: EventKind::Crash { process: ProcessId::server(0) } };
        let c = Scheduled::<()> { at: SimTime::from_ticks(2), seq: 0, kind: EventKind::Crash { process: ProcessId::server(0) } };
        assert!(a < b);
        assert!(b < c);
    }
}
