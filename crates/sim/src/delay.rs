//! Message delay models for simulated links.

use rand::Rng;

use mwr_types::ProcessId;

use crate::time::SimTime;

/// How long a message spends in flight on a link.
///
/// The paper's channels are asynchronous and reliable: messages may be
/// delayed arbitrarily but are never lost. Delay models capture the
/// "arbitrary" part in a controlled, seedable way.
///
/// # Examples
///
/// ```
/// use mwr_sim::{DelayModel, SimTime};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let d = DelayModel::Uniform { lo: SimTime::from_ticks(10), hi: SimTime::from_ticks(20) };
/// let sample = d.sample(&mut rng);
/// assert!(sample >= SimTime::from_ticks(10) && sample <= SimTime::from_ticks(20));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelayModel {
    /// Every message takes exactly this long.
    Constant(SimTime),
    /// Delay drawn uniformly from `[lo, hi]` (inclusive).
    Uniform {
        /// Minimum delay.
        lo: SimTime,
        /// Maximum delay.
        hi: SimTime,
    },
    /// A fixed propagation delay plus uniform jitter in `[0, jitter]`;
    /// convenient for geo-replication matrices.
    ConstantPlusJitter {
        /// Fixed propagation component.
        base: SimTime,
        /// Maximum additive jitter.
        jitter: SimTime,
    },
}

impl DelayModel {
    /// Samples a delay using the provided RNG.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimTime {
        match *self {
            DelayModel::Constant(d) => d,
            DelayModel::Uniform { lo, hi } => {
                debug_assert!(lo <= hi, "uniform delay with lo > hi");
                SimTime::from_ticks(rng.gen_range(lo.ticks()..=hi.ticks()))
            }
            DelayModel::ConstantPlusJitter { base, jitter } => {
                base + SimTime::from_ticks(rng.gen_range(0..=jitter.ticks()))
            }
        }
    }

    /// The smallest delay this model can produce.
    pub fn min_delay(&self) -> SimTime {
        match *self {
            DelayModel::Constant(d) => d,
            DelayModel::Uniform { lo, .. } => lo,
            DelayModel::ConstantPlusJitter { base, .. } => base,
        }
    }
}

impl Default for DelayModel {
    /// One tick, constant: the fastest nontrivial network.
    fn default() -> Self {
        DelayModel::Constant(SimTime::from_ticks(1))
    }
}

/// A geo-replication latency matrix assigning one-way delays between client
/// *regions* and server *regions*.
///
/// This reproduces the paper's motivating deployment (§1: Cassandra-style
/// quorum stores routing queries to nearby replicas): each process lives in a
/// region and the link delay is the inter-region one-way latency plus jitter.
///
/// # Examples
///
/// ```
/// use mwr_sim::{GeoMatrix, SimTime};
/// use mwr_types::ProcessId;
///
/// // Two regions, 3 ticks apart, 1 tick local.
/// let mut geo = GeoMatrix::new(vec![
///     vec![SimTime::from_ticks(1), SimTime::from_ticks(3)],
///     vec![SimTime::from_ticks(3), SimTime::from_ticks(1)],
/// ]);
/// geo.place(ProcessId::reader(0), 0);
/// geo.place(ProcessId::server(0), 1);
/// let model = geo.link_model(ProcessId::reader(0), ProcessId::server(0), SimTime::from_ticks(1));
/// assert_eq!(model.min_delay(), SimTime::from_ticks(3));
/// ```
#[derive(Debug, Clone)]
pub struct GeoMatrix {
    /// `latency[a][b]` = one-way delay from region `a` to region `b`.
    latency: Vec<Vec<SimTime>>,
    placement: std::collections::BTreeMap<ProcessId, usize>,
}

impl GeoMatrix {
    /// Creates a matrix from one-way inter-region latencies.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn new(latency: Vec<Vec<SimTime>>) -> Self {
        let n = latency.len();
        assert!(
            latency.iter().all(|row| row.len() == n),
            "geo matrix must be square"
        );
        GeoMatrix {
            latency,
            placement: std::collections::BTreeMap::new(),
        }
    }

    /// Number of regions.
    pub fn regions(&self) -> usize {
        self.latency.len()
    }

    /// Places a process in a region.
    ///
    /// # Panics
    ///
    /// Panics if `region` is out of bounds.
    pub fn place(&mut self, process: ProcessId, region: usize) -> &mut Self {
        assert!(region < self.regions(), "region {region} out of bounds");
        self.placement.insert(process, region);
        self
    }

    /// Returns the region a process was placed in, if any.
    pub fn region_of(&self, process: ProcessId) -> Option<usize> {
        self.placement.get(&process).copied()
    }

    /// Builds the delay model for the directed link `from → to`.
    ///
    /// Unplaced processes default to region 0.
    pub fn link_model(&self, from: ProcessId, to: ProcessId, jitter: SimTime) -> DelayModel {
        let a = self.region_of(from).unwrap_or(0);
        let b = self.region_of(to).unwrap_or(0);
        DelayModel::ConstantPlusJitter {
            base: self.latency[a][b],
            jitter,
        }
    }

    /// Iterates over all placed processes.
    pub fn placements(&self) -> impl Iterator<Item = (ProcessId, usize)> + '_ {
        self.placement.iter().map(|(p, r)| (*p, *r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn constant_is_constant() {
        let mut rng = SmallRng::seed_from_u64(0);
        let d = DelayModel::Constant(SimTime::from_ticks(4));
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), SimTime::from_ticks(4));
        }
    }

    #[test]
    fn uniform_stays_in_bounds_and_varies() {
        let mut rng = SmallRng::seed_from_u64(42);
        let d = DelayModel::Uniform {
            lo: SimTime::from_ticks(5),
            hi: SimTime::from_ticks(9),
        };
        let samples: Vec<u64> = (0..200).map(|_| d.sample(&mut rng).ticks()).collect();
        assert!(samples.iter().all(|&s| (5..=9).contains(&s)));
        assert!(samples.iter().any(|&s| s != samples[0]), "should vary");
    }

    #[test]
    fn jitter_adds_to_base() {
        let mut rng = SmallRng::seed_from_u64(7);
        let d = DelayModel::ConstantPlusJitter {
            base: SimTime::from_ticks(100),
            jitter: SimTime::from_ticks(10),
        };
        for _ in 0..100 {
            let s = d.sample(&mut rng).ticks();
            assert!((100..=110).contains(&s));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = DelayModel::Uniform {
            lo: SimTime::from_ticks(0),
            hi: SimTime::from_ticks(1000),
        };
        let run = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..50).map(|_| d.sample(&mut rng).ticks()).collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_matrix_panics() {
        let _ = GeoMatrix::new(vec![vec![SimTime::ZERO], vec![]]);
    }

    #[test]
    fn geo_matrix_places_and_builds_models() {
        let mut geo = GeoMatrix::new(vec![
            vec![SimTime::from_ticks(1), SimTime::from_ticks(40)],
            vec![SimTime::from_ticks(40), SimTime::from_ticks(1)],
        ]);
        geo.place(ProcessId::writer(0), 0).place(ProcessId::server(0), 0);
        geo.place(ProcessId::server(1), 1);
        assert_eq!(geo.regions(), 2);
        assert_eq!(geo.region_of(ProcessId::writer(0)), Some(0));
        assert_eq!(geo.placements().count(), 3);

        let near = geo.link_model(ProcessId::writer(0), ProcessId::server(0), SimTime::ZERO);
        let far = geo.link_model(ProcessId::writer(0), ProcessId::server(1), SimTime::ZERO);
        assert_eq!(near.min_delay(), SimTime::from_ticks(1));
        assert_eq!(far.min_delay(), SimTime::from_ticks(40));
    }
}
