//! Network state: topology policy, per-link delays, holds, crashes.

use std::collections::{BTreeMap, BTreeSet};

use mwr_types::ProcessId;

use crate::delay::{DelayModel, GeoMatrix};
use crate::event::LinkSelector;
use crate::time::SimTime;

/// Which communication pattern the network permits.
///
/// The paper's model (Fig 1) has channels only between clients and servers:
/// *"There is no communication among the servers"*, and clients likewise do
/// not talk to each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Topology {
    /// Only client↔server links exist (the paper's model). Sends violating
    /// the pattern are a programming error and panic.
    #[default]
    ClientServerOnly,
    /// Any process may message any other; useful for auxiliary tooling, not
    /// used by the protocols.
    Unrestricted,
}

impl Topology {
    /// Whether the directed link `from → to` exists under this topology.
    pub fn allows(self, from: ProcessId, to: ProcessId) -> bool {
        match self {
            Topology::Unrestricted => from != to,
            Topology::ClientServerOnly => {
                (from.is_client() && to.is_server()) || (from.is_server() && to.is_client())
            }
        }
    }
}

/// The status of a directed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkStatus {
    /// Messages flow with the configured delay.
    Open,
    /// Messages are parked until a matching release.
    Held,
}

/// Mutable network state shared by the simulation engine.
///
/// # Examples
///
/// ```
/// use mwr_sim::{DelayModel, Network, SimTime, Topology};
/// use mwr_types::ProcessId;
///
/// let mut net = Network::new(Topology::ClientServerOnly);
/// net.set_default_delay(DelayModel::Constant(SimTime::from_ticks(5)));
/// let r = ProcessId::reader(0);
/// let s = ProcessId::server(0);
/// assert_eq!(net.delay_for(r, s).min_delay(), SimTime::from_ticks(5));
///
/// net.hold_between(r, s);
/// assert!(net.is_held(r, s));
/// assert!(net.is_held(s, r));
/// net.release_between(r, s);
/// assert!(!net.is_held(r, s));
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    topology: Topology,
    default_delay: DelayModel,
    link_delays: BTreeMap<(ProcessId, ProcessId), DelayModel>,
    holds: Vec<LinkSelector>,
    crashed: BTreeSet<ProcessId>,
}

impl Network {
    /// Creates a network with the given topology and a one-tick default
    /// delay on every link.
    pub fn new(topology: Topology) -> Self {
        Network {
            topology,
            default_delay: DelayModel::default(),
            link_delays: BTreeMap::new(),
            holds: Vec::new(),
            crashed: BTreeSet::new(),
        }
    }

    /// The topology policy.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Sets the delay model used by links without a specific override.
    pub fn set_default_delay(&mut self, model: DelayModel) -> &mut Self {
        self.default_delay = model;
        self
    }

    /// Overrides the delay model of the directed link `from → to`.
    pub fn set_link_delay(&mut self, from: ProcessId, to: ProcessId, model: DelayModel) -> &mut Self {
        self.link_delays.insert((from, to), model);
        self
    }

    /// Applies a [`GeoMatrix`] to every directed pair among `processes`,
    /// with the given jitter.
    pub fn apply_geo_matrix(&mut self, geo: &GeoMatrix, processes: &[ProcessId], jitter: SimTime) {
        for &a in processes {
            for &b in processes {
                if a != b && self.topology.allows(a, b) {
                    self.set_link_delay(a, b, geo.link_model(a, b, jitter));
                }
            }
        }
    }

    /// The delay model in effect for the directed link `from → to`.
    pub fn delay_for(&self, from: ProcessId, to: ProcessId) -> DelayModel {
        self.link_delays
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default_delay)
    }

    /// Starts holding messages on the selected links.
    pub fn hold(&mut self, selector: LinkSelector) {
        self.holds.push(selector);
    }

    /// Holds both directed links between `a` and `b` — the shape used to
    /// make an operation "skip" a server in the impossibility constructions.
    pub fn hold_between(&mut self, a: ProcessId, b: ProcessId) {
        self.hold(LinkSelector::directed(a, b));
        self.hold(LinkSelector::directed(b, a));
    }

    /// Removes previously installed holds equal to `selector`.
    ///
    /// Returns `true` if at least one hold was removed. The simulation layer
    /// is responsible for re-injecting parked messages afterwards.
    pub fn release(&mut self, selector: LinkSelector) -> bool {
        let before = self.holds.len();
        self.holds.retain(|h| *h != selector);
        self.holds.len() != before
    }

    /// Releases both directed links between `a` and `b`.
    pub fn release_between(&mut self, a: ProcessId, b: ProcessId) {
        self.release(LinkSelector::directed(a, b));
        self.release(LinkSelector::directed(b, a));
    }

    /// Whether the directed link `from → to` is currently held.
    pub fn is_held(&self, from: ProcessId, to: ProcessId) -> bool {
        self.holds.iter().any(|h| h.matches(from, to))
    }

    /// The status of the directed link `from → to`.
    pub fn link_status(&self, from: ProcessId, to: ProcessId) -> LinkStatus {
        if self.is_held(from, to) {
            LinkStatus::Held
        } else {
            LinkStatus::Open
        }
    }

    /// Marks a process as crashed. Crashed processes silently drop all
    /// subsequent deliveries and timers; channels stay reliable.
    pub fn crash(&mut self, process: ProcessId) {
        self.crashed.insert(process);
    }

    /// Whether a process has crashed.
    pub fn is_crashed(&self, process: ProcessId) -> bool {
        self.crashed.contains(&process)
    }

    /// The set of crashed processes.
    pub fn crashed(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.crashed.iter().copied()
    }
}

impl Default for Network {
    fn default() -> Self {
        Network::new(Topology::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_server_topology_matches_paper_model() {
        let t = Topology::ClientServerOnly;
        let r = ProcessId::reader(0);
        let w = ProcessId::writer(0);
        let s0 = ProcessId::server(0);
        let s1 = ProcessId::server(1);
        assert!(t.allows(r, s0));
        assert!(t.allows(s0, w));
        assert!(!t.allows(s0, s1), "no server-to-server channel");
        assert!(!t.allows(r, w), "no client-to-client channel");
        assert!(!t.allows(r, r), "no self channel");
    }

    #[test]
    fn unrestricted_allows_everything_but_self() {
        let t = Topology::Unrestricted;
        assert!(t.allows(ProcessId::server(0), ProcessId::server(1)));
        assert!(!t.allows(ProcessId::server(0), ProcessId::server(0)));
    }

    #[test]
    fn link_delay_overrides_default() {
        let mut net = Network::default();
        let r = ProcessId::reader(0);
        let s = ProcessId::server(0);
        net.set_default_delay(DelayModel::Constant(SimTime::from_ticks(2)));
        net.set_link_delay(r, s, DelayModel::Constant(SimTime::from_ticks(9)));
        assert_eq!(net.delay_for(r, s).min_delay(), SimTime::from_ticks(9));
        assert_eq!(net.delay_for(s, r).min_delay(), SimTime::from_ticks(2));
    }

    #[test]
    fn hold_and_release_are_symmetric_helpers() {
        let mut net = Network::default();
        let r = ProcessId::reader(1);
        let s = ProcessId::server(2);
        assert_eq!(net.link_status(r, s), LinkStatus::Open);
        net.hold_between(r, s);
        assert_eq!(net.link_status(r, s), LinkStatus::Held);
        assert_eq!(net.link_status(s, r), LinkStatus::Held);
        net.release_between(r, s);
        assert_eq!(net.link_status(r, s), LinkStatus::Open);
    }

    #[test]
    fn wildcard_hold_covers_all_links_into_server() {
        let mut net = Network::default();
        let s = ProcessId::server(0);
        net.hold(LinkSelector::into(s));
        assert!(net.is_held(ProcessId::reader(0), s));
        assert!(net.is_held(ProcessId::writer(3), s));
        assert!(!net.is_held(s, ProcessId::reader(0)));
        assert!(net.release(LinkSelector::into(s)));
        assert!(!net.release(LinkSelector::into(s)), "double release is a no-op");
    }

    #[test]
    fn crash_is_sticky() {
        let mut net = Network::default();
        let s = ProcessId::server(1);
        assert!(!net.is_crashed(s));
        net.crash(s);
        assert!(net.is_crashed(s));
        assert_eq!(net.crashed().collect::<Vec<_>>(), vec![s]);
    }

    #[test]
    fn geo_matrix_application_respects_topology() {
        let mut geo = GeoMatrix::new(vec![
            vec![SimTime::from_ticks(1), SimTime::from_ticks(30)],
            vec![SimTime::from_ticks(30), SimTime::from_ticks(1)],
        ]);
        let r = ProcessId::reader(0);
        let s0 = ProcessId::server(0);
        let s1 = ProcessId::server(1);
        geo.place(r, 0).place(s0, 0);
        geo.place(s1, 1);
        let mut net = Network::default();
        net.apply_geo_matrix(&geo, &[r, s0, s1], SimTime::ZERO);
        assert_eq!(net.delay_for(r, s1).min_delay(), SimTime::from_ticks(30));
        // server→server link never configured (not allowed by topology):
        // falls back to default.
        assert_eq!(net.delay_for(s0, s1), DelayModel::default());
    }
}
