//! Deterministic discrete-event simulator for the paper's system model.
//!
//! The paper (§2.1, Fig 1) analyses register emulations in an asynchronous
//! message-passing system: `S` servers, `R` readers, `W` writers, reliable
//! bidirectional channels between every client and every server, **no**
//! server↔server or client↔client communication, and up to `t` server
//! crashes. This crate turns that model into an executable, deterministic
//! substrate:
//!
//! - [`Simulation`] — a seeded discrete-event loop over user [`Automaton`]s.
//! - [`Network`] — per-directed-link [`DelayModel`]s, *hold/release* controls
//!   (the proofs' "skip one server" is a hold that is never released), and
//!   crash injection.
//! - [`Topology`] — enforcement of the client↔server-only communication
//!   pattern; illegal sends panic.
//!
//! Determinism: every run is a pure function of the seed and the scheduled
//! inputs. Ties in virtual time are broken by schedule order.
//!
//! # Examples
//!
//! A client pinging one echo server:
//!
//! ```
//! use mwr_sim::{Automaton, Context, Simulation, SimTime};
//! use mwr_types::ProcessId;
//!
//! #[derive(Clone, Debug, PartialEq)]
//! enum Msg { Ping, Pong }
//!
//! struct Server;
//! impl Automaton<Msg, ()> for Server {
//!     fn on_message(&mut self, from: ProcessId, msg: Msg, ctx: &mut Context<'_, Msg, ()>) {
//!         if msg == Msg::Ping {
//!             ctx.send(from, Msg::Pong);
//!         }
//!     }
//! }
//!
//! struct Client;
//! impl Automaton<Msg, ()> for Client {
//!     fn on_message(&mut self, _from: ProcessId, msg: Msg, ctx: &mut Context<'_, Msg, ()>) {
//!         if msg == Msg::Pong {
//!             ctx.notify(());
//!         }
//!     }
//!     fn on_external(&mut self, _input: Msg, ctx: &mut Context<'_, Msg, ()>) {
//!         ctx.send(ProcessId::server(0), Msg::Ping);
//!     }
//! }
//!
//! let mut sim: Simulation<Msg, ()> = Simulation::new(7);
//! sim.add_process(ProcessId::reader(0), Client);
//! sim.add_process(ProcessId::server(0), Server);
//! sim.schedule_external(SimTime::ZERO, ProcessId::reader(0), Msg::Ping)?;
//! sim.run_until_quiescent()?;
//! assert_eq!(sim.drain_notifications().len(), 1);
//! # Ok::<(), mwr_sim::SimError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod automaton;
mod delay;
mod event;
mod network;
mod sim;
mod time;
mod trace;

pub use automaton::{Automaton, Context, TimerId};
pub use delay::{DelayModel, GeoMatrix};
pub use event::{ControlAction, EventKind, LinkSelector};
pub use network::{LinkStatus, Network, Topology};
pub use sim::{RunStats, SimError, SteppedEvent, SteppedKind, Simulation};
pub use time::SimTime;
pub use trace::{Trace, TraceEntry};
