//! Virtual time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, measured in abstract *ticks*.
///
/// The simulator's clock is discrete and only advances when events fire.
/// Experiments conventionally interpret one tick as one microsecond when
/// rendering latencies, but nothing in the engine depends on that reading.
///
/// Processes in the paper's model cannot read the global clock; automata get
/// access to [`SimTime`] only for metrics and must not branch on it for
/// protocol decisions (none of the protocols in `mwr-core` do).
///
/// # Examples
///
/// ```
/// use mwr_sim::SimTime;
///
/// let t = SimTime::from_ticks(5) + SimTime::from_ticks(10);
/// assert_eq!(t.ticks(), 15);
/// assert!(SimTime::ZERO < t);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);

    /// A time far beyond any experiment horizon; used to park "skipped"
    /// messages (the proofs delay them "a sufficiently long period").
    pub const FAR_FUTURE: SimTime = SimTime(u64::MAX / 4);

    /// Creates a time from raw ticks.
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Returns the raw tick count.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating difference between two times.
    #[must_use]
    pub const fn saturating_sub(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimTime {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}t", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_ordering() {
        let a = SimTime::from_ticks(3);
        let b = SimTime::from_ticks(5);
        assert_eq!((a + b).ticks(), 8);
        assert_eq!((b - a).ticks(), 2);
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
        assert!(a < b);
        assert_eq!(SimTime::ZERO, SimTime::default());
    }

    #[test]
    fn addition_saturates_at_far_future_scale() {
        let far = SimTime::FAR_FUTURE;
        assert!(far + far > far);
        assert_eq!(SimTime::from_ticks(u64::MAX) + SimTime::from_ticks(1), SimTime::from_ticks(u64::MAX));
    }

    #[test]
    fn display_suffixes_ticks() {
        assert_eq!(SimTime::from_ticks(42).to_string(), "42t");
    }
}
