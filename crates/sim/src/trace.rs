//! Optional message-level trace recording.

use std::fmt;

use mwr_types::ProcessId;

use crate::time::SimTime;

/// One recorded network delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Delivery time.
    pub at: SimTime,
    /// Sender.
    pub from: ProcessId,
    /// Recipient.
    pub to: ProcessId,
    /// `Debug` rendering of the message (the trace is for humans and tests;
    /// it deliberately erases the message type).
    pub summary: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} → {}: {}", self.at, self.from, self.to, self.summary)
    }
}

/// A chronological record of every delivered message.
///
/// Enable with [`Simulation::enable_trace`](crate::Simulation::enable_trace);
/// useful when debugging adversarial schedules (e.g. verifying that a held
/// link really did delay a round-trip past the end of an operation).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    pub(crate) fn record(&mut self, at: SimTime, from: ProcessId, to: ProcessId, summary: String) {
        self.entries.push(TraceEntry { at, from, to, summary });
    }

    /// All recorded deliveries, in delivery order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of recorded deliveries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Deliveries involving the given process (as sender or recipient).
    pub fn involving(&self, process: ProcessId) -> impl Iterator<Item = &TraceEntry> + '_ {
        self.entries
            .iter()
            .filter(move |e| e.from == process || e.to == process)
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_filters() {
        let mut trace = Trace::new();
        assert!(trace.is_empty());
        let r = ProcessId::reader(0);
        let s = ProcessId::server(0);
        trace.record(SimTime::from_ticks(1), r, s, "READ".into());
        trace.record(SimTime::from_ticks(2), s, r, "READACK".into());
        trace.record(SimTime::from_ticks(3), ProcessId::writer(0), s, "WRITE".into());
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.involving(r).count(), 2);
        assert_eq!(trace.involving(ProcessId::writer(0)).count(), 1);
    }

    #[test]
    fn display_renders_arrows() {
        let mut trace = Trace::new();
        trace.record(
            SimTime::from_ticks(5),
            ProcessId::reader(1),
            ProcessId::server(2),
            "Q".into(),
        );
        let text = trace.to_string();
        assert!(text.contains("[5t] r2 → s3: Q"), "got: {text}");
    }
}
