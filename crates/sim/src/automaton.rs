//! The process automaton trait and its execution context.

use rand::rngs::SmallRng;

use mwr_types::ProcessId;

use crate::time::SimTime;

/// Identifier of a pending timer, returned by [`Context::set_timer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub(crate) u64);

/// A deterministic process automaton.
///
/// The paper models an implementation as "a collection of automata" whose
/// computation proceeds in steps (§2.1). An automaton reacts to message
/// deliveries, external inputs from the harness (operation invocations), and
/// its own timers. All effects go through the [`Context`]: sending messages,
/// setting timers, and emitting notifications of type `N` to the harness.
///
/// Determinism requirement: automata must not consult wall-clock time or
/// global state; all nondeterminism comes from the seeded simulation.
pub trait Automaton<M, N> {
    /// Called once when the simulation starts, before any event fires.
    fn on_start(&mut self, ctx: &mut Context<'_, M, N>) {
        let _ = ctx;
    }

    /// Called when a message from another process is delivered.
    fn on_message(&mut self, from: ProcessId, msg: M, ctx: &mut Context<'_, M, N>);

    /// Called when the harness injects an external input (e.g. an operation
    /// invocation on a client). Defaults to ignoring the input.
    fn on_external(&mut self, input: M, ctx: &mut Context<'_, M, N>) {
        let _ = (input, ctx);
    }

    /// Called when a timer set via [`Context::set_timer`] fires.
    fn on_timer(&mut self, timer: TimerId, ctx: &mut Context<'_, M, N>) {
        let _ = (timer, ctx);
    }
}

/// The effect interface handed to automaton callbacks.
///
/// Effects are buffered and applied by the engine after the callback
/// returns, so automata never observe partially applied state.
#[derive(Debug)]
pub struct Context<'a, M, N> {
    now: SimTime,
    self_id: ProcessId,
    rng: &'a mut SmallRng,
    next_timer_id: &'a mut u64,
    pub(crate) sends: Vec<(ProcessId, M)>,
    pub(crate) timers: Vec<(SimTime, TimerId)>,
    pub(crate) notes: Vec<N>,
}

impl<'a, M, N> Context<'a, M, N> {
    /// Creates a context detached from any simulation engine, for driving
    /// automata directly in lockstep harnesses (microbenchmarks, CPU
    /// attribution, unit tests of `Automaton` impls). Buffered effects are
    /// read back with [`Context::take_sends`] / [`Context::take_notes`];
    /// timers are buffered but never fire on their own.
    pub fn detached(
        now: SimTime,
        self_id: ProcessId,
        rng: &'a mut SmallRng,
        next_timer_id: &'a mut u64,
    ) -> Self {
        Context::new(now, self_id, rng, next_timer_id)
    }

    /// Drains the messages buffered by [`Context::send`] /
    /// [`Context::broadcast_to_servers`] since the last drain, as
    /// `(destination, message)` pairs. Detached-context harnesses route
    /// these by hand; inside the engine the drain happens automatically.
    pub fn take_sends(&mut self) -> Vec<(ProcessId, M)> {
        std::mem::take(&mut self.sends)
    }

    /// Drains the notifications buffered by [`Context::notify`] since the
    /// last drain.
    pub fn take_notes(&mut self) -> Vec<N> {
        std::mem::take(&mut self.notes)
    }

    pub(crate) fn new(
        now: SimTime,
        self_id: ProcessId,
        rng: &'a mut SmallRng,
        next_timer_id: &'a mut u64,
    ) -> Self {
        Context {
            now,
            self_id,
            rng,
            next_timer_id,
            sends: Vec::new(),
            timers: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Current virtual time. For metrics only — protocol logic must not
    /// branch on it (processes cannot read the global clock in the model).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The identity of the process running this callback.
    pub fn self_id(&self) -> ProcessId {
        self.self_id
    }

    /// Sends `msg` to `to`. Delivery is asynchronous; the message is
    /// scheduled once the callback returns, with the link's sampled delay.
    ///
    /// # Panics
    ///
    /// The engine panics when the send violates the configured
    /// [`Topology`](crate::Topology) (e.g. server→server under the paper's
    /// model) — that is a protocol bug, not a runtime condition.
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.sends.push((to, msg));
    }

    /// Sends `msg` to every server in `0..count`.
    ///
    /// Round-trips in the paper's algorithm schema (§2.2) always address
    /// *all* servers; this is the idiomatic way to start one.
    pub fn broadcast_to_servers(&mut self, count: usize, msg: M)
    where
        M: Clone,
    {
        for i in 0..count {
            self.send(ProcessId::server(i as u32), msg.clone());
        }
    }

    /// Schedules a timer `delay` from now and returns its identifier.
    pub fn set_timer(&mut self, delay: SimTime) -> TimerId {
        let id = TimerId(*self.next_timer_id);
        *self.next_timer_id += 1;
        self.timers.push((self.now + delay, id));
        id
    }

    /// Emits a notification to the harness (e.g. "operation completed").
    pub fn notify(&mut self, note: N) {
        self.notes.push(note);
    }

    /// Deterministic RNG shared with the engine; protocols do not use it,
    /// but randomized client drivers may.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn context_buffers_effects() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut next_timer = 0;
        let mut ctx: Context<'_, &'static str, u32> = Context::new(
            SimTime::from_ticks(10),
            ProcessId::reader(0),
            &mut rng,
            &mut next_timer,
        );
        assert_eq!(ctx.now(), SimTime::from_ticks(10));
        assert_eq!(ctx.self_id(), ProcessId::reader(0));

        ctx.send(ProcessId::server(0), "hello");
        ctx.broadcast_to_servers(3, "all");
        let t = ctx.set_timer(SimTime::from_ticks(5));
        ctx.notify(7);

        assert_eq!(ctx.sends.len(), 4);
        assert_eq!(ctx.timers, vec![(SimTime::from_ticks(15), t)]);
        assert_eq!(ctx.notes, vec![7]);
        assert_eq!(next_timer, 1);
    }

    #[test]
    fn timer_ids_are_unique_across_contexts() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut next_timer = 0;
        let t1 = {
            let mut ctx: Context<'_, (), ()> =
                Context::new(SimTime::ZERO, ProcessId::reader(0), &mut rng, &mut next_timer);
            ctx.set_timer(SimTime::ZERO)
        };
        let t2 = {
            let mut ctx: Context<'_, (), ()> =
                Context::new(SimTime::ZERO, ProcessId::reader(0), &mut rng, &mut next_timer);
            ctx.set_timer(SimTime::ZERO)
        };
        assert_ne!(t1, t2);
    }
}
