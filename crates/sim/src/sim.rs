//! The discrete-event simulation engine.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::fmt;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use mwr_types::ProcessId;

use crate::automaton::{Automaton, Context};
use crate::event::{ControlAction, EventKind, LinkSelector, Scheduled};
use crate::network::{Network, Topology};
use crate::time::SimTime;
use crate::trace::Trace;

/// Statistics accumulated over a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Total events processed.
    pub events_processed: u64,
    /// Messages delivered to live automata.
    pub messages_delivered: u64,
    /// Messages parked on held links (may later be released).
    pub messages_parked: u64,
    /// Messages dropped because the recipient had crashed.
    pub messages_dropped_crash: u64,
    /// Timers that fired.
    pub timers_fired: u64,
    /// External inputs delivered.
    pub externals_delivered: u64,
    /// Virtual time of the last processed event.
    pub end_time: SimTime,
}

/// Errors produced by the simulation engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// `run_until_quiescent` processed more events than the configured
    /// limit — almost always a protocol livelock.
    EventLimitExceeded {
        /// The limit that was hit.
        limit: u64,
    },
    /// An external input was scheduled for a process that was never added.
    UnknownProcess {
        /// The missing process.
        process: ProcessId,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::EventLimitExceeded { limit } => {
                write!(f, "event limit of {limit} exceeded; protocol livelock?")
            }
            SimError::UnknownProcess { process } => {
                write!(f, "no automaton registered for process {process}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A summary of one processed event, returned by [`Simulation::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SteppedEvent {
    /// When the event fired.
    pub at: SimTime,
    /// What happened.
    pub kind: SteppedKind,
}

/// The kind of a stepped event (message payloads are deliberately erased).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SteppedKind {
    /// A message was delivered.
    Delivered {
        /// Sender.
        from: ProcessId,
        /// Recipient.
        to: ProcessId,
    },
    /// A message was dropped because the recipient crashed.
    DroppedCrashed {
        /// The crashed recipient.
        to: ProcessId,
    },
    /// An external input was delivered.
    External {
        /// Recipient.
        to: ProcessId,
    },
    /// A timer fired.
    Timer {
        /// The owning process.
        process: ProcessId,
    },
    /// A process crashed.
    Crashed {
        /// The process that crashed.
        process: ProcessId,
    },
    /// A network control action was applied.
    Control,
}

#[derive(Debug)]
struct ParkedMsg<M> {
    from: ProcessId,
    to: ProcessId,
    msg: M,
}

/// The deterministic discrete-event simulator.
///
/// Type parameters: `M` is the protocol message type (shared by all automata
/// in one simulation), `N` is the notification type automata emit to the
/// harness (e.g. operation completions). See the crate-level docs for an
/// end-to-end example.
pub struct Simulation<M, N> {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Reverse<Scheduled<M>>>,
    automata: BTreeMap<ProcessId, Box<dyn Automaton<M, N>>>,
    network: Network,
    parked: Vec<ParkedMsg<M>>,
    seed: u64,
    rng: SmallRng,
    /// One independent delay stream per directed link (lazily created).
    ///
    /// Sampling per-link rather than from the shared engine RNG means the
    /// traffic on one link can never perturb the delays drawn on another:
    /// adding or removing messages between a disjoint pair of processes
    /// leaves every other link's delay sequence bit-identical. Paired
    /// experiments (same seed, protocol variants differing only in extra
    /// messages) stay comparable.
    link_rngs: BTreeMap<(ProcessId, ProcessId), SmallRng>,
    next_timer_id: u64,
    notifications: Vec<(SimTime, N)>,
    trace: Option<Trace>,
    started: bool,
    stats: RunStats,
    event_limit: u64,
}

impl<M: fmt::Debug, N> fmt::Debug for Simulation<M, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("pending_events", &self.heap.len())
            .field("processes", &self.automata.len())
            .field("parked", &self.parked.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl<M: Clone + fmt::Debug, N> Simulation<M, N> {
    /// Creates a simulation with the paper's client↔server-only topology.
    ///
    /// All randomness (delay sampling, automaton RNG use) derives from
    /// `seed`: identical seeds and inputs yield identical runs.
    pub fn new(seed: u64) -> Self {
        Simulation::with_topology(seed, Topology::ClientServerOnly)
    }

    /// Creates a simulation with an explicit topology policy.
    pub fn with_topology(seed: u64, topology: Topology) -> Self {
        Simulation {
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            automata: BTreeMap::new(),
            network: Network::new(topology),
            parked: Vec::new(),
            seed,
            rng: SmallRng::seed_from_u64(seed),
            link_rngs: BTreeMap::new(),
            next_timer_id: 0,
            notifications: Vec::new(),
            trace: None,
            started: false,
            stats: RunStats::default(),
            event_limit: 10_000_000,
        }
    }

    /// Registers a process automaton.
    ///
    /// # Panics
    ///
    /// Panics if a process with the same id was already added.
    pub fn add_process(&mut self, id: ProcessId, automaton: impl Automaton<M, N> + 'static) -> &mut Self {
        let prev = self.automata.insert(id, Box::new(automaton));
        assert!(prev.is_none(), "duplicate process {id}");
        self
    }

    /// Immutable access to the network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Mutable access to the network (delay models, holds, crashes).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Statistics so far.
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// Caps the number of events a single `run_until_quiescent` may process.
    pub fn set_event_limit(&mut self, limit: u64) -> &mut Self {
        self.event_limit = limit;
        self
    }

    /// Starts recording every delivery into a [`Trace`].
    pub fn enable_trace(&mut self) -> &mut Self {
        if self.trace.is_none() {
            self.trace = Some(Trace::new());
        }
        self
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Schedules an external input for delivery to `to` at time `at`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownProcess`] if no automaton is registered
    /// for `to`.
    pub fn schedule_external(&mut self, at: SimTime, to: ProcessId, msg: M) -> Result<(), SimError> {
        if !self.automata.contains_key(&to) {
            return Err(SimError::UnknownProcess { process: to });
        }
        self.push_event(at, EventKind::External { to, msg });
        Ok(())
    }

    /// Schedules a crash of `process` at time `at`.
    pub fn schedule_crash(&mut self, at: SimTime, process: ProcessId) {
        self.push_event(at, EventKind::Crash { process });
    }

    /// Schedules a hold on the selected links at time `at`.
    pub fn schedule_hold(&mut self, at: SimTime, selector: LinkSelector) {
        self.push_event(at, EventKind::Control(ControlAction::Hold(selector)));
    }

    /// Schedules a release of the selected links at time `at`.
    pub fn schedule_release(&mut self, at: SimTime, selector: LinkSelector) {
        self.push_event(at, EventKind::Control(ControlAction::Release(selector)));
    }

    /// Schedules holds on both directed links between `a` and `b` — the
    /// proofs' "skip server" gesture.
    pub fn schedule_hold_between(&mut self, at: SimTime, a: ProcessId, b: ProcessId) {
        self.schedule_hold(at, LinkSelector::directed(a, b));
        self.schedule_hold(at, LinkSelector::directed(b, a));
    }

    /// Schedules releases on both directed links between `a` and `b`.
    pub fn schedule_release_between(&mut self, at: SimTime, a: ProcessId, b: ProcessId) {
        self.schedule_release(at, LinkSelector::directed(a, b));
        self.schedule_release(at, LinkSelector::directed(b, a));
    }

    /// Immediately releases the selected links and re-injects any parked
    /// messages that are no longer held.
    pub fn release_now(&mut self, selector: LinkSelector) {
        self.network.release(selector);
        self.reinject_parked();
    }

    /// Notifications emitted so far, drained. Each carries the virtual time
    /// at which it was emitted.
    pub fn drain_notifications(&mut self) -> Vec<(SimTime, N)> {
        std::mem::take(&mut self.notifications)
    }

    /// Number of undelivered (parked) messages currently held by the
    /// network — the proofs' "skipped" messages.
    pub fn parked_count(&self) -> usize {
        self.parked.len()
    }

    /// Runs until no events remain (parked messages do not count).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventLimitExceeded`] if the configured event
    /// limit is hit, which indicates a livelock.
    pub fn run_until_quiescent(&mut self) -> Result<RunStats, SimError> {
        let mut processed: u64 = 0;
        while self.step().is_some() {
            processed += 1;
            if processed > self.event_limit {
                return Err(SimError::EventLimitExceeded { limit: self.event_limit });
            }
        }
        Ok(self.stats)
    }

    /// Runs all events scheduled at or before `deadline`, then advances the
    /// clock to `deadline`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventLimitExceeded`] if the configured event
    /// limit is hit.
    pub fn run_until(&mut self, deadline: SimTime) -> Result<RunStats, SimError> {
        self.ensure_started();
        let mut processed: u64 = 0;
        while let Some(Reverse(next)) = self.heap.peek() {
            if next.at > deadline {
                break;
            }
            self.step();
            processed += 1;
            if processed > self.event_limit {
                return Err(SimError::EventLimitExceeded { limit: self.event_limit });
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
        Ok(self.stats)
    }

    /// Processes the next event, if any. Calls `on_start` hooks on first
    /// use. Returns a payload-erased summary of what happened.
    pub fn step(&mut self) -> Option<SteppedEvent> {
        self.ensure_started();
        let Reverse(ev) = self.heap.pop()?;
        debug_assert!(ev.at >= self.now, "time went backwards");
        self.now = ev.at;
        self.stats.events_processed += 1;
        self.stats.end_time = self.now;
        let kind = match ev.kind {
            EventKind::Deliver { from, to, msg } => {
                if self.network.is_crashed(to) {
                    self.stats.messages_dropped_crash += 1;
                    SteppedKind::DroppedCrashed { to }
                } else {
                    if let Some(trace) = &mut self.trace {
                        trace.record(self.now, from, to, format!("{msg:?}"));
                    }
                    self.dispatch(to, |a, ctx| a.on_message(from, msg, ctx));
                    self.stats.messages_delivered += 1;
                    SteppedKind::Delivered { from, to }
                }
            }
            EventKind::External { to, msg } => {
                if self.network.is_crashed(to) {
                    self.stats.messages_dropped_crash += 1;
                    SteppedKind::DroppedCrashed { to }
                } else {
                    self.dispatch(to, |a, ctx| a.on_external(msg, ctx));
                    self.stats.externals_delivered += 1;
                    SteppedKind::External { to }
                }
            }
            EventKind::Timer { process, timer } => {
                if self.network.is_crashed(process) {
                    SteppedKind::DroppedCrashed { to: process }
                } else {
                    self.dispatch(process, |a, ctx| a.on_timer(timer, ctx));
                    self.stats.timers_fired += 1;
                    SteppedKind::Timer { process }
                }
            }
            EventKind::Crash { process } => {
                self.network.crash(process);
                SteppedKind::Crashed { process }
            }
            EventKind::Control(action) => {
                match action {
                    ControlAction::Hold(sel) => self.network.hold(sel),
                    ControlAction::Release(sel) => {
                        self.network.release(sel);
                        self.reinject_parked();
                    }
                }
                SteppedKind::Control
            }
        };
        Some(SteppedEvent { at: self.now, kind })
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let ids: Vec<ProcessId> = self.automata.keys().copied().collect();
        for id in ids {
            self.dispatch(id, |a, ctx| a.on_start(ctx));
        }
    }

    /// Runs `f` on the automaton for `to` with a fresh context, then applies
    /// the buffered effects.
    ///
    /// # Panics
    ///
    /// Panics if no automaton exists for `to` (a scheduling bug — externals
    /// are validated at schedule time) or if a send violates the topology.
    fn dispatch<F>(&mut self, to: ProcessId, f: F)
    where
        F: FnOnce(&mut dyn Automaton<M, N>, &mut Context<'_, M, N>),
    {
        let mut automaton = self
            .automata
            .remove(&to)
            .unwrap_or_else(|| panic!("no automaton for process {to}"));
        let (sends, timers, notes) = {
            let mut ctx = Context::new(self.now, to, &mut self.rng, &mut self.next_timer_id);
            f(automaton.as_mut(), &mut ctx);
            (ctx.sends, ctx.timers, ctx.notes)
        };
        self.automata.insert(to, automaton);
        for (dest, msg) in sends {
            self.route(to, dest, msg);
        }
        for (fire_at, timer) in timers {
            self.push_event(fire_at, EventKind::Timer { process: to, timer });
        }
        for note in notes {
            self.notifications.push((self.now, note));
        }
    }

    fn route(&mut self, from: ProcessId, to: ProcessId, msg: M) {
        assert!(
            self.network.topology().allows(from, to),
            "topology violation: {from} → {to} is not a legal channel under {:?}",
            self.network.topology()
        );
        if self.network.is_held(from, to) {
            self.parked.push(ParkedMsg { from, to, msg });
            self.stats.messages_parked += 1;
        } else {
            let model = self.network.delay_for(from, to);
            let delay = model.sample(self.link_rng(from, to));
            self.push_event(self.now + delay, EventKind::Deliver { from, to, msg });
        }
    }

    /// The delay stream of the directed link `from → to`, derived from the
    /// run seed and the link identity alone (see the field docs on
    /// `link_rngs` for why delays are not drawn from the shared RNG).
    fn link_rng(&mut self, from: ProcessId, to: ProcessId) -> &mut SmallRng {
        let seed = self.seed;
        self.link_rngs.entry((from, to)).or_insert_with(|| {
            let mut h = seed ^ 0x6c77_6c69_6e6b_7321; // "lwlink s!" domain tag
            for word in [process_key(from), process_key(to)] {
                h ^= word;
                h = h.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(23);
            }
            SmallRng::seed_from_u64(h)
        })
    }

    fn reinject_parked(&mut self) {
        let mut still_parked = Vec::new();
        let parked = std::mem::take(&mut self.parked);
        for p in parked {
            if self.network.is_held(p.from, p.to) {
                still_parked.push(p);
            } else {
                let model = self.network.delay_for(p.from, p.to);
                let delay = model.sample(self.link_rng(p.from, p.to));
                self.push_event(
                    self.now + delay,
                    EventKind::Deliver { from: p.from, to: p.to, msg: p.msg },
                );
            }
        }
        self.parked = still_parked;
    }

    fn push_event(&mut self, at: SimTime, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Scheduled { at: at.max(self.now), seq, kind }));
    }
}


/// A stable 64-bit key for a process identity, used to derive per-link
/// delay streams.
fn process_key(p: ProcessId) -> u64 {
    match p {
        ProcessId::Server(s) => u64::from(s.index()),
        ProcessId::Client(c) => match c {
            mwr_types::ClientId::Reader(r) => (1 << 32) | u64::from(r.index()),
            mwr_types::ClientId::Writer(w) => (2 << 32) | u64::from(w.index()),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::DelayModel;

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    /// Echo server: replies Pong(n) to Ping(n).
    struct Echo;

    impl Automaton<Msg, (ProcessId, u32)> for Echo {
        fn on_message(&mut self, from: ProcessId, msg: Msg, ctx: &mut Context<'_, Msg, (ProcessId, u32)>) {
            if let Msg::Ping(n) = msg {
                ctx.send(from, Msg::Pong(n));
            }
        }
    }

    /// Client that pings all servers on external input and notifies on pong.
    struct Pinger {
        servers: usize,
    }

    impl Automaton<Msg, (ProcessId, u32)> for Pinger {
        fn on_message(&mut self, from: ProcessId, msg: Msg, ctx: &mut Context<'_, Msg, (ProcessId, u32)>) {
            if let Msg::Pong(n) = msg {
                ctx.notify((from, n));
            }
        }

        fn on_external(&mut self, input: Msg, ctx: &mut Context<'_, Msg, (ProcessId, u32)>) {
            if let Msg::Ping(n) = input {
                ctx.broadcast_to_servers(self.servers, Msg::Ping(n));
            }
        }
    }

    fn setup(servers: usize, seed: u64) -> Simulation<Msg, (ProcessId, u32)> {
        let mut sim = Simulation::new(seed);
        sim.add_process(ProcessId::reader(0), Pinger { servers });
        for i in 0..servers {
            sim.add_process(ProcessId::server(i as u32), Echo);
        }
        sim
    }

    #[test]
    fn round_trip_reaches_all_servers() {
        let mut sim = setup(3, 1);
        sim.schedule_external(SimTime::ZERO, ProcessId::reader(0), Msg::Ping(7)).unwrap();
        let stats = sim.run_until_quiescent().unwrap();
        let notes = sim.drain_notifications();
        assert_eq!(notes.len(), 3);
        assert!(notes.iter().all(|(_, (_, n))| *n == 7));
        assert_eq!(stats.messages_delivered, 6); // 3 pings + 3 pongs
        assert_eq!(stats.externals_delivered, 1);
    }

    #[test]
    fn identical_seeds_produce_identical_runs() {
        let run = |seed| {
            let mut sim = setup(5, seed);
            sim.network_mut().set_default_delay(DelayModel::Uniform {
                lo: SimTime::from_ticks(1),
                hi: SimTime::from_ticks(100),
            });
            sim.schedule_external(SimTime::ZERO, ProcessId::reader(0), Msg::Ping(1)).unwrap();
            sim.run_until_quiescent().unwrap();
            sim.drain_notifications()
                .into_iter()
                .map(|(t, (s, _))| (t, s))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should reorder replies");
    }

    #[test]
    fn held_links_park_messages_and_release_reinjects() {
        let mut sim = setup(2, 3);
        let r = ProcessId::reader(0);
        let s0 = ProcessId::server(0);
        sim.network_mut().hold_between(r, s0);
        sim.schedule_external(SimTime::ZERO, r, Msg::Ping(9)).unwrap();
        sim.run_until_quiescent().unwrap();
        // Only server 1 replied; the s0 ping is parked.
        assert_eq!(sim.drain_notifications().len(), 1);
        assert_eq!(sim.parked_count(), 1);

        sim.release_now(LinkSelector::directed(r, s0));
        sim.release_now(LinkSelector::directed(s0, r));
        sim.run_until_quiescent().unwrap();
        let notes = sim.drain_notifications();
        assert_eq!(notes.len(), 1, "released ping should complete the round-trip");
        assert_eq!(sim.parked_count(), 0);
    }

    #[test]
    fn crashed_server_never_replies() {
        let mut sim = setup(3, 5);
        sim.schedule_crash(SimTime::ZERO, ProcessId::server(2));
        sim.schedule_external(SimTime::from_ticks(1), ProcessId::reader(0), Msg::Ping(4)).unwrap();
        let stats = sim.run_until_quiescent().unwrap();
        assert_eq!(sim.drain_notifications().len(), 2);
        assert_eq!(stats.messages_dropped_crash, 1);
    }

    #[test]
    fn scheduled_hold_and_release_follow_virtual_time() {
        let mut sim = setup(1, 8);
        let r = ProcessId::reader(0);
        let s = ProcessId::server(0);
        sim.network_mut().set_default_delay(DelayModel::Constant(SimTime::from_ticks(1)));
        sim.schedule_hold_between(SimTime::ZERO, r, s);
        sim.schedule_external(SimTime::from_ticks(1), r, Msg::Ping(1)).unwrap();
        sim.schedule_release_between(SimTime::from_ticks(100), r, s);
        sim.run_until_quiescent().unwrap();
        let notes = sim.drain_notifications();
        assert_eq!(notes.len(), 1);
        assert!(notes[0].0 > SimTime::from_ticks(100), "pong must arrive after release");
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = setup(1, 2);
        sim.network_mut().set_default_delay(DelayModel::Constant(SimTime::from_ticks(10)));
        sim.schedule_external(SimTime::ZERO, ProcessId::reader(0), Msg::Ping(1)).unwrap();
        sim.run_until(SimTime::from_ticks(5)).unwrap();
        assert_eq!(sim.now(), SimTime::from_ticks(5));
        assert!(sim.drain_notifications().is_empty(), "pong needs 20 ticks");
        sim.run_until(SimTime::from_ticks(50)).unwrap();
        assert_eq!(sim.drain_notifications().len(), 1);
        assert_eq!(sim.now(), SimTime::from_ticks(50));
    }

    #[test]
    fn external_to_unknown_process_is_an_error() {
        let mut sim = setup(1, 0);
        let err = sim
            .schedule_external(SimTime::ZERO, ProcessId::writer(9), Msg::Ping(0))
            .unwrap_err();
        assert_eq!(err, SimError::UnknownProcess { process: ProcessId::writer(9) });
    }

    #[test]
    fn event_limit_catches_livelock() {
        /// Two processes bouncing a message forever.
        struct Bouncer;
        impl Automaton<Msg, ()> for Bouncer {
            fn on_message(&mut self, from: ProcessId, msg: Msg, ctx: &mut Context<'_, Msg, ()>) {
                ctx.send(from, msg);
            }
            fn on_external(&mut self, _input: Msg, ctx: &mut Context<'_, Msg, ()>) {
                ctx.send(ProcessId::server(0), Msg::Ping(0));
            }
        }
        let mut sim: Simulation<Msg, ()> = Simulation::new(0);
        sim.add_process(ProcessId::reader(0), Bouncer);
        sim.add_process(ProcessId::server(0), Bouncer);
        sim.set_event_limit(1000);
        sim.schedule_external(SimTime::ZERO, ProcessId::reader(0), Msg::Ping(0)).unwrap();
        assert_eq!(
            sim.run_until_quiescent(),
            Err(SimError::EventLimitExceeded { limit: 1000 })
        );
    }

    #[test]
    #[should_panic(expected = "topology violation")]
    fn server_to_server_send_panics() {
        /// A buggy server that forwards to another server.
        struct Gossip;
        impl Automaton<Msg, (ProcessId, u32)> for Gossip {
            fn on_message(
                &mut self,
                _from: ProcessId,
                msg: Msg,
                ctx: &mut Context<'_, Msg, (ProcessId, u32)>,
            ) {
                ctx.send(ProcessId::server(1), msg);
            }
        }
        let mut sim: Simulation<Msg, (ProcessId, u32)> = Simulation::new(0);
        sim.add_process(ProcessId::reader(0), Pinger { servers: 1 });
        sim.add_process(ProcessId::server(0), Gossip);
        sim.add_process(ProcessId::server(1), Echo);
        sim.schedule_external(SimTime::ZERO, ProcessId::reader(0), Msg::Ping(0)).unwrap();
        let _ = sim.run_until_quiescent();
    }

    #[test]
    #[should_panic(expected = "duplicate process")]
    fn duplicate_process_panics() {
        let mut sim: Simulation<Msg, (ProcessId, u32)> = Simulation::new(0);
        sim.add_process(ProcessId::server(0), Echo);
        sim.add_process(ProcessId::server(0), Echo);
    }

    #[test]
    fn trace_records_deliveries() {
        let mut sim = setup(2, 11);
        sim.enable_trace();
        sim.schedule_external(SimTime::ZERO, ProcessId::reader(0), Msg::Ping(3)).unwrap();
        sim.run_until_quiescent().unwrap();
        let trace = sim.trace().unwrap();
        assert_eq!(trace.len(), 4); // 2 pings + 2 pongs
        assert!(trace.entries().iter().any(|e| e.summary.contains("Ping")));
        assert!(trace.entries().iter().any(|e| e.summary.contains("Pong")));
    }
}
