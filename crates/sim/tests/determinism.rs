//! Regression: the simulator is a pure function of (seed, schedule).
//!
//! Future performance work (batched event queues, pooled allocations,
//! parallel delivery) must not change a single delivery relative to these
//! pins: same seed and schedule ⇒ bit-identical event trace, different
//! seed ⇒ different delay draws, and — because delays come from per-link
//! streams — traffic on one link must never perturb another link's delays.

use mwr_sim::{Automaton, Context, DelayModel, Simulation, SimTime, TraceEntry};
use mwr_types::ProcessId;

#[derive(Clone, Debug, PartialEq)]
enum Msg {
    Ping(u32),
    Pong(u32),
}

/// Echo server: replies `Pong(n)` to `Ping(n)`.
struct Echo;

impl Automaton<Msg, (ProcessId, u32)> for Echo {
    fn on_message(
        &mut self,
        from: ProcessId,
        msg: Msg,
        ctx: &mut Context<'_, Msg, (ProcessId, u32)>,
    ) {
        if let Msg::Ping(n) = msg {
            ctx.send(from, Msg::Pong(n));
        }
    }
}

/// Client: pings the given servers on every external input, notifies on pong.
struct Pinger {
    servers: Vec<ProcessId>,
    sent: u32,
}

impl Automaton<Msg, (ProcessId, u32)> for Pinger {
    fn on_message(
        &mut self,
        from: ProcessId,
        msg: Msg,
        ctx: &mut Context<'_, Msg, (ProcessId, u32)>,
    ) {
        if let Msg::Pong(n) = msg {
            ctx.notify((from, n));
        }
    }

    fn on_external(&mut self, _input: Msg, ctx: &mut Context<'_, Msg, (ProcessId, u32)>) {
        self.sent += 1;
        for &s in &self.servers {
            ctx.send(s, Msg::Ping(self.sent));
        }
    }
}

const JITTER: DelayModel = DelayModel::Uniform {
    lo: SimTime::from_ticks(1),
    hi: SimTime::from_ticks(40),
};

/// Timestamped pong notifications, as drained from the simulation.
type NoteLog = Vec<(SimTime, (ProcessId, u32))>;

/// Builds a sim with `clients` pingers each talking to `servers` echo
/// servers, pinging `rounds` times on a fixed cadence, and returns the full
/// trace plus the notification log.
fn run(seed: u64, clients: u32, servers: u32, rounds: u64) -> (Vec<TraceEntry>, NoteLog) {
    let mut sim: Simulation<Msg, (ProcessId, u32)> = Simulation::new(seed);
    sim.network_mut().set_default_delay(JITTER);
    sim.enable_trace();
    let server_ids: Vec<ProcessId> = (0..servers).map(ProcessId::server).collect();
    for s in &server_ids {
        sim.add_process(*s, Echo);
    }
    for c in 0..clients {
        sim.add_process(
            ProcessId::reader(c),
            Pinger { servers: server_ids.clone(), sent: 0 },
        );
        for round in 0..rounds {
            sim.schedule_external(
                SimTime::from_ticks(round * 50 + u64::from(c)),
                ProcessId::reader(c),
                Msg::Ping(0),
            )
            .unwrap();
        }
    }
    sim.run_until_quiescent().unwrap();
    let trace = sim.trace().expect("tracing enabled").entries().to_vec();
    let notes = sim.drain_notifications();
    (trace, notes)
}

#[test]
fn same_seed_and_schedule_reproduce_the_exact_event_trace() {
    let (trace_a, notes_a) = run(42, 3, 4, 6);
    let (trace_b, notes_b) = run(42, 3, 4, 6);
    assert!(!trace_a.is_empty());
    assert_eq!(trace_a, trace_b, "delivery-for-delivery identical");
    assert_eq!(notes_a, notes_b, "notification-for-notification identical");
}

#[test]
fn different_seeds_draw_different_delays() {
    let (trace_a, _) = run(1, 3, 4, 6);
    let (trace_b, _) = run(2, 3, 4, 6);
    // Same message multiset, different timing: sort both by content and
    // compare delivery times pairwise.
    assert_eq!(trace_a.len(), trace_b.len());
    assert_ne!(trace_a, trace_b, "seed must steer the delay draws");
}

#[test]
fn traffic_on_one_link_never_perturbs_another_links_delays() {
    // Baseline: reader 0 alone. Perturbed: reader 1 added, generating
    // interleaved traffic on disjoint links. Reader 0's deliveries must be
    // identical in both runs — per-link delay streams, not a shared one.
    let (quiet, _) = run(7, 1, 4, 6);
    let (busy, _) = run(7, 2, 4, 6);
    let r0 = ProcessId::reader(0);
    let quiet_r0: Vec<&TraceEntry> =
        quiet.iter().filter(|e| e.from == r0 || e.to == r0).collect();
    let busy_r0: Vec<&TraceEntry> =
        busy.iter().filter(|e| e.from == r0 || e.to == r0).collect();
    assert!(!quiet_r0.is_empty());
    assert_eq!(quiet_r0, busy_r0, "observed link unaffected by unrelated traffic");
}

#[test]
fn crash_and_hold_controls_are_part_of_the_deterministic_input() {
    let run_with_controls = |seed: u64| {
        let mut sim: Simulation<Msg, (ProcessId, u32)> = Simulation::new(seed);
        sim.network_mut().set_default_delay(JITTER);
        sim.enable_trace();
        for s in 0..3 {
            sim.add_process(ProcessId::server(s), Echo);
        }
        let servers = (0..3).map(ProcessId::server).collect();
        sim.add_process(ProcessId::reader(0), Pinger { servers, sent: 0 });
        sim.schedule_crash(SimTime::from_ticks(60), ProcessId::server(2));
        sim.schedule_hold(
            SimTime::ZERO,
            mwr_sim::LinkSelector::directed(ProcessId::reader(0), ProcessId::server(1)),
        );
        sim.schedule_release(
            SimTime::from_ticks(90),
            mwr_sim::LinkSelector::directed(ProcessId::reader(0), ProcessId::server(1)),
        );
        for round in 0..4u64 {
            sim.schedule_external(
                SimTime::from_ticks(round * 50),
                ProcessId::reader(0),
                Msg::Ping(0),
            )
            .unwrap();
        }
        sim.run_until_quiescent().unwrap();
        (sim.trace().unwrap().entries().to_vec(), sim.stats())
    };
    let (trace_a, stats_a) = run_with_controls(11);
    let (trace_b, stats_b) = run_with_controls(11);
    assert_eq!(trace_a, trace_b);
    assert_eq!(stats_a, stats_b);
    assert!(stats_a.messages_parked > 0, "the hold must actually bite");
    assert!(stats_a.messages_dropped_crash > 0, "the crash must actually bite");
}
