//! Sharded multi-register keyspace: from one register to a service.
//!
//! The paper's emulation gives *one* atomic register over `S` servers.
//! This crate serves **many named registers** over the same cluster: each
//! [`RegisterId`] hashes onto a shard, each shard is served by a
//! rendezvous-chosen group of `g` servers (groups overlap — a server
//! typically serves many shards), and every register's protocol runs
//! entirely inside its own group. The per-register algorithm is untouched:
//! the paper's guarantees hold with `g` in place of `S`, register by
//! register, because no message, timestamp, GC floor, or state transfer
//! ever crosses a register boundary.
//!
//! Three mechanisms make that composition real:
//!
//! - **Routing** ([`Router`]): a pure function from register id to server
//!   group — splitmix64-hashed shard choice, highest-random-weight group
//!   selection — identical across processes and restarts, pinned by golden
//!   tests.
//! - **Multiplexing** ([`Msg::ForRegister`](mwr_core::Msg)): one compact
//!   frame header carries the register id; every per-key client of a
//!   process shares *one* endpoint (one inbox, one set of per-peer TCP
//!   pipelines), so mixed-register backlog coalesces into single syscalls.
//! - **Per-register server state** ([`ServerBank`](mwr_core::ServerBank)):
//!   each server lazily instantiates an independent Algorithm 2 automaton
//!   per register, with per-register GC floors; crash recovery transfers
//!   state shard by shard, each shard requiring its own quorum.
//!
//! # Examples
//!
//! ```
//! use mwr_keyspace::Keyspace;
//! use mwr_types::{KeyspaceConfig, RegisterId, Value};
//!
//! // 5 servers, t = 1, groups of 3, 8 shards, 2 readers + 2 writers.
//! let config = KeyspaceConfig::new(5, 1, 3, 8, 2, 2)?;
//! let handle = Keyspace::new(config).in_memory()?;
//! let key = RegisterId::new(42);
//! let mut writer = handle.writer(0, key)?;
//! let mut reader = handle.reader(0, key)?;
//! let written = writer.write(Value::new(7))?;
//! assert_eq!(reader.read()?, written);
//! drop((writer, reader));
//! handle.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod handle;

pub use handle::{AnyKeyspaceHandle, KeyReader, KeyWriter, KeyspaceHandle};

// The vocabulary a keyspace user needs without naming the member crates.
pub use mwr_check::AuditReport;
pub use mwr_core::{Protocol, Router};
pub use mwr_register::{AuditConfig, OnViolation};
pub use mwr_runtime::{FaultEvent, FaultPlan, KeyspaceCluster, RetryPolicy, TransportError};
pub use mwr_types::{KeyspaceConfig, RegisterId};

use std::fmt;
use std::time::Duration;

use mwr_runtime::{InMemoryTransport, TcpRegistry};

/// Where a keyspace runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Crossbeam channels on threads — tests and examples.
    #[default]
    InMemory,
    /// Loopback TCP sockets with the length-prefixed wire codec.
    Tcp,
}

/// Why a keyspace could not be assembled or operated.
#[derive(Debug)]
pub enum KeyspaceError {
    /// The chosen protocol reads fast, but the *group* does not satisfy
    /// the paper's feasibility bound `t(R + 2) < g` — within a shard the
    /// group plays the role of `S`.
    FastReadInfeasible {
        /// Servers per shard group.
        group_size: usize,
        /// Tolerated faults.
        max_faults: usize,
        /// Configured readers.
        readers: usize,
    },
    /// A drive already opened every client endpoint (or clients were
    /// already minted), so the requested operation cannot share them.
    HandlesInUse,
    /// The transport failed (endpoint open, bind, or rejoin quorum).
    Transport(TransportError),
    /// A client operation failed during a drive.
    Runtime(mwr_runtime::RuntimeError),
    /// The audit sidecar thread could not be spawned.
    Audit(std::io::Error),
    /// A fault-plan conflict: an armed plan driven with the wrong drive,
    /// a chaos drive without a plan, or a plan that does not fit the
    /// configuration.
    Faults(&'static str),
}

impl fmt::Display for KeyspaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyspaceError::FastReadInfeasible { group_size, max_faults, readers } => write!(
                f,
                "fast reads infeasible inside a shard group: t(R+2) < g requires \
                 {max_faults}*({readers}+2) < {group_size}; pick W2R2/W2Ra or grow the group"
            ),
            KeyspaceError::HandlesInUse => {
                write!(f, "client endpoints are already in use by minted clients or a drive")
            }
            KeyspaceError::Transport(e) => write!(f, "transport: {e}"),
            KeyspaceError::Runtime(e) => write!(f, "runtime: {e}"),
            KeyspaceError::Audit(e) => write!(f, "audit sidecar: {e}"),
            KeyspaceError::Faults(reason) => write!(f, "fault plan: {reason}"),
        }
    }
}

impl std::error::Error for KeyspaceError {}

impl From<TransportError> for KeyspaceError {
    fn from(e: TransportError) -> Self {
        KeyspaceError::Transport(e)
    }
}

impl From<mwr_runtime::RuntimeError> for KeyspaceError {
    fn from(e: mwr_runtime::RuntimeError) -> Self {
        KeyspaceError::Runtime(e)
    }
}

/// Builder for a sharded keyspace deployment: what cluster, which
/// protocol inside each shard group, where it runs, and the client knobs
/// applied to every per-key client the handle mints.
///
/// ```text
/// Keyspace::new(config)            what cluster: S, t, g, shards, R, W
///     .protocol(p)                 W2R2 / W2R1 / W2Ra inside each group
///     .backend(Backend::Tcp)       where it runs
///     .audit(cfg) .timeout(..)     optional knobs
///     .retry(..)
///     .in_memory() / .tcp() / .deploy()
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Keyspace {
    config: KeyspaceConfig,
    protocol: Protocol,
    backend: Backend,
    audit: Option<AuditConfig>,
    timeout: Option<Duration>,
    retry: RetryPolicy,
    faults: Option<FaultPlan>,
}

impl Keyspace {
    /// Starts a blueprint for `config` with the adaptive [`Protocol::W2Ra`]
    /// (safe for any group size; reads go fast whenever their snapshots
    /// admit it) on the in-memory backend.
    pub fn new(config: KeyspaceConfig) -> Self {
        Keyspace {
            config,
            protocol: Protocol::W2Ra,
            backend: Backend::InMemory,
            audit: None,
            timeout: None,
            retry: RetryPolicy::default(),
            faults: None,
        }
    }

    /// Selects the protocol run inside each shard group.
    pub fn protocol(mut self, protocol: Protocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Selects the backend [`deploy`](Self::deploy) dispatches to.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Arms continuous linearizability auditing: one streaming auditor
    /// **per touched register** (atomicity is a per-register property),
    /// created lazily the first time a key's client is minted.
    pub fn audit(mut self, cfg: AuditConfig) -> Self {
        self.audit = Some(cfg);
        self
    }

    /// Applies a per-operation timeout to every client the handle mints.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Applies a bounded retry policy to every client the handle mints.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Arms the keyspace with a deterministic [`FaultPlan`]: when the
    /// handle is driven with
    /// [`KeyspaceHandle::run_chaos`](crate::KeyspaceHandle::run_chaos),
    /// an injector walks the plan in order — crashing servers, rejoining
    /// them through per-shard quorum state transfer, running churn
    /// bursts, and live joint-quorum reconfigurations — while the
    /// Zipf-keyed drive measures whether the keyed service held up.
    pub fn inject(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Validates the protocol against the *group* configuration: inside a
    /// shard the group plays the paper's `S`, so fast reads need
    /// `t(R + 2) < g`.
    fn validate(&self) -> Result<(), KeyspaceError> {
        let group = self.config.group_config();
        if self.protocol.read_mode() == mwr_core::ReadMode::Fast && !group.fast_read_feasible() {
            return Err(KeyspaceError::FastReadInfeasible {
                group_size: self.config.group_size(),
                max_faults: self.config.max_faults(),
                readers: self.config.readers(),
            });
        }
        if let Some(plan) = self.faults {
            if let Some(max) = plan.max_server() {
                if max as usize >= self.config.servers() {
                    return Err(KeyspaceError::Faults(
                        "the plan crashes or rejoins a server index outside the \
                         keyspace's configuration",
                    ));
                }
            }
            let churny =
                plan.steps().iter().any(|s| matches!(s.event, FaultEvent::ChurnBurst { .. }));
            if churny && self.config.readers() < 2 {
                return Err(KeyspaceError::Faults(
                    "churn bursts reserve the highest reader slot for short-lived \
                     clients; the configuration needs at least 2 readers so one \
                     stable reader remains",
                ));
            }
        }
        Ok(())
    }

    /// Deploys on in-memory channels.
    ///
    /// # Errors
    ///
    /// [`KeyspaceError::FastReadInfeasible`] if the protocol reads fast
    /// but the group bound fails; a [`KeyspaceError::Transport`] if an
    /// endpoint cannot be opened.
    pub fn in_memory(self) -> Result<KeyspaceHandle<InMemoryTransport>, KeyspaceError> {
        self.validate()?;
        let cluster =
            KeyspaceCluster::start_on(InMemoryTransport::new(), self.config, self.protocol)?;
        Ok(KeyspaceHandle::new(cluster, self.timeout, self.retry, self.audit, self.faults))
    }

    /// Deploys on loopback TCP.
    ///
    /// # Errors
    ///
    /// [`KeyspaceError::FastReadInfeasible`] if the protocol reads fast
    /// but the group bound fails; a [`KeyspaceError::Transport`] if a
    /// socket cannot be bound.
    pub fn tcp(self) -> Result<KeyspaceHandle<TcpRegistry>, KeyspaceError> {
        self.validate()?;
        let cluster = KeyspaceCluster::start_on(TcpRegistry::new(), self.config, self.protocol)?;
        Ok(KeyspaceHandle::new(cluster, self.timeout, self.retry, self.audit, self.faults))
    }

    /// Deploys on whichever backend the blueprint selected, for callers
    /// that dispatch at run time; statically-known backends should prefer
    /// [`in_memory`](Self::in_memory) / [`tcp`](Self::tcp).
    ///
    /// # Errors
    ///
    /// As the typed constructors.
    pub fn deploy(self) -> Result<AnyKeyspaceHandle, KeyspaceError> {
        match self.backend {
            Backend::InMemory => Ok(AnyKeyspaceHandle::InMemory(self.in_memory()?)),
            Backend::Tcp => Ok(AnyKeyspaceHandle::Tcp(self.tcp()?)),
        }
    }
}
