//! The deployed keyspace: per-key blocking clients over shared endpoints,
//! per-register audit sidecars, shard-aware fault injection, and the
//! Zipf-keyed open-loop drive.

use std::cell::Cell;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use mwr_check::AuditReport;
use mwr_register::{AuditConfig, AuditSidecar};
use mwr_runtime::{
    AuditTap, EndpointFactory, FaultPlan, InMemoryTransport, KeyspaceCluster, LiveReader,
    LiveWriter, RetryPolicy, TcpRegistry,
};
use mwr_types::{KeyspaceConfig, ReaderId, RegisterId, WriterId};
use mwr_workload::{
    run_keyspace_chaos, run_keyspace_open_loop_audited, ChaosReport, TapFor, ThroughputReport,
};

use crate::{KeyspaceError, Router};

/// A blocking writer for one key: the single-register [`LiveWriter`]
/// scoped to the key's shard group, over an endpoint shared with every
/// other per-key client of the same writer index.
pub type KeyWriter<E> = LiveWriter<Arc<E>>;

/// A blocking reader for one key, scoped and shared like [`KeyWriter`].
pub type KeyReader<E> = LiveReader<Arc<E>>;

/// The lazily-populated bank of per-register audit sidecars: atomicity is
/// a per-register property, so each touched key gets its own streaming
/// auditor, and all clients of that key (across writer/reader indices)
/// share its tap.
#[derive(Debug)]
struct AuditHub {
    cfg: AuditConfig,
    sidecars: Mutex<HashMap<RegisterId, AuditSidecar>>,
}

impl AuditHub {
    fn new(cfg: AuditConfig) -> Self {
        AuditHub { cfg, sidecars: Mutex::new(HashMap::new()) }
    }

    /// The tap for `key`'s register, spawning its sidecar on first touch.
    fn tap(&self, key: RegisterId) -> AuditTap {
        let mut sidecars = self.sidecars.lock().expect("audit hub poisoned");
        sidecars
            .entry(key)
            .or_insert_with(|| {
                AuditSidecar::spawn(self.cfg).expect("failed to spawn audit sidecar thread")
            })
            .tap()
            .clone()
    }

    /// Joins every sidecar and collects the per-register verdicts.
    fn finish(self) -> BTreeMap<RegisterId, AuditReport> {
        self.sidecars
            .into_inner()
            .expect("audit hub poisoned")
            .into_iter()
            .map(|(key, sidecar)| (key, sidecar.finish()))
            .collect()
    }
}

/// A deployed keyspace on a live backend: servers running one
/// [`ServerBank`](mwr_core::ServerBank) each, per-key blocking clients on
/// demand.
///
/// Obtained from [`Keyspace::in_memory`](crate::Keyspace::in_memory) or
/// [`Keyspace::tcp`](crate::Keyspace::tcp). Client endpoints are opened
/// once per writer/reader index and shared (`Arc`) across every key that
/// index touches, so a process talking to 64 keys still runs one inbox
/// and one set of per-peer connections.
#[derive(Debug)]
pub struct KeyspaceHandle<F: EndpointFactory> {
    cluster: KeyspaceCluster<F>,
    timeout: Option<Duration>,
    retry: RetryPolicy,
    audit: Option<AuditHub>,
    faults: Option<FaultPlan>,
    writer_eps: Mutex<HashMap<u32, Arc<F::Endpoint>>>,
    reader_eps: Mutex<HashMap<u32, Arc<F::Endpoint>>>,
    /// Whether a client was minted — the open-loop drive opens every
    /// client endpoint itself, so it refuses to run afterwards.
    minted: Cell<bool>,
    /// Whether a drive ran — it consumed every client endpoint, so later
    /// minting (or a second drive) is refused.
    driven: Cell<bool>,
}

impl<F: EndpointFactory> KeyspaceHandle<F> {
    pub(crate) fn new(
        cluster: KeyspaceCluster<F>,
        timeout: Option<Duration>,
        retry: RetryPolicy,
        audit: Option<AuditConfig>,
        faults: Option<FaultPlan>,
    ) -> Self {
        KeyspaceHandle {
            cluster,
            timeout,
            retry,
            audit: audit.map(AuditHub::new),
            faults,
            writer_eps: Mutex::new(HashMap::new()),
            reader_eps: Mutex::new(HashMap::new()),
            minted: Cell::new(false),
            driven: Cell::new(false),
        }
    }

    /// The keyspace configuration.
    pub fn config(&self) -> KeyspaceConfig {
        self.cluster.config()
    }

    /// The deterministic register → shard → group router.
    pub fn router(&self) -> &Router {
        self.cluster.router()
    }

    /// The underlying keyspace cluster, for transport-level access.
    pub fn cluster(&self) -> &KeyspaceCluster<F> {
        &self.cluster
    }

    /// Creates writer `idx`'s blocking client for `key`, scoped to the
    /// key's shard group, with the deployment's timeout/retry/audit knobs
    /// applied. Clients of the same index share one endpoint across keys.
    ///
    /// Mint at most one live client per `(idx, key)` pair at a time: two
    /// concurrent clients with the same identity on the same register
    /// would collide on their operation sequence numbers.
    ///
    /// # Errors
    ///
    /// [`KeyspaceError::HandlesInUse`] after a drive consumed the client
    /// endpoints; [`KeyspaceError::Transport`] if the endpoint cannot be
    /// opened.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range for the configuration.
    pub fn writer(&self, idx: u32, key: RegisterId) -> Result<KeyWriter<F::Endpoint>, KeyspaceError> {
        if self.driven.get() {
            return Err(KeyspaceError::HandlesInUse);
        }
        assert!((idx as usize) < self.config().writers(), "writer {idx} out of range");
        let ep = {
            let mut eps = self.writer_eps.lock().expect("endpoint cache poisoned");
            match eps.entry(idx) {
                std::collections::hash_map::Entry::Occupied(e) => Arc::clone(e.get()),
                std::collections::hash_map::Entry::Vacant(v) => {
                    let ep = Arc::new(self.cluster.factory().open(WriterId::new(idx).into())?);
                    Arc::clone(v.insert(ep))
                }
            }
        };
        self.minted.set(true);
        let mut writer = LiveWriter::new(
            ep,
            WriterId::new(idx),
            self.config().group_config(),
            self.cluster.protocol().write_mode(),
        )
        .with_scope(key, self.router().group_of(key))
        .with_view(self.cluster.view())
        .with_retry(self.retry);
        if let Some(t) = self.timeout {
            writer = writer.with_timeout(t);
        }
        if let Some(hub) = &self.audit {
            writer = writer.with_tap(hub.tap(key));
        }
        Ok(writer)
    }

    /// Creates reader `idx`'s blocking client for `key` — the reader-side
    /// mirror of [`writer`](Self::writer), same sharing and same
    /// one-client-per-`(idx, key)` rule.
    ///
    /// # Errors
    ///
    /// [`KeyspaceError::HandlesInUse`] after a drive consumed the client
    /// endpoints; [`KeyspaceError::Transport`] if the endpoint cannot be
    /// opened.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range for the configuration.
    pub fn reader(&self, idx: u32, key: RegisterId) -> Result<KeyReader<F::Endpoint>, KeyspaceError> {
        if self.driven.get() {
            return Err(KeyspaceError::HandlesInUse);
        }
        assert!((idx as usize) < self.config().readers(), "reader {idx} out of range");
        let ep = {
            let mut eps = self.reader_eps.lock().expect("endpoint cache poisoned");
            match eps.entry(idx) {
                std::collections::hash_map::Entry::Occupied(e) => Arc::clone(e.get()),
                std::collections::hash_map::Entry::Vacant(v) => {
                    let ep = Arc::new(self.cluster.factory().open(ReaderId::new(idx).into())?);
                    Arc::clone(v.insert(ep))
                }
            }
        };
        self.minted.set(true);
        let mut reader = LiveReader::new(
            ep,
            ReaderId::new(idx),
            self.config().group_config(),
            self.cluster.protocol().read_mode(),
        )
        .with_scope(key, self.router().group_of(key))
        .with_view(self.cluster.view())
        .with_retry(self.retry);
        if let Some(t) = self.timeout {
            reader = reader.with_timeout(t);
        }
        if let Some(hub) = &self.audit {
            reader = reader.with_tap(hub.tap(key));
        }
        Ok(reader)
    }

    /// Crashes server `idx`: its bank thread stops and its endpoint leaves
    /// the delivery map — every shard it served loses one group member.
    ///
    /// # Panics
    ///
    /// Panics if the server was already crashed.
    pub fn crash_server(&mut self, idx: u32) {
        self.cluster.crash_server(idx);
    }

    /// Rejoins crashed server `idx` through per-shard quorum state
    /// transfer: one fetch round per shard the router assigns it, each
    /// requiring `g − t` surviving group members, with the rebuilt bank
    /// serving nothing until every shard's transfer lands.
    ///
    /// # Errors
    ///
    /// [`KeyspaceError::Transport`] if any shard's quorum does not answer
    /// (the rejoin is refused and can be retried).
    ///
    /// # Panics
    ///
    /// Panics if server `idx` is currently running.
    pub fn rejoin_server(&mut self, idx: u32) -> Result<(), KeyspaceError> {
        Ok(self.cluster.rejoin_server(idx)?)
    }

    /// The indices of currently-running servers, ascending.
    pub fn live_servers(&self) -> Vec<u32> {
        self.cluster.live_servers()
    }

    /// The current member servers, ascending — differs from the original
    /// configuration after a [`reconfigure`](Self::reconfigure).
    pub fn members(&self) -> Vec<u32> {
        self.cluster.members()
    }

    /// Reconfigures the live server set: adds `add` fresh servers and
    /// retires the servers in `remove` through the per-shard joint-quorum
    /// handover (announce → joint window → shard-by-shard state transfer
    /// to every server the new routing promotes → commit) while minted
    /// per-key clients keep serving — they watch the cluster view and
    /// re-derive their shard groups when the config epoch moves. Returns
    /// the added servers' ids.
    ///
    /// # Errors
    ///
    /// [`KeyspaceError::Transport`] if the handover is refused (a shard's
    /// transfer quorum did not answer within the window) — the keyspace
    /// rolls forward to a stable epoch over the unchanged member set and
    /// can be retried.
    ///
    /// # Panics
    ///
    /// Panics if `remove` names a non-member, if the change is empty, or
    /// if the resulting shape would not fit shard groups.
    pub fn reconfigure(&mut self, add: usize, remove: &[u32]) -> Result<Vec<u32>, KeyspaceError> {
        Ok(self.cluster.reconfigure(add, remove)?)
    }

    /// Drives the keyspace open-loop for `duration`: every configured
    /// reader and writer issues back-to-back operations with keys drawn
    /// Zipf(`zipf`) from `keys` registers (see
    /// [`mwr_workload::run_keyspace_open_loop`]). On an audited handle
    /// every touched register is checked by its own streaming auditor.
    ///
    /// # Errors
    ///
    /// [`KeyspaceError::HandlesInUse`] if clients were already minted or a
    /// drive already ran; otherwise the first client's failure.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is zero.
    pub fn run_open_loop(
        &self,
        keys: usize,
        zipf: f64,
        duration: Duration,
        seed: u64,
    ) -> Result<ThroughputReport, KeyspaceError> {
        if self.minted.get() || self.driven.get() {
            return Err(KeyspaceError::HandlesInUse);
        }
        if self.faults.is_some() {
            return Err(KeyspaceError::Faults(
                "a fault plan is armed; drive it with run_chaos, which owns the \
                 cluster mutably and reports what the plan did",
            ));
        }
        self.driven.set(true);
        let tap_closure = self.audit.as_ref().map(|hub| move |key: RegisterId| hub.tap(key));
        let tap_for: Option<TapFor<'_>> =
            tap_closure.as_ref().map(|c| c as &(dyn Fn(RegisterId) -> AuditTap + Sync));
        Ok(run_keyspace_open_loop_audited(
            &self.cluster,
            keys,
            zipf,
            self.timeout,
            self.retry,
            duration,
            seed,
            tap_for,
        )?)
    }

    /// Drives the keyspace open-loop for `duration` while executing the
    /// armed [`FaultPlan`] against the cluster (see
    /// [`mwr_workload::run_keyspace_chaos`]): crashes, per-shard rejoins,
    /// churn bursts, and live joint-quorum reconfigurations fire at their
    /// scheduled op-counts or times while Zipf-keyed clients keep
    /// serving. On an audited handle every touched register is checked by
    /// its own streaming auditor throughout.
    ///
    /// # Errors
    ///
    /// [`KeyspaceError::Faults`] if no plan is armed;
    /// [`KeyspaceError::HandlesInUse`] if clients were already minted or
    /// a drive already ran; otherwise a setup failure. Operation failures
    /// during the drive are counted in the report, never returned.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is zero.
    pub fn run_chaos(
        &mut self,
        keys: usize,
        zipf: f64,
        duration: Duration,
        seed: u64,
    ) -> Result<ChaosReport, KeyspaceError> {
        if self.minted.get() || self.driven.get() {
            return Err(KeyspaceError::HandlesInUse);
        }
        let Some(plan) = self.faults else {
            return Err(KeyspaceError::Faults(
                "no fault plan armed; arm one with Keyspace::inject before run_chaos",
            ));
        };
        self.driven.set(true);
        let tap_closure = self.audit.as_ref().map(|hub| move |key: RegisterId| hub.tap(key));
        let tap_for: Option<TapFor<'_>> =
            tap_closure.as_ref().map(|c| c as &(dyn Fn(RegisterId) -> AuditTap + Sync));
        Ok(run_keyspace_chaos(
            &mut self.cluster,
            keys,
            zipf,
            self.timeout,
            self.retry,
            plan,
            duration,
            seed,
            tap_for,
        )?)
    }

    /// Shuts down all remaining servers; returns total requests handled.
    /// On an audited handle this discards the verdicts — use
    /// [`shutdown_audited`](Self::shutdown_audited) to collect them.
    pub fn shutdown(self) -> u64 {
        self.cluster.shutdown()
    }

    /// Shuts down all remaining servers and collects every touched
    /// register's final [`AuditReport`] (empty map if the keyspace was not
    /// armed with [`Keyspace::audit`](crate::Keyspace::audit) or no key
    /// was touched).
    ///
    /// Joining a register's sidecar requires every tap clone to be gone:
    /// drop all minted clients before calling, or the join blocks until
    /// they drop.
    pub fn shutdown_audited(self) -> (u64, BTreeMap<RegisterId, AuditReport>) {
        let KeyspaceHandle { cluster, audit, writer_eps, reader_eps, .. } = self;
        // Cached endpoints hold no taps, but drop them before the join
        // anyway: a lingering endpoint on TCP keeps connections alive that
        // the shutdown would otherwise tear down promptly.
        drop(writer_eps);
        drop(reader_eps);
        let reports = audit.map(AuditHub::finish).unwrap_or_default();
        (cluster.shutdown(), reports)
    }
}

/// A deployed keyspace on whichever backend the blueprint selected — the
/// result of [`Keyspace::deploy`](crate::Keyspace::deploy), for callers
/// that dispatch over backends at run time.
#[derive(Debug)]
pub enum AnyKeyspaceHandle {
    /// The in-memory live backend.
    InMemory(KeyspaceHandle<InMemoryTransport>),
    /// The TCP live backend.
    Tcp(KeyspaceHandle<TcpRegistry>),
}

impl AnyKeyspaceHandle {
    /// The deployed backend's name.
    pub fn backend_name(&self) -> &'static str {
        match self {
            AnyKeyspaceHandle::InMemory(_) => "in-memory",
            AnyKeyspaceHandle::Tcp(_) => "tcp",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Backend, Keyspace, Protocol};
    use mwr_types::Value;

    #[test]
    fn per_key_clients_share_endpoints_and_stay_isolated() {
        let config = KeyspaceConfig::new(5, 1, 3, 8, 1, 1).unwrap();
        let handle = Keyspace::new(config).in_memory().unwrap();
        let (k1, k2) = (RegisterId::new(1), RegisterId::new(9));
        let mut w1 = handle.writer(0, k1).unwrap();
        let mut w2 = handle.writer(0, k2).unwrap();
        let mut r1 = handle.reader(0, k1).unwrap();
        let mut r2 = handle.reader(0, k2).unwrap();
        let v1 = w1.write(Value::new(100)).unwrap();
        let v2 = w2.write(Value::new(200)).unwrap();
        assert_eq!(r1.read().unwrap(), v1, "k1 sees its own write");
        assert_eq!(r2.read().unwrap(), v2, "k2 sees its own write");
        assert_eq!(r1.read().unwrap().value(), Value::new(100), "no cross-key bleed");
        drop((w1, w2, r1, r2));
        assert!(handle.shutdown() > 0);
    }

    #[test]
    fn audited_drive_reports_per_register_verdicts() {
        let config = KeyspaceConfig::new(5, 1, 3, 8, 2, 2).unwrap();
        let handle = Keyspace::new(config)
            .audit(AuditConfig::default())
            .in_memory()
            .unwrap();
        let report = handle
            .run_open_loop(8, 1.1, Duration::from_millis(40), 7)
            .unwrap();
        assert!(report.ops() > 0);
        let (_handled, verdicts) = handle.shutdown_audited();
        assert!(!verdicts.is_empty(), "at least the hot keys were audited");
        for (key, report) in &verdicts {
            assert!(report.verdict.is_ok(), "register {key} not atomic: {report}");
            assert!(report.stats.audited > 0, "register {key} audited no ops");
        }
    }

    #[test]
    fn drive_refuses_after_minting_and_vice_versa() {
        let config = KeyspaceConfig::new(3, 1, 3, 4, 1, 1).unwrap();
        let handle = Keyspace::new(config).in_memory().unwrap();
        let _w = handle.writer(0, RegisterId::new(0)).unwrap();
        assert!(matches!(
            handle.run_open_loop(4, 1.1, Duration::from_millis(5), 1),
            Err(KeyspaceError::HandlesInUse)
        ));
        drop(_w);
        handle.shutdown();

        let config = KeyspaceConfig::new(3, 1, 3, 4, 1, 1).unwrap();
        let handle = Keyspace::new(config).in_memory().unwrap();
        handle.run_open_loop(4, 1.1, Duration::from_millis(5), 1).unwrap();
        assert!(matches!(
            handle.writer(0, RegisterId::new(0)),
            Err(KeyspaceError::HandlesInUse)
        ));
        handle.shutdown();
    }

    #[test]
    fn armed_fault_plans_run_through_run_chaos_only() {
        let config = KeyspaceConfig::new(5, 1, 3, 8, 2, 1).unwrap();
        let keyspace = Keyspace::new(config)
            .timeout(Duration::from_secs(2))
            .retry(RetryPolicy { attempts: 4, backoff: Duration::from_millis(2) })
            .inject(FaultPlan::reconfigure(2, 2, 20));
        // The plain drive refuses an armed plan instead of ignoring it.
        let handle = keyspace.in_memory().unwrap();
        assert!(matches!(
            handle.run_open_loop(8, 1.1, Duration::from_millis(5), 1),
            Err(KeyspaceError::Faults(_))
        ));
        handle.shutdown();
        // run_chaos executes the handover while keys keep serving.
        let mut handle = keyspace.in_memory().unwrap();
        let report = handle.run_chaos(8, 1.1, Duration::from_millis(400), 42).unwrap();
        assert_eq!(report.reconfigs, 1, "{report:?}");
        assert!(report.healed(), "{report:?}");
        assert_eq!(handle.members(), vec![2, 3, 4, 5, 6]);
        handle.shutdown();
        // And an unarmed handle refuses run_chaos.
        let mut handle = Keyspace::new(config).in_memory().unwrap();
        assert!(matches!(
            handle.run_chaos(8, 1.1, Duration::from_millis(5), 1),
            Err(KeyspaceError::Faults(_))
        ));
        handle.shutdown();
    }

    #[test]
    fn handle_reconfigure_keeps_minted_clients_serving() {
        let config = KeyspaceConfig::new(5, 1, 3, 8, 1, 1).unwrap();
        let mut handle = Keyspace::new(config)
            .timeout(Duration::from_secs(2))
            .retry(RetryPolicy { attempts: 4, backoff: Duration::from_millis(2) })
            .in_memory()
            .unwrap();
        let (k1, k2) = (RegisterId::new(1), RegisterId::new(9));
        let mut w1 = handle.writer(0, k1).unwrap();
        let mut r1 = handle.reader(0, k1).unwrap();
        let mut r2 = handle.reader(0, k2).unwrap();
        let mut w2 = handle.writer(0, k2).unwrap();
        let v1 = w1.write(Value::new(100)).unwrap();
        let v2 = w2.write(Value::new(200)).unwrap();
        drop((w1, w2));
        let added = handle.reconfigure(2, &[0, 1]).unwrap();
        assert_eq!(added, vec![5, 6]);
        assert_eq!(handle.members(), vec![2, 3, 4, 5, 6]);
        // Pre-handover readers keep serving their keys, with no bleed.
        assert_eq!(r1.read().unwrap(), v1, "k1 survives the handover");
        assert_eq!(r2.read().unwrap(), v2, "k2 survives the handover");
        drop((r1, r2));
        handle.shutdown();
    }

    #[test]
    fn fault_plans_are_validated_against_the_configuration() {
        // Plan indices must fit the server count (S = 3 here).
        let config = KeyspaceConfig::new(3, 1, 3, 4, 2, 1).unwrap();
        assert!(matches!(
            Keyspace::new(config)
                .inject(FaultPlan::rolling_restart(5, 10))
                .in_memory(),
            Err(KeyspaceError::Faults(_))
        ));
        // Churn bursts need a reserved reader slot plus a stable reader.
        let one_reader = KeyspaceConfig::new(3, 1, 3, 4, 1, 1).unwrap();
        assert!(matches!(
            Keyspace::new(one_reader)
                .inject(FaultPlan::churn_storm(5, 1, 5))
                .in_memory(),
            Err(KeyspaceError::Faults(_))
        ));
    }

    #[test]
    fn fast_read_protocol_is_validated_against_the_group() {
        // g = 3, t = 1, R = 8: 1 * (8 + 2) >= 3 — W2R1 must be refused.
        let config = KeyspaceConfig::new(5, 1, 3, 8, 8, 2).unwrap();
        assert!(matches!(
            Keyspace::new(config).protocol(Protocol::W2R1).in_memory(),
            Err(KeyspaceError::FastReadInfeasible { .. })
        ));
        // The whole cluster as one group restores feasibility: 10 < 11.
        let config = KeyspaceConfig::new(11, 1, 11, 8, 8, 2).unwrap();
        let handle = Keyspace::new(config).protocol(Protocol::W2R1).in_memory().unwrap();
        handle.shutdown();
    }

    #[test]
    fn deploy_dispatches_on_the_backend_knob() {
        let config = KeyspaceConfig::new(3, 1, 3, 4, 1, 1).unwrap();
        let any = Keyspace::new(config).backend(Backend::Tcp).deploy().unwrap();
        assert_eq!(any.backend_name(), "tcp");
        match any {
            AnyKeyspaceHandle::Tcp(handle) => {
                let key = RegisterId::new(2);
                let mut w = handle.writer(0, key).unwrap();
                let mut r = handle.reader(0, key).unwrap();
                let written = w.write(Value::new(5)).unwrap();
                assert_eq!(r.read().unwrap(), written);
                drop((w, r));
                handle.shutdown();
            }
            AnyKeyspaceHandle::InMemory(_) => unreachable!("tcp was selected"),
        }
    }
}
