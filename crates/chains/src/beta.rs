//! Phase 2: chains β′, β″ and β (paper §3.3).
//!
//! Chain β′ extends `α_{i1−1}` with the second read `R2`: the four read
//! round-trips are non-concurrent in the order `R1(1), R2(1), R1(2), R2(2)`
//! on all servers. `β′_k` swaps `R1(2)` and `R2(2)` on servers `s_1 … s_k`.
//! Chain β″ does the same starting from `α_{i1}`.
//!
//! Chain β is the chosen candidate (β′ or β″, depending on `R2`'s return
//! value in the modified tails) with `R2` (both round-trips) skipping the
//! critical server `s_{i1}` in *every* execution.

use crate::alpha::append_writes;
use crate::exec::{Arrival, Execution, Reader};

/// Which α execution a β chain stems from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stem {
    /// Stem from `α_{i1−1}` (chain β′): `R1` returns 2 there.
    Prev,
    /// Stem from `α_{i1}` (chain β″): `R1` returns 1 there.
    At,
}

impl Stem {
    /// How many servers have swapped writes in the stem, given the critical
    /// index `i1` (1-based).
    fn swapped(self, i1: usize) -> usize {
        match self {
            Stem::Prev => i1 - 1,
            Stem::At => i1,
        }
    }

    /// The value `R1` returns in the stem α execution, under the premise
    /// that the critical flip is at `i1`.
    pub fn r1_value(self) -> u8 {
        match self {
            Stem::Prev => 2,
            Stem::At => 1,
        }
    }
}

/// Builds `β′_k` / `β″_k` (per `stem`) **without** the critical-server
/// skip: `R2` is skip-free. Used to define the candidate chains.
///
/// `i1` is 1-based (the critical server is `s_{i1}`, index `i1 − 1`);
/// `k ∈ 0..=servers` is how many servers have the second rounds swapped.
///
/// # Panics
///
/// Panics if `i1` is not in `1..=servers` or `k > servers`.
pub fn beta_candidate(servers: usize, i1: usize, stem: Stem, k: usize) -> Execution {
    build_beta(servers, i1, stem, k, false)
}

/// Builds `β_k`: the chosen candidate with `R2` (both round-trips)
/// skipping the critical server `s_{i1}` (paper §3.3, the modification
/// that makes the two candidate tails indistinguishable to `R2`).
///
/// # Panics
///
/// Panics if `i1` is not in `1..=servers` or `k > servers`.
///
/// # Examples
///
/// ```
/// use mwr_chains::{beta, Reader, Stem};
///
/// // The two modified tails differ only in the write order on the skipped
/// // critical server — R2 cannot tell them apart.
/// let t1 = beta(4, 2, Stem::Prev, 4);
/// let t2 = beta(4, 2, Stem::At, 4);
/// assert!(t1.indistinguishable_to(&t2, Reader::R2));
/// assert!(!t1.same_logs(&t2));
/// ```
pub fn beta(servers: usize, i1: usize, stem: Stem, k: usize) -> Execution {
    build_beta(servers, i1, stem, k, true)
}

fn build_beta(servers: usize, i1: usize, stem: Stem, k: usize, skip_critical: bool) -> Execution {
    assert!((1..=servers).contains(&i1), "critical index {i1} out of range");
    assert!(k <= servers, "swap index {k} out of range");
    let critical = i1 - 1; // 0-based server index
    let r2_skips: Vec<usize> = if skip_critical { vec![critical] } else { vec![] };

    let name = match (stem, skip_critical) {
        (Stem::Prev, false) => format!("β'_{k}[i1={i1}]"),
        (Stem::At, false) => format!("β''_{k}[i1={i1}]"),
        (Stem::Prev, true) => format!("β_{k}[i1={i1},β']"),
        (Stem::At, true) => format!("β_{k}[i1={i1},β'']"),
    };
    let mut e = Execution::new(servers, name);
    append_writes(&mut e, stem.swapped(i1));
    e.append_all(Arrival::Read(Reader::R1, 1), &[]);
    e.append_all(Arrival::Read(Reader::R2, 1), &r2_skips);
    e.append_all(Arrival::Read(Reader::R1, 2), &[]);
    e.append_all(Arrival::Read(Reader::R2, 2), &r2_skips);
    // Swap the second rounds on servers s_1 … s_k (vacuous on the skipped
    // critical server, where R2(2) is absent).
    for s in 0..k {
        if e.arrives_at(s, Arrival::Read(Reader::R2, 2)) {
            e.swap_on_server(s, Arrival::Read(Reader::R1, 2), Arrival::Read(Reader::R2, 2));
        }
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alpha::alpha;

    #[test]
    fn beta_head_is_indistinguishable_from_its_stem_for_r1() {
        // The §3 assumption (first rounds invisible) makes R1's views in
        // β_0 equal to those in the stem α execution: R2(1) is filtered
        // and R2(2) arrives after R1(2) everywhere.
        for servers in 3..=5 {
            for i1 in 1..=servers {
                let b0 = beta(servers, i1, Stem::Prev, 0);
                let a_prev = alpha(servers, i1 - 1);
                assert!(
                    b0.indistinguishable_to(&a_prev, Reader::R1),
                    "β_0 vs α_{} at S={servers}",
                    i1 - 1
                );
                let b0 = beta(servers, i1, Stem::At, 0);
                let a_at = alpha(servers, i1);
                assert!(b0.indistinguishable_to(&a_at, Reader::R1));
            }
        }
    }

    #[test]
    fn candidate_chain_swaps_one_server_at_a_time() {
        let servers = 4;
        let i1 = 2;
        for k in 1..=servers {
            let prev = beta_candidate(servers, i1, Stem::Prev, k - 1);
            let next = beta_candidate(servers, i1, Stem::Prev, k);
            let diffs: Vec<usize> =
                (0..servers).filter(|&s| prev.log(s) != next.log(s)).collect();
            assert_eq!(diffs, vec![k - 1]);
        }
    }

    #[test]
    fn modified_tails_are_r2_indistinguishable_for_all_critical_servers() {
        for servers in 3..=6 {
            for i1 in 1..=servers {
                let t1 = beta(servers, i1, Stem::Prev, servers);
                let t2 = beta(servers, i1, Stem::At, servers);
                assert!(
                    t1.indistinguishable_to(&t2, Reader::R2),
                    "tails at S={servers}, i1={i1}"
                );
            }
        }
    }

    #[test]
    fn r2_never_arrives_at_the_critical_server() {
        let e = beta(5, 3, Stem::Prev, 2);
        assert!(!e.arrives_at(2, Arrival::Read(Reader::R2, 1)));
        assert!(!e.arrives_at(2, Arrival::Read(Reader::R2, 2)));
        assert!(e.arrives_at(2, Arrival::Read(Reader::R1, 2)));
    }

    #[test]
    fn writes_precede_reads_throughout_chain_beta() {
        for k in 0..=4 {
            assert!(beta(4, 2, Stem::Prev, k).writes_precede_reads());
        }
    }

    #[test]
    fn when_critical_server_is_within_swaps_the_swap_is_vacuous() {
        // β_k and β_{k+1} are log-identical when the (k+1)-th server is the
        // critical one (R2(2) is absent there, nothing to swap).
        let servers = 4;
        let i1 = 3; // critical index, 0-based server 2
        let bk = beta(servers, i1, Stem::Prev, 2);
        let bk1 = beta(servers, i1, Stem::Prev, 3);
        assert!(bk.same_logs(&bk1));
    }

    #[test]
    #[should_panic(expected = "critical index")]
    fn beta_rejects_bad_critical_index() {
        let _ = beta(3, 0, Stem::Prev, 0);
    }
}
