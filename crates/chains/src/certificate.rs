//! The complete W1R2 impossibility certificate (Theorem 1).
//!
//! Structure of the mechanized argument, mirroring the paper's three
//! phases:
//!
//! 1. **Chain α** (§3.2): `R1` is forced to return 2 in `α_0`
//!    (`W1 ≺ W2 ≺ R1` sequential) and 1 in `α_S` (log-identical to the
//!    tail `W2 ≺ W1 ≺ R1` — verified). Therefore *any* implementation has
//!    a critical flip index `i1` with `R1(α_{i1−1}) = 2` and
//!    `R1(α_{i1}) = 1`.
//! 2. **Chain β** (§3.3): for the flip index, the two candidate tails with
//!    `R2` skipping `s_{i1}` are view-equal for `R2` (verified), so `R2`
//!    returns one common value `x` in both. Choosing the candidate chain
//!    whose head value differs from `x` (β′ when `x = 1`, β″ when `x = 2`)
//!    pins different values at the two ends of chain β — the head value
//!    transfers from the stem by `R1` view-equality (verified).
//! 3. **Zigzag Z** (§3.4): every horizontal and diagonal link is verified
//!    by view-equality, so the common read value is constant along
//!    `β_0 ≈ γ_0 ≈ β_1 ≈ … ≈ β_S` — contradicting step 2.
//!
//! Because `i1` and `x` are algorithm-dependent, the certificate verifies
//! **all** `i1 ∈ 1..=S` × `x ∈ {1, 2}` cases; every deterministic W1R2
//! implementation falls into one of them. The views are computed in the
//! full-info model with other readers' first round-trips filtered (the §3
//! assumption); the [`sieve`](crate::sieve) module mechanizes §4's argument
//! that this assumption is dischargeable.

use std::fmt;

use crate::alpha::{alpha, alpha_tail, ALPHA_HEAD_FORCED, ALPHA_TAIL_FORCED};
use crate::beta::{beta, Stem};
use crate::exec::Reader;
use crate::zigzag::{verify_step, Link, LinkError};

/// One verified case of the certificate: a candidate flip index `i1` and a
/// candidate common tail value `x`.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// The candidate critical server index (1-based).
    pub i1: usize,
    /// The candidate common return value of `R2` in the modified tails.
    pub tail_value: u8,
    /// Which α execution the chosen chain stems from.
    pub stem: Stem,
    /// The value forced at the head of chain β.
    pub head_value: u8,
    /// All verified links, in chain order.
    pub links: Vec<Link>,
}

impl fmt::Display for CaseReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "i1={}, x={} ⇒ chain {} pinned to head={} vs tail={} across {} verified links — contradiction",
            self.i1,
            self.tail_value,
            match self.stem {
                Stem::Prev => "β'",
                Stem::At => "β''",
            },
            self.head_value,
            self.tail_value,
            self.links.len(),
        )
    }
}

/// Errors raised while assembling the certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertificateError {
    /// The theorem's setting needs at least three servers (§3.1 considers
    /// `S ≥ 3`; `S = 2` with `t = 1` is trivial).
    TooFewServers {
        /// The offending count.
        servers: usize,
    },
    /// `α_S` was not log-identical to the tail execution.
    AlphaTailMismatch,
    /// The head of a β chain was distinguishable from its stem for `R1`.
    HeadTransferFailed {
        /// The case's flip index.
        i1: usize,
        /// The stem that failed.
        stem: Stem,
    },
    /// The two modified tails were distinguishable for `R2`.
    TailsDistinguishable {
        /// The case's flip index.
        i1: usize,
    },
    /// A zigzag link failed.
    Link(LinkError),
    /// An execution broke the writes-before-reads invariant that forces
    /// the two reads to agree.
    ReadsNotForcedEqual {
        /// The offending execution's name.
        execution: String,
    },
}

impl fmt::Display for CertificateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertificateError::TooFewServers { servers } => {
                write!(f, "certificate needs S ≥ 3, got {servers}")
            }
            CertificateError::AlphaTailMismatch => {
                write!(f, "α_S is not log-identical to the tail execution")
            }
            CertificateError::HeadTransferFailed { i1, stem } => {
                write!(f, "R1 can distinguish β_0 from its stem (i1={i1}, {stem:?})")
            }
            CertificateError::TailsDistinguishable { i1 } => {
                write!(f, "R2 can distinguish the modified tails (i1={i1})")
            }
            CertificateError::Link(e) => write!(f, "{e}"),
            CertificateError::ReadsNotForcedEqual { execution } => {
                write!(f, "writes do not precede reads in {execution}")
            }
        }
    }
}

impl std::error::Error for CertificateError {}

impl From<LinkError> for CertificateError {
    fn from(e: LinkError) -> Self {
        CertificateError::Link(e)
    }
}

/// The verified certificate: Theorem 1 for a concrete number of servers.
#[derive(Debug, Clone)]
pub struct W1R2Certificate {
    /// Number of servers the chains were built over.
    pub servers: usize,
    /// The forced endpoint values of chain α.
    pub alpha_endpoints: (u8, u8),
    /// One verified case per `(i1, x)` pair.
    pub cases: Vec<CaseReport>,
}

impl W1R2Certificate {
    /// Total number of view-equality/log-identity checks performed.
    pub fn total_links(&self) -> usize {
        self.cases.iter().map(|c| c.links.len()).sum()
    }
}

impl fmt::Display for W1R2Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "W1R2 impossibility certificate, S = {} (W = 2, R = 2, t = 1)",
            self.servers
        )?;
        writeln!(
            f,
            "chain α endpoints forced: R1(α_0) = {}, R1(α_S) = {} ⇒ a critical flip exists",
            self.alpha_endpoints.0, self.alpha_endpoints.1
        )?;
        for case in &self.cases {
            writeln!(f, "  case {case}")?;
        }
        writeln!(
            f,
            "all {} cases contradict; no fast-write atomic implementation exists",
            self.cases.len()
        )
    }
}

/// Builds and verifies the full impossibility certificate for a system of
/// `servers` servers (`W = 2`, `R = 2`, `t = 1`, as in the paper's proof
/// setting — sufficient for the general theorem).
///
/// # Errors
///
/// Returns a [`CertificateError`] if any claimed indistinguishability fails
/// to verify — which would falsify the construction. The test suite runs
/// this for `S ∈ 3..=8`.
///
/// # Examples
///
/// ```
/// use mwr_chains::verify_w1r2_impossibility;
///
/// let cert = verify_w1r2_impossibility(3)?;
/// assert_eq!(cert.cases.len(), 6); // 3 flip positions × 2 tail values
/// assert!(cert.total_links() > 0);
/// # Ok::<(), mwr_chains::CertificateError>(())
/// ```
pub fn verify_w1r2_impossibility(servers: usize) -> Result<W1R2Certificate, CertificateError> {
    if servers < 3 {
        return Err(CertificateError::TooFewServers { servers });
    }

    // Phase 1 endpoints: α_S ≡ tail.
    if !alpha(servers, servers).same_logs(&alpha_tail(servers)) {
        return Err(CertificateError::AlphaTailMismatch);
    }

    let mut cases = Vec::new();
    for i1 in 1..=servers {
        // The modified tails must be R2-indistinguishable, so R2 returns
        // one common value x in both.
        let tail_prev = beta(servers, i1, Stem::Prev, servers);
        let tail_at = beta(servers, i1, Stem::At, servers);
        if !tail_prev.indistinguishable_to(&tail_at, Reader::R2) {
            return Err(CertificateError::TailsDistinguishable { i1 });
        }

        for tail_value in [1u8, 2u8] {
            // Choose the candidate whose head value differs from x.
            let stem = if tail_value == 1 { Stem::Prev } else { Stem::At };
            let head_value = stem.r1_value();
            debug_assert_ne!(head_value, tail_value);

            // Head transfer: R1 cannot distinguish β_0 from its stem.
            let b0 = beta(servers, i1, stem, 0);
            let stem_exec = alpha(servers, i1 - (if stem == Stem::Prev { 1 } else { 0 }));
            if !b0.indistinguishable_to(&stem_exec, Reader::R1) {
                return Err(CertificateError::HeadTransferFailed { i1, stem });
            }

            // Structural invariant: in every chain execution both writes
            // complete before both reads start, so the two reads must
            // return the same value (atomicity) and the common value
            // propagates along blind links.
            for k in 0..=servers {
                let e = beta(servers, i1, stem, k);
                if !e.writes_precede_reads() {
                    return Err(CertificateError::ReadsNotForcedEqual {
                        execution: e.name().to_string(),
                    });
                }
            }

            // Phase 3: verify every zigzag step.
            let mut links = Vec::new();
            for k in 0..servers {
                links.extend(verify_step(servers, i1, stem, k)?);
            }
            cases.push(CaseReport { i1, tail_value, stem, head_value, links });
        }
    }

    Ok(W1R2Certificate {
        servers,
        alpha_endpoints: (ALPHA_HEAD_FORCED, ALPHA_TAIL_FORCED),
        cases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn certificate_verifies_for_small_clusters() {
        for servers in 3..=8 {
            let cert = verify_w1r2_impossibility(servers)
                .unwrap_or_else(|e| panic!("S={servers}: {e}"));
            assert_eq!(cert.servers, servers);
            assert_eq!(cert.cases.len(), 2 * servers);
            assert_eq!(cert.alpha_endpoints, (2, 1));
        }
    }

    #[test]
    fn link_counts_match_the_construction() {
        // Each step has 5 links (3 in the k+1 = i1 special case), and the
        // special case occurs exactly once per (i1, x) with i1 ≤ S.
        let servers = 4;
        let cert = verify_w1r2_impossibility(servers).unwrap();
        for case in &cert.cases {
            let expected = 5 * (servers - 1) + 3;
            assert_eq!(
                case.links.len(),
                expected,
                "i1={} x={}",
                case.i1,
                case.tail_value
            );
        }
    }

    #[test]
    fn too_few_servers_is_an_error() {
        assert!(matches!(
            verify_w1r2_impossibility(2),
            Err(CertificateError::TooFewServers { servers: 2 })
        ));
    }

    #[test]
    fn report_renders_contradictions() {
        let cert = verify_w1r2_impossibility(3).unwrap();
        let text = cert.to_string();
        assert!(text.contains("contradiction"), "{text}");
        assert!(text.contains("R1(α_0) = 2"), "{text}");
    }
}
