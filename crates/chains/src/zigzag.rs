//! Phase 3: chain γ and the zigzag chain Z (paper §3.4).
//!
//! For each `k`, the horizontal link `β_k ≈ γ_k` is established through a
//! temporary execution `temp_k` (Figs 4–5), and the diagonal link
//! `β_{k+1} ≈ γ_k` through `temp′_k` (Figs 6–7). Each step is justified by
//! one reader being *blind* to the modification:
//!
//! - `β_k → temp_k`: move `R2(2)` from `s_{k+1}` to the critical server
//!   (after `R1(2)`); `R1` finished first on both affected servers, so `R1`
//!   is blind.
//! - `temp_k → γ_k`: `R1(2)` additionally skips `s_{k+1}`; `R2(2)` already
//!   skips it, so `R2` is blind.
//! - `β_{k+1} → temp′_k`: `R1(2)` skips `s_{k+1}`; `R2(2)` finished first
//!   there, so `R2` is blind.
//! - `temp′_k → γ′_k`: move `R2(2)` from `s_{k+1}` to the critical server;
//!   `R1` is blind (it skips `s_{k+1}`, and on the critical server `R2(2)`
//!   lands after `R1(2)`).
//! - `γ′_k` and `γ_k` are **log-identical**, closing the zigzag.
//!
//! A blind reader returns the same value in both executions; atomicity
//! (both writes complete before both reads start) forces the other reader
//! to agree within each execution, so the common return value propagates
//! along `β_0 ≈ γ_0 ≈ β_1 ≈ … ≈ β_S`.

use crate::beta::{beta, Stem};
use crate::exec::{Arrival, Execution, Reader};

fn r1_2() -> Arrival {
    Arrival::Read(Reader::R1, 2)
}

fn r2_2() -> Arrival {
    Arrival::Read(Reader::R2, 2)
}

/// Moves `R2(2)` from server `from` to the end of the critical server's
/// log (i.e. after `R1(2)` there — "we can intentionally add `R2(2)` after
/// `R1(2)` on `s_{i1}`").
fn move_r2_second_round(e: &mut Execution, from: usize, critical: usize) {
    let log: Vec<Arrival> = e.log(from).to_vec();
    assert!(log.contains(&r2_2()), "R2(2) expected on s{} of {}", from + 1, e.name());
    e.remove_from_server(from, r2_2());
    e.append_at(critical, r2_2());
}

/// `temp_k` (paper Fig 5): from `β_k`, `R2(2)` skips `s_{k+1}` and no
/// longer skips the critical server.
///
/// Only defined for `k + 1 ≠ i1`; the `k + 1 = i1` case short-circuits
/// (see [`gamma`]).
pub fn temp_h(servers: usize, i1: usize, stem: Stem, k: usize) -> Execution {
    assert_ne!(k + 1, i1, "temp_k is not defined when k+1 = i1");
    let mut e = beta(servers, i1, stem, k);
    move_r2_second_round(&mut e, k, i1 - 1);
    e.set_name(format!("temp_{k}[i1={i1}]"));
    e
}

/// `γ_k` (paper Fig 5): from `temp_k`, `R1(2)` additionally skips
/// `s_{k+1}`. In the special case `k + 1 = i1`, `γ_k` is `β_k` with
/// `R1(2)` skipping `s_{k+1}` directly (the simpler construction in §3.4.1).
pub fn gamma(servers: usize, i1: usize, stem: Stem, k: usize) -> Execution {
    let mut e = if k + 1 == i1 {
        beta(servers, i1, stem, k)
    } else {
        temp_h(servers, i1, stem, k)
    };
    e.remove_from_server(k, r1_2());
    e.set_name(format!("γ_{k}[i1={i1}]"));
    e
}

/// `temp′_k` (paper Fig 7): from `β_{k+1}`, `R1(2)` skips `s_{k+1}`.
pub fn temp_d(servers: usize, i1: usize, stem: Stem, k: usize) -> Execution {
    let mut e = beta(servers, i1, stem, k + 1);
    e.remove_from_server(k, r1_2());
    e.set_name(format!("temp'_{k}[i1={i1}]"));
    e
}

/// `γ′_k` (paper Fig 7): from `temp′_k`, `R2(2)` skips `s_{k+1}` and no
/// longer skips the critical server. In the special case `k + 1 = i1`,
/// `γ′_k` is `temp′_k` itself (R2 already skips `s_{k+1} = s_{i1}`).
pub fn gamma_prime(servers: usize, i1: usize, stem: Stem, k: usize) -> Execution {
    let mut e = temp_d(servers, i1, stem, k);
    if k + 1 != i1 {
        move_r2_second_round(&mut e, k, i1 - 1);
    }
    e.set_name(format!("γ'_{k}[i1={i1}]"));
    e
}

/// One verified indistinguishability (or log-identity) link of the zigzag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Link {
    /// Name of the source execution.
    pub from: String,
    /// Name of the target execution.
    pub to: String,
    /// The justification: which reader is blind, or log identity.
    pub kind: LinkKind,
}

/// How a link is justified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkKind {
    /// The reader's views are equal in both executions.
    BlindReader(Reader),
    /// The executions have identical logs on every server.
    SameLogs,
}

impl std::fmt::Display for Link {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            LinkKind::BlindReader(Reader::R1) => {
                write!(f, "{} ≈ {} (R1 blind)", self.from, self.to)
            }
            LinkKind::BlindReader(Reader::R2) => {
                write!(f, "{} ≈ {} (R2 blind)", self.from, self.to)
            }
            LinkKind::SameLogs => write!(f, "{} ≡ {} (identical logs)", self.from, self.to),
        }
    }
}

/// Errors raised when a claimed link fails to verify.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkError {
    /// The link that failed.
    pub link: Link,
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "link failed to verify: {}", self.link)
    }
}

impl std::error::Error for LinkError {}

fn check(from: &Execution, to: &Execution, kind: LinkKind) -> Result<Link, LinkError> {
    let link = Link { from: from.name().to_string(), to: to.name().to_string(), kind };
    let ok = match kind {
        LinkKind::BlindReader(r) => from.indistinguishable_to(to, r),
        LinkKind::SameLogs => from.same_logs(to),
    };
    if ok {
        Ok(link)
    } else {
        Err(LinkError { link })
    }
}

/// Verifies every link of the zigzag step `k` (both the horizontal link
/// `β_k ≈ γ_k` and the diagonal link `β_{k+1} ≈ γ_k`), returning the
/// verified links in order.
///
/// # Errors
///
/// Returns the first link whose view-equality fails — which would falsify
/// the proof's construction (none do; the test suite checks all `S`, `i1`).
pub fn verify_step(
    servers: usize,
    i1: usize,
    stem: Stem,
    k: usize,
) -> Result<Vec<Link>, LinkError> {
    let mut links = Vec::new();
    let beta_k = beta(servers, i1, stem, k);
    let beta_k1 = beta(servers, i1, stem, k + 1);
    let gamma_k = gamma(servers, i1, stem, k);
    let gamma_p = gamma_prime(servers, i1, stem, k);

    if k + 1 == i1 {
        // Simple case: R2 skips s_{k+1} = s_{i1} already.
        links.push(check(&beta_k, &gamma_k, LinkKind::BlindReader(Reader::R2))?);
        links.push(check(&beta_k1, &gamma_p, LinkKind::BlindReader(Reader::R2))?);
    } else {
        let temp_k = temp_h(servers, i1, stem, k);
        let temp_p = temp_d(servers, i1, stem, k);
        // Horizontal: β_k ≈ temp_k (R1 blind) ≈ γ_k (R2 blind).
        links.push(check(&beta_k, &temp_k, LinkKind::BlindReader(Reader::R1))?);
        links.push(check(&temp_k, &gamma_k, LinkKind::BlindReader(Reader::R2))?);
        // Diagonal: β_{k+1} ≈ temp′_k (R2 blind) ≈ γ′_k (R1 blind).
        links.push(check(&beta_k1, &temp_p, LinkKind::BlindReader(Reader::R2))?);
        links.push(check(&temp_p, &gamma_p, LinkKind::BlindReader(Reader::R1))?);
    }
    // Close the zigzag: γ′_k ≡ γ_k.
    links.push(check(&gamma_p, &gamma_k, LinkKind::SameLogs)?);
    Ok(links)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_step_verifies_for_small_clusters() {
        for servers in 3..=6 {
            for i1 in 1..=servers {
                for stem in [Stem::Prev, Stem::At] {
                    for k in 0..servers {
                        let links = verify_step(servers, i1, stem, k)
                            .unwrap_or_else(|e| panic!("S={servers} i1={i1} k={k}: {e}"));
                        let expected = if k + 1 == i1 { 3 } else { 5 };
                        assert_eq!(links.len(), expected);
                    }
                }
            }
        }
    }

    #[test]
    fn gamma_removes_r1_second_round_from_sk1() {
        let g = gamma(4, 2, Stem::Prev, 2);
        assert!(!g.arrives_at(2, Arrival::Read(Reader::R1, 2)));
        assert!(g.arrives_at(2, Arrival::Read(Reader::R1, 1)));
    }

    #[test]
    fn gamma_moves_r2_second_round_to_critical_server() {
        let i1 = 2;
        let g = gamma(4, i1, Stem::Prev, 2);
        // R2(2) no longer skips the critical server (index 1) and lands
        // after R1(2) there.
        let log = g.log(i1 - 1);
        let p1 = log.iter().position(|a| *a == Arrival::Read(Reader::R1, 2)).unwrap();
        let p2 = log.iter().position(|a| *a == Arrival::Read(Reader::R2, 2)).unwrap();
        assert!(p1 < p2, "R2(2) must land after R1(2) on the critical server");
        // …and skips s_{k+1} (index 2).
        assert!(!g.arrives_at(2, Arrival::Read(Reader::R2, 2)));
    }

    #[test]
    fn gamma_and_gamma_prime_are_identical() {
        for servers in 3..=5 {
            for i1 in 1..=servers {
                for k in 0..servers {
                    let g = gamma(servers, i1, Stem::Prev, k);
                    let gp = gamma_prime(servers, i1, Stem::Prev, k);
                    assert!(g.same_logs(&gp), "S={servers} i1={i1} k={k}\n{g}\n{gp}");
                }
            }
        }
    }

    #[test]
    fn links_render_readably() {
        let links = verify_step(3, 2, Stem::Prev, 2).unwrap();
        let text: Vec<String> = links.iter().map(|l| l.to_string()).collect();
        assert!(text.iter().any(|t| t.contains("R1 blind")), "{text:?}");
        assert!(text.iter().any(|t| t.contains("identical logs")), "{text:?}");
    }

    #[test]
    #[should_panic(expected = "not defined")]
    fn temp_h_rejects_the_special_case() {
        let _ = temp_h(4, 3, Stem::Prev, 2);
    }
}
