//! Refuting concrete W1R2 read strategies.
//!
//! The certificate of [`verify_w1r2_impossibility`] rules out *all*
//! deterministic algorithms at once. This module makes the theorem tangible
//! for a user: hand it any deterministic read-decision rule (a
//! [`W1R2Strategy`]) and it walks the chains to produce a **concrete
//! execution** in which that rule violates atomicity.
//!
//! [`verify_w1r2_impossibility`]: crate::verify_w1r2_impossibility

use std::fmt;

use crate::alpha::{alpha, alpha_chain};
use crate::beta::{beta, Stem};
use crate::exec::{Arrival, Execution, Reader, ReaderView};
use crate::zigzag::{gamma, temp_d, temp_h};

/// A deterministic read-decision rule for a fast-write (W1R2)
/// implementation: given everything the reader learned from its two
/// round-trips, return 1 or 2.
///
/// Implementations must be deterministic functions of the view; the refuter
/// checks this and reports an error otherwise.
pub trait W1R2Strategy {
    /// Decides a read's return value from its view.
    fn decide(&self, reader: Reader, view: &ReaderView) -> u8;

    /// Human-readable name for reports.
    fn name(&self) -> &str;
}

/// Strategy: return the value of the write that a majority of servers (in
/// the final round's view) received *last*; ties go to 2.
///
/// This is the "obvious" fast-write design — last-write-wins by majority
/// vote — and the refuter shows exactly where it breaks.
#[derive(Debug, Clone, Copy, Default)]
pub struct MajorityLastWrite;

impl W1R2Strategy for MajorityLastWrite {
    fn decide(&self, _reader: Reader, view: &ReaderView) -> u8 {
        let mut votes = [0usize; 3];
        for prefix in view.round2.values().chain(view.round1.values()) {
            let last = prefix.iter().rev().find_map(|a| match a {
                Arrival::Write(w) => Some(w.value()),
                _ => None,
            });
            if let Some(v) = last {
                votes[v as usize] += 1;
            }
        }
        if votes[2] >= votes[1] {
            2
        } else {
            1
        }
    }

    fn name(&self) -> &'static str {
        "majority-last-write"
    }
}

/// Strategy: trust the lowest-indexed server in the final view; ties (no
/// writes seen) return 1.
#[derive(Debug, Clone, Copy, Default)]
pub struct FirstServerRules;

impl W1R2Strategy for FirstServerRules {
    fn decide(&self, _reader: Reader, view: &ReaderView) -> u8 {
        view.round2
            .iter()
            .chain(view.round1.iter())
            .next()
            .and_then(|(_, prefix)| {
                prefix.iter().rev().find_map(|a| match a {
                    Arrival::Write(w) => Some(w.value()),
                    _ => None,
                })
            })
            .unwrap_or(1)
    }

    fn name(&self) -> &'static str {
        "first-server-rules"
    }
}

/// Strategy: always return 1, regardless of the view. Refuted immediately
/// at the head of chain α.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysOne;

impl W1R2Strategy for AlwaysOne {
    fn decide(&self, _reader: Reader, _view: &ReaderView) -> u8 {
        1
    }

    fn name(&self) -> &'static str {
        "always-one"
    }
}

/// A concrete counterexample for a strategy.
#[derive(Debug, Clone)]
pub struct Refutation {
    /// The strategy's name.
    pub strategy: String,
    /// Rendering of the violating execution's per-server logs.
    pub execution: String,
    /// What went wrong.
    pub kind: RefutationKind,
}

/// The way the strategy violated atomicity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefutationKind {
    /// In a sequential execution (`W1 ≺ W2 ≺ R1` or the reverse), the read
    /// returned the overwritten value.
    SequentialExecution {
        /// The value atomicity requires.
        required: u8,
        /// The value the strategy returned.
        returned: u8,
    },
    /// Both writes completed before either read started, yet the two reads
    /// returned different values — no linearization can explain that.
    ReadsDisagree {
        /// `R1`'s value.
        r1: u8,
        /// `R2`'s value.
        r2: u8,
    },
    /// The strategy returned different values for identical views — it is
    /// not a deterministic function of the view.
    NonDeterministic,
}

impl fmt::Display for Refutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "strategy '{}' violates atomicity:", self.strategy)?;
        match &self.kind {
            RefutationKind::SequentialExecution { required, returned } => writeln!(
                f,
                "  sequential execution requires the read to return {required}, got {returned}"
            )?,
            RefutationKind::ReadsDisagree { r1, r2 } => writeln!(
                f,
                "  both writes complete before both reads, yet R1 = {r1} and R2 = {r2}"
            )?,
            RefutationKind::NonDeterministic => {
                writeln!(f, "  strategy is not a deterministic function of its view")?
            }
        }
        write!(f, "{}", self.execution)
    }
}

/// Walks the paper's chains with a concrete strategy and returns the
/// execution where it breaks atomicity.
///
/// Theorem 1 guarantees a refutation exists for **every** deterministic
/// strategy; this function finds one constructively.
///
/// # Panics
///
/// Panics if `servers < 3`.
///
/// # Examples
///
/// ```
/// use mwr_chains::{refute_strategy, MajorityLastWrite};
///
/// let refutation = refute_strategy(3, &MajorityLastWrite);
/// println!("{refutation}");
/// ```
pub fn refute_strategy(servers: usize, strategy: &dyn W1R2Strategy) -> Refutation {
    assert!(servers >= 3, "refutation chains need S ≥ 3");
    let decide = |e: &Execution, r: Reader| strategy.decide(r, &e.reader_view(r));

    // Phase 1: R1's values along chain α.
    let chain = alpha_chain(servers);
    let values: Vec<u8> = chain.iter().map(|e| decide(e, Reader::R1)).collect();
    if values[0] != 2 {
        return Refutation {
            strategy: strategy.name().to_string(),
            execution: chain[0].to_string(),
            kind: RefutationKind::SequentialExecution { required: 2, returned: values[0] },
        };
    }
    if values[servers] != 1 {
        return Refutation {
            strategy: strategy.name().to_string(),
            execution: chain[servers].to_string(),
            kind: RefutationKind::SequentialExecution { required: 1, returned: values[servers] },
        };
    }
    // The flip point: first i with value 2 → 1.
    let i1 = (1..=servers)
        .find(|&i| values[i - 1] == 2 && values[i] == 1)
        .expect("values go from 2 to 1, so a flip exists");

    // Phase 2: R2's common tail value.
    let tail_prev = beta(servers, i1, Stem::Prev, servers);
    let tail_at = beta(servers, i1, Stem::At, servers);
    let x1 = decide(&tail_prev, Reader::R2);
    let x2 = decide(&tail_at, Reader::R2);
    if x1 != x2 {
        // The tails are view-equal for R2 (verified by the certificate), so
        // a deterministic strategy cannot split them.
        return Refutation {
            strategy: strategy.name().to_string(),
            execution: format!("{tail_prev}{tail_at}"),
            kind: RefutationKind::NonDeterministic,
        };
    }
    let stem = if x1 == 1 { Stem::Prev } else { Stem::At };

    // Phase 3: somewhere along the zigzag the two reads must disagree
    // inside a single execution; find it.
    let mut executions: Vec<Execution> = Vec::new();
    for k in 0..servers {
        executions.push(beta(servers, i1, stem, k));
        if k + 1 != i1 {
            executions.push(temp_h(servers, i1, stem, k));
            executions.push(temp_d(servers, i1, stem, k));
        }
        executions.push(gamma(servers, i1, stem, k));
    }
    executions.push(beta(servers, i1, stem, servers));

    for e in &executions {
        let r1 = decide(e, Reader::R1);
        let r2 = decide(e, Reader::R2);
        if r1 != r2 {
            debug_assert!(e.writes_precede_reads());
            return Refutation {
                strategy: strategy.name().to_string(),
                execution: e.to_string(),
                kind: RefutationKind::ReadsDisagree { r1, r2 },
            };
        }
    }

    // Impossible by Theorem 1: the chain pins head ≠ tail while every link
    // preserves the common value, so an internal disagreement must exist.
    unreachable!(
        "strategy '{}' survived the chains — Theorem 1 says this cannot happen",
        strategy.name()
    )
}

/// Convenience: `decide` applied to `α_0`'s reader view — lets examples
/// show what a strategy answers on the sequential execution.
pub fn sequential_answer(servers: usize, strategy: &dyn W1R2Strategy) -> u8 {
    let e = alpha(servers, 0);
    strategy.decide(Reader::R1, &e.reader_view(Reader::R1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_one_is_refuted_at_the_head() {
        let r = refute_strategy(3, &AlwaysOne);
        assert_eq!(
            r.kind,
            RefutationKind::SequentialExecution { required: 2, returned: 1 }
        );
    }

    #[test]
    fn majority_last_write_is_refuted() {
        for servers in 3..=6 {
            let r = refute_strategy(servers, &MajorityLastWrite);
            match r.kind {
                RefutationKind::ReadsDisagree { r1, r2 } => assert_ne!(r1, r2),
                RefutationKind::SequentialExecution { required, returned } => {
                    assert_ne!(required, returned)
                }
                RefutationKind::NonDeterministic => panic!("strategy is deterministic"),
            }
        }
    }

    #[test]
    fn first_server_rules_is_refuted() {
        let r = refute_strategy(4, &FirstServerRules);
        assert!(!r.to_string().is_empty());
    }

    #[test]
    fn sequential_answer_reports_head_behaviour() {
        assert_eq!(sequential_answer(3, &MajorityLastWrite), 2);
        assert_eq!(sequential_answer(3, &AlwaysOne), 1);
    }

    #[test]
    fn refutation_display_shows_server_logs() {
        let r = refute_strategy(3, &MajorityLastWrite);
        let text = r.to_string();
        assert!(text.contains("s1:"), "{text}");
        assert!(text.contains("violates atomicity"), "{text}");
    }
}
