//! Mechanized impossibility proofs for fast register implementations.
//!
//! The paper's central results are *impossibility theorems*; this crate
//! makes them executable:
//!
//! - [`verify_w1r2_impossibility`] — **Theorem 1** (no fast-write atomic
//!   multi-writer register): builds the paper's chains α, β and the zigzag
//!   Z for a concrete number of servers, verifies every
//!   indistinguishability link by *view equality* in the full-info model
//!   (§4.1), and returns a certificate enumerating every algorithm case.
//! - [`refute_strategy`] — hands back a concrete violating execution for
//!   any user-supplied deterministic fast-write read rule.
//! - [`sieve`] — §4's sieve construction (Fig 8): eliminating servers whose
//!   crucial information was blindly affected by a read's first round-trip
//!   and showing the chain argument survives on the remainder.
//! - [`fastread`] — §5.1 / Fig 9: the fast-read (W2R1) lower bound engine,
//!   deriving forced read values across execution families and exhibiting
//!   the contradiction for block constructions with `S ≤ (R+1)·t` (the band
//!   down to the paper's tight `R ≥ S/t − 2` follows Dutta et al. \[12\] and
//!   is documented in `DESIGN.md`).
//!
//! View equality is the exact notion of indistinguishability the proofs
//! use: in the full-info model a server replies with its entire log prefix,
//! so no deterministic algorithm can return different values in two
//! executions whose replies are equal.
//!
//! # Examples
//!
//! ```
//! use mwr_chains::{refute_strategy, verify_w1r2_impossibility, MajorityLastWrite};
//!
//! // Theorem 1, mechanized for S = 5.
//! let cert = verify_w1r2_impossibility(5)?;
//! assert_eq!(cert.cases.len(), 10);
//!
//! // And a concrete counterexample for a concrete algorithm.
//! let refutation = refute_strategy(5, &MajorityLastWrite);
//! println!("{refutation}");
//! # Ok::<(), mwr_chains::CertificateError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod alpha;
mod beta;
mod certificate;
mod exec;
pub mod fastread;
mod reduction;
pub mod sieve;
mod strategy;
mod zigzag;

pub use alpha::{alpha, alpha_chain, alpha_tail, ALPHA_HEAD_FORCED, ALPHA_TAIL_FORCED};
pub use beta::{beta, beta_candidate, Stem};
pub use certificate::{verify_w1r2_impossibility, CaseReport, CertificateError, W1R2Certificate};
pub use exec::{Arrival, Execution, Reader, ReaderView, RoundView, WriteOp};
pub use reduction::{
    collapse_write, expand_reads, k_indistinguishable, k_reader_view, verify_w1rk_impossibility,
    wkr1_outcome, MultiRoundWrite, W1RkCertificate,
};
pub use strategy::{
    refute_strategy, sequential_answer, AlwaysOne, FirstServerRules, MajorityLastWrite,
    Refutation, RefutationKind, W1R2Strategy,
};
pub use zigzag::{gamma, gamma_prime, temp_d, temp_h, verify_step, Link, LinkError, LinkKind};
