//! Abstract executions in the full-info model (paper §4.1).
//!
//! The impossibility proofs reason about *executions as data*: for each
//! server, the ordered sequence of round-trip arrivals it receives. In the
//! full-info model a server is an append-only log and the reply to an
//! arrival is the log prefix up to and including it; since no implementation
//! can extract more from a round-trip than the full-info reply, equality of
//! a reader's replies across two executions ("view equality") implies *every*
//! deterministic algorithm returns the same value in both — exactly the
//! indistinguishability the chain arguments need.
//!
//! The proofs of §3 are presented under the simplifying assumption that the
//! *first* round-trip of a read does not affect other reads' return values;
//! §4's sieve construction justifies discharging it. We mirror that
//! structure: views are computed with other readers' first rounds filtered
//! out (the assumption, applied mechanically), and the [`sieve`](crate::sieve)
//! module mechanizes §4's argument that servers affected by a blind first
//! round-trip can be eliminated.

use std::collections::BTreeMap;
use std::fmt;

/// The two write operations of the proofs, `W1 = write(1)` by `w1` and
/// `W2 = write(2)` by `w2`. Writes are *fast* (one round-trip) in the W1R2
/// setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WriteOp {
    /// `write(1)` by writer `w1`.
    W1,
    /// `write(2)` by writer `w2`.
    W2,
}

impl WriteOp {
    /// The value this write stores.
    pub fn value(self) -> u8 {
        match self {
            WriteOp::W1 => 1,
            WriteOp::W2 => 2,
        }
    }
}

/// The two readers of the proofs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Reader {
    /// Reader `r1`, running operation `R1`.
    R1,
    /// Reader `r2`, running operation `R2`.
    R2,
}

/// One round-trip arrival at a server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Arrival {
    /// A fast write's single round-trip.
    Write(WriteOp),
    /// Round-trip `round` (1 or 2) of a read.
    Read(Reader, u8),
}

impl fmt::Display for Arrival {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Arrival::Write(WriteOp::W1) => write!(f, "W1"),
            Arrival::Write(WriteOp::W2) => write!(f, "W2"),
            Arrival::Read(Reader::R1, r) => write!(f, "R1({r})"),
            Arrival::Read(Reader::R2, r) => write!(f, "R2({r})"),
        }
    }
}

/// An execution: per-server arrival logs. A round-trip *skips* a server by
/// simply not appearing in its log (its messages are delayed past the end
/// of the execution).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Execution {
    /// `logs[s]` is the ordered arrival log of server `s`.
    logs: Vec<Vec<Arrival>>,
    /// Human-readable name for reports (e.g. `"α_3"`).
    name: String,
}

/// A reader's view of one of its round-trips: for every server the round
/// did not skip, the (filtered) log prefix it received as the reply.
pub type RoundView = BTreeMap<usize, Vec<Arrival>>;

/// A reader's complete knowledge in an execution: the views of its first
/// and second round-trips. Two executions are indistinguishable to the
/// reader iff these are equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReaderView {
    /// View of the first round-trip.
    pub round1: RoundView,
    /// View of the second round-trip.
    pub round2: RoundView,
}

impl Execution {
    /// Creates an execution over `servers` empty logs.
    pub fn new(servers: usize, name: impl Into<String>) -> Self {
        Execution { logs: vec![Vec::new(); servers], name: name.into() }
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.logs.len()
    }

    /// The execution's report name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the execution (builders derive names like `"β'_2"`).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Appends `arrival` to every server's log except those in `skip`.
    pub fn append_all(&mut self, arrival: Arrival, skip: &[usize]) {
        for (s, log) in self.logs.iter_mut().enumerate() {
            if !skip.contains(&s) {
                log.push(arrival);
            }
        }
    }

    /// Appends `arrival` to one server's log.
    pub fn append_at(&mut self, server: usize, arrival: Arrival) {
        self.logs[server].push(arrival);
    }

    /// The log of one server.
    pub fn log(&self, server: usize) -> &[Arrival] {
        &self.logs[server]
    }

    /// Whether two executions have identical logs on every server (the
    /// strongest equality: indistinguishable to *all* processes).
    pub fn same_logs(&self, other: &Execution) -> bool {
        self.logs == other.logs
    }

    /// Removes every occurrence of `arrival` from every log (used by chain
    /// builders to re-place a round-trip).
    pub fn remove_everywhere(&mut self, arrival: Arrival) {
        for log in &mut self.logs {
            log.retain(|a| *a != arrival);
        }
    }

    /// Removes `arrival` from one server's log — the chain builders' "this
    /// round-trip now skips server `s`" gesture.
    pub fn remove_from_server(&mut self, server: usize, arrival: Arrival) {
        self.logs[server].retain(|a| *a != arrival);
    }

    /// Swaps the order of two adjacent arrivals on one server, if both are
    /// present (the chains' "swapping" step).
    ///
    /// # Panics
    ///
    /// Panics if either arrival is missing from the server's log — the
    /// chain constructions only swap arrivals they know are present.
    pub fn swap_on_server(&mut self, server: usize, a: Arrival, b: Arrival) {
        let log = &mut self.logs[server];
        let ia = log.iter().position(|x| *x == a).unwrap_or_else(|| {
            panic!("{a} not in log of s{} of {}", server + 1, self.name)
        });
        let ib = log.iter().position(|x| *x == b).unwrap_or_else(|| {
            panic!("{b} not in log of s{} of {}", server + 1, self.name)
        });
        log.swap(ia, ib);
    }

    /// Whether `reader`'s round `round` arrived at `server`.
    pub fn arrives_at(&self, server: usize, arrival: Arrival) -> bool {
        self.logs[server].contains(&arrival)
    }

    /// The reply a round-trip arrival receives at `server`: the log prefix
    /// up to and including the arrival, with *other* readers' first
    /// round-trips filtered out (the §3 assumption; see module docs).
    ///
    /// Returns `None` if the round-trip skipped this server.
    pub fn reply(&self, server: usize, reader: Reader, round: u8) -> Option<Vec<Arrival>> {
        let me = Arrival::Read(reader, round);
        let log = &self.logs[server];
        let pos = log.iter().position(|a| *a == me)?;
        Some(
            log[..=pos]
                .iter()
                .filter(|a| match a {
                    // Other readers' first rounds are invisible (§3
                    // assumption, discharged by the sieve §4).
                    Arrival::Read(r, 1) => *r == reader,
                    _ => true,
                })
                .copied()
                .collect(),
        )
    }

    /// The complete view of `reader` in this execution.
    pub fn reader_view(&self, reader: Reader) -> ReaderView {
        let mut round1 = BTreeMap::new();
        let mut round2 = BTreeMap::new();
        for s in 0..self.servers() {
            if let Some(r) = self.reply(s, reader, 1) {
                round1.insert(s, r);
            }
            if let Some(r) = self.reply(s, reader, 2) {
                round2.insert(s, r);
            }
        }
        ReaderView { round1, round2 }
    }

    /// Whether `reader` cannot distinguish this execution from `other`:
    /// its round-trip views are identical.
    pub fn indistinguishable_to(&self, other: &Execution, reader: Reader) -> bool {
        self.reader_view(reader) == other.reader_view(reader)
    }

    /// Whether both writes' arrivals precede all read arrivals on every
    /// server — the structural invariant making the two reads return the
    /// same value in one execution (writes complete before reads start, so
    /// every linearization puts the reads after the last write).
    pub fn writes_precede_reads(&self) -> bool {
        self.logs.iter().all(|log| {
            let last_write = log
                .iter()
                .rposition(|a| matches!(a, Arrival::Write(_)));
            let first_read = log.iter().position(|a| matches!(a, Arrival::Read(..)));
            match (last_write, first_read) {
                (Some(w), Some(r)) => w < r,
                _ => true,
            }
        })
    }

    /// The order in which a server received the two writes, if it received
    /// both: the *crucial information* of §4.1 (`"12"` or `"21"`).
    pub fn crucial_info(&self, server: usize) -> Option<(WriteOp, WriteOp)> {
        let ws: Vec<WriteOp> = self.logs[server]
            .iter()
            .filter_map(|a| match a {
                Arrival::Write(w) => Some(*w),
                _ => None,
            })
            .collect();
        match ws.as_slice() {
            [a, b] => Some((*a, *b)),
            _ => None,
        }
    }
}

impl fmt::Display for Execution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}:", self.name)?;
        for (s, log) in self.logs.iter().enumerate() {
            write!(f, "  s{}: ", s + 1)?;
            for (i, a) in log.iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{a}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w1() -> Arrival {
        Arrival::Write(WriteOp::W1)
    }
    fn w2() -> Arrival {
        Arrival::Write(WriteOp::W2)
    }
    fn r(reader: Reader, round: u8) -> Arrival {
        Arrival::Read(reader, round)
    }

    /// α0-shaped execution: W1, W2, R1(1), R1(2) everywhere.
    fn alpha0(servers: usize) -> Execution {
        let mut e = Execution::new(servers, "α_0");
        e.append_all(w1(), &[]);
        e.append_all(w2(), &[]);
        e.append_all(r(Reader::R1, 1), &[]);
        e.append_all(r(Reader::R1, 2), &[]);
        e
    }

    #[test]
    fn replies_are_prefixes() {
        let e = alpha0(3);
        let reply = e.reply(0, Reader::R1, 1).unwrap();
        assert_eq!(reply, vec![w1(), w2(), r(Reader::R1, 1)]);
        let reply2 = e.reply(0, Reader::R1, 2).unwrap();
        assert_eq!(reply2.len(), 4);
    }

    #[test]
    fn skipped_round_has_no_reply() {
        let mut e = Execution::new(2, "x");
        e.append_all(r(Reader::R1, 1), &[1]);
        assert!(e.reply(0, Reader::R1, 1).is_some());
        assert!(e.reply(1, Reader::R1, 1).is_none());
    }

    #[test]
    fn other_readers_first_rounds_are_filtered() {
        let mut e = Execution::new(1, "x");
        e.append_all(w1(), &[]);
        e.append_all(r(Reader::R2, 1), &[]);
        e.append_all(r(Reader::R1, 1), &[]);
        let reply = e.reply(0, Reader::R1, 1).unwrap();
        assert_eq!(reply, vec![w1(), r(Reader::R1, 1)], "R2(1) must be invisible to R1");
        // …but R2's *second* round is visible.
        let mut e2 = Execution::new(1, "y");
        e2.append_all(r(Reader::R2, 2), &[]);
        e2.append_all(r(Reader::R1, 2), &[]);
        let reply = e2.reply(0, Reader::R1, 2).unwrap();
        assert_eq!(reply, vec![r(Reader::R2, 2), r(Reader::R1, 2)]);
    }

    #[test]
    fn swap_changes_view_of_later_reader_only() {
        // Server log [R1(2), R2(2)]: R1's prefix excludes R2(2).
        let mut a = Execution::new(1, "a");
        a.append_all(r(Reader::R1, 2), &[]);
        a.append_all(r(Reader::R2, 2), &[]);
        let mut b = a.clone();
        b.swap_on_server(0, r(Reader::R1, 2), r(Reader::R2, 2));
        // R1 sees the difference (it now receives R2(2) in its prefix);
        // R2 equally sees it. The *indistinguishability* in the proofs
        // comes from skips, not from swaps alone.
        assert!(!a.indistinguishable_to(&b, Reader::R1));
        assert!(!a.indistinguishable_to(&b, Reader::R2));
    }

    #[test]
    fn swapping_earlier_arrival_behind_a_finished_read_is_invisible() {
        // Paper's source of indistinguishability #1: if R1(2) finishes
        // before R2(2) on s, modifying R2(2) behind its back is invisible
        // to R1.
        let mut a = Execution::new(2, "a");
        a.append_all(w1(), &[]);
        a.append_all(r(Reader::R1, 2), &[]);
        a.append_all(r(Reader::R2, 2), &[]);
        let mut b = a.clone();
        b.remove_everywhere(r(Reader::R2, 2));
        assert!(a.indistinguishable_to(&b, Reader::R1));
        assert!(!a.indistinguishable_to(&b, Reader::R2));
    }

    #[test]
    fn crucial_info_reports_write_order() {
        let mut e = Execution::new(2, "x");
        e.append_at(0, w1());
        e.append_at(0, w2());
        e.append_at(1, w2());
        e.append_at(1, w1());
        assert_eq!(e.crucial_info(0), Some((WriteOp::W1, WriteOp::W2)));
        assert_eq!(e.crucial_info(1), Some((WriteOp::W2, WriteOp::W1)));
        let empty = Execution::new(1, "y");
        assert_eq!(empty.crucial_info(0), None);
    }

    #[test]
    fn writes_precede_reads_invariant() {
        let e = alpha0(3);
        assert!(e.writes_precede_reads());
        let mut bad = Execution::new(1, "bad");
        bad.append_all(r(Reader::R1, 1), &[]);
        bad.append_all(w1(), &[]);
        assert!(!bad.writes_precede_reads());
    }

    #[test]
    fn same_logs_is_structural_equality() {
        let a = alpha0(3);
        let mut b = alpha0(3);
        b.set_name("other-name");
        assert!(a.same_logs(&b), "names do not matter");
        b.swap_on_server(1, w1(), w2());
        assert!(!a.same_logs(&b));
    }

    #[test]
    fn display_renders_logs() {
        let e = alpha0(2);
        let text = e.to_string();
        assert!(text.contains("s1: W1 W2 R1(1) R1(2)"), "{text}");
    }
}
