//! The `k ≥ 3` round-trip reductions (paper §3 and §5.1).
//!
//! The paper proves its impossibility theorems for two-round-trip
//! operations and notes both generalize:
//!
//! - **W1Rk** (§3): *"We can combine the round-trips 2, 3, …, k as if they
//!   were one single round-trip. The chain argument still applies."* This
//!   module mechanizes that sentence: every execution of the W1R2
//!   certificate is *expanded* — each second read round-trip is replaced by
//!   the consecutive block of rounds `2 ‥ k` — and every
//!   indistinguishability link of the chain argument is re-verified under
//!   full `k`-round views ([`verify_w1rk_impossibility`]).
//! - **WkR1** (§5.1): *"we let all the two (or more) round-trips of a
//!   write operation take place consecutively and precede all other
//!   operations. The rest of the impossibility proof is not affected."* In
//!   the crucial-info model (§4.1) only the write's final *update* round
//!   deposits the value; [`collapse_write`] performs exactly that
//!   projection, [`wkr1_outcome`] checks it and reuses the Fig 9 engine.
//!
//! Both functions are *verifiers*: they fail loudly if any lifted link or
//! collapse identity does not hold, which would falsify the paper's
//! reduction remarks. The test suite exercises `k ∈ 2..=5`.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::alpha::{alpha, alpha_tail, ALPHA_HEAD_FORCED, ALPHA_TAIL_FORCED};
use crate::beta::{beta, Stem};
use crate::certificate::{CaseReport, CertificateError};
use crate::exec::{Arrival, Execution, Reader, RoundView};
use crate::fastread::{fig9_outcome, Fig9Outcome};
use crate::zigzag::{gamma, gamma_prime, temp_d, temp_h, Link, LinkError, LinkKind};

/// Expands a two-round-trip-read execution into its `rounds`-round-trip
/// counterpart: wherever a reader's second round-trip arrives, the rounds
/// `3 ‥ rounds` arrive immediately after, in order (the paper's
/// "combined as one round-trip", inverted).
///
/// A reader that skipped a server with its second round skips it with all
/// later rounds too — the block travels together.
///
/// # Panics
///
/// Panics if `rounds < 2` (there is nothing to expand into).
///
/// # Examples
///
/// ```
/// use mwr_chains::{alpha, expand_reads};
///
/// let base = alpha(3, 0);
/// let expanded = expand_reads(&base, 4);
/// assert_eq!(expanded.servers(), base.servers());
/// // Every server that saw R1(2) now also sees R1(3) and R1(4).
/// # use mwr_chains::{Arrival, Reader};
/// for s in 0..3 {
///     assert!(expanded.arrives_at(s, Arrival::Read(Reader::R1, 4)));
/// }
/// ```
pub fn expand_reads(exec: &Execution, rounds: u8) -> Execution {
    assert!(rounds >= 2, "round-trip count must be at least 2");
    let mut out = Execution::new(exec.servers(), format!("{}↑{rounds}", exec.name()));
    for s in 0..exec.servers() {
        for &arrival in exec.log(s) {
            out.append_at(s, arrival);
            if let Arrival::Read(reader, 2) = arrival {
                for r in 3..=rounds {
                    out.append_at(s, Arrival::Read(reader, r));
                }
            }
        }
    }
    out
}

/// The complete `rounds`-round view of `reader`: one [`RoundView`] per
/// round-trip. Equality across two executions is exactly the
/// indistinguishability a `W1Rk` chain argument needs.
pub fn k_reader_view(exec: &Execution, reader: Reader, rounds: u8) -> Vec<RoundView> {
    (1..=rounds)
        .map(|round| {
            let mut view = BTreeMap::new();
            for s in 0..exec.servers() {
                if let Some(reply) = exec.reply(s, reader, round) {
                    view.insert(s, reply);
                }
            }
            view
        })
        .collect()
}

/// Whether `reader` cannot distinguish the two executions with
/// `rounds`-round-trip reads.
pub fn k_indistinguishable(a: &Execution, b: &Execution, reader: Reader, rounds: u8) -> bool {
    k_reader_view(a, reader, rounds) == k_reader_view(b, reader, rounds)
}

/// The verified `W1Rk` certificate: Theorem 1 lifted to reads of `rounds`
/// round-trips.
#[derive(Debug, Clone)]
pub struct W1RkCertificate {
    /// Number of servers the chains were built over.
    pub servers: usize,
    /// Round-trips per read.
    pub rounds: u8,
    /// The forced endpoint values of chain α (unchanged by the lift).
    pub alpha_endpoints: (u8, u8),
    /// One verified case per `(i1, x)` pair, with every link re-verified
    /// under `rounds`-round views.
    pub cases: Vec<CaseReport>,
}

impl W1RkCertificate {
    /// Total number of lifted view-equality/log-identity checks performed.
    pub fn total_links(&self) -> usize {
        self.cases.iter().map(|c| c.links.len()).sum()
    }
}

impl fmt::Display for W1RkCertificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "W1R{} impossibility certificate, S = {} (reads expanded to {} round-trips)",
            self.rounds, self.servers, self.rounds
        )?;
        writeln!(
            f,
            "chain α endpoints forced: R1(α_0) = {}, R1(α_S) = {}",
            self.alpha_endpoints.0, self.alpha_endpoints.1
        )?;
        writeln!(
            f,
            "{} cases, {} lifted links — all verified; no fast-write implementation with {}-round reads exists",
            self.cases.len(),
            self.total_links(),
            self.rounds
        )
    }
}

fn check_k(
    a: &Execution,
    b: &Execution,
    kind: LinkKind,
    rounds: u8,
) -> Result<Link, LinkError> {
    let ok = match kind {
        LinkKind::BlindReader(reader) => k_indistinguishable(a, b, reader, rounds),
        LinkKind::SameLogs => a.same_logs(b),
    };
    let link = Link { from: a.name().to_string(), to: b.name().to_string(), kind };
    if ok {
        Ok(link)
    } else {
        Err(LinkError { link })
    }
}

/// Verifies one zigzag step of the chain argument under `rounds`-round
/// views, on the expanded executions.
fn verify_k_step(
    servers: usize,
    i1: usize,
    stem: Stem,
    k: usize,
    rounds: u8,
) -> Result<Vec<Link>, LinkError> {
    let ex = |e: &Execution| expand_reads(e, rounds);
    let mut links = Vec::new();
    let beta_k = ex(&beta(servers, i1, stem, k));
    let beta_k1 = ex(&beta(servers, i1, stem, k + 1));
    let gamma_k = ex(&gamma(servers, i1, stem, k));
    let gamma_p = ex(&gamma_prime(servers, i1, stem, k));

    if k + 1 == i1 {
        links.push(check_k(&beta_k, &gamma_k, LinkKind::BlindReader(Reader::R2), rounds)?);
        links.push(check_k(&beta_k1, &gamma_p, LinkKind::BlindReader(Reader::R2), rounds)?);
    } else {
        let temp_k = ex(&temp_h(servers, i1, stem, k));
        let temp_p = ex(&temp_d(servers, i1, stem, k));
        links.push(check_k(&beta_k, &temp_k, LinkKind::BlindReader(Reader::R1), rounds)?);
        links.push(check_k(&temp_k, &gamma_k, LinkKind::BlindReader(Reader::R2), rounds)?);
        links.push(check_k(&beta_k1, &temp_p, LinkKind::BlindReader(Reader::R2), rounds)?);
        links.push(check_k(&temp_p, &gamma_p, LinkKind::BlindReader(Reader::R1), rounds)?);
    }
    links.push(check_k(&gamma_p, &gamma_k, LinkKind::SameLogs, rounds)?);
    Ok(links)
}

/// Builds and verifies the `W1Rk` impossibility certificate: the full
/// three-phase chain argument with every read expanded to `rounds`
/// round-trips and every indistinguishability re-checked against the
/// richer views.
///
/// # Errors
///
/// Returns a [`CertificateError`] if any lifted check fails — which would
/// falsify the paper's §3 remark that the chain argument survives the
/// expansion.
///
/// # Examples
///
/// ```
/// use mwr_chains::verify_w1rk_impossibility;
///
/// let cert = verify_w1rk_impossibility(4, 3)?;
/// assert_eq!(cert.rounds, 3);
/// assert_eq!(cert.cases.len(), 8);
/// # Ok::<(), mwr_chains::CertificateError>(())
/// ```
pub fn verify_w1rk_impossibility(
    servers: usize,
    rounds: u8,
) -> Result<W1RkCertificate, CertificateError> {
    if servers < 3 {
        return Err(CertificateError::TooFewServers { servers });
    }
    assert!(rounds >= 2, "W1Rk needs k ≥ 2; W1R1 is ruled out by Dutta et al.");

    // Phase 1 endpoints survive expansion: α_S ≡ tail as logs, hence as
    // expanded logs.
    let a_s = expand_reads(&alpha(servers, servers), rounds);
    let a_tail = expand_reads(&alpha_tail(servers), rounds);
    if !a_s.same_logs(&a_tail) {
        return Err(CertificateError::AlphaTailMismatch);
    }

    let mut cases = Vec::new();
    for i1 in 1..=servers {
        let tail_prev = expand_reads(&beta(servers, i1, Stem::Prev, servers), rounds);
        let tail_at = expand_reads(&beta(servers, i1, Stem::At, servers), rounds);
        if !k_indistinguishable(&tail_prev, &tail_at, Reader::R2, rounds) {
            return Err(CertificateError::TailsDistinguishable { i1 });
        }

        for tail_value in [1u8, 2u8] {
            let stem = if tail_value == 1 { Stem::Prev } else { Stem::At };
            let head_value = stem.r1_value();

            let b0 = expand_reads(&beta(servers, i1, stem, 0), rounds);
            let stem_exec = expand_reads(
                &alpha(servers, i1 - usize::from(stem == Stem::Prev)),
                rounds,
            );
            if !k_indistinguishable(&b0, &stem_exec, Reader::R1, rounds) {
                return Err(CertificateError::HeadTransferFailed { i1, stem });
            }

            for k in 0..=servers {
                let e = beta(servers, i1, stem, k);
                if !e.writes_precede_reads() {
                    return Err(CertificateError::ReadsNotForcedEqual {
                        execution: e.name().to_string(),
                    });
                }
            }

            let mut links = Vec::new();
            for k in 0..servers {
                links.extend(verify_k_step(servers, i1, stem, k, rounds)?);
            }
            cases.push(CaseReport { i1, tail_value, stem, head_value, links });
        }
    }

    Ok(W1RkCertificate {
        servers,
        rounds,
        alpha_endpoints: (ALPHA_HEAD_FORCED, ALPHA_TAIL_FORCED),
        cases,
    })
}

// --- WkR1: multi-round writes (paper §5.1) ----------------------------------

/// A write of `k ≥ 1` round-trips, all consecutive and preceding every
/// other operation (the paper's §5.1 arrangement). `rounds[i]` is the set
/// of servers round `i + 1` reached; only the final round carries the
/// value (the earlier rounds are queries in every protocol in this
/// workspace, and carry no *crucial information* in the §4.1 sense).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiRoundWrite {
    /// Per-round server coverage, in round order.
    pub rounds: Vec<BTreeSet<usize>>,
}

impl MultiRoundWrite {
    /// A `k`-round write whose final round reached `coverage`, with all
    /// earlier rounds skip-free over `servers` servers.
    pub fn new(servers: usize, k: usize, coverage: BTreeSet<usize>) -> Self {
        assert!(k >= 1, "a write has at least one round-trip");
        let full: BTreeSet<usize> = (0..servers).collect();
        let mut rounds = vec![full; k - 1];
        rounds.push(coverage);
        MultiRoundWrite { rounds }
    }

    /// Round-trips of this write.
    pub fn round_trips(&self) -> usize {
        self.rounds.len()
    }
}

/// Collapses a multi-round write to the `(invoked, coverage)` abstraction
/// of the Fig 9 engine: in the crucial-info model, a server's crucial
/// information mentions the write's value iff the *final* (update) round
/// reached it.
///
/// # Examples
///
/// ```
/// use mwr_chains::{collapse_write, MultiRoundWrite};
/// use std::collections::BTreeSet;
///
/// let coverage: BTreeSet<usize> = [0, 1, 2].into_iter().collect();
/// let write = MultiRoundWrite::new(5, 3, coverage.clone());
/// assert_eq!(collapse_write(&write), (true, coverage));
/// ```
pub fn collapse_write(write: &MultiRoundWrite) -> (bool, BTreeSet<usize>) {
    (true, write.rounds.last().cloned().unwrap_or_default())
}

/// The Fig 9 outcome for a system whose writes take `write_rounds`
/// round-trips (§5.1's generalization).
///
/// Verifies the collapse identity — every `k`-round write in the block
/// family projects to exactly the `(invoked, coverage)` pair the engine
/// models — then delegates to [`fig9_outcome`]: *"the rest of the
/// impossibility proof is not affected."*
///
/// # Panics
///
/// Panics if `write_rounds == 0`.
///
/// # Examples
///
/// ```
/// use mwr_chains::fastread::Fig9Outcome;
/// use mwr_chains::wkr1_outcome;
///
/// // S = 4, t = 1, R = 3: infeasible band where the engine fires,
/// // regardless of how many round-trips writes take.
/// for k in 2..=5 {
///     assert!(matches!(wkr1_outcome(4, 1, 3, k), Fig9Outcome::Impossible(_)));
/// }
/// ```
pub fn wkr1_outcome(
    servers: usize,
    max_faults: usize,
    readers: usize,
    write_rounds: usize,
) -> Fig9Outcome {
    assert!(write_rounds >= 1, "writes take at least one round-trip");
    // The collapse identity, checked over every coverage the block family
    // uses (the write reaching the first j blocks, j = 0..=S/t).
    for covered in 0..=servers {
        let coverage: BTreeSet<usize> = (0..covered).collect();
        let write = MultiRoundWrite::new(servers, write_rounds, coverage.clone());
        assert_eq!(
            collapse_write(&write),
            (true, coverage),
            "collapse identity violated — §5.1's reduction would be unsound"
        );
    }
    fig9_outcome(servers, max_faults, readers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_w1r2_impossibility;

    #[test]
    fn expansion_preserves_server_count_and_round_one() {
        let base = alpha(4, 2);
        let expanded = expand_reads(&base, 5);
        assert_eq!(expanded.servers(), 4);
        for s in 0..4 {
            assert_eq!(
                expanded.arrives_at(s, Arrival::Read(Reader::R1, 1)),
                base.arrives_at(s, Arrival::Read(Reader::R1, 1))
            );
        }
    }

    #[test]
    fn expansion_inserts_the_block_right_after_round_two() {
        let base = beta(3, 1, Stem::Prev, 1);
        let expanded = expand_reads(&base, 4);
        for s in 0..3 {
            let log = expanded.log(s);
            for reader in [Reader::R1, Reader::R2] {
                if let Some(pos) = log.iter().position(|a| *a == Arrival::Read(reader, 2)) {
                    assert_eq!(log[pos + 1], Arrival::Read(reader, 3), "server {s}");
                    assert_eq!(log[pos + 2], Arrival::Read(reader, 4), "server {s}");
                }
            }
        }
    }

    #[test]
    fn expansion_with_k_two_is_identity_on_logs() {
        let base = beta(4, 2, Stem::At, 3);
        let expanded = expand_reads(&base, 2);
        assert!(expanded.same_logs(&base));
    }

    #[test]
    fn w1rk_certificates_verify_for_k_up_to_five() {
        for servers in 3..=5 {
            for rounds in 2..=5u8 {
                let cert = verify_w1rk_impossibility(servers, rounds)
                    .unwrap_or_else(|e| panic!("S={servers} k={rounds}: {e}"));
                assert_eq!(cert.cases.len(), 2 * servers);
                assert_eq!(cert.alpha_endpoints, (2, 1));
            }
        }
    }

    #[test]
    fn w1rk_at_k_two_matches_the_base_certificate() {
        let base = verify_w1r2_impossibility(4).unwrap();
        let lifted = verify_w1rk_impossibility(4, 2).unwrap();
        assert_eq!(base.cases.len(), lifted.cases.len());
        assert_eq!(base.total_links(), lifted.total_links());
    }

    #[test]
    fn too_few_servers_is_an_error() {
        assert!(matches!(
            verify_w1rk_impossibility(2, 3),
            Err(CertificateError::TooFewServers { .. })
        ));
    }

    #[test]
    fn multi_round_write_collapses_to_its_final_round() {
        let coverage: BTreeSet<usize> = [1, 3].into_iter().collect();
        for k in 1..=4 {
            let w = MultiRoundWrite::new(5, k, coverage.clone());
            assert_eq!(w.round_trips(), k);
            assert_eq!(collapse_write(&w), (true, coverage.clone()));
        }
    }

    #[test]
    fn wkr1_outcomes_are_invariant_in_the_write_round_count() {
        for (s, t, r) in [(4usize, 1usize, 3usize), (6, 2, 2), (5, 1, 2)] {
            let base = format!("{:?}", fig9_outcome(s, t, r));
            for k in 1..=4 {
                assert_eq!(format!("{:?}", wkr1_outcome(s, t, r, k)), base, "S={s} t={t} R={r} k={k}");
            }
        }
    }

    #[test]
    fn certificate_report_renders() {
        let cert = verify_w1rk_impossibility(3, 4).unwrap();
        let text = cert.to_string();
        assert!(text.contains("W1R4"), "{text}");
        assert!(text.contains("all verified"), "{text}");
    }
}
