//! Phase 1: chain α (paper §3.2).
//!
//! The head execution `α_0` runs three non-concurrent operations, all
//! skip-free: `W1 = write(1)`, then `W2 = write(2)`, then `R1 = read()`.
//! Every server receives them in that order, and atomicity forces
//! `R1 = 2`. Execution `α_i` swaps the two writes on servers `s_1 … s_i`;
//! `α_S` has every server seeing `W2` before `W1` and is log-identical to
//! the tail execution (`W2 ≺ W1 ≺ R1`), where atomicity forces `R1 = 1`.
//!
//! Since `R1` returns 2 at one end and 1 at the other, some consecutive
//! pair `(α_{i1−1}, α_{i1})` flips — the *critical server* `s_{i1}` is where
//! Phase 2 aims its skips.

use crate::exec::{Arrival, Execution, Reader, WriteOp};

/// Appends the write arrivals of the α-layout: servers `0..swapped` see
/// `W2` before `W1`, the rest see `W1` before `W2`.
pub(crate) fn append_writes(e: &mut Execution, swapped: usize) {
    for s in 0..e.servers() {
        if s < swapped {
            e.append_at(s, Arrival::Write(WriteOp::W2));
            e.append_at(s, Arrival::Write(WriteOp::W1));
        } else {
            e.append_at(s, Arrival::Write(WriteOp::W1));
            e.append_at(s, Arrival::Write(WriteOp::W2));
        }
    }
}

/// Builds `α_i` over `servers` servers: writes swapped on the first `i`
/// servers, then both round-trips of `R1`, skip-free.
///
/// # Panics
///
/// Panics if `i > servers`.
///
/// # Examples
///
/// ```
/// use mwr_chains::{alpha, Reader};
///
/// let a0 = alpha(3, 0);
/// let a3 = alpha(3, 3);
/// // R1 sees different write orders at the two ends…
/// assert!(!a0.indistinguishable_to(&a3, Reader::R1));
/// ```
pub fn alpha(servers: usize, i: usize) -> Execution {
    assert!(i <= servers, "swap index {i} out of range for {servers} servers");
    let mut e = Execution::new(servers, format!("α_{i}"));
    append_writes(&mut e, i);
    e.append_all(Arrival::Read(Reader::R1, 1), &[]);
    e.append_all(Arrival::Read(Reader::R1, 2), &[]);
    e
}

/// The whole chain `α_0 … α_S`.
pub fn alpha_chain(servers: usize) -> Vec<Execution> {
    (0..=servers).map(|i| alpha(servers, i)).collect()
}

/// The tail execution: `W2 ≺ W1 ≺ R1`, all skip-free. Log-identical to
/// `α_S` — which is precisely why `R1` must return 1 in `α_S`.
pub fn alpha_tail(servers: usize) -> Execution {
    let mut e = alpha(servers, servers);
    e.set_name("α_tail");
    e
}

/// The value atomicity forces `R1` to return in `α_0` (sequential
/// `W1 ≺ W2 ≺ R1`): the last written value, 2.
pub const ALPHA_HEAD_FORCED: u8 = 2;

/// The value atomicity forces `R1` to return in the tail (sequential
/// `W2 ≺ W1 ≺ R1`): 1.
pub const ALPHA_TAIL_FORCED: u8 = 1;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::WriteOp;

    #[test]
    fn chain_has_s_plus_one_executions() {
        assert_eq!(alpha_chain(5).len(), 6);
    }

    #[test]
    fn consecutive_executions_differ_on_exactly_one_server() {
        let chain = alpha_chain(4);
        for i in 1..chain.len() {
            let diffs: Vec<usize> = (0..4)
                .filter(|&s| chain[i - 1].log(s) != chain[i].log(s))
                .collect();
            assert_eq!(diffs, vec![i - 1], "α_{} vs α_{}", i - 1, i);
        }
    }

    #[test]
    fn head_has_12_everywhere_and_tail_21_everywhere() {
        let s = 4;
        let head = alpha(s, 0);
        let tail = alpha_tail(s);
        for srv in 0..s {
            assert_eq!(head.crucial_info(srv), Some((WriteOp::W1, WriteOp::W2)));
            assert_eq!(tail.crucial_info(srv), Some((WriteOp::W2, WriteOp::W1)));
        }
    }

    #[test]
    fn last_chain_execution_is_log_identical_to_tail() {
        for s in 3..=6 {
            assert!(alpha(s, s).same_logs(&alpha_tail(s)));
        }
    }

    #[test]
    fn writes_precede_reads_in_every_chain_execution() {
        for e in alpha_chain(5) {
            assert!(e.writes_precede_reads(), "{e}");
        }
    }

    #[test]
    fn r1_distinguishes_adjacent_executions_without_skips() {
        // With no skips R1 sees every server, so each swap is visible —
        // the whole point of Phases 2–3 is to *hide* the critical swap.
        let chain = alpha_chain(3);
        for i in 1..chain.len() {
            assert!(!chain[i - 1].indistinguishable_to(&chain[i], crate::Reader::R1));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn alpha_rejects_out_of_range_swap() {
        let _ = alpha(3, 4);
    }
}
