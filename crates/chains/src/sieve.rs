//! The sieve-based construction of §4 (Fig 8): discharging the assumption
//! that a read's first round-trip does not affect other reads.
//!
//! In the *crucial-info* model (§4.1) the only server state that can decide
//! a read's return value between `write(1)` and `write(2)` is the order in
//! which the server received the two writes: `"12"` or `"21"`. The first
//! round-trip of a read knows nothing (it is sent before any reply arrives),
//! so its effect on a server is *blind*: either it never changes crucial
//! info, or it flips it identically in every execution of the chain.
//!
//! The sieve partitions the servers into `Σ1` (blindly flipped by `R2(1)`)
//! and `Σ2` (unaffected), rebuilds chain α on `Σ2` only, and observes that
//! the two chain ends still force different values for `R1` — so the chain
//! argument of §3 goes through on the surviving servers, as long as at
//! least 3 remain.

use std::collections::BTreeSet;
use std::fmt;

use crate::certificate::{verify_w1r2_impossibility, CertificateError, W1R2Certificate};

/// A server's crucial information: the order it received the two writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrucialInfo {
    /// Received `write(1)` before `write(2)`.
    OneTwo,
    /// Received `write(2)` before `write(1)`.
    TwoOne,
}

impl CrucialInfo {
    /// The flip applied by a blind first round-trip.
    pub fn flipped(self) -> CrucialInfo {
        match self {
            CrucialInfo::OneTwo => CrucialInfo::TwoOne,
            CrucialInfo::TwoOne => CrucialInfo::OneTwo,
        }
    }
}

impl fmt::Display for CrucialInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrucialInfo::OneTwo => write!(f, "12"),
            CrucialInfo::TwoOne => write!(f, "21"),
        }
    }
}

/// One execution of the sieved chain `α̂`, as crucial-info state after the
/// writes, the blind effect of `R2(1)`, and the chain's swaps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrucialExecution {
    /// Name for reports (`α̂_j`).
    pub name: String,
    /// Per-server crucial info as observed by `R1`'s round-trips.
    pub info: Vec<CrucialInfo>,
}

impl fmt::Display for CrucialExecution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.name)?;
        for (s, ci) in self.info.iter().enumerate() {
            if s > 0 {
                write!(f, " ")?;
            }
            write!(f, "s{}={}", s + 1, ci)?;
        }
        Ok(())
    }
}

/// The result of sieving: the surviving chain and its endpoint facts.
#[derive(Debug, Clone)]
pub struct SieveReport {
    /// Total servers `S`.
    pub servers: usize,
    /// Servers blindly affected by `R2(1)` (eliminated).
    pub sigma1: BTreeSet<usize>,
    /// Surviving servers the chain runs over.
    pub sigma2: BTreeSet<usize>,
    /// The sieved chain `α̂_0 … α̂_x` (`x = |Σ2|`).
    pub chain: Vec<CrucialExecution>,
    /// Whether enough servers survive for the §3 chain argument (`≥ 3`).
    pub viable: bool,
}

impl SieveReport {
    /// Verifies the §3 certificate on the surviving servers, mechanizing
    /// the paper's "the chain argument can still be successfully conducted
    /// on servers that remain".
    ///
    /// # Errors
    ///
    /// Returns [`CertificateError::TooFewServers`] when fewer than 3
    /// servers survive (then `t = 1` could not be tolerated by `Σ2` alone,
    /// contradicting the assumption that the implementation was correct).
    pub fn surviving_certificate(&self) -> Result<W1R2Certificate, CertificateError> {
        verify_w1r2_impossibility(self.sigma2.len())
    }
}

impl fmt::Display for SieveReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "sieve over S = {}: Σ1 = {{{}}} (blindly flipped by R2(1)), Σ2 = {{{}}}",
            self.servers,
            self.sigma1.iter().map(|s| format!("s{}", s + 1)).collect::<Vec<_>>().join(","),
            self.sigma2.iter().map(|s| format!("s{}", s + 1)).collect::<Vec<_>>().join(","),
        )?;
        for e in &self.chain {
            writeln!(f, "  {e}")?;
        }
        writeln!(
            f,
            "chain shortened to {} steps; R1 forced 2 at the head, 1 at the tail; {}",
            self.chain.len().saturating_sub(1),
            if self.viable {
                "≥ 3 servers survive — §3 chains apply"
            } else {
                "fewer than 3 survive — Σ2 could not tolerate t = 1, contradiction already"
            }
        )
    }
}

/// Builds the sieved chain `α̂` for `servers` servers where `R2(1)` blindly
/// flips the crucial info of the servers in `sigma1`.
///
/// The head `α̂_0` starts from `W1 ≺ W2` (`"12"` everywhere); the blind
/// flip turns `Σ1` to `"21"`; the chain then swaps one `Σ2` server at a
/// time. Along the chain, `Σ1`'s info never changes — mechanically showing
/// the paper's observation that eliminated servers behave identically in
/// every chain execution.
///
/// # Panics
///
/// Panics if `sigma1` mentions servers out of range.
///
/// # Examples
///
/// ```
/// use std::collections::BTreeSet;
/// use mwr_chains::sieve::sieve_chain;
///
/// let report = sieve_chain(5, &BTreeSet::from([3, 4]));
/// assert!(report.viable); // 3 servers survive
/// assert!(report.surviving_certificate().is_ok());
/// ```
pub fn sieve_chain(servers: usize, sigma1: &BTreeSet<usize>) -> SieveReport {
    assert!(
        sigma1.iter().all(|&s| s < servers),
        "Σ1 mentions servers out of range"
    );
    let sigma2: BTreeSet<usize> = (0..servers).filter(|s| !sigma1.contains(s)).collect();
    let sigma2_order: Vec<usize> = sigma2.iter().copied().collect();

    let mut chain = Vec::new();
    for j in 0..=sigma2_order.len() {
        let mut info = vec![CrucialInfo::OneTwo; servers];
        // Blind effect of R2(1): identical in every chain execution.
        for &s in sigma1 {
            info[s] = info[s].flipped();
        }
        // Chain swaps on the first j surviving servers.
        for &s in sigma2_order.iter().take(j) {
            info[s] = CrucialInfo::TwoOne;
        }
        chain.push(CrucialExecution { name: format!("α̂_{j}"), info });
    }

    SieveReport {
        servers,
        sigma1: sigma1.clone(),
        sigma2,
        viable: sigma2_order.len() >= 3,
        chain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigma1_info_is_constant_along_the_chain() {
        let sigma1 = BTreeSet::from([1, 3]);
        let report = sieve_chain(6, &sigma1);
        for e in &report.chain {
            for &s in &sigma1 {
                assert_eq!(e.info[s], CrucialInfo::TwoOne, "{e}");
            }
        }
    }

    #[test]
    fn chain_ends_force_different_values() {
        let report = sieve_chain(5, &BTreeSet::from([4]));
        let head = &report.chain[0];
        let tail = report.chain.last().unwrap();
        // Head: every surviving server shows "12" (R1 must return 2);
        // tail: every server shows "21" (view-identical to W2 ≺ W1 ≺ R1,
        // so R1 must return 1).
        for &s in &report.sigma2 {
            assert_eq!(head.info[s], CrucialInfo::OneTwo);
            assert_eq!(tail.info[s], CrucialInfo::TwoOne);
        }
        assert!(tail.info.iter().all(|ci| *ci == CrucialInfo::TwoOne));
    }

    #[test]
    fn chain_length_equals_surviving_servers() {
        let report = sieve_chain(7, &BTreeSet::from([0, 6]));
        assert_eq!(report.sigma2.len(), 5);
        assert_eq!(report.chain.len(), 6);
    }

    #[test]
    fn adjacent_executions_differ_on_one_surviving_server() {
        let report = sieve_chain(6, &BTreeSet::from([2]));
        for w in report.chain.windows(2) {
            let diffs: Vec<usize> = (0..6)
                .filter(|&s| w[0].info[s] != w[1].info[s])
                .collect();
            assert_eq!(diffs.len(), 1);
            assert!(report.sigma2.contains(&diffs[0]));
        }
    }

    #[test]
    fn viability_needs_three_survivors() {
        assert!(sieve_chain(5, &BTreeSet::from([0, 1])).viable);
        assert!(!sieve_chain(5, &BTreeSet::from([0, 1, 2])).viable);
        let small = sieve_chain(4, &BTreeSet::from([0, 1]));
        assert!(small.surviving_certificate().is_err());
    }

    #[test]
    fn surviving_certificate_composes_with_phase_three() {
        let report = sieve_chain(8, &BTreeSet::from([5, 6, 7]));
        let cert = report.surviving_certificate().unwrap();
        assert_eq!(cert.servers, 5);
    }

    #[test]
    fn empty_sigma1_reduces_to_plain_chain_alpha() {
        let report = sieve_chain(4, &BTreeSet::new());
        assert_eq!(report.sigma2.len(), 4);
        assert_eq!(report.chain.len(), 5);
        assert!(report.chain[0].info.iter().all(|ci| *ci == CrucialInfo::OneTwo));
    }

    #[test]
    fn report_renders() {
        let text = sieve_chain(5, &BTreeSet::from([4])).to_string();
        assert!(text.contains("Σ1 = {s5}"), "{text}");
        assert!(text.contains("α̂_0"), "{text}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_sigma1() {
        let _ = sieve_chain(3, &BTreeSet::from([9]));
    }
}
