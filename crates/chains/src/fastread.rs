//! The fast-read (W2R1) lower bound — §5.1 / Fig 9, mechanized as a
//! forced-value engine over families of executions.
//!
//! # Model
//!
//! One writer writes `1` (initial value `0`); reads are *fast* (a single
//! round-trip). Executions are parameterized by which servers the write's
//! effectful (update) round reached — per §5.1 the write's round-trips
//! happen consecutively before all reads, and its query round is common to
//! every execution compared, so only the update round's *coverage* matters.
//! Each read may skip at most `t` servers; replies are full-info log
//! prefixes. Reader *memory* is modelled exactly: a read's request carries
//! its reader's complete prior knowledge, so any difference observed by an
//! earlier read of the same reader "leaks" into every later log — view
//! signatures account for this recursively.
//!
//! # The engine
//!
//! [`derive()`] computes, for a family of executions, everything atomicity
//! *forces*:
//!
//! 1. the write completed (reached `≥ S − t` servers) before the reads ⇒
//!    every read returns 1;
//! 2. the write was never invoked ⇒ every read returns 0;
//! 3. reads are sequential ⇒ no new/old inversion (an earlier 1 forces
//!    later 1s; a later 0 forces earlier 0s);
//! 4. two reads in the *same situation* (equal view and reader knowledge —
//!    no deterministic algorithm can split them) return the same value.
//!
//! A contradiction (some read forced to both 0 and 1) proves no fast-read
//! implementation exists for the family's parameters.
//!
//! # Scope
//!
//! [`fig9_outcome`] builds the block construction (Fig 9's `B1 … Bm`) with
//! one read per reader. It derives the contradiction whenever
//! `S ≤ (R + 1)·t`. The paper's tight bound is impossibility for
//! `R ≥ S/t − 2`, i.e. `S ≤ (R + 2)·t`; the remaining band relies on the
//! reader-reuse argument of Dutta et al. \[12\] (Fig 9's repeated `R1`),
//! which this engine can express but whose certificate we do not hard-code
//! — see `DESIGN.md` for the substitution note. The feasible side is also
//! checked: for `R < S/t − 2` the engine must *not* derive a contradiction.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// One fast read in an execution: who reads, and which servers its single
/// round-trip skips.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastRead {
    /// Zero-based reader index.
    pub reader: usize,
    /// Servers the round-trip skips (`|skip| ≤ t`).
    pub skip: BTreeSet<usize>,
}

/// An execution of the fast-read model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrExecution {
    /// Name for reports.
    pub name: String,
    /// Number of servers.
    pub servers: usize,
    /// Fault bound `t`.
    pub max_faults: usize,
    /// Whether the write was invoked at all.
    pub write_invoked: bool,
    /// Servers the write's update round reached (before any read).
    pub coverage: BTreeSet<usize>,
    /// The reads, in temporal order (non-concurrent).
    pub reads: Vec<FastRead>,
}

impl FrExecution {
    /// Whether the write completed before the reads (`≥ S − t` servers).
    pub fn write_complete(&self) -> bool {
        self.write_invoked && self.coverage.len() >= self.servers - self.max_faults
    }
}

/// The signature of a read's *request*: the reader plus everything the
/// reader knew when sending it (the view signatures of its earlier reads).
/// Deterministic algorithms send equal requests in equal situations.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct RequestSig {
    reader: usize,
    memory: Vec<ViewSig>,
}

/// What one server's reply contains, as comparable data.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum EntrySig {
    /// The write's update round.
    Write,
    /// An earlier read's request (with its full knowledge — the leak).
    Read(RequestSig),
}

/// The signature of one read's view: for each replying server, the log
/// prefix it returned.
type ViewSig = BTreeMap<usize, Vec<EntrySig>>;

fn view_sig(e: &FrExecution, k: usize) -> ViewSig {
    let read = &e.reads[k];
    let mut view = BTreeMap::new();
    for s in 0..e.servers {
        if read.skip.contains(&s) {
            continue;
        }
        let mut log = Vec::new();
        if e.write_invoked && e.coverage.contains(&s) {
            log.push(EntrySig::Write);
        }
        for (j, earlier) in e.reads.iter().enumerate().take(k) {
            if !earlier.skip.contains(&s) {
                log.push(EntrySig::Read(request_sig(e, j)));
            }
        }
        log.push(EntrySig::Read(request_sig(e, k)));
        view.insert(s, log);
    }
    view
}

fn request_sig(e: &FrExecution, k: usize) -> RequestSig {
    let reader = e.reads[k].reader;
    let memory = (0..k)
        .filter(|&j| e.reads[j].reader == reader)
        .map(|j| view_sig(e, j))
        .collect();
    RequestSig { reader, memory }
}

/// The *situation* of a read: its request (knowledge) plus its view. Two
/// reads in the same situation cannot be split by any deterministic
/// algorithm.
fn situation(e: &FrExecution, k: usize) -> (RequestSig, ViewSig) {
    (request_sig(e, k), view_sig(e, k))
}

/// A derived contradiction: one equivalence class of reads forced to both
/// values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Contradiction {
    /// `(execution name, read index)` forced to 0.
    pub forced_zero: (String, usize),
    /// `(execution name, read index)` forced to 1.
    pub forced_one: (String, usize),
}

impl fmt::Display for Contradiction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "read #{} of {} is forced to 0 while the indistinguishable read #{} of {} is forced to 1",
            self.forced_zero.1 + 1,
            self.forced_zero.0,
            self.forced_one.1 + 1,
            self.forced_one.0
        )
    }
}

/// The engine's verdict for a family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Atomicity forces a read to two different values: no fast-read
    /// implementation exists for these parameters.
    Contradiction(Contradiction),
    /// The rules reached a fixpoint without conflict.
    NoContradiction,
}

impl Outcome {
    /// Whether a contradiction was derived.
    pub fn is_contradiction(&self) -> bool {
        matches!(self, Outcome::Contradiction(_))
    }
}

/// Runs the forced-value fixpoint over a family of executions.
///
/// # Examples
///
/// A complete write forces 1; the same read pattern without the write
/// forces 0; no overlap, no contradiction:
///
/// ```
/// use std::collections::BTreeSet;
/// use mwr_chains::fastread::{derive, FastRead, FrExecution, Outcome};
///
/// let read = FastRead { reader: 0, skip: BTreeSet::new() };
/// let with_write = FrExecution {
///     name: "e1".into(), servers: 3, max_faults: 1, write_invoked: true,
///     coverage: BTreeSet::from([0, 1, 2]), reads: vec![read.clone()],
/// };
/// let without = FrExecution {
///     name: "e0".into(), servers: 3, max_faults: 1, write_invoked: false,
///     coverage: BTreeSet::new(), reads: vec![read],
/// };
/// assert_eq!(derive(&[with_write, without]), Outcome::NoContradiction);
/// ```
pub fn derive(family: &[FrExecution]) -> Outcome {
    // Group cells (exec, read) by situation.
    let mut groups: HashMap<(RequestSig, ViewSig), Vec<(usize, usize)>> = HashMap::new();
    for (ei, e) in family.iter().enumerate() {
        for k in 0..e.reads.len() {
            groups.entry(situation(e, k)).or_default().push((ei, k));
        }
    }
    let mut group_of: HashMap<(usize, usize), usize> = HashMap::new();
    let groups: Vec<Vec<(usize, usize)>> = groups.into_values().collect();
    for (gid, cells) in groups.iter().enumerate() {
        for cell in cells {
            group_of.insert(*cell, gid);
        }
    }

    #[derive(Clone, Copy, PartialEq)]
    enum Forced {
        Unknown,
        Zero((usize, usize)),
        One((usize, usize)),
    }
    let mut value: Vec<Forced> = vec![Forced::Unknown; groups.len()];
    let mut conflict: Option<Contradiction> = None;

    let set = |value: &mut Vec<Forced>,
                   conflict: &mut Option<Contradiction>,
                   cell: (usize, usize),
                   v: u8|
     -> bool {
        let gid = group_of[&cell];
        match (value[gid], v) {
            (Forced::Unknown, 0) => {
                value[gid] = Forced::Zero(cell);
                true
            }
            (Forced::Unknown, 1) => {
                value[gid] = Forced::One(cell);
                true
            }
            (Forced::Zero(_), 0) | (Forced::One(_), 1) => false,
            (Forced::Zero(zc), 1) => {
                conflict.get_or_insert(Contradiction {
                    forced_zero: (family[zc.0].name.clone(), zc.1),
                    forced_one: (family[cell.0].name.clone(), cell.1),
                });
                false
            }
            (Forced::One(oc), 0) => {
                conflict.get_or_insert(Contradiction {
                    forced_zero: (family[cell.0].name.clone(), cell.1),
                    forced_one: (family[oc.0].name.clone(), oc.1),
                });
                false
            }
            _ => unreachable!("values are 0 or 1"),
        }
    };

    // Base facts.
    let mut changed = true;
    for (ei, e) in family.iter().enumerate() {
        for k in 0..e.reads.len() {
            if e.write_complete() {
                set(&mut value, &mut conflict, (ei, k), 1);
            }
            if !e.write_invoked {
                set(&mut value, &mut conflict, (ei, k), 0);
            }
        }
    }

    // Fixpoint: monotonicity within each execution (group propagation is
    // implicit via shared group values).
    while changed && conflict.is_none() {
        changed = false;
        for (ei, e) in family.iter().enumerate() {
            for k in 0..e.reads.len() {
                let gid = group_of[&(ei, k)];
                match value[gid] {
                    Forced::One(_) => {
                        for later in k + 1..e.reads.len() {
                            changed |= set(&mut value, &mut conflict, (ei, later), 1);
                        }
                    }
                    Forced::Zero(_) => {
                        for earlier in 0..k {
                            changed |= set(&mut value, &mut conflict, (ei, earlier), 0);
                        }
                    }
                    Forced::Unknown => {}
                }
                if conflict.is_some() {
                    break;
                }
            }
        }
    }

    match conflict {
        Some(c) => Outcome::Contradiction(c),
        None => Outcome::NoContradiction,
    }
}

/// Why the block construction does not apply to a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fig9Error {
    /// The construction needs `S ≤ (R + 1)·t` to form `R + 1` blocks of at
    /// most `t` servers. Configurations in the band
    /// `(R + 1)·t < S ≤ (R + 2)·t` are impossible by Dutta et al. \[12\]
    /// (reader reuse); see the module docs.
    BlocksTooLarge {
        /// Servers.
        servers: usize,
        /// Fault bound.
        max_faults: usize,
        /// Readers.
        readers: usize,
    },
    /// Degenerate parameters (no servers, no readers, or `t = 0` — with
    /// `t = 0` fast reads are trivially possible).
    Degenerate,
}

impl fmt::Display for Fig9Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fig9Error::BlocksTooLarge { servers, max_faults, readers } => write!(
                f,
                "block construction needs S ≤ (R+1)t: S={servers}, t={max_faults}, R={readers}"
            ),
            Fig9Error::Degenerate => write!(f, "degenerate parameters"),
        }
    }
}

impl std::error::Error for Fig9Error {}

/// Builds the Fig 9 block family for `(S, t, R)`: blocks `D_1 … D_{R+1}`,
/// executions `e_j` with write coverage `D_1 ∪ … ∪ D_j`, one no-write
/// execution, and the bridging read pattern (read `i` skips `D_{m−i}`,
/// the final read skips `D_1`).
///
/// # Errors
///
/// Returns [`Fig9Error`] if the parameters do not admit the construction.
pub fn fig9_family(
    servers: usize,
    max_faults: usize,
    readers: usize,
) -> Result<Vec<FrExecution>, Fig9Error> {
    if servers == 0 || readers == 0 || max_faults == 0 || max_faults >= servers {
        return Err(Fig9Error::Degenerate);
    }
    let m = readers + 1; // number of blocks
    if servers > m * max_faults {
        return Err(Fig9Error::BlocksTooLarge { servers, max_faults, readers });
    }
    // Partition servers into m blocks of ≤ t, round-robin chunks.
    let mut blocks: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); m];
    for s in 0..servers {
        blocks[s % m].insert(s);
    }

    // Read pattern: read i (1-based) skips D_{m−i} for i < R; the final
    // read skips D_1.
    let mut reads = Vec::new();
    for i in 1..readers {
        // Read i skips D_{m−i} (1-based), i.e. blocks[m − i − 1].
        reads.push(FastRead { reader: i - 1, skip: blocks[m - i - 1].clone() });
    }
    reads.push(FastRead { reader: readers - 1, skip: blocks[0].clone() });

    let mut family = Vec::new();
    for j in 0..=m {
        let coverage: BTreeSet<usize> =
            blocks.iter().take(j).flat_map(|b| b.iter().copied()).collect();
        family.push(FrExecution {
            name: format!("e_{j}"),
            servers,
            max_faults,
            write_invoked: true,
            coverage,
            reads: reads.clone(),
        });
    }
    family.push(FrExecution {
        name: "e_nw".into(),
        servers,
        max_faults,
        write_invoked: false,
        coverage: BTreeSet::new(),
        reads,
    });
    Ok(family)
}

/// The verdict of the mechanized Fig 9 construction for `(S, t, R)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fig9Outcome {
    /// The engine derived the contradiction: fast reads are impossible.
    Impossible(Contradiction),
    /// The engine reached a fixpoint without conflict (expected exactly
    /// when the configuration is feasible or in the documented \[12\] band).
    NotDerived,
    /// The block construction does not apply.
    Inapplicable(Fig9Error),
}

impl fmt::Display for Fig9Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fig9Outcome::Impossible(c) => write!(f, "impossible — {c}"),
            Fig9Outcome::NotDerived => write!(f, "no contradiction derived"),
            Fig9Outcome::Inapplicable(e) => write!(f, "inapplicable — {e}"),
        }
    }
}

/// Runs the Fig 9 construction end to end.
///
/// # Examples
///
/// ```
/// use mwr_chains::fastread::{fig9_outcome, Fig9Outcome};
///
/// // S = 4, t = 1, R = 3: S ≤ (R+1)t, the contradiction is derived.
/// assert!(matches!(fig9_outcome(4, 1, 3), Fig9Outcome::Impossible(_)));
/// // S = 5, t = 1, R = 2: feasible (R < S/t − 2) — and indeed underivable.
/// assert!(matches!(fig9_outcome(5, 1, 2), Fig9Outcome::Inapplicable(_)));
/// ```
pub fn fig9_outcome(servers: usize, max_faults: usize, readers: usize) -> Fig9Outcome {
    match fig9_family(servers, max_faults, readers) {
        Err(e) => Fig9Outcome::Inapplicable(e),
        Ok(family) => match derive(&family) {
            Outcome::Contradiction(c) => Fig9Outcome::Impossible(c),
            Outcome::NoContradiction => Fig9Outcome::NotDerived,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contradiction_derived_at_and_above_the_constructive_band() {
        // S ≤ (R+1)t cases — all above the paper's bound R ≥ S/t − 2.
        for (s, t, r) in [(2, 1, 1), (3, 1, 2), (4, 1, 3), (4, 2, 1), (6, 2, 2), (6, 3, 1)] {
            let outcome = fig9_outcome(s, t, r);
            assert!(
                matches!(outcome, Fig9Outcome::Impossible(_)),
                "S={s} t={t} R={r}: {outcome}"
            );
        }
    }

    #[test]
    fn no_contradiction_for_feasible_configurations() {
        // R < S/t − 2: the paper gives an implementation, so no engine on
        // any family may derive a contradiction. These configs are also
        // outside the block construction (S > (R+1)t), so build the
        // nearest applicable family manually and check the engine stays
        // silent.
        for (s, t, r) in [(5, 1, 2), (7, 1, 4), (9, 2, 2)] {
            assert!(
                t * (r + 2) < s,
                "test precondition: feasible per the paper"
            );
            assert!(matches!(
                fig9_outcome(s, t, r),
                Fig9Outcome::Inapplicable(_) | Fig9Outcome::NotDerived
            ));
        }
    }

    #[test]
    fn engine_is_sound_on_a_feasible_handmade_family() {
        // S = 5, t = 1, R = 2 (feasible): reads skipping single servers,
        // all coverages — no contradiction may appear.
        let servers = 5;
        let mut family = Vec::new();
        let reads = vec![
            FastRead { reader: 0, skip: BTreeSet::from([1]) },
            FastRead { reader: 1, skip: BTreeSet::from([2]) },
        ];
        for cov in 0..=servers {
            family.push(FrExecution {
                name: format!("c{cov}"),
                servers,
                max_faults: 1,
                write_invoked: true,
                coverage: (0..cov).collect(),
                reads: reads.clone(),
            });
        }
        family.push(FrExecution {
            name: "nw".into(),
            servers,
            max_faults: 1,
            write_invoked: false,
            coverage: BTreeSet::new(),
            reads,
        });
        assert_eq!(derive(&family), Outcome::NoContradiction);
    }

    #[test]
    fn memory_leaks_break_naive_equalities() {
        // Two executions differing in coverage of a server seen by the
        // FIRST read of a reader: that reader's SECOND read is not in the
        // same situation even though its own replies look identical —
        // the earlier view leaks through the request.
        let base = |coverage: BTreeSet<usize>, name: &str| FrExecution {
            name: name.into(),
            servers: 3,
            max_faults: 1,
            write_invoked: true,
            coverage,
            reads: vec![
                FastRead { reader: 0, skip: BTreeSet::from([1]) },
                FastRead { reader: 0, skip: BTreeSet::from([0]) },
            ],
        };
        let a = base(BTreeSet::from([0]), "a"); // read 1 sees W on s0
        let b = base(BTreeSet::new(), "b"); // read 1 sees nothing
        assert_ne!(situation(&a, 1), situation(&b, 1), "request leak must differ");
        // …while two truly identical executions share situations.
        let c = base(BTreeSet::from([0]), "c");
        assert_eq!(situation(&a, 1), situation(&c, 1));
    }

    #[test]
    fn write_completion_threshold() {
        let e = |cov: usize| FrExecution {
            name: "x".into(),
            servers: 5,
            max_faults: 2,
            write_invoked: true,
            coverage: (0..cov).collect(),
            reads: vec![],
        };
        assert!(!e(2).write_complete());
        assert!(e(3).write_complete());
    }

    #[test]
    fn fig9_blocks_respect_the_fault_bound() {
        let family = fig9_family(6, 2, 2).unwrap();
        for e in &family {
            for r in &e.reads {
                assert!(r.skip.len() <= 2, "skip exceeds t in {}", e.name);
            }
        }
        // R+1 = 3 blocks over 6 servers, sizes 2/2/2.
        assert_eq!(family.len(), 3 + 1 + 1); // e_0..e_3 + e_nw
    }

    #[test]
    fn degenerate_parameters_are_rejected() {
        assert!(matches!(fig9_family(3, 0, 2), Err(Fig9Error::Degenerate)));
        assert!(matches!(fig9_family(0, 1, 2), Err(Fig9Error::Degenerate)));
        assert!(matches!(
            fig9_family(9, 1, 2),
            Err(Fig9Error::BlocksTooLarge { .. })
        ));
    }

    #[test]
    fn contradiction_report_is_readable() {
        let Fig9Outcome::Impossible(c) = fig9_outcome(3, 1, 2) else {
            panic!("expected contradiction");
        };
        let text = c.to_string();
        assert!(text.contains("forced to 0"), "{text}");
        assert!(text.contains("forced to 1"), "{text}");
    }
}
