//! Version tags `(ts, wid)` ordering the values written by multiple writers.
//!
//! The paper's multi-writer algorithms (§5.2) denote a written value by the
//! pair `(ts, wi)` — a timestamp plus the writer's identifier — and order all
//! values lexicographically: `(ts1, wi) < (ts2, wj) ⟺ ts1 < ts2 ∨ (ts1 = ts2
//! ∧ wi < wj)`. The two-round-trip write ensures that non-concurrent writes
//! get increasing timestamps, so equal timestamps imply concurrent writes and
//! the writer-id tiebreak is safe (Lemma MWA0).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::WriterId;

/// The writer component of a [`Tag`]: either the initial pseudo-writer `⊥`
/// (no write has happened) or a real writer.
///
/// `⊥` orders strictly below every real writer, matching the paper's initial
/// value `(0, ⊥)`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum WriterSlot {
    /// The initial pseudo-writer `⊥`; smaller than every real writer.
    #[default]
    Bottom,
    /// A real writer.
    Writer(WriterId),
}

impl fmt::Display for WriterSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriterSlot::Bottom => write!(f, "⊥"),
            WriterSlot::Writer(w) => write!(f, "{w}"),
        }
    }
}

impl From<WriterId> for WriterSlot {
    fn from(w: WriterId) -> Self {
        WriterSlot::Writer(w)
    }
}

/// A totally ordered version tag `(ts, wid)`.
///
/// Tags are the backbone of every protocol in `mwr-core`: queries return the
/// highest tag a quorum has seen, writes propose `(maxTS + 1, wi)`, and reads
/// return the value attached to the winning tag.
///
/// # Examples
///
/// ```
/// use mwr_types::{Tag, WriterId};
///
/// let initial = Tag::initial();
/// let w0 = Tag::new(1, WriterId::new(0));
/// let w1 = Tag::new(1, WriterId::new(1));
/// assert!(initial < w0);
/// assert!(w0 < w1); // same timestamp: writer id breaks the tie
/// assert_eq!(w1.next(WriterId::new(0)), Tag::new(2, WriterId::new(0)));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Tag {
    ts: u64,
    wid: WriterSlot,
}

impl Tag {
    /// Creates a tag for a value written by `writer` at timestamp `ts`.
    pub const fn new(ts: u64, writer: WriterId) -> Self {
        Tag {
            ts,
            wid: WriterSlot::Writer(writer),
        }
    }

    /// The initial tag `(0, ⊥)` carried by the register before any write.
    pub const fn initial() -> Self {
        Tag {
            ts: 0,
            wid: WriterSlot::Bottom,
        }
    }

    /// Returns the timestamp component.
    pub const fn ts(self) -> u64 {
        self.ts
    }

    /// Returns the writer component.
    pub const fn writer(self) -> WriterSlot {
        self.wid
    }

    /// Returns `true` if this is the initial tag `(0, ⊥)`.
    pub fn is_initial(self) -> bool {
        self == Tag::initial()
    }

    /// The tag a writer proposes after observing this tag as the maximum:
    /// `(ts + 1, writer)` (Algorithm 1, line 9).
    #[must_use]
    pub fn next(self, writer: WriterId) -> Tag {
        Tag::new(self.ts + 1, writer)
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.ts, self.wid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_tag_is_smallest() {
        let init = Tag::initial();
        assert!(init.is_initial());
        assert!(init < Tag::new(0, WriterId::new(0)));
        assert!(init < Tag::new(1, WriterId::new(7)));
        assert_eq!(init, Tag::default());
    }

    #[test]
    fn lexicographic_order_matches_paper_definition() {
        // (ts1, wi) < (ts2, wj) iff ts1 < ts2 or (ts1 = ts2 and wi < wj).
        let cases = [
            (Tag::new(1, WriterId::new(5)), Tag::new(2, WriterId::new(0))),
            (Tag::new(3, WriterId::new(0)), Tag::new(3, WriterId::new(1))),
            (Tag::initial(), Tag::new(0, WriterId::new(0))),
        ];
        for (lo, hi) in cases {
            assert!(lo < hi, "{lo} should be < {hi}");
            assert!(hi > lo);
        }
    }

    #[test]
    fn next_increments_timestamp_and_takes_ownership_of_writer() {
        let t = Tag::new(4, WriterId::new(1));
        let n = t.next(WriterId::new(0));
        assert_eq!(n.ts(), 5);
        assert_eq!(n.writer(), WriterSlot::Writer(WriterId::new(0)));
        assert!(n > t);
    }

    #[test]
    fn display_renders_bottom() {
        assert_eq!(Tag::initial().to_string(), "(0, ⊥)");
        assert_eq!(Tag::new(2, WriterId::new(0)).to_string(), "(2, w1)");
    }

    #[test]
    fn concurrent_writes_with_equal_ts_are_ordered_by_writer() {
        // The correctness hinge of §5.2: equal ts values can only arise from
        // concurrent writes, which the writer-id order may order arbitrarily.
        let a = Tag::new(7, WriterId::new(0));
        let b = Tag::new(7, WriterId::new(1));
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    mod order_properties {
        //! Fast-path property tests: `Tag`'s `Ord` is the total order the
        //! protocols rely on (every quorum max, admissibility check, and
        //! checker verdict reduces to tag comparisons).

        use super::*;
        use proptest::prelude::*;

        fn arb_tag() -> impl Strategy<Value = Tag> {
            (0u64..50, 0u32..8, any::<bool>()).prop_map(|(ts, w, bottom)| {
                if bottom {
                    Tag::initial()
                } else {
                    Tag::new(ts, WriterId::new(w))
                }
            })
        }

        proptest! {
            #[test]
            fn totality(a in arb_tag(), b in arb_tag()) {
                // Exactly one of <, ==, > holds.
                let relations =
                    [a < b, a == b, a > b].iter().filter(|&&r| r).count();
                prop_assert_eq!(relations, 1);
            }

            #[test]
            fn antisymmetry(a in arb_tag(), b in arb_tag()) {
                if a <= b && b <= a {
                    prop_assert_eq!(a, b);
                }
            }

            #[test]
            fn transitivity(a in arb_tag(), b in arb_tag(), c in arb_tag()) {
                let (x, y, z) = {
                    let mut v = [a, b, c];
                    v.sort();
                    (v[0], v[1], v[2])
                };
                prop_assert!(x <= y && y <= z && x <= z);
            }

            #[test]
            fn order_is_lexicographic_with_writer_tiebreak(
                a in arb_tag(),
                b in arb_tag(),
            ) {
                // The paper's definition, restated independently of the
                // derived impl: ts first, writer slot (⊥ smallest) second.
                let expected = a.ts().cmp(&b.ts()).then(a.writer().cmp(&b.writer()));
                prop_assert_eq!(a.cmp(&b), expected);
            }

            #[test]
            fn bottom_is_the_unique_minimum(a in arb_tag()) {
                prop_assert!(Tag::initial() <= a);
                if a != Tag::initial() {
                    prop_assert!(Tag::initial() < a);
                }
            }

            #[test]
            fn next_is_strictly_increasing(a in arb_tag(), w in 0u32..8) {
                // Algorithm 1 line 9: the proposed tag dominates the
                // observed maximum regardless of writer ids.
                prop_assert!(a.next(WriterId::new(w)) > a);
            }
        }
    }
}
