//! Configuration epochs for live server-set reconfiguration.
//!
//! A [`ConfigEpoch`] names one generation of the cluster's server set. The
//! initial deployment is epoch 0; every reconfiguration consumes two epochs —
//! an odd *joint* epoch in which operations must gather a quorum in **both**
//! the old and new configurations, and the even *committed* epoch that
//! follows once joining servers hold a transferred state quorum. Epochs are
//! carried in the wire-version-3 frame header ([`Msg::InEpoch`] in
//! `mwr-core`); legacy v1/v2 frames decode as epoch 0, so a cluster that
//! never reconfigures is byte-identical to one built before epochs existed.
//!
//! [`Msg::InEpoch`]: https://docs.rs/mwr-core

use std::fmt;

use serde::{Deserialize, Serialize};

/// One generation of the cluster's server-set configuration.
///
/// Totally ordered; servers and clients adopt the maximum epoch they have
/// observed and never move backwards (monotonicity is property-tested in
/// `tests/reconfig_properties.rs`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ConfigEpoch(u32);

impl ConfigEpoch {
    /// The initial deployment's epoch. Legacy frames (wire v1/v2) decode as
    /// this epoch, and servers at this epoch emit legacy frames.
    pub const ZERO: ConfigEpoch = ConfigEpoch(0);

    /// Constructs an epoch from its raw generation number.
    pub fn new(raw: u32) -> Self {
        ConfigEpoch(raw)
    }

    /// The raw generation number.
    pub fn get(self) -> u32 {
        self.0
    }

    /// The epoch after this one.
    ///
    /// # Panics
    ///
    /// Panics on overflow — 2³² generations exceeds any real deployment.
    pub fn next(self) -> Self {
        ConfigEpoch(self.0.checked_add(1).expect("ConfigEpoch overflow"))
    }

    /// `max(self, other)` — the adoption rule for every process: observing
    /// a frame tagged with a higher epoch moves you forward, never back.
    pub fn adopt(self, other: ConfigEpoch) -> Self {
        self.max(other)
    }
}

impl fmt::Display for ConfigEpoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<u32> for ConfigEpoch {
    fn from(raw: u32) -> Self {
        ConfigEpoch(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_adoption() {
        let e0 = ConfigEpoch::ZERO;
        let e1 = e0.next();
        let e2 = e1.next();
        assert!(e0 < e1 && e1 < e2);
        assert_eq!(e1.adopt(e0), e1, "adoption never regresses");
        assert_eq!(e0.adopt(e2), e2);
        assert_eq!(e2.get(), 2);
        assert_eq!(format!("{e2}"), "e2");
        assert_eq!(ConfigEpoch::from(7u32), ConfigEpoch::new(7));
    }
}
