//! Register values and tagged values.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::tag::Tag;

/// A value stored in the register.
///
/// The paper treats register contents abstractly; experiments only need
/// values to be cheaply copyable and distinguishable, so a `u64` payload
/// suffices. The live runtime's wire codec carries the same representation.
///
/// # Examples
///
/// ```
/// use mwr_types::Value;
///
/// let v = Value::new(42);
/// assert_eq!(v.get(), 42);
/// assert_eq!(v.to_string(), "42");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Value(u64);

impl Value {
    /// Creates a value with the given payload.
    pub const fn new(payload: u64) -> Self {
        Value(payload)
    }

    /// Returns the payload.
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Value {
    fn from(payload: u64) -> Self {
        Value(payload)
    }
}

impl From<Value> for u64 {
    fn from(v: Value) -> Self {
        v.0
    }
}

/// A value together with the version tag that orders it.
///
/// Servers store tagged values; reads return them; the ordering is entirely
/// determined by the [`Tag`] (two distinct writes never share a tag, by
/// Lemma MWA0).
///
/// # Examples
///
/// ```
/// use mwr_types::{Tag, TaggedValue, Value, WriterId};
///
/// let a = TaggedValue::new(Tag::new(1, WriterId::new(0)), Value::new(10));
/// let b = TaggedValue::new(Tag::new(1, WriterId::new(1)), Value::new(20));
/// assert!(a < b);
/// assert_eq!(b.max(a).value(), Value::new(20));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TaggedValue {
    tag: Tag,
    value: Value,
}

impl TaggedValue {
    /// Creates a tagged value.
    pub const fn new(tag: Tag, value: Value) -> Self {
        TaggedValue { tag, value }
    }

    /// The initial register content `((0, ⊥), 0)`.
    pub const fn initial() -> Self {
        TaggedValue {
            tag: Tag::initial(),
            value: Value::new(0),
        }
    }

    /// Returns the tag.
    pub const fn tag(self) -> Tag {
        self.tag
    }

    /// Returns the value.
    pub const fn value(self) -> Value {
        self.value
    }
}

// Ordering is lexicographic on (tag, value) — derived from field order. In
// every protocol of this workspace distinct writes carry distinct tags
// (MWA0), so the tag alone decides; the payload tiebreak only matters for
// adversarial inputs (e.g. a Byzantine server reporting a forged payload
// under a genuine tag) and keeps `Ord` consistent with the derived `Eq`,
// so map/set keys never conflate unequal values.

impl fmt::Display for TaggedValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.tag, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::WriterId;

    #[test]
    fn initial_tagged_value_uses_initial_tag() {
        let init = TaggedValue::initial();
        assert!(init.tag().is_initial());
        assert_eq!(init.value(), Value::new(0));
    }

    #[test]
    fn ordering_ignores_payload() {
        let small_tag_big_payload =
            TaggedValue::new(Tag::new(1, WriterId::new(0)), Value::new(u64::MAX));
        let big_tag_small_payload = TaggedValue::new(Tag::new(2, WriterId::new(0)), Value::new(0));
        assert!(small_tag_big_payload < big_tag_small_payload);
    }

    #[test]
    fn value_round_trips_through_u64() {
        let v: Value = 17u64.into();
        let back: u64 = v.into();
        assert_eq!(back, 17);
    }

    #[test]
    fn display_formats_tag_and_payload() {
        let tv = TaggedValue::new(Tag::new(3, WriterId::new(1)), Value::new(9));
        assert_eq!(tv.to_string(), "(3, w2)=9");
    }
}
