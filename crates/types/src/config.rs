//! Cluster configuration: the `(S, t, R, W)` parameters of the paper's
//! system model, with quorum arithmetic and feasibility predicates.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::{ReaderId, ServerId, WriterId};

/// Errors produced when validating a [`ClusterConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// The model requires at least two servers (`S ≥ 2`, paper §2.1).
    TooFewServers {
        /// The offending server count.
        servers: usize,
    },
    /// Quorum intersection requires `t < S` even to assemble one quorum;
    /// atomic W2R2 emulation additionally requires `t < S/2` (checked by
    /// [`ClusterConfig::majority_quorums_intersect`], not here).
    TooManyFaults {
        /// The offending fault bound.
        max_faults: usize,
        /// The server count it was checked against.
        servers: usize,
    },
    /// The multi-writer analysis assumes at least one reader and one writer;
    /// the paper's theorems use `R ≥ 2, W ≥ 2` but degenerate single-client
    /// clusters are permitted for the single-writer baselines.
    NoClients,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::TooFewServers { servers } => {
                write!(f, "replicated system needs at least 2 servers, got {servers}")
            }
            ConfigError::TooManyFaults { max_faults, servers } => write!(
                f,
                "fault bound t={max_faults} leaves no quorum among S={servers} servers"
            ),
            ConfigError::NoClients => write!(f, "cluster needs at least one reader or writer"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// The static parameters of a register emulation: `S` servers of which at
/// most `t` may crash, `R` readers and `W` writers.
///
/// # Examples
///
/// ```
/// use mwr_types::ClusterConfig;
///
/// // S = 5, t = 1, R = 2, W = 2: fast reads are feasible (1·(2+2) < 5).
/// let c = ClusterConfig::new(5, 1, 2, 2)?;
/// assert_eq!(c.quorum_size(), 4);
/// assert!(c.fast_read_feasible());
///
/// // S = 4, t = 1, R = 2: boundary case — 1·(2+2) = 4, not < 4.
/// let c = ClusterConfig::new(4, 1, 2, 2)?;
/// assert!(!c.fast_read_feasible());
/// # Ok::<(), mwr_types::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClusterConfig {
    servers: usize,
    max_faults: usize,
    readers: usize,
    writers: usize,
}

impl ClusterConfig {
    /// Creates and validates a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `S < 2`, if `t ≥ S` (no quorum can ever be
    /// assembled), or if there are no clients at all.
    pub fn new(
        servers: usize,
        max_faults: usize,
        readers: usize,
        writers: usize,
    ) -> Result<Self, ConfigError> {
        if servers < 2 {
            return Err(ConfigError::TooFewServers { servers });
        }
        if max_faults >= servers {
            return Err(ConfigError::TooManyFaults { max_faults, servers });
        }
        if readers == 0 && writers == 0 {
            return Err(ConfigError::NoClients);
        }
        Ok(ClusterConfig {
            servers,
            max_faults,
            readers,
            writers,
        })
    }

    /// Starts building a configuration fluently.
    ///
    /// # Examples
    ///
    /// ```
    /// use mwr_types::ClusterConfig;
    ///
    /// let c = ClusterConfig::builder()
    ///     .servers(7)
    ///     .max_faults(2)
    ///     .readers(1)
    ///     .writers(2)
    ///     .build()?;
    /// assert_eq!(c.quorum_size(), 5);
    /// # Ok::<(), mwr_types::ConfigError>(())
    /// ```
    pub fn builder() -> ClusterConfigBuilder {
        ClusterConfigBuilder::default()
    }

    /// Number of servers `S`.
    pub const fn servers(&self) -> usize {
        self.servers
    }

    /// Fault bound `t`: the number of servers that may crash.
    pub const fn max_faults(&self) -> usize {
        self.max_faults
    }

    /// Number of readers `R`.
    pub const fn readers(&self) -> usize {
        self.readers
    }

    /// Number of writers `W`.
    pub const fn writers(&self) -> usize {
        self.writers
    }

    /// The quorum size `S − t`: every round-trip waits for this many replies
    /// so that it terminates despite `t` crashes (wait-freedom, §2.1).
    pub const fn quorum_size(&self) -> usize {
        self.servers - self.max_faults
    }

    /// Whether any two quorums of size `S − t` intersect, i.e. `t < S/2`,
    /// equivalently `2t < S`. This is the classical requirement for the
    /// two-round-trip emulations (Table 1, row W2R2).
    pub const fn majority_quorums_intersect(&self) -> bool {
        2 * self.max_faults < self.servers
    }

    /// The paper's fast-read feasibility condition `R < S/t − 2`, evaluated
    /// exactly as `t·(R + 2) < S` to avoid integer-division pitfalls
    /// (Table 1, row W2R1; §5).
    ///
    /// When `t = 0` no server ever crashes and the condition is vacuously
    /// satisfied.
    pub const fn fast_read_feasible(&self) -> bool {
        self.max_faults == 0 || self.max_faults * (self.readers + 2) < self.servers
    }

    /// Whether this is a genuinely multi-writer configuration (`W ≥ 2`), the
    /// setting of the paper's impossibility theorems.
    pub const fn is_multi_writer(&self) -> bool {
        self.writers >= 2
    }

    /// Iterates over all server identifiers `s1 … sS`.
    pub fn server_ids(&self) -> impl Iterator<Item = ServerId> + '_ {
        (0..self.servers as u32).map(ServerId::new)
    }

    /// Iterates over all reader identifiers `r1 … rR`.
    pub fn reader_ids(&self) -> impl Iterator<Item = ReaderId> + '_ {
        (0..self.readers as u32).map(ReaderId::new)
    }

    /// Iterates over all writer identifiers `w1 … wW`.
    pub fn writer_ids(&self) -> impl Iterator<Item = WriterId> + '_ {
        (0..self.writers as u32).map(WriterId::new)
    }

    /// Total number of processes `S + R + W`.
    pub const fn processes(&self) -> usize {
        self.servers + self.readers + self.writers
    }
}

impl fmt::Display for ClusterConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "S={} t={} R={} W={}",
            self.servers, self.max_faults, self.readers, self.writers
        )
    }
}

/// Builder for [`ClusterConfig`] (non-consuming, per C-BUILDER).
#[derive(Debug, Clone, Default)]
pub struct ClusterConfigBuilder {
    servers: usize,
    max_faults: usize,
    readers: usize,
    writers: usize,
}

impl ClusterConfigBuilder {
    /// Sets the number of servers `S`.
    pub fn servers(&mut self, servers: usize) -> &mut Self {
        self.servers = servers;
        self
    }

    /// Sets the fault bound `t`.
    pub fn max_faults(&mut self, max_faults: usize) -> &mut Self {
        self.max_faults = max_faults;
        self
    }

    /// Sets the number of readers `R`.
    pub fn readers(&mut self, readers: usize) -> &mut Self {
        self.readers = readers;
        self
    }

    /// Sets the number of writers `W`.
    pub fn writers(&mut self, writers: usize) -> &mut Self {
        self.writers = writers;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// Same as [`ClusterConfig::new`].
    pub fn build(&self) -> Result<ClusterConfig, ConfigError> {
        ClusterConfig::new(self.servers, self.max_faults, self.readers, self.writers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_configurations() {
        assert_eq!(
            ClusterConfig::new(1, 0, 1, 1),
            Err(ConfigError::TooFewServers { servers: 1 })
        );
        assert_eq!(
            ClusterConfig::new(3, 3, 1, 1),
            Err(ConfigError::TooManyFaults { max_faults: 3, servers: 3 })
        );
        assert_eq!(ClusterConfig::new(3, 1, 0, 0), Err(ConfigError::NoClients));
    }

    #[test]
    fn quorum_arithmetic() {
        let c = ClusterConfig::new(7, 2, 3, 2).unwrap();
        assert_eq!(c.quorum_size(), 5);
        assert!(c.majority_quorums_intersect());

        let c = ClusterConfig::new(4, 2, 1, 1).unwrap();
        assert_eq!(c.quorum_size(), 2);
        assert!(!c.majority_quorums_intersect()); // 2t = S
    }

    #[test]
    fn fast_read_condition_matches_exact_inequality() {
        // Paper: R < S/t − 2  ⟺  t(R+2) < S.
        // S=5, t=1: feasible for R ≤ 2 (t(R+2) = R+2 < 5 ⟺ R < 3).
        assert!(ClusterConfig::new(5, 1, 2, 2).unwrap().fast_read_feasible());
        assert!(!ClusterConfig::new(5, 1, 3, 2).unwrap().fast_read_feasible());
        // S=9, t=2: t(R+2) < 9 ⟺ R+2 < 4.5 ⟺ R ≤ 2.
        assert!(ClusterConfig::new(9, 2, 2, 2).unwrap().fast_read_feasible());
        assert!(!ClusterConfig::new(9, 2, 3, 2).unwrap().fast_read_feasible());
        // t = 0: vacuously feasible.
        assert!(ClusterConfig::new(2, 0, 100, 1).unwrap().fast_read_feasible());
    }

    #[test]
    fn boundary_r_equals_s_over_t_minus_2_is_infeasible() {
        // S=8, t=2 ⇒ S/t − 2 = 2; R = 2 must be infeasible (strict <).
        assert!(!ClusterConfig::new(8, 2, 2, 2).unwrap().fast_read_feasible());
        // R = 1 is feasible: 2·3 = 6 < 8.
        assert!(ClusterConfig::new(8, 2, 1, 2).unwrap().fast_read_feasible());
    }

    #[test]
    fn id_iterators_cover_all_processes() {
        let c = ClusterConfig::new(3, 1, 2, 2).unwrap();
        assert_eq!(c.server_ids().count(), 3);
        assert_eq!(c.reader_ids().count(), 2);
        assert_eq!(c.writer_ids().count(), 2);
        assert_eq!(c.processes(), 7);
    }

    #[test]
    fn builder_matches_direct_construction() {
        let direct = ClusterConfig::new(5, 1, 2, 3).unwrap();
        let built = ClusterConfig::builder()
            .servers(5)
            .max_faults(1)
            .readers(2)
            .writers(3)
            .build()
            .unwrap();
        assert_eq!(direct, built);
        assert_eq!(built.to_string(), "S=5 t=1 R=2 W=3");
    }
}
