//! Cluster configuration: the `(S, t, R, W)` parameters of the paper's
//! system model, with quorum arithmetic and feasibility predicates.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::{ReaderId, ServerId, WriterId};

/// Errors produced when validating a [`ClusterConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// The model requires at least two servers (`S ≥ 2`, paper §2.1).
    TooFewServers {
        /// The offending server count.
        servers: usize,
    },
    /// Quorum intersection requires `t < S` even to assemble one quorum;
    /// atomic W2R2 emulation additionally requires `t < S/2` (checked by
    /// [`ClusterConfig::majority_quorums_intersect`], not here).
    TooManyFaults {
        /// The offending fault bound.
        max_faults: usize,
        /// The server count it was checked against.
        servers: usize,
    },
    /// The multi-writer analysis assumes at least one reader and one writer;
    /// the paper's theorems use `R ≥ 2, W ≥ 2` but degenerate single-client
    /// clusters are permitted for the single-writer baselines.
    NoClients,
    /// A keyspace shard group cannot contain more servers than the cluster
    /// has (`g ≤ S`).
    GroupTooLarge {
        /// The offending group size.
        group_size: usize,
        /// The server count it was checked against.
        servers: usize,
    },
    /// A keyspace needs at least one shard to route registers onto.
    NoShards,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::TooFewServers { servers } => {
                write!(f, "replicated system needs at least 2 servers, got {servers}")
            }
            ConfigError::TooManyFaults { max_faults, servers } => write!(
                f,
                "fault bound t={max_faults} leaves no quorum among S={servers} servers"
            ),
            ConfigError::NoClients => write!(f, "cluster needs at least one reader or writer"),
            ConfigError::GroupTooLarge { group_size, servers } => write!(
                f,
                "shard group size g={group_size} exceeds cluster size S={servers}"
            ),
            ConfigError::NoShards => write!(f, "keyspace needs at least one shard"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// The static parameters of a register emulation: `S` servers of which at
/// most `t` may crash, `R` readers and `W` writers.
///
/// # Examples
///
/// ```
/// use mwr_types::ClusterConfig;
///
/// // S = 5, t = 1, R = 2, W = 2: fast reads are feasible (1·(2+2) < 5).
/// let c = ClusterConfig::new(5, 1, 2, 2)?;
/// assert_eq!(c.quorum_size(), 4);
/// assert!(c.fast_read_feasible());
///
/// // S = 4, t = 1, R = 2: boundary case — 1·(2+2) = 4, not < 4.
/// let c = ClusterConfig::new(4, 1, 2, 2)?;
/// assert!(!c.fast_read_feasible());
/// # Ok::<(), mwr_types::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClusterConfig {
    servers: usize,
    max_faults: usize,
    readers: usize,
    writers: usize,
}

impl ClusterConfig {
    /// Creates and validates a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `S < 2`, if `t ≥ S` (no quorum can ever be
    /// assembled), or if there are no clients at all.
    pub fn new(
        servers: usize,
        max_faults: usize,
        readers: usize,
        writers: usize,
    ) -> Result<Self, ConfigError> {
        if servers < 2 {
            return Err(ConfigError::TooFewServers { servers });
        }
        if max_faults >= servers {
            return Err(ConfigError::TooManyFaults { max_faults, servers });
        }
        if readers == 0 && writers == 0 {
            return Err(ConfigError::NoClients);
        }
        Ok(ClusterConfig {
            servers,
            max_faults,
            readers,
            writers,
        })
    }

    /// Starts building a configuration fluently.
    ///
    /// # Examples
    ///
    /// ```
    /// use mwr_types::ClusterConfig;
    ///
    /// let c = ClusterConfig::builder()
    ///     .servers(7)
    ///     .max_faults(2)
    ///     .readers(1)
    ///     .writers(2)
    ///     .build()?;
    /// assert_eq!(c.quorum_size(), 5);
    /// # Ok::<(), mwr_types::ConfigError>(())
    /// ```
    pub fn builder() -> ClusterConfigBuilder {
        ClusterConfigBuilder::default()
    }

    /// Number of servers `S`.
    pub const fn servers(&self) -> usize {
        self.servers
    }

    /// Fault bound `t`: the number of servers that may crash.
    pub const fn max_faults(&self) -> usize {
        self.max_faults
    }

    /// Number of readers `R`.
    pub const fn readers(&self) -> usize {
        self.readers
    }

    /// Number of writers `W`.
    pub const fn writers(&self) -> usize {
        self.writers
    }

    /// The quorum size `S − t`: every round-trip waits for this many replies
    /// so that it terminates despite `t` crashes (wait-freedom, §2.1).
    pub const fn quorum_size(&self) -> usize {
        self.servers - self.max_faults
    }

    /// Whether any two quorums of size `S − t` intersect, i.e. `t < S/2`,
    /// equivalently `2t < S`. This is the classical requirement for the
    /// two-round-trip emulations (Table 1, row W2R2).
    pub const fn majority_quorums_intersect(&self) -> bool {
        2 * self.max_faults < self.servers
    }

    /// The paper's fast-read feasibility condition `R < S/t − 2`, evaluated
    /// exactly as `t·(R + 2) < S` to avoid integer-division pitfalls
    /// (Table 1, row W2R1; §5).
    ///
    /// When `t = 0` no server ever crashes and the condition is vacuously
    /// satisfied.
    pub const fn fast_read_feasible(&self) -> bool {
        self.max_faults == 0 || self.max_faults * (self.readers + 2) < self.servers
    }

    /// Whether this is a genuinely multi-writer configuration (`W ≥ 2`), the
    /// setting of the paper's impossibility theorems.
    pub const fn is_multi_writer(&self) -> bool {
        self.writers >= 2
    }

    /// Iterates over all server identifiers `s1 … sS`.
    pub fn server_ids(&self) -> impl Iterator<Item = ServerId> + '_ {
        (0..self.servers as u32).map(ServerId::new)
    }

    /// Iterates over all reader identifiers `r1 … rR`.
    pub fn reader_ids(&self) -> impl Iterator<Item = ReaderId> + '_ {
        (0..self.readers as u32).map(ReaderId::new)
    }

    /// Iterates over all writer identifiers `w1 … wW`.
    pub fn writer_ids(&self) -> impl Iterator<Item = WriterId> + '_ {
        (0..self.writers as u32).map(WriterId::new)
    }

    /// Total number of processes `S + R + W`.
    pub const fn processes(&self) -> usize {
        self.servers + self.readers + self.writers
    }

    /// The configuration one reconfiguration epoch would commit: the same
    /// `t`, `R`, `W` over a different server count — revalidated from
    /// scratch, because `S` is a live correctness parameter (quorum size,
    /// majority intersection and the fast-read bound all move with it).
    ///
    /// # Errors
    ///
    /// Same as [`ClusterConfig::new`]: the target set must still assemble
    /// quorums (`t < S'`, `S' ≥ 2`).
    pub fn reconfigured(&self, servers: usize) -> Result<Self, ConfigError> {
        ClusterConfig::new(servers, self.max_faults, self.readers, self.writers)
    }
}

impl fmt::Display for ClusterConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "S={} t={} R={} W={}",
            self.servers, self.max_faults, self.readers, self.writers
        )
    }
}

/// Builder for [`ClusterConfig`] (non-consuming, per C-BUILDER).
#[derive(Debug, Clone, Default)]
pub struct ClusterConfigBuilder {
    servers: usize,
    max_faults: usize,
    readers: usize,
    writers: usize,
}

impl ClusterConfigBuilder {
    /// Sets the number of servers `S`.
    pub fn servers(&mut self, servers: usize) -> &mut Self {
        self.servers = servers;
        self
    }

    /// Sets the fault bound `t`.
    pub fn max_faults(&mut self, max_faults: usize) -> &mut Self {
        self.max_faults = max_faults;
        self
    }

    /// Sets the number of readers `R`.
    pub fn readers(&mut self, readers: usize) -> &mut Self {
        self.readers = readers;
        self
    }

    /// Sets the number of writers `W`.
    pub fn writers(&mut self, writers: usize) -> &mut Self {
        self.writers = writers;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// Same as [`ClusterConfig::new`].
    pub fn build(&self) -> Result<ClusterConfig, ConfigError> {
        ClusterConfig::new(self.servers, self.max_faults, self.readers, self.writers)
    }
}

/// The static parameters of a sharded multi-register keyspace: `S` servers,
/// `G` shards, each shard served by a rendezvous-chosen group of `g` servers
/// of which at most `t` may crash, shared by `R` readers and `W` writers.
///
/// Every register is an independent emulation of the paper's model inside its
/// shard group, so all per-register guarantees (quorum arithmetic, fast-read
/// feasibility) are those of the *group-sized* [`ClusterConfig`] returned by
/// [`KeyspaceConfig::group_config`].
///
/// # Examples
///
/// ```
/// use mwr_types::KeyspaceConfig;
///
/// // 11 servers, groups of 5 with t = 1, 16 shards, 8 readers + 8 writers.
/// let k = KeyspaceConfig::new(11, 1, 5, 16, 8, 8)?;
/// assert_eq!(k.group_quorum(), 4);
/// assert_eq!(k.group_config().servers(), 5);
/// # Ok::<(), mwr_types::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KeyspaceConfig {
    servers: usize,
    max_faults: usize,
    group_size: usize,
    shards: usize,
    readers: usize,
    writers: usize,
}

impl KeyspaceConfig {
    /// Creates and validates a keyspace configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the per-group cluster `(g, t, R, W)` fails
    /// [`ClusterConfig::new`] validation, if `g > S`, or if there are no
    /// shards.
    pub fn new(
        servers: usize,
        max_faults: usize,
        group_size: usize,
        shards: usize,
        readers: usize,
        writers: usize,
    ) -> Result<Self, ConfigError> {
        // Each shard group is a self-contained register cluster; validate it
        // with the same rules as a standalone deployment.
        ClusterConfig::new(group_size, max_faults, readers, writers)?;
        if group_size > servers {
            return Err(ConfigError::GroupTooLarge { group_size, servers });
        }
        if shards == 0 {
            return Err(ConfigError::NoShards);
        }
        Ok(KeyspaceConfig {
            servers,
            max_faults,
            group_size,
            shards,
            readers,
            writers,
        })
    }

    /// Total number of servers `S` in the cluster.
    pub const fn servers(&self) -> usize {
        self.servers
    }

    /// Fault bound `t` *per shard group*.
    pub const fn max_faults(&self) -> usize {
        self.max_faults
    }

    /// Number of servers `g` serving each shard.
    pub const fn group_size(&self) -> usize {
        self.group_size
    }

    /// Number of shards registers are hashed onto.
    pub const fn shards(&self) -> usize {
        self.shards
    }

    /// Number of readers `R`.
    pub const fn readers(&self) -> usize {
        self.readers
    }

    /// Number of writers `W`.
    pub const fn writers(&self) -> usize {
        self.writers
    }

    /// The per-shard quorum size `g − t`: every per-register round-trip waits
    /// for this many replies from the shard's group.
    pub const fn group_quorum(&self) -> usize {
        self.group_size - self.max_faults
    }

    /// The cluster configuration a single register lives under: `g` servers,
    /// `t` faults, and the keyspace's full client population (any reader or
    /// writer may touch any register).
    pub fn group_config(&self) -> ClusterConfig {
        // Validated in `new`, so this cannot fail.
        ClusterConfig::new(self.group_size, self.max_faults, self.readers, self.writers)
            .expect("group config validated at construction")
    }

    /// Iterates over all server identifiers `s1 … sS`.
    pub fn server_ids(&self) -> impl Iterator<Item = ServerId> + '_ {
        (0..self.servers as u32).map(ServerId::new)
    }

    /// Iterates over all reader identifiers `r1 … rR`.
    pub fn reader_ids(&self) -> impl Iterator<Item = ReaderId> + '_ {
        (0..self.readers as u32).map(ReaderId::new)
    }

    /// Iterates over all writer identifiers `w1 … wW`.
    pub fn writer_ids(&self) -> impl Iterator<Item = WriterId> + '_ {
        (0..self.writers as u32).map(WriterId::new)
    }

    /// The keyspace one reconfiguration epoch would commit: the same
    /// `t`, `g`, shards, `R`, `W` over a different server count —
    /// revalidated from scratch (the group must still fit: `g ≤ S'`).
    ///
    /// # Errors
    ///
    /// Same as [`KeyspaceConfig::new`].
    pub fn reconfigured(&self, servers: usize) -> Result<Self, ConfigError> {
        KeyspaceConfig::new(
            servers,
            self.max_faults,
            self.group_size,
            self.shards,
            self.readers,
            self.writers,
        )
    }
}

impl fmt::Display for KeyspaceConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "S={} t={} g={} shards={} R={} W={}",
            self.servers, self.max_faults, self.group_size, self.shards, self.readers, self.writers
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_configurations() {
        assert_eq!(
            ClusterConfig::new(1, 0, 1, 1),
            Err(ConfigError::TooFewServers { servers: 1 })
        );
        assert_eq!(
            ClusterConfig::new(3, 3, 1, 1),
            Err(ConfigError::TooManyFaults { max_faults: 3, servers: 3 })
        );
        assert_eq!(ClusterConfig::new(3, 1, 0, 0), Err(ConfigError::NoClients));
    }

    #[test]
    fn quorum_arithmetic() {
        let c = ClusterConfig::new(7, 2, 3, 2).unwrap();
        assert_eq!(c.quorum_size(), 5);
        assert!(c.majority_quorums_intersect());

        let c = ClusterConfig::new(4, 2, 1, 1).unwrap();
        assert_eq!(c.quorum_size(), 2);
        assert!(!c.majority_quorums_intersect()); // 2t = S
    }

    #[test]
    fn fast_read_condition_matches_exact_inequality() {
        // Paper: R < S/t − 2  ⟺  t(R+2) < S.
        // S=5, t=1: feasible for R ≤ 2 (t(R+2) = R+2 < 5 ⟺ R < 3).
        assert!(ClusterConfig::new(5, 1, 2, 2).unwrap().fast_read_feasible());
        assert!(!ClusterConfig::new(5, 1, 3, 2).unwrap().fast_read_feasible());
        // S=9, t=2: t(R+2) < 9 ⟺ R+2 < 4.5 ⟺ R ≤ 2.
        assert!(ClusterConfig::new(9, 2, 2, 2).unwrap().fast_read_feasible());
        assert!(!ClusterConfig::new(9, 2, 3, 2).unwrap().fast_read_feasible());
        // t = 0: vacuously feasible.
        assert!(ClusterConfig::new(2, 0, 100, 1).unwrap().fast_read_feasible());
    }

    #[test]
    fn boundary_r_equals_s_over_t_minus_2_is_infeasible() {
        // S=8, t=2 ⇒ S/t − 2 = 2; R = 2 must be infeasible (strict <).
        assert!(!ClusterConfig::new(8, 2, 2, 2).unwrap().fast_read_feasible());
        // R = 1 is feasible: 2·3 = 6 < 8.
        assert!(ClusterConfig::new(8, 2, 1, 2).unwrap().fast_read_feasible());
    }

    #[test]
    fn id_iterators_cover_all_processes() {
        let c = ClusterConfig::new(3, 1, 2, 2).unwrap();
        assert_eq!(c.server_ids().count(), 3);
        assert_eq!(c.reader_ids().count(), 2);
        assert_eq!(c.writer_ids().count(), 2);
        assert_eq!(c.processes(), 7);
    }

    #[test]
    fn keyspace_config_validates_group_and_shards() {
        let k = KeyspaceConfig::new(11, 1, 5, 16, 8, 8).unwrap();
        assert_eq!(k.group_quorum(), 4);
        assert_eq!(k.group_config(), ClusterConfig::new(5, 1, 8, 8).unwrap());
        assert_eq!(k.server_ids().count(), 11);
        assert_eq!(k.to_string(), "S=11 t=1 g=5 shards=16 R=8 W=8");

        assert_eq!(
            KeyspaceConfig::new(3, 1, 5, 4, 1, 1),
            Err(ConfigError::GroupTooLarge { group_size: 5, servers: 3 })
        );
        assert_eq!(KeyspaceConfig::new(5, 1, 3, 0, 1, 1), Err(ConfigError::NoShards));
        // Per-group validation applies: t must leave a quorum within g.
        assert_eq!(
            KeyspaceConfig::new(9, 3, 3, 4, 1, 1),
            Err(ConfigError::TooManyFaults { max_faults: 3, servers: 3 })
        );
    }

    #[test]
    fn builder_matches_direct_construction() {
        let direct = ClusterConfig::new(5, 1, 2, 3).unwrap();
        let built = ClusterConfig::builder()
            .servers(5)
            .max_faults(1)
            .readers(2)
            .writers(3)
            .build()
            .unwrap();
        assert_eq!(direct, built);
        assert_eq!(built.to_string(), "S=5 t=1 R=2 W=3");
    }
}
