//! Foundational types for the `mwr` workspace.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! reproduction of *Fine-grained Analysis on Fast Implementations of
//! Multi-writer Atomic Registers* (Huang, Huang & Wei, PODC 2020):
//!
//! - [`ServerId`], [`ReaderId`], [`WriterId`], [`ClientId`], [`ProcessId`] —
//!   the three disjoint process sets of the paper's system model (§2.1).
//! - [`Tag`] — the `(ts, wid)` version tags that totally order written values
//!   in the multi-writer algorithms (§5.2), with `⊥` as the initial writer.
//! - [`Value`] and [`TaggedValue`] — register contents.
//! - [`ClusterConfig`] — the `(S, t, R, W)` parameters, quorum arithmetic and
//!   the fast-read feasibility condition `R < S/t − 2` expressed exactly as
//!   `t·(R + 2) < S`.
//! - [`RegisterId`] and [`KeyspaceConfig`] — the sharded multi-register
//!   keyspace vocabulary: many named registers, each an independent emulation
//!   of the paper's model inside a rendezvous-chosen server group.
//! - [`ConfigEpoch`] — one generation of the server set; live
//!   reconfiguration moves the cluster through a joint epoch to a committed
//!   one while clients keep serving.
//! - [`codec`] — a small hand-rolled binary wire codec used by the TCP
//!   transport (the offline dependency set has no serde binary format).
//!
//! # Examples
//!
//! ```
//! use mwr_types::{ClusterConfig, Tag, WriterId};
//!
//! let config = ClusterConfig::new(5, 1, 2, 2)?;
//! assert_eq!(config.quorum_size(), 4);
//! assert!(config.fast_read_feasible()); // 1·(2+2) < 5
//!
//! let a = Tag::initial();
//! let b = Tag::new(1, WriterId::new(0));
//! let c = Tag::new(1, WriterId::new(1));
//! assert!(a < b && b < c); // lexicographic (ts, wid), ⊥ smallest
//! # Ok::<(), mwr_types::ConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codec;
mod config;
mod epoch;
mod ids;
mod tag;
mod value;

pub use config::{ClusterConfig, ClusterConfigBuilder, ConfigError, KeyspaceConfig};
pub use epoch::ConfigEpoch;
pub use ids::{ClientId, ProcessId, ReaderId, RegisterId, ServerId, WriterId};
pub use tag::{Tag, WriterSlot};
pub use value::{TaggedValue, Value};
