//! Process identifiers for the three disjoint process sets of the system
//! model (paper §2.1): servers `Σsv`, readers `Σrd` and writers `Σwr`.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(u32);

        impl $name {
            /// Creates an identifier from a zero-based index.
            ///
            /// # Examples
            ///
            /// ```
            /// # use mwr_types::ServerId;
            /// let s = ServerId::new(0);
            /// assert_eq!(s.index(), 0);
            /// ```
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// Returns the zero-based index backing this identifier.
            pub const fn index(self) -> u32 {
                self.0
            }

            /// Returns the index as a `usize`, convenient for slice access.
            pub const fn as_usize(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                // Paper numbering is 1-based (s1..sS, r1..rR, w1..wW). The
                // widening avoids overflow for sentinel indices like
                // `u32::MAX` (used by forged Byzantine identities).
                write!(f, concat!($prefix, "{}"), self.0 as u64 + 1)
            }
        }

        impl From<u32> for $name {
            fn from(index: u32) -> Self {
                Self::new(index)
            }
        }
    };
}

id_newtype!(
    /// Identifier of a server replica (`s1 … sS` in the paper).
    ServerId,
    "s"
);
id_newtype!(
    /// Identifier of a reading client (`r1 … rR` in the paper).
    ReaderId,
    "r"
);
id_newtype!(
    /// Identifier of a writing client (`w1 … wW` in the paper).
    ///
    /// Writer identifiers are totally ordered; the multi-writer algorithms
    /// break ties between equal timestamps using this order (paper §5.2).
    WriterId,
    "w"
);
id_newtype!(
    /// Identifier of a named register in a sharded keyspace (`k1 … kN`).
    ///
    /// The paper's model emulates a *single* register; a keyspace runs many
    /// independent emulations side by side, one per `RegisterId`, each
    /// served by its own (rendezvous-routed) server group. Register ids
    /// ride in the frame header so one connection can multiplex them all.
    RegisterId,
    "k"
);

impl RegisterId {
    /// The register that legacy (pre-keyspace) frames implicitly address.
    ///
    /// Frames carrying the original single-register message discriminants
    /// decode without a register id and are routed here, so a single-register
    /// deployment is exactly a keyspace with one register.
    pub const DEFAULT: RegisterId = RegisterId::new(0);
}

/// A client process: either a reader or a writer.
///
/// Readers may only invoke `read()`; writers may only invoke `write(v)`
/// (paper §2.1). The fast-read bookkeeping of Algorithm 2 stores `ClientId`s
/// in per-value `updated` sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ClientId {
    /// A reading client.
    Reader(ReaderId),
    /// A writing client.
    Writer(WriterId),
}

impl ClientId {
    /// Convenience constructor for a reader client.
    pub const fn reader(index: u32) -> Self {
        ClientId::Reader(ReaderId::new(index))
    }

    /// Convenience constructor for a writer client.
    pub const fn writer(index: u32) -> Self {
        ClientId::Writer(WriterId::new(index))
    }

    /// Returns the reader identifier if this client is a reader.
    pub fn as_reader(self) -> Option<ReaderId> {
        match self {
            ClientId::Reader(r) => Some(r),
            ClientId::Writer(_) => None,
        }
    }

    /// Returns the writer identifier if this client is a writer.
    pub fn as_writer(self) -> Option<WriterId> {
        match self {
            ClientId::Writer(w) => Some(w),
            ClientId::Reader(_) => None,
        }
    }

    /// The numeric index within this client's kind (`r3` and `w3` both
    /// have index 3).
    pub fn index(self) -> u32 {
        match self {
            ClientId::Reader(r) => r.index(),
            ClientId::Writer(w) => w.index(),
        }
    }

    /// The client `offset` positions after this one *within the same
    /// kind*, or `None` if the index would overflow `u32`. `r2.offset(3)`
    /// is `r5`; a run never crosses from readers into writers.
    pub fn offset(self, offset: u32) -> Option<ClientId> {
        let index = self.index().checked_add(offset)?;
        Some(match self {
            ClientId::Reader(_) => ClientId::reader(index),
            ClientId::Writer(_) => ClientId::writer(index),
        })
    }

    /// Whether `next` is this client's immediate successor within the same
    /// kind (`r2` is followed by `r3`, never by `w0`) — the adjacency the
    /// run-length registration encoding compresses.
    pub fn is_followed_by(self, next: ClientId) -> bool {
        self.offset(1) == Some(next)
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientId::Reader(r) => write!(f, "{r}"),
            ClientId::Writer(w) => write!(f, "{w}"),
        }
    }
}

impl From<ReaderId> for ClientId {
    fn from(r: ReaderId) -> Self {
        ClientId::Reader(r)
    }
}

impl From<WriterId> for ClientId {
    fn from(w: WriterId) -> Self {
        ClientId::Writer(w)
    }
}

/// Any process in the system: a server or a client.
///
/// The network layer of the simulator and the live runtime address messages
/// by `ProcessId`. The topology of the paper's model (Fig 1) permits only
/// client↔server links; `mwr-sim` rejects server↔server and client↔client
/// sends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ProcessId {
    /// A server replica.
    Server(ServerId),
    /// A client (reader or writer).
    Client(ClientId),
}

impl ProcessId {
    /// Convenience constructor for a server process.
    pub const fn server(index: u32) -> Self {
        ProcessId::Server(ServerId::new(index))
    }

    /// Convenience constructor for a reader process.
    pub const fn reader(index: u32) -> Self {
        ProcessId::Client(ClientId::reader(index))
    }

    /// Convenience constructor for a writer process.
    pub const fn writer(index: u32) -> Self {
        ProcessId::Client(ClientId::writer(index))
    }

    /// Returns `true` if this process is a server.
    pub fn is_server(self) -> bool {
        matches!(self, ProcessId::Server(_))
    }

    /// Returns `true` if this process is a client (reader or writer).
    pub fn is_client(self) -> bool {
        matches!(self, ProcessId::Client(_))
    }

    /// Returns the server identifier if this process is a server.
    pub fn as_server(self) -> Option<ServerId> {
        match self {
            ProcessId::Server(s) => Some(s),
            ProcessId::Client(_) => None,
        }
    }

    /// Returns the client identifier if this process is a client.
    pub fn as_client(self) -> Option<ClientId> {
        match self {
            ProcessId::Client(c) => Some(c),
            ProcessId::Server(_) => None,
        }
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcessId::Server(s) => write!(f, "{s}"),
            ProcessId::Client(c) => write!(f, "{c}"),
        }
    }
}

impl From<ServerId> for ProcessId {
    fn from(s: ServerId) -> Self {
        ProcessId::Server(s)
    }
}

impl From<ClientId> for ProcessId {
    fn from(c: ClientId) -> Self {
        ProcessId::Client(c)
    }
}

impl From<ReaderId> for ProcessId {
    fn from(r: ReaderId) -> Self {
        ProcessId::Client(ClientId::Reader(r))
    }
}

impl From<WriterId> for ProcessId {
    fn from(w: WriterId) -> Self {
        ProcessId::Client(ClientId::Writer(w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_one_based_like_the_paper() {
        assert_eq!(ServerId::new(0).to_string(), "s1");
        assert_eq!(ReaderId::new(1).to_string(), "r2");
        assert_eq!(WriterId::new(2).to_string(), "w3");
        assert_eq!(ProcessId::server(4).to_string(), "s5");
        assert_eq!(ClientId::reader(0).to_string(), "r1");
        assert_eq!(RegisterId::new(0).to_string(), "k1");
        assert_eq!(RegisterId::DEFAULT, RegisterId::new(0));
    }

    #[test]
    fn writer_ids_are_totally_ordered() {
        let mut ws: Vec<WriterId> = (0..5).rev().map(WriterId::new).collect();
        ws.sort();
        let indices: Vec<u32> = ws.iter().map(|w| w.index()).collect();
        assert_eq!(indices, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn client_id_accessors() {
        let r = ClientId::reader(3);
        let w = ClientId::writer(1);
        assert_eq!(r.as_reader(), Some(ReaderId::new(3)));
        assert_eq!(r.as_writer(), None);
        assert_eq!(w.as_writer(), Some(WriterId::new(1)));
        assert_eq!(w.as_reader(), None);
    }

    #[test]
    fn process_id_accessors_and_conversions() {
        let s: ProcessId = ServerId::new(2).into();
        assert!(s.is_server());
        assert!(!s.is_client());
        assert_eq!(s.as_server(), Some(ServerId::new(2)));
        assert_eq!(s.as_client(), None);

        let r: ProcessId = ReaderId::new(0).into();
        assert!(r.is_client());
        assert_eq!(r.as_client(), Some(ClientId::reader(0)));
    }

    #[test]
    fn readers_and_writers_are_distinct_clients() {
        assert_ne!(ClientId::reader(0), ClientId::writer(0));
    }
}
