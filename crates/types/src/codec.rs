//! A small hand-rolled binary wire codec.
//!
//! The live TCP transport in `mwr-runtime` needs to frame protocol messages
//! on the wire. The offline dependency set contains `serde` but no binary
//! serialization format, so the workspace ships its own compact, explicit
//! codec: fixed-width big-endian integers, length-prefixed sequences, and
//! one-byte discriminants for enums.
//!
//! Every type that travels over the network implements [`Wire`]. The codec is
//! deliberately non-self-describing — both endpoints are always the same
//! binary version in this repository.
//!
//! # Examples
//!
//! ```
//! use bytes::BytesMut;
//! use mwr_types::codec::Wire;
//! use mwr_types::{Tag, WriterId};
//!
//! let tag = Tag::new(7, WriterId::new(1));
//! let mut buf = BytesMut::new();
//! tag.encode(&mut buf);
//! let mut bytes = buf.freeze();
//! let decoded = Tag::decode(&mut bytes)?;
//! assert_eq!(decoded, tag);
//! # Ok::<(), mwr_types::codec::DecodeError>(())
//! ```

use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::{
    ClientId, ConfigEpoch, ProcessId, ReaderId, RegisterId, ServerId, Tag, TaggedValue, Value,
    WriterId, WriterSlot,
};

/// Errors produced while decoding a wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the value was complete.
    UnexpectedEof {
        /// What was being decoded when input ran out.
        context: &'static str,
    },
    /// An enum discriminant byte had no corresponding variant.
    InvalidDiscriminant {
        /// The type whose discriminant was invalid.
        context: &'static str,
        /// The offending byte.
        value: u8,
    },
    /// A declared collection length exceeded the sanity bound.
    LengthOverflow {
        /// The declared length.
        declared: u64,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof { context } => {
                write!(f, "unexpected end of input while decoding {context}")
            }
            DecodeError::InvalidDiscriminant { context, value } => {
                write!(f, "invalid discriminant {value} for {context}")
            }
            DecodeError::LengthOverflow { declared } => {
                write!(f, "declared collection length {declared} exceeds sanity bound")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Upper bound on decoded collection lengths; a defence against corrupted or
/// hostile frames allocating unbounded memory.
pub const MAX_COLLECTION_LEN: u64 = 1 << 24;

/// Binary encoding/decoding of a value for network transport.
///
/// Implementations must be deterministic: `decode(encode(x)) == x` for every
/// `x`, and [`encoded_len`](Wire::encoded_len) must equal the number of
/// bytes [`encode`](Wire::encode) appends (checked by property tests in
/// this module and in `mwr-runtime`).
///
/// Decoding is generic over [`Buf`], so hot paths can decode straight out
/// of a reusable read buffer (`&mut &[u8]`) without first copying the frame
/// into an owned [`Bytes`].
pub trait Wire: Sized {
    /// Appends the encoded representation of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);

    /// The exact number of bytes [`encode`](Wire::encode) appends for
    /// `self` — lets framing code size buffers and write length prefixes
    /// without encoding twice or allocating.
    fn encoded_len(&self) -> usize;

    /// Decodes a value from the front of `buf`, consuming exactly the bytes
    /// written by [`encode`](Wire::encode).
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the buffer is truncated or contains an
    /// invalid discriminant or length.
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError>;

    /// Encodes `self` into a fresh, exactly-sized buffer.
    fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        self.encode(&mut buf);
        buf.freeze()
    }
}

fn need(buf: &impl Buf, n: usize, context: &'static str) -> Result<(), DecodeError> {
    if buf.remaining() < n {
        Err(DecodeError::UnexpectedEof { context })
    } else {
        Ok(())
    }
}

impl Wire for u8 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(*self);
    }

    fn encoded_len(&self) -> usize {
        1
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        need(buf, 1, "u8")?;
        Ok(buf.get_u8())
    }
}

impl Wire for u32 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32(*self);
    }

    fn encoded_len(&self) -> usize {
        4
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        need(buf, 4, "u32")?;
        Ok(buf.get_u32())
    }
}

impl Wire for u64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64(*self);
    }

    fn encoded_len(&self) -> usize {
        8
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        need(buf, 8, "u64")?;
        Ok(buf.get_u64())
    }
}

impl Wire for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(u8::from(*self));
    }

    fn encoded_len(&self) -> usize {
        1
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(false),
            1 => Ok(true),
            value => Err(DecodeError::InvalidDiscriminant { context: "bool", value }),
        }
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        1 + self.as_ref().map_or(0, Wire::encoded_len)
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            value => Err(DecodeError::InvalidDiscriminant { context: "Option", value }),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64(self.len() as u64);
        for item in self {
            item.encode(buf);
        }
    }

    fn encoded_len(&self) -> usize {
        8 + self.iter().map(Wire::encoded_len).sum::<usize>()
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        let len = u64::decode(buf)?;
        if len > MAX_COLLECTION_LEN {
            return Err(DecodeError::LengthOverflow { declared: len });
        }
        let mut out = Vec::with_capacity(len as usize);
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

macro_rules! wire_id {
    ($name:ident) => {
        impl Wire for $name {
            fn encode(&self, buf: &mut BytesMut) {
                self.index().encode(buf);
            }

            fn encoded_len(&self) -> usize {
                4
            }

            fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
                Ok($name::new(u32::decode(buf)?))
            }
        }
    };
}

wire_id!(ServerId);
wire_id!(ReaderId);
wire_id!(WriterId);
wire_id!(RegisterId);

impl Wire for ConfigEpoch {
    fn encode(&self, buf: &mut BytesMut) {
        self.get().encode(buf);
    }

    fn encoded_len(&self) -> usize {
        4
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        Ok(ConfigEpoch::new(u32::decode(buf)?))
    }
}

impl Wire for ClientId {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ClientId::Reader(r) => {
                buf.put_u8(0);
                r.encode(buf);
            }
            ClientId::Writer(w) => {
                buf.put_u8(1);
                w.encode(buf);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        5
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(ClientId::Reader(ReaderId::decode(buf)?)),
            1 => Ok(ClientId::Writer(WriterId::decode(buf)?)),
            value => Err(DecodeError::InvalidDiscriminant { context: "ClientId", value }),
        }
    }
}

/// A run of clients with consecutive indices of one kind: `start`,
/// `start + 1`, …, `start + len − 1` (runs never cross from readers into
/// writers). The wire-version-4 registration gossip compresses sorted
/// `updated` lists into these runs — the catch-up re-registrations that
/// full-info-equivalent semantics fan out to every reader are dense in
/// client-id space, so a list of `R` readers collapses to one 9-byte run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientRun {
    /// The first client of the run.
    pub start: ClientId,
    /// How many consecutive clients the run covers (encoders emit ≥ 1).
    pub len: u32,
}

impl Wire for ClientRun {
    fn encode(&self, buf: &mut BytesMut) {
        self.start.encode(buf);
        self.len.encode(buf);
    }

    fn encoded_len(&self) -> usize {
        self.start.encoded_len() + self.len.encoded_len()
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        Ok(ClientRun { start: ClientId::decode(buf)?, len: u32::decode(buf)? })
    }
}

/// Run-length encoding of client-id lists ([`ClientRun`]), streamed
/// straight to and from the wire without materializing the runs.
///
/// Any list round-trips exactly (order preserved; a non-consecutive
/// element is its own run of 1), but the encoding only *wins* on sorted
/// lists with dense index runs — which is what the registration gossip
/// produces.
pub mod client_runs {
    use super::{Buf, BytesMut, ClientId, ClientRun, DecodeError, Wire, MAX_COLLECTION_LEN};

    struct Runs<'a> {
        ids: &'a [ClientId],
        i: usize,
    }

    impl Iterator for Runs<'_> {
        type Item = ClientRun;

        fn next(&mut self) -> Option<ClientRun> {
            let start = *self.ids.get(self.i)?;
            self.i += 1;
            let mut prev = start;
            let mut len: u32 = 1;
            while let Some(&next) = self.ids.get(self.i) {
                if len < u32::MAX && prev.is_followed_by(next) {
                    prev = next;
                    len += 1;
                    self.i += 1;
                } else {
                    break;
                }
            }
            Some(ClientRun { start, len })
        }
    }

    fn runs(ids: &[ClientId]) -> Runs<'_> {
        Runs { ids, i: 0 }
    }

    /// Number of maximal runs in `ids`.
    pub fn count(ids: &[ClientId]) -> u64 {
        runs(ids).count() as u64
    }

    /// Exact wire size of [`encode`]'s output for `ids`.
    pub fn encoded_len(ids: &[ClientId]) -> usize {
        8 + count(ids) as usize * ClientRun { start: ClientId::reader(0), len: 1 }.encoded_len()
    }

    /// Appends `ids` as a length-prefixed run list (run count as `u64`,
    /// then each run).
    pub fn encode(ids: &[ClientId], buf: &mut BytesMut) {
        count(ids).encode(buf);
        for run in runs(ids) {
            run.encode(buf);
        }
    }

    /// Decodes a run list back into the flat client list, expanding each
    /// run in place — `decode(encode(ids)) == ids` for every list.
    ///
    /// # Errors
    ///
    /// Rejects run counts, expanded totals beyond
    /// [`MAX_COLLECTION_LEN`], and runs whose indices would overflow
    /// `u32` — the declared-length defences of the plain `Vec` codec,
    /// applied to the *expanded* size a hostile frame could claim cheaply.
    pub fn decode<B: Buf>(buf: &mut B) -> Result<Vec<ClientId>, DecodeError> {
        let declared = u64::decode(buf)?;
        if declared > MAX_COLLECTION_LEN {
            return Err(DecodeError::LengthOverflow { declared });
        }
        let mut out: Vec<ClientId> = Vec::new();
        let mut total: u64 = 0;
        for _ in 0..declared {
            let run = ClientRun::decode(buf)?;
            total += u64::from(run.len);
            if total > MAX_COLLECTION_LEN {
                return Err(DecodeError::LengthOverflow { declared: total });
            }
            if run.len > 0 && run.start.offset(run.len - 1).is_none() {
                return Err(DecodeError::LengthOverflow { declared: u64::from(run.len) });
            }
            out.reserve(run.len as usize);
            for k in 0..run.len {
                out.push(run.start.offset(k).expect("offset bound checked above"));
            }
        }
        Ok(out)
    }
}

impl Wire for ProcessId {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ProcessId::Server(s) => {
                buf.put_u8(0);
                s.encode(buf);
            }
            ProcessId::Client(c) => {
                buf.put_u8(1);
                c.encode(buf);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            ProcessId::Server(s) => s.encoded_len(),
            ProcessId::Client(c) => c.encoded_len(),
        }
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(ProcessId::Server(ServerId::decode(buf)?)),
            1 => Ok(ProcessId::Client(ClientId::decode(buf)?)),
            value => Err(DecodeError::InvalidDiscriminant { context: "ProcessId", value }),
        }
    }
}

impl Wire for WriterSlot {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            WriterSlot::Bottom => buf.put_u8(0),
            WriterSlot::Writer(w) => {
                buf.put_u8(1);
                w.encode(buf);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        match self {
            WriterSlot::Bottom => 1,
            WriterSlot::Writer(w) => 1 + w.encoded_len(),
        }
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(WriterSlot::Bottom),
            1 => Ok(WriterSlot::Writer(WriterId::decode(buf)?)),
            value => Err(DecodeError::InvalidDiscriminant { context: "WriterSlot", value }),
        }
    }
}

impl Wire for Tag {
    fn encode(&self, buf: &mut BytesMut) {
        self.ts().encode(buf);
        self.writer().encode(buf);
    }

    fn encoded_len(&self) -> usize {
        8 + self.writer().encoded_len()
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        let ts = u64::decode(buf)?;
        let writer = WriterSlot::decode(buf)?;
        Ok(match writer {
            WriterSlot::Bottom => {
                // Only (0, ⊥) is a legal bottom tag, but round-tripping any
                // ts keeps the codec total; protocols never produce others.
                let mut tag = Tag::initial();
                if ts != 0 {
                    tag = Tag::new(ts, WriterId::new(0));
                    // Unreachable in practice; see module docs.
                    debug_assert!(ts == 0, "bottom tag with nonzero ts on the wire");
                }
                tag
            }
            WriterSlot::Writer(w) => Tag::new(ts, w),
        })
    }
}

impl Wire for Value {
    fn encode(&self, buf: &mut BytesMut) {
        self.get().encode(buf);
    }

    fn encoded_len(&self) -> usize {
        8
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        Ok(Value::new(u64::decode(buf)?))
    }
}

impl Wire for TaggedValue {
    fn encode(&self, buf: &mut BytesMut) {
        self.tag().encode(buf);
        self.value().encode(buf);
    }

    fn encoded_len(&self) -> usize {
        self.tag().encoded_len() + self.value().encoded_len()
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        let tag = Tag::decode(buf)?;
        let value = Value::decode(buf)?;
        Ok(TaggedValue::new(tag, value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(value: &T) {
        let mut bytes = value.to_bytes();
        assert_eq!(value.encoded_len(), bytes.len(), "encoded_len must match encode");
        // Decode from a borrowed slice cursor (the transport's reusable
        // read-buffer path) and from an owned `Bytes`: both must agree.
        let mut cursor: &[u8] = &bytes;
        let from_slice = T::decode(&mut cursor).expect("decode from slice");
        assert_eq!(&from_slice, value);
        assert!(cursor.is_empty(), "slice decode must consume the whole encoding");
        let decoded = T::decode(&mut bytes).expect("decode");
        assert_eq!(&decoded, value);
        assert!(bytes.is_empty(), "decode must consume the whole encoding");
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(&0u8);
        round_trip(&u32::MAX);
        round_trip(&u64::MAX);
        round_trip(&true);
        round_trip(&false);
        round_trip(&Some(42u64));
        round_trip(&Option::<u64>::None);
        round_trip(&vec![1u32, 2, 3]);
        round_trip(&Vec::<u64>::new());
    }

    #[test]
    fn domain_types_round_trip() {
        round_trip(&ServerId::new(3));
        round_trip(&ConfigEpoch::ZERO);
        round_trip(&ConfigEpoch::new(9));
        round_trip(&RegisterId::new(41));
        round_trip(&RegisterId::DEFAULT);
        round_trip(&ClientId::reader(1));
        round_trip(&ClientId::writer(0));
        round_trip(&ProcessId::server(2));
        round_trip(&Tag::initial());
        round_trip(&Tag::new(9, WriterId::new(4)));
        round_trip(&TaggedValue::new(Tag::new(1, WriterId::new(0)), Value::new(77)));
    }

    #[test]
    fn truncated_input_is_rejected() {
        let tag = Tag::new(1, WriterId::new(0));
        let bytes = tag.to_bytes();
        for cut in 0..bytes.len() {
            let mut prefix = bytes.slice(0..cut);
            assert!(
                Tag::decode(&mut prefix).is_err(),
                "prefix of length {cut} must not decode"
            );
        }
    }

    #[test]
    fn invalid_discriminants_are_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        let mut bytes = buf.freeze();
        assert_eq!(
            ClientId::decode(&mut bytes),
            Err(DecodeError::InvalidDiscriminant { context: "ClientId", value: 7 })
        );
    }

    #[test]
    fn oversized_length_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u64(MAX_COLLECTION_LEN + 1);
        let mut bytes = buf.freeze();
        assert_eq!(
            Vec::<u64>::decode(&mut bytes),
            Err(DecodeError::LengthOverflow { declared: MAX_COLLECTION_LEN + 1 })
        );
    }

    fn runs_round_trip(ids: &[ClientId]) {
        let mut buf = BytesMut::new();
        client_runs::encode(ids, &mut buf);
        assert_eq!(
            client_runs::encoded_len(ids),
            buf.len(),
            "client_runs::encoded_len must match encode"
        );
        let mut cursor: &[u8] = &buf;
        let decoded = client_runs::decode(&mut cursor).expect("decode runs");
        assert_eq!(decoded, ids);
        assert!(cursor.is_empty(), "runs decode must consume the whole encoding");
    }

    #[test]
    fn dense_client_list_collapses_to_one_run() {
        let ids: Vec<ClientId> = (0..128).map(ClientId::reader).collect();
        // 128 consecutive readers: 8-byte count + one 9-byte run, vs the
        // plain Vec codec's 8 + 128 × 5 bytes.
        assert_eq!(client_runs::count(&ids), 1);
        assert_eq!(client_runs::encoded_len(&ids), 17);
        runs_round_trip(&ids);
    }

    #[test]
    fn runs_split_at_the_reader_writer_boundary_and_at_gaps() {
        let ids = vec![
            ClientId::reader(0),
            ClientId::reader(1),
            ClientId::reader(3), // gap: new run
            ClientId::writer(4), // kind change: new run even though 3→4
            ClientId::writer(5),
        ];
        assert_eq!(client_runs::count(&ids), 3);
        runs_round_trip(&ids);
    }

    #[test]
    fn run_boundaries_around_128_round_trip() {
        // The paper's protocols cap servers at 128 (the u128 reply mask);
        // pin the encoding on either side of that population boundary.
        for n in [127u32, 128, 129] {
            let ids: Vec<ClientId> = (0..n).map(ClientId::reader).collect();
            assert_eq!(client_runs::count(&ids), 1);
            runs_round_trip(&ids);
        }
    }

    #[test]
    fn run_at_the_index_ceiling_round_trips() {
        let ids = vec![ClientId::writer(u32::MAX - 1), ClientId::writer(u32::MAX)];
        assert_eq!(client_runs::count(&ids), 1);
        runs_round_trip(&ids);
    }

    #[test]
    fn overflowing_run_is_rejected() {
        // A run starting at u32::MAX − 1 with length 3 would wrap the
        // index space; the expansion must refuse, not wrap.
        let mut buf = BytesMut::new();
        1u64.encode(&mut buf);
        ClientRun { start: ClientId::reader(u32::MAX - 1), len: 3 }.encode(&mut buf);
        let mut bytes = buf.freeze();
        assert!(client_runs::decode(&mut bytes).is_err());
    }

    #[test]
    fn oversized_run_expansion_is_rejected() {
        // Two runs whose *expanded* total exceeds the collection bound:
        // cheap bytes must not claim an expensive allocation.
        let mut buf = BytesMut::new();
        2u64.encode(&mut buf);
        ClientRun { start: ClientId::reader(0), len: MAX_COLLECTION_LEN as u32 }.encode(&mut buf);
        ClientRun { start: ClientId::writer(0), len: 1 }.encode(&mut buf);
        let mut bytes = buf.freeze();
        assert_eq!(
            client_runs::decode(&mut bytes),
            Err(DecodeError::LengthOverflow { declared: MAX_COLLECTION_LEN + 1 })
        );
    }

    proptest! {
        #[test]
        fn prop_tag_round_trips(ts in 0u64..1_000_000, wid in 0u32..64) {
            round_trip(&Tag::new(ts, WriterId::new(wid)));
        }

        #[test]
        fn prop_client_runs_round_trip_any_list(
            raw in proptest::collection::vec((any::<bool>(), 0u32..400), 0..64),
        ) {
            // Arbitrary (unsorted, duplicated, gapped) lists: the encoding
            // must be a bijection on sequences, not just on the sorted
            // lists the server emits.
            let ids: Vec<ClientId> = raw
                .iter()
                .map(|&(w, i)| if w { ClientId::writer(i) } else { ClientId::reader(i) })
                .collect();
            runs_round_trip(&ids);
        }

        #[test]
        fn prop_sorted_client_runs_compress_to_gap_count(
            raw_readers in proptest::collection::vec(0u32..600, 0..64),
            raw_writers in proptest::collection::vec(0u32..600, 0..64),
        ) {
            // The registration-gossip shape: sorted readers then writers.
            let dedup = |mut v: Vec<u32>| -> Vec<u32> {
                v.sort_unstable();
                v.dedup();
                v
            };
            let (readers, writers) = (dedup(raw_readers), dedup(raw_writers));
            let ids: Vec<ClientId> = readers
                .iter()
                .map(|&i| ClientId::reader(i))
                .chain(writers.iter().map(|&i| ClientId::writer(i)))
                .collect();
            let gaps = |v: &[u32]| -> u64 {
                match v.len() {
                    0 => 0,
                    n => 1 + (1..n).filter(|&k| v[k] != v[k - 1] + 1).count() as u64,
                }
            };
            prop_assert_eq!(client_runs::count(&ids), gaps(&readers) + gaps(&writers));
            runs_round_trip(&ids);
        }

        #[test]
        fn prop_tagged_value_round_trips(
            ts in 0u64..1_000_000,
            wid in 0u32..64,
            payload: u64,
        ) {
            round_trip(&TaggedValue::new(Tag::new(ts, WriterId::new(wid)), Value::new(payload)));
        }

        #[test]
        fn prop_composite_with_bottom_tags_round_trips(
            raw in proptest::collection::vec((0u64..100, 0u32..8, any::<bool>(), 0u64..1000), 0..16),
        ) {
            // Mixed payload exercising every branch of the Tag encoding,
            // including the (0, ⊥) bottom discriminant, nested in the
            // length-prefixed Vec and Option codecs.
            let values: Vec<Option<TaggedValue>> = raw
                .iter()
                .map(|&(ts, w, bottom, payload)| {
                    let tag = if bottom { Tag::initial() } else { Tag::new(ts, WriterId::new(w)) };
                    (payload % 3 != 0).then_some(TaggedValue::new(tag, Value::new(payload)))
                })
                .collect();
            round_trip(&values);
        }

        #[test]
        fn prop_vec_of_process_ids_round_trips(ids in proptest::collection::vec(0u32..100, 0..20)) {
            let v: Vec<ProcessId> = ids
                .iter()
                .map(|&i| match i % 3 {
                    0 => ProcessId::server(i),
                    1 => ProcessId::reader(i),
                    _ => ProcessId::writer(i),
                })
                .collect();
            round_trip(&v);
        }
    }
}
