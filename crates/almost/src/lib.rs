//! Almost-strong consistency for quorum-replicated registers.
//!
//! The paper's closing sentence (§7) sets the agenda this crate executes:
//!
//! > *"we will fix fast implementations in the first place, and then
//! > quantify how much data inconsistency will be introduced when strictly
//! > guaranteeing atomicity is impossible."*
//!
//! Its introduction motivates the same question from practice: Cassandra-
//! style stores let every operation pick a *consistency level* (how many
//! replica acknowledgements to wait for), and "when read or write is
//! required to finish in one round-trip, weak consistency has to be
//! accepted" (§1). This crate makes both halves concrete:
//!
//! - [`TunableCluster`] / [`TunableSpec`] — register clients whose write
//!   tagging ([`WriteTagging::Local`] = one round-trip, last-writer-wins;
//!   [`WriteTagging::Queried`] = the paper's two-round-trip tag discipline)
//!   and per-operation ack thresholds ([`ConsistencyLevel`]) are tunable,
//!   with optional Cassandra-style asynchronous *read repair*.
//! - [`StalenessReport`] — quantification of the inconsistency a history
//!   exhibits: per-read *staleness* (how many real-time-preceding writes
//!   were newer than the returned value), new/old inversions between reads,
//!   and a sound lower bound on the `k` for which the history could be
//!   `k`-atomic.
//! - [`ConsistencyProfile`] — the measured position of a configuration on
//!   Fig 2's consistency spectrum (atomic / regular / safe / none), with the
//!   staleness quantification attached.
//!
//! The experiment binary `almost_consistency` (in `mwr-bench`) sweeps the
//! level grid and regenerates the crate-level claim: configurations whose
//! read+write thresholds do not cover a majority-intersecting quorum pair
//! trade bounded-but-nonzero staleness for one-round-trip latency, exactly
//! the trade-off the paper's impossibility theorems prove unavoidable.
//!
//! # Examples
//!
//! Quantifying the inconsistency of the fastest configuration (ONE/ONE,
//! local tags — both operations one round-trip, which Theorem 1 and the
//! fast-read bound prove cannot be atomic):
//!
//! ```
//! use mwr_almost::{ConsistencyLevel, StalenessReport, TunableCluster, TunableSpec, WriteTagging};
//! use mwr_check::History;
//! use mwr_core::{ScheduledOp, SimCluster};
//! use mwr_sim::SimTime;
//! use mwr_types::{ClusterConfig, Value};
//!
//! let config = ClusterConfig::new(5, 1, 2, 2)?;
//! let cluster = TunableCluster::new(config, TunableSpec::fastest());
//! let mut ops = vec![];
//! for i in 0..6u64 {
//!     ops.push((SimTime::from_ticks(i * 2), ScheduledOp::Write {
//!         writer: (i % 2) as u32,
//!         value: Value::new(i + 1),
//!     }));
//!     ops.push((SimTime::from_ticks(i * 2 + 1), ScheduledOp::Read { reader: (i % 2) as u32 }));
//! }
//! let events = cluster.run_schedule(7, &ops)?;
//! let report = StalenessReport::analyze(&History::from_events(&events)?);
//! // The run may or may not hit a violation at this seed; the *metric* is
//! // always defined, and zero staleness is exactly atomicity's freshness.
//! assert!(report.reads() == 6);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod client;
mod cluster;
mod level;
mod metrics;
mod profile;

pub use client::TunableClient;
pub use cluster::TunableCluster;
pub use level::{ConsistencyLevel, TunableSpec, WriteTagging};
pub use metrics::{ReadStaleness, StalenessReport};
pub use profile::{ConsistencyClass, ConsistencyProfile};
