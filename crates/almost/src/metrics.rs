//! Quantifying inconsistency: staleness, inversions, and `k`-atomicity
//! bounds over execution histories.
//!
//! The paper's future-work agenda (§7) asks how much inconsistency a *fast*
//! (hence provably non-atomic) implementation actually exhibits. Two
//! anomaly families cover everything a register history can do wrong while
//! still returning genuinely-written values:
//!
//! - **Staleness** — a read returns a value although strictly newer writes
//!   finished before the read even started. We count, per read, the number
//!   of such newer completed writes; atomicity is exactly "every read has
//!   staleness 0 *and* no inversions".
//! - **New/old inversions** — two non-concurrent reads return values in the
//!   opposite order (the later read returns the older value). This is the
//!   anomaly 2-atomicity-style models (Wei et al., ref [28]) bound.
//!
//! Both quantities are computed against the total order on tags (§5.2 of
//! the paper), which the protocols in this workspace assign to every write.

use std::collections::BTreeMap;
use std::fmt;

use mwr_check::{History, Operation};
use mwr_core::OpId;
use mwr_types::TaggedValue;

/// Per-read staleness: how many completed-before writes were newer than the
/// returned value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadStaleness {
    /// The read operation.
    pub op: OpId,
    /// What it returned.
    pub returned: TaggedValue,
    /// Number of writes with a strictly larger tag that completed before
    /// this read was invoked. `0` means the read was *fresh*.
    pub staleness: usize,
}

/// Inconsistency quantification of one history.
///
/// # Examples
///
/// A fresh history has zero everything:
///
/// ```
/// use mwr_almost::StalenessReport;
/// use mwr_check::History;
///
/// let report = StalenessReport::analyze(&History::default());
/// assert_eq!(report.reads(), 0);
/// assert_eq!(report.max_staleness(), 0);
/// assert_eq!(report.inversions(), 0);
/// assert!(report.is_fresh());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StalenessReport {
    per_read: Vec<ReadStaleness>,
    histogram: BTreeMap<usize, usize>,
    inversions: usize,
    write_order_violations: usize,
}

impl StalenessReport {
    /// Analyzes a history.
    ///
    /// Open (never-completed) operations are ignored: an open write may
    /// linearize after any read, so it cannot *prove* staleness; an open
    /// read returns nothing to judge.
    pub fn analyze(history: &History) -> Self {
        let completed_writes: Vec<&Operation> = history
            .writes()
            .filter(|w| w.completed < mwr_check::Timestamp::MAX)
            .collect();
        let completed_reads: Vec<&Operation> = history
            .reads()
            .filter(|r| r.completed < mwr_check::Timestamp::MAX)
            .collect();

        let mut per_read = Vec::with_capacity(completed_reads.len());
        let mut histogram: BTreeMap<usize, usize> = BTreeMap::new();
        for read in &completed_reads {
            let returned = read.tagged_value();
            let staleness = completed_writes
                .iter()
                .filter(|w| {
                    w.completed < read.invoked && w.tagged_value().tag() > returned.tag()
                })
                .count();
            per_read.push(ReadStaleness { op: read.id, returned, staleness });
            *histogram.entry(staleness).or_insert(0) += 1;
        }

        // New/old inversions: non-concurrent read pairs returning values in
        // the opposite order. Quadratic; experiment histories are small
        // enough (thousands of operations) that this is immaterial.
        let mut inversions = 0usize;
        for (i, r1) in completed_reads.iter().enumerate() {
            for r2 in completed_reads.iter().skip(i + 1) {
                let (earlier, later) = if r1.precedes(r2) {
                    (r1, r2)
                } else if r2.precedes(r1) {
                    (r2, r1)
                } else {
                    continue;
                };
                if earlier.tagged_value().tag() > later.tagged_value().tag() {
                    inversions += 1;
                }
            }
        }

        // Write-order violations: non-concurrent write pairs whose tags
        // invert real time — the paper's MWA0, and the signature anomaly of
        // last-writer-wins local tagging (a later write "loses" to an
        // earlier one because its writer's counter lags).
        let mut write_order_violations = 0usize;
        for (i, w1) in completed_writes.iter().enumerate() {
            for w2 in completed_writes.iter().skip(i + 1) {
                let (earlier, later) = if w1.precedes(w2) {
                    (w1, w2)
                } else if w2.precedes(w1) {
                    (w2, w1)
                } else {
                    continue;
                };
                if earlier.tagged_value().tag() > later.tagged_value().tag() {
                    write_order_violations += 1;
                }
            }
        }

        StalenessReport { per_read, histogram, inversions, write_order_violations }
    }

    /// Number of completed reads analyzed.
    pub fn reads(&self) -> usize {
        self.per_read.len()
    }

    /// Per-read staleness records, in history order.
    pub fn per_read(&self) -> &[ReadStaleness] {
        &self.per_read
    }

    /// Histogram: staleness value → number of reads.
    pub fn histogram(&self) -> &BTreeMap<usize, usize> {
        &self.histogram
    }

    /// The largest staleness any read exhibited.
    pub fn max_staleness(&self) -> usize {
        self.per_read.iter().map(|r| r.staleness).max().unwrap_or(0)
    }

    /// The stalest read, if any read was stale.
    pub fn worst(&self) -> Option<ReadStaleness> {
        self.per_read.iter().copied().filter(|r| r.staleness > 0).max_by_key(|r| r.staleness)
    }

    /// Number of reads with staleness ≥ 1.
    pub fn stale_reads(&self) -> usize {
        self.per_read.iter().filter(|r| r.staleness > 0).count()
    }

    /// Fraction of reads with staleness ≥ 1, in `[0, 1]`. Zero when there
    /// are no reads.
    pub fn stale_fraction(&self) -> f64 {
        if self.per_read.is_empty() {
            0.0
        } else {
            self.stale_reads() as f64 / self.per_read.len() as f64
        }
    }

    /// Number of new/old inversions between non-concurrent reads.
    pub fn inversions(&self) -> usize {
        self.inversions
    }

    /// Number of non-concurrent write pairs whose tag order inverts their
    /// real-time order (MWA0 violations — the anomaly of last-writer-wins
    /// local tagging).
    pub fn write_order_violations(&self) -> usize {
        self.write_order_violations
    }

    /// Whether the history is anomaly-free under the read metrics
    /// (staleness and read/read inversions).
    ///
    /// These metrics are measured against the protocol's *tag* order, so
    /// they are indicators, not a characterization of atomicity, in either
    /// direction:
    ///
    /// - a stale read whose returned value was written *concurrently with
    ///   the read* can still be linearized (the old-tagged write linearizes
    ///   after the newer one), so a non-fresh history may be atomic;
    /// - conversely a fresh history may still violate atomicity through
    ///   anomalies tags cannot see (e.g. last-writer-wins tag inversions,
    ///   counted separately by
    ///   [`write_order_violations`](StalenessReport::write_order_violations)).
    ///
    /// For tag-disciplined protocols whose reads only return values of
    /// writes that began before the read ended and whose tags respect
    /// real-time write order (everything in `mwr-core`), freshness *is*
    /// implied by atomicity; the `almost_consistency` experiment relies on
    /// the checkers of `mwr-check` for the verdict and on this report for
    /// the quantification.
    pub fn is_fresh(&self) -> bool {
        self.max_staleness() == 0 && self.inversions == 0
    }

    /// Whether the history is anomaly-free under *all* metrics, including
    /// write-order violations. Still only necessary for atomicity.
    pub fn anomaly_free(&self) -> bool {
        self.is_fresh() && self.write_order_violations == 0
    }

    /// A sound lower bound on the `k` for which this history could satisfy
    /// `k`-atomicity (reads may return one of the `k` freshest values): a
    /// read with staleness `d` requires `k ≥ d + 1`.
    pub fn k_atomicity_lower_bound(&self) -> usize {
        self.max_staleness() + 1
    }
}

impl fmt::Display for StalenessReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} reads: {:.1}% stale (max staleness {}, k ≥ {}), {} inversion(s), {} write-order violation(s)",
            self.reads(),
            self.stale_fraction() * 100.0,
            self.max_staleness(),
            self.k_atomicity_lower_bound(),
            self.inversions,
            self.write_order_violations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwr_core::{ClientEvent, OpKind, OpResult};
    use mwr_sim::SimTime;
    use mwr_types::{ClientId, Tag, Value, WriterId};

    /// Builds the event stream of a sequential history from a compact spec:
    /// `(client, kind)` executed back to back.
    fn sequential(ops: &[(ClientId, OpKind, TaggedValue)]) -> Vec<(SimTime, ClientEvent)> {
        let mut events = Vec::new();
        let mut seqs: BTreeMap<ClientId, u64> = BTreeMap::new();
        for (i, (client, kind, tv)) in ops.iter().enumerate() {
            let seq = seqs.entry(*client).or_insert(0);
            let op = OpId { client: *client, seq: *seq };
            *seq += 1;
            let t0 = SimTime::from_ticks(2 * i as u64);
            let t1 = SimTime::from_ticks(2 * i as u64 + 1);
            events.push((t0, ClientEvent::Invoked { op, kind: *kind }));
            let result = match kind {
                OpKind::Write(_) => OpResult::Written(*tv),
                OpKind::Read => OpResult::Read(*tv),
            };
            events.push((t1, ClientEvent::Completed { op, kind: *kind, result }));
        }
        events
    }

    fn tv(ts: u64, w: u32, v: u64) -> TaggedValue {
        TaggedValue::new(Tag::new(ts, WriterId::new(w)), Value::new(v))
    }

    fn wr(w: u32, tagged: TaggedValue) -> (ClientId, OpKind, TaggedValue) {
        (ClientId::writer(w), OpKind::Write(tagged.value()), tagged)
    }

    fn rd(r: u32, tagged: TaggedValue) -> (ClientId, OpKind, TaggedValue) {
        (ClientId::reader(r), OpKind::Read, tagged)
    }

    #[test]
    fn fresh_sequential_history_has_no_anomalies() {
        let events = sequential(&[
            wr(0, tv(1, 0, 10)),
            rd(0, tv(1, 0, 10)),
            wr(1, tv(2, 1, 20)),
            rd(1, tv(2, 1, 20)),
        ]);
        let report = StalenessReport::analyze(&History::from_events(&events).unwrap());
        assert!(report.is_fresh());
        assert_eq!(report.reads(), 2);
        assert_eq!(report.k_atomicity_lower_bound(), 1);
        assert_eq!(report.histogram().get(&0), Some(&2));
        assert!(report.worst().is_none());
    }

    #[test]
    fn read_missing_one_newer_write_has_staleness_one() {
        let events = sequential(&[
            wr(0, tv(1, 0, 10)),
            wr(1, tv(2, 1, 20)),
            rd(0, tv(1, 0, 10)), // stale: missed (2, w1)
        ]);
        let report = StalenessReport::analyze(&History::from_events(&events).unwrap());
        assert_eq!(report.max_staleness(), 1);
        assert_eq!(report.stale_reads(), 1);
        assert_eq!(report.k_atomicity_lower_bound(), 2);
        assert_eq!(report.worst().unwrap().returned, tv(1, 0, 10));
        assert!((report.stale_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn staleness_counts_every_missed_write() {
        let events = sequential(&[
            wr(0, tv(1, 0, 10)),
            wr(1, tv(2, 1, 20)),
            wr(0, tv(3, 0, 30)),
            wr(1, tv(4, 1, 40)),
            rd(0, tv(1, 0, 10)), // three newer completed writes
        ]);
        let report = StalenessReport::analyze(&History::from_events(&events).unwrap());
        assert_eq!(report.max_staleness(), 3);
        assert_eq!(report.k_atomicity_lower_bound(), 4);
    }

    #[test]
    fn inversion_between_two_reads_is_counted() {
        let events = sequential(&[
            wr(0, tv(1, 0, 10)),
            wr(1, tv(2, 1, 20)),
            rd(0, tv(2, 1, 20)), // fresh
            rd(1, tv(1, 0, 10)), // older value later: inversion (and stale)
        ]);
        let report = StalenessReport::analyze(&History::from_events(&events).unwrap());
        assert_eq!(report.inversions(), 1);
        assert!(!report.is_fresh());
    }

    #[test]
    fn concurrent_reads_cannot_invert() {
        // Two overlapping reads returning opposite-order values: allowed.
        let w = wr(0, tv(1, 0, 10));
        let w2 = wr(1, tv(2, 1, 20));
        let mut events = sequential(&[w, w2]);
        // Hand-roll two overlapping reads.
        let r1 = OpId { client: ClientId::reader(0), seq: 0 };
        let r2 = OpId { client: ClientId::reader(1), seq: 0 };
        let t = |x| SimTime::from_ticks(x);
        events.push((t(100), ClientEvent::Invoked { op: r1, kind: OpKind::Read }));
        events.push((t(101), ClientEvent::Invoked { op: r2, kind: OpKind::Read }));
        events.push((t(102), ClientEvent::Completed {
            op: r1,
            kind: OpKind::Read,
            result: OpResult::Read(tv(2, 1, 20)),
        }));
        events.push((t(103), ClientEvent::Completed {
            op: r2,
            kind: OpKind::Read,
            result: OpResult::Read(tv(1, 0, 10)),
        }));
        let report = StalenessReport::analyze(&History::from_events(&events).unwrap());
        assert_eq!(report.inversions(), 0, "overlapping reads may disagree");
        // But the second read is still stale (missed the completed write 2).
        assert_eq!(report.stale_reads(), 1);
    }

    #[test]
    fn concurrent_write_does_not_make_a_read_stale() {
        // A write overlapping the read may linearize after it.
        let w1 = wr(0, tv(1, 0, 10));
        let mut events = sequential(&[w1]);
        let t = |x| SimTime::from_ticks(x);
        let w2 = OpId { client: ClientId::writer(1), seq: 0 };
        let r = OpId { client: ClientId::reader(0), seq: 0 };
        events.push((t(100), ClientEvent::Invoked { op: w2, kind: OpKind::Write(Value::new(20)) }));
        events.push((t(101), ClientEvent::Invoked { op: r, kind: OpKind::Read }));
        events.push((t(102), ClientEvent::Completed {
            op: w2,
            kind: OpKind::Write(Value::new(20)),
            result: OpResult::Written(tv(2, 1, 20)),
        }));
        events.push((t(103), ClientEvent::Completed {
            op: r,
            kind: OpKind::Read,
            result: OpResult::Read(tv(1, 0, 10)),
        }));
        let report = StalenessReport::analyze(&History::from_events(&events).unwrap());
        assert!(report.is_fresh(), "the newer write did not complete before the read started");
    }

    #[test]
    fn lww_tag_inversion_is_a_write_order_violation() {
        // Writer 0's second write (ts = 2) completes before writer 1's
        // first write (ts = 1), but (1, w1) < (2, w0): MWA0 violated.
        let events = sequential(&[
            wr(0, tv(1, 0, 10)),
            wr(0, tv(2, 0, 20)),
            wr(1, tv(1, 1, 30)),
        ]);
        let report = StalenessReport::analyze(&History::from_events(&events).unwrap());
        assert_eq!(report.write_order_violations(), 1);
        assert!(report.is_fresh(), "no reads, so read metrics are clean");
        assert!(!report.anomaly_free());
    }

    #[test]
    fn concurrent_writes_may_order_either_way() {
        let w1 = OpId { client: ClientId::writer(0), seq: 0 };
        let w2 = OpId { client: ClientId::writer(1), seq: 0 };
        let t = |x| SimTime::from_ticks(x);
        let events = vec![
            (t(0), ClientEvent::Invoked { op: w1, kind: OpKind::Write(Value::new(1)) }),
            (t(1), ClientEvent::Invoked { op: w2, kind: OpKind::Write(Value::new(2)) }),
            (t(2), ClientEvent::Completed {
                op: w1,
                kind: OpKind::Write(Value::new(1)),
                result: OpResult::Written(tv(2, 0, 1)),
            }),
            (t(3), ClientEvent::Completed {
                op: w2,
                kind: OpKind::Write(Value::new(2)),
                result: OpResult::Written(tv(1, 1, 2)),
            }),
        ];
        let report = StalenessReport::analyze(&History::from_events(&events).unwrap());
        assert_eq!(report.write_order_violations(), 0, "overlapping writes are unordered");
        assert!(report.anomaly_free());
    }

    #[test]
    fn display_summarizes() {
        let events = sequential(&[
            wr(0, tv(1, 0, 10)),
            wr(1, tv(2, 1, 20)),
            rd(0, tv(1, 0, 10)),
        ]);
        let report = StalenessReport::analyze(&History::from_events(&events).unwrap());
        let text = report.to_string();
        assert!(text.contains("100.0% stale"), "{text}");
        assert!(text.contains("k ≥ 2"), "{text}");
    }
}
