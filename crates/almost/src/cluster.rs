//! One-call assembly of a tunable-quorum cluster, plugging into
//! [`mwr_core::SimCluster`].

use mwr_core::{ClientEvent, Msg, RegisterServer, SimCluster};
use mwr_sim::Simulation;
use mwr_types::{ClusterConfig, ProcessId};

use crate::client::TunableClient;
use crate::level::TunableSpec;

/// A tunable cluster blueprint: configuration plus tunables.
///
/// The servers are `mwr-core`'s unmodified [`RegisterServer`]s — the
/// consistency level is purely a client-side decision, exactly as in
/// quorum-replicated production stores.
///
/// # Examples
///
/// ```
/// use mwr_almost::{TunableCluster, TunableSpec};
/// use mwr_core::{ScheduledOp, SimCluster};
/// use mwr_sim::SimTime;
/// use mwr_types::{ClusterConfig, Value};
///
/// let config = ClusterConfig::new(5, 1, 2, 2)?;
/// let cluster = TunableCluster::new(config, TunableSpec::quorum_lww());
/// let events = cluster.run_schedule(
///     1,
///     &[
///         (SimTime::ZERO, ScheduledOp::Write { writer: 0, value: Value::new(3) }),
///         (SimTime::from_ticks(100), ScheduledOp::Read { reader: 0 }),
///     ],
/// )?;
/// assert_eq!(events.len(), 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TunableCluster {
    config: ClusterConfig,
    spec: TunableSpec,
}

impl TunableCluster {
    /// Creates a blueprint.
    pub fn new(config: ClusterConfig, spec: TunableSpec) -> Self {
        TunableCluster { config, spec }
    }

    /// The cluster configuration.
    pub fn config(&self) -> ClusterConfig {
        self.config
    }

    /// The tunables in use.
    pub fn spec(&self) -> TunableSpec {
        self.spec
    }
}

impl SimCluster for TunableCluster {
    fn install(&self, sim: &mut Simulation<Msg, ClientEvent>) {
        for s in self.config.server_ids() {
            sim.add_process(ProcessId::Server(s), RegisterServer::new());
        }
        for w in self.config.writer_ids() {
            sim.add_process(w.into(), TunableClient::writer(w, self.config, self.spec));
        }
        for r in self.config.reader_ids() {
            sim.add_process(r.into(), TunableClient::reader(r, self.config, self.spec));
        }
    }

    fn client_config(&self) -> ClusterConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwr_core::{OpResult, ScheduledOp};
    use mwr_sim::{SimError, SimTime};
    use mwr_types::{TaggedValue, Value};

    fn reads_of(events: &[(SimTime, ClientEvent)]) -> Vec<TaggedValue> {
        events
            .iter()
            .filter_map(|(_, e)| match e {
                ClientEvent::Completed { result: OpResult::Read(tv), .. } => Some(*tv),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn every_preset_completes_a_sequential_schedule() {
        let schedule = [
            (SimTime::ZERO, ScheduledOp::Write { writer: 0, value: Value::new(11) }),
            (SimTime::from_ticks(100), ScheduledOp::Read { reader: 0 }),
            (SimTime::from_ticks(200), ScheduledOp::Read { reader: 1 }),
        ];
        for spec in [
            TunableSpec::fastest(),
            TunableSpec::fastest_with_repair(),
            TunableSpec::quorum_lww(),
            TunableSpec::strong(),
        ] {
            let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
            let cluster = TunableCluster::new(config, spec);
            let events = cluster.run_schedule(1, &schedule).unwrap();
            let reads = reads_of(&events);
            assert_eq!(reads.len(), 2, "{spec}: both reads complete");
            // Without contention even ONE/ONE behaves: the broadcast still
            // reaches every server, the level only truncates the *wait*.
            assert!(
                reads.iter().all(|tv| tv.value() == Value::new(11)),
                "{spec}: sequential read after write returns the write"
            );
        }
    }

    #[test]
    fn identical_seeds_reproduce_event_streams() {
        let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
        let cluster = TunableCluster::new(config, TunableSpec::quorum_lww());
        let schedule = [
            (SimTime::ZERO, ScheduledOp::Write { writer: 0, value: Value::new(1) }),
            (SimTime::ZERO, ScheduledOp::Write { writer: 1, value: Value::new(2) }),
            (SimTime::from_ticks(3), ScheduledOp::Read { reader: 0 }),
            (SimTime::from_ticks(4), ScheduledOp::Read { reader: 1 }),
        ];
        let a = cluster.run_schedule(9, &schedule).unwrap();
        let b = cluster.run_schedule(9, &schedule).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn out_of_range_client_is_reported() {
        let config = ClusterConfig::new(3, 1, 1, 1).unwrap();
        let cluster = TunableCluster::new(config, TunableSpec::fastest());
        let err = cluster
            .run_schedule(0, &[(SimTime::ZERO, ScheduledOp::Read { reader: 7 })])
            .unwrap_err();
        assert!(matches!(err, SimError::UnknownProcess { .. }));
    }
}
