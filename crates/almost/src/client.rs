//! The tunable-quorum register client automaton.
//!
//! Structurally a sibling of `mwr-core`'s [`RegisterClient`]: it speaks the
//! same [`Msg`] vocabulary to the same unmodified [`RegisterServer`]s, but
//! instead of the paper's fixed `S − t` quorums it waits for a configurable
//! number of acknowledgements per round ([`ConsistencyLevel`]), may stamp
//! writes from a local counter ([`WriteTagging::Local`]), and may push the
//! value a read chose back to the servers asynchronously (read repair).
//!
//! [`RegisterClient`]: mwr_core::RegisterClient
//! [`RegisterServer`]: mwr_core::RegisterServer

use std::collections::{BTreeSet, VecDeque};

use mwr_core::{ClientEvent, Msg, OpHandle, OpId, OpKind, OpResult};
use mwr_sim::{Automaton, Context};
use mwr_types::{ClientId, ClusterConfig, ProcessId, ReaderId, ServerId, Tag, TaggedValue, Value, WriterId};

use crate::level::{TunableSpec, WriteTagging};

/// Role-specific state.
#[derive(Debug)]
enum Role {
    Writer {
        id: WriterId,
        /// Local timestamp counter used by [`WriteTagging::Local`].
        local_ts: u64,
    },
    Reader {
        id: ReaderId,
    },
}

/// Phase of the in-flight operation.
#[derive(Debug)]
enum Phase {
    /// Queried-tag write, round 1: collecting `maxTS`.
    WriteQuery { value: Value, max_tag: Tag, acks: BTreeSet<ServerId> },
    /// Any write, final round: storing the tagged value.
    WriteUpdate { value: TaggedValue, acks: BTreeSet<ServerId> },
    /// Read, single round: collecting per-server maxima.
    ReadQuery { best: TaggedValue, acks: BTreeSet<ServerId> },
}

#[derive(Debug)]
struct InFlight {
    op: OpId,
    kind: OpKind,
    phase_no: u8,
    phase: Phase,
}

/// A tunable-quorum client (reader or writer) for the simulator.
///
/// # Examples
///
/// Assembling clients by hand; see [`TunableCluster`](crate::TunableCluster)
/// for the one-call harness.
///
/// ```
/// use mwr_almost::{TunableClient, TunableSpec};
/// use mwr_types::{ClusterConfig, ReaderId, WriterId};
///
/// let config = ClusterConfig::new(5, 1, 2, 2)?;
/// let spec = TunableSpec::quorum_lww();
/// let _writer = TunableClient::writer(WriterId::new(0), config, spec);
/// let _reader = TunableClient::reader(ReaderId::new(0), config, spec);
/// # Ok::<(), mwr_types::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct TunableClient {
    config: ClusterConfig,
    spec: TunableSpec,
    role: Role,
    pending: VecDeque<OpKind>,
    current: Option<InFlight>,
    next_seq: u64,
}

impl TunableClient {
    /// Creates a writer client.
    pub fn writer(id: WriterId, config: ClusterConfig, spec: TunableSpec) -> Self {
        TunableClient {
            config,
            spec,
            role: Role::Writer { id, local_ts: 0 },
            pending: VecDeque::new(),
            current: None,
            next_seq: 0,
        }
    }

    /// Creates a reader client.
    pub fn reader(id: ReaderId, config: ClusterConfig, spec: TunableSpec) -> Self {
        TunableClient {
            config,
            spec,
            role: Role::Reader { id },
            pending: VecDeque::new(),
            current: None,
            next_seq: 0,
        }
    }

    fn client_id(&self) -> ClientId {
        match &self.role {
            Role::Writer { id, .. } => ClientId::Writer(*id),
            Role::Reader { id } => ClientId::Reader(*id),
        }
    }

    /// Whether an operation is currently executing.
    pub fn is_busy(&self) -> bool {
        self.current.is_some()
    }

    fn start_next(&mut self, ctx: &mut Context<'_, Msg, ClientEvent>) {
        debug_assert!(self.current.is_none());
        let Some(kind) = self.pending.pop_front() else {
            return;
        };
        let op = OpId { client: self.client_id(), seq: self.next_seq };
        self.next_seq += 1;
        ctx.notify(ClientEvent::Invoked { op, kind });

        let servers = self.config.servers();
        let phase = match (&mut self.role, kind) {
            (Role::Writer { id, local_ts }, OpKind::Write(v)) => match self.spec.tagging {
                WriteTagging::Local => {
                    *local_ts += 1;
                    let value = TaggedValue::new(Tag::new(*local_ts, *id), v);
                    let handle = OpHandle { op, phase: 1 };
                    ctx.broadcast_to_servers(
                        servers,
                        // Almost-consistency clusters never enable GC; the
                        // floor piggyback stays inert.
                        Msg::Update { handle, value, floor: TaggedValue::initial() },
                    );
                    Phase::WriteUpdate { value, acks: BTreeSet::new() }
                }
                WriteTagging::Queried { .. } => {
                    let handle = OpHandle { op, phase: 1 };
                    ctx.broadcast_to_servers(servers, Msg::Query { handle });
                    Phase::WriteQuery { value: v, max_tag: Tag::initial(), acks: BTreeSet::new() }
                }
            },
            (Role::Reader { .. }, OpKind::Read) => {
                let handle = OpHandle { op, phase: 1 };
                ctx.broadcast_to_servers(servers, Msg::Query { handle });
                Phase::ReadQuery { best: TaggedValue::initial(), acks: BTreeSet::new() }
            }
            (Role::Writer { .. }, OpKind::Read) => {
                panic!("writers cannot invoke read() (paper §2.1)")
            }
            (Role::Reader { .. }, OpKind::Write(_)) => {
                panic!("readers cannot invoke write() (paper §2.1)")
            }
        };
        self.current = Some(InFlight { op, kind, phase_no: 1, phase });
    }

    fn complete(&mut self, result: OpResult, ctx: &mut Context<'_, Msg, ClientEvent>) {
        let inflight = self.current.take().expect("completing without an op");
        ctx.notify(ClientEvent::Completed { op: inflight.op, kind: inflight.kind, result });
        self.start_next(ctx);
    }

    fn on_ack(&mut self, server: ServerId, msg: &Msg) -> Option<AckAction> {
        let config = self.config;
        let spec = self.spec;
        let inflight = self.current.as_mut()?;
        let expected = OpHandle { op: inflight.op, phase: inflight.phase_no };

        match (msg, &mut inflight.phase) {
            (Msg::QueryAck { handle, latest }, Phase::WriteQuery { value, max_tag, acks })
                if *handle == expected =>
            {
                let WriteTagging::Queried { query } = spec.tagging else { unreachable!() };
                *max_tag = (*max_tag).max(latest.tag());
                acks.insert(server);
                if acks.len() >= query.acks(&config) {
                    let Role::Writer { id, .. } = &self.role else { unreachable!() };
                    let tagged = TaggedValue::new(max_tag.next(*id), *value);
                    let handle = OpHandle { op: inflight.op, phase: 2 };
                    inflight.phase_no = 2;
                    inflight.phase = Phase::WriteUpdate { value: tagged, acks: BTreeSet::new() };
                    return Some(AckAction::Broadcast(Msg::Update {
                        handle,
                        value: tagged,
                        floor: TaggedValue::initial(),
                    }));
                }
                None
            }
            (Msg::UpdateAck { handle }, Phase::WriteUpdate { value, acks })
                if *handle == expected =>
            {
                acks.insert(server);
                (acks.len() >= spec.write_level.acks(&config))
                    .then_some(AckAction::Complete(OpResult::Written(*value)))
            }
            (Msg::QueryAck { handle, latest }, Phase::ReadQuery { best, acks })
                if *handle == expected =>
            {
                *best = (*best).max(*latest);
                acks.insert(server);
                if acks.len() >= spec.read_level.acks(&config) {
                    let chosen = *best;
                    if spec.read_repair && !chosen.tag().is_initial() {
                        // Fire-and-forget: push the chosen value to all
                        // servers under a repair phase handle; the acks are
                        // discarded as stale. The read completes *now*.
                        let handle = OpHandle { op: inflight.op, phase: 2 };
                        return Some(AckAction::CompleteAndRepair(
                            OpResult::Read(chosen),
                            Msg::Update { handle, value: chosen, floor: TaggedValue::initial() },
                        ));
                    }
                    return Some(AckAction::Complete(OpResult::Read(chosen)));
                }
                None
            }
            _ => None, // stale ack from an earlier phase, operation, or repair
        }
    }
}

/// What a quorum of acks triggers.
#[derive(Debug)]
enum AckAction {
    Broadcast(Msg),
    Complete(OpResult),
    /// Complete the operation and asynchronously broadcast a repair.
    CompleteAndRepair(OpResult, Msg),
}

impl Automaton<Msg, ClientEvent> for TunableClient {
    fn on_external(&mut self, input: Msg, ctx: &mut Context<'_, Msg, ClientEvent>) {
        match input {
            Msg::InvokeRead => self.pending.push_back(OpKind::Read),
            Msg::InvokeWrite(v) => self.pending.push_back(OpKind::Write(v)),
            other => panic!("unexpected external input {other:?}"),
        }
        if self.current.is_none() {
            self.start_next(ctx);
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: Msg, ctx: &mut Context<'_, Msg, ClientEvent>) {
        let Some(server) = from.as_server() else {
            return;
        };
        match self.on_ack(server, &msg) {
            None => {}
            Some(AckAction::Broadcast(next_round)) => {
                let op = self.current.as_ref().expect("broadcasting mid-operation").op;
                ctx.notify(ClientEvent::SecondRound { op });
                ctx.broadcast_to_servers(self.config.servers(), next_round);
            }
            Some(AckAction::Complete(result)) => self.complete(result, ctx),
            Some(AckAction::CompleteAndRepair(result, repair)) => {
                ctx.broadcast_to_servers(self.config.servers(), repair);
                self.complete(result, ctx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::ConsistencyLevel;
    use mwr_core::RegisterServer;
    use mwr_sim::{SimTime, Simulation};

    fn config() -> ClusterConfig {
        ClusterConfig::new(5, 1, 2, 2).unwrap()
    }

    fn build_sim(spec: TunableSpec, seed: u64) -> Simulation<Msg, ClientEvent> {
        let cfg = config();
        let mut sim = Simulation::new(seed);
        for s in cfg.server_ids() {
            sim.add_process(ProcessId::Server(s), RegisterServer::new());
        }
        for w in cfg.writer_ids() {
            sim.add_process(w.into(), TunableClient::writer(w, cfg, spec));
        }
        for r in cfg.reader_ids() {
            sim.add_process(r.into(), TunableClient::reader(r, cfg, spec));
        }
        sim
    }

    fn completions(events: &[(SimTime, ClientEvent)]) -> Vec<OpResult> {
        events
            .iter()
            .filter_map(|(_, e)| match e {
                ClientEvent::Completed { result, .. } => Some(*result),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn sequential_read_after_write_sees_the_write_with_intersecting_quorums() {
        for spec in [TunableSpec::strong(), TunableSpec::quorum_lww()] {
            let mut sim = build_sim(spec, 1);
            sim.schedule_external(SimTime::ZERO, ProcessId::writer(0), Msg::InvokeWrite(Value::new(8)))
                .unwrap();
            sim.schedule_external(SimTime::from_ticks(100), ProcessId::reader(0), Msg::InvokeRead)
                .unwrap();
            sim.run_until_quiescent().unwrap();
            let done = completions(&sim.drain_notifications());
            let OpResult::Read(rv) = done[1] else { panic!("read second") };
            assert_eq!(rv.value(), Value::new(8), "{spec}");
        }
    }

    #[test]
    fn one_one_read_can_miss_a_completed_write() {
        // W:ONE means the write completes after a single server stored it.
        // A later R:ONE read acking from a different server misses it. We
        // force the miss deterministically: the write reaches only s0 (its
        // other updates are held — the paper's "skip"), and the read skips
        // s0, so its single ack comes from a server that never saw the
        // write.
        let spec = TunableSpec::fastest();
        let mut sim = build_sim(spec, 3);
        for s in 1..5u32 {
            sim.network_mut().hold_between(ProcessId::writer(0), ProcessId::server(s));
        }
        sim.network_mut().hold_between(ProcessId::reader(0), ProcessId::server(0));
        sim.schedule_external(SimTime::ZERO, ProcessId::writer(0), Msg::InvokeWrite(Value::new(4)))
            .unwrap();
        sim.schedule_external(SimTime::from_ticks(100), ProcessId::reader(0), Msg::InvokeRead)
            .unwrap();
        sim.run_until_quiescent().unwrap();
        let done = completions(&sim.drain_notifications());
        let OpResult::Written(wv) = done[0] else { panic!() };
        let OpResult::Read(rv) = done[1] else { panic!() };
        assert_eq!(wv.value(), Value::new(4));
        assert!(rv.tag().is_initial(), "the ONE/ONE read missed the completed write");
    }

    #[test]
    fn local_tags_collide_across_writers_and_lww_breaks_write_order() {
        // Writer 0 writes, completes; then writer 1 writes. With local tags
        // both writes carry ts = 1, and (1, w1) > (1, w0): fine. But a
        // *third* write by writer 0 carries ts = 2 < any ts = 2 tag of w1…
        // the total order exists, yet it can contradict real time: write A
        // (by w1, ts=1) completed strictly after write B (by w0, ts=2) would
        // order A < B. Here we check the simpler observable: two sequential
        // writes by different writers can produce a *non-increasing* tag
        // pair under LWW when the later writer has a smaller counter.
        let spec = TunableSpec::quorum_lww();
        let mut sim = build_sim(spec, 4);
        // w0 writes twice (ts=1, ts=2), then w1 writes once (ts=1).
        sim.schedule_external(SimTime::ZERO, ProcessId::writer(0), Msg::InvokeWrite(Value::new(1)))
            .unwrap();
        sim.schedule_external(SimTime::from_ticks(50), ProcessId::writer(0), Msg::InvokeWrite(Value::new(2)))
            .unwrap();
        sim.schedule_external(SimTime::from_ticks(100), ProcessId::writer(1), Msg::InvokeWrite(Value::new(3)))
            .unwrap();
        sim.run_until_quiescent().unwrap();
        let done = completions(&sim.drain_notifications());
        let tags: Vec<Tag> = done
            .iter()
            .map(|r| match r {
                OpResult::Written(tv) => tv.tag(),
                _ => panic!(),
            })
            .collect();
        assert_eq!(tags[1], Tag::new(2, WriterId::new(0)));
        assert_eq!(tags[2], Tag::new(1, WriterId::new(1)));
        assert!(tags[2] < tags[1], "LWW tag order contradicts real-time write order");
    }

    #[test]
    fn read_repair_propagates_the_value_to_lagging_servers() {
        let spec = TunableSpec {
            read_level: ConsistencyLevel::Majority,
            read_repair: true,
            ..TunableSpec::fastest()
        };
        let mut sim = build_sim(spec, 5);
        // The write reaches only s0 (W:ONE, other links held).
        for s in 1..5u32 {
            sim.network_mut().hold_between(ProcessId::writer(0), ProcessId::server(s));
        }
        // Reader 0's links to s3, s4 are held, pinning its majority ack set
        // to {s0, s1, s2}; its repair therefore lands on s0, s1, s2.
        for s in 3..5u32 {
            sim.network_mut().hold_between(ProcessId::reader(0), ProcessId::server(s));
        }
        // Reader 1 skips s0, so any value it sees arrived via repair.
        sim.network_mut().hold_between(ProcessId::reader(1), ProcessId::server(0));
        sim.schedule_external(SimTime::ZERO, ProcessId::writer(0), Msg::InvokeWrite(Value::new(6)))
            .unwrap();
        sim.schedule_external(SimTime::from_ticks(100), ProcessId::reader(0), Msg::InvokeRead)
            .unwrap();
        sim.schedule_external(SimTime::from_ticks(200), ProcessId::reader(1), Msg::InvokeRead)
            .unwrap();
        sim.run_until_quiescent().unwrap();
        let done = completions(&sim.drain_notifications());
        let OpResult::Read(first_read) = done[1] else { panic!() };
        let OpResult::Read(second_read) = done[2] else { panic!() };
        assert_eq!(first_read.value(), Value::new(6), "majority read including s0 sees the write");
        assert_eq!(second_read.value(), Value::new(6), "repair propagated the value past s0");
    }

    #[test]
    fn all_level_write_blocks_under_a_crash() {
        let spec = TunableSpec {
            write_level: ConsistencyLevel::All,
            ..TunableSpec::fastest()
        };
        let mut sim = build_sim(spec, 6);
        sim.schedule_crash(SimTime::ZERO, ProcessId::server(4));
        sim.schedule_external(SimTime::from_ticks(1), ProcessId::writer(0), Msg::InvokeWrite(Value::new(1)))
            .unwrap();
        sim.run_until_quiescent().unwrap();
        let done = completions(&sim.drain_notifications());
        assert!(done.is_empty(), "ALL-level write cannot complete with a crashed server");
    }

    #[test]
    fn overlapping_invocations_are_queued() {
        let spec = TunableSpec::strong();
        let mut sim = build_sim(spec, 7);
        for v in [1, 2] {
            sim.schedule_external(SimTime::ZERO, ProcessId::writer(0), Msg::InvokeWrite(Value::new(v)))
                .unwrap();
        }
        sim.run_until_quiescent().unwrap();
        let events = sim.drain_notifications();
        // strong() writes are two round-trips, so each op emits
        // Invoked, SecondRound, Completed — strictly in sequence.
        let kinds: Vec<u8> = events
            .iter()
            .map(|(_, e)| match e {
                ClientEvent::Invoked { .. } => 0,
                ClientEvent::SecondRound { .. } => 1,
                ClientEvent::Completed { .. } => 2,
            })
            .collect();
        assert_eq!(kinds, [0, 1, 2, 0, 1, 2], "operations strictly serialize");
    }
}
