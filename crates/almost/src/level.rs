//! Consistency levels and write-tagging disciplines — the tunables of a
//! quorum-replicated register in the Cassandra mould (paper §1).

use std::fmt;

use mwr_types::ClusterConfig;

/// How many server acknowledgements an operation round waits for.
///
/// This is the per-operation "consistency level" knob of quorum-replicated
/// stores. The round still *broadcasts* to all servers (the paper's
/// algorithm schema, §2.2); the level only decides when the client stops
/// waiting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConsistencyLevel {
    /// Wait for a single acknowledgement.
    One,
    /// Wait for a majority: `⌊S/2⌋ + 1`.
    Majority,
    /// Wait for every server. Blocks (loses wait-freedom) if any server is
    /// crashed — the classic `ALL` trade-off.
    All,
    /// Wait for exactly `n` acknowledgements, clamped to `[1, S]`.
    Exact(u32),
}

impl ConsistencyLevel {
    /// The number of acknowledgements this level waits for under `config`.
    ///
    /// # Examples
    ///
    /// ```
    /// use mwr_almost::ConsistencyLevel;
    /// use mwr_types::ClusterConfig;
    ///
    /// let config = ClusterConfig::new(5, 1, 2, 2)?;
    /// assert_eq!(ConsistencyLevel::One.acks(&config), 1);
    /// assert_eq!(ConsistencyLevel::Majority.acks(&config), 3);
    /// assert_eq!(ConsistencyLevel::All.acks(&config), 5);
    /// assert_eq!(ConsistencyLevel::Exact(9).acks(&config), 5); // clamped
    /// # Ok::<(), mwr_types::ConfigError>(())
    /// ```
    pub fn acks(self, config: &ClusterConfig) -> usize {
        let s = config.servers();
        match self {
            ConsistencyLevel::One => 1,
            ConsistencyLevel::Majority => s / 2 + 1,
            ConsistencyLevel::All => s,
            ConsistencyLevel::Exact(n) => (n as usize).clamp(1, s),
        }
    }

    /// Whether an operation at this level is wait-free under `config`: it
    /// can complete with `t` servers crashed, i.e. `acks ≤ S − t`.
    pub fn wait_free(self, config: &ClusterConfig) -> bool {
        self.acks(config) <= config.servers() - config.max_faults()
    }

    /// Short name used in experiment tables.
    pub fn name(self) -> String {
        match self {
            ConsistencyLevel::One => "ONE".to_string(),
            ConsistencyLevel::Majority => "MAJ".to_string(),
            ConsistencyLevel::All => "ALL".to_string(),
            ConsistencyLevel::Exact(n) => format!("={n}"),
        }
    }
}

impl fmt::Display for ConsistencyLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// How writes obtain their tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WriteTagging {
    /// One round-trip: the writer stamps values from a local counter and
    /// ties are broken by writer id — last-writer-wins. This is the "fast
    /// write" whose multi-writer atomicity Theorem 1 rules out.
    Local,
    /// Two round-trips: query the maximum tag at `query` level first, then
    /// write `(maxTS + 1, wi)` — the tag discipline of the paper's
    /// Algorithm 1 / LS97.
    Queried {
        /// Ack threshold for the tag-query round.
        query: ConsistencyLevel,
    },
}

impl WriteTagging {
    /// Round-trips per write under this discipline.
    pub fn round_trips(self) -> usize {
        match self {
            WriteTagging::Local => 1,
            WriteTagging::Queried { .. } => 2,
        }
    }
}

/// A full tunable-register configuration: tagging plus per-operation levels
/// plus read repair.
///
/// # Examples
///
/// ```
/// use mwr_almost::{ConsistencyLevel, TunableSpec, WriteTagging};
/// use mwr_types::ClusterConfig;
///
/// let config = ClusterConfig::new(5, 1, 2, 2)?;
/// let strong = TunableSpec::strong();
/// assert!(strong.quorums_intersect(&config));
/// assert_eq!(strong.write_round_trips(), 2);
///
/// let fastest = TunableSpec::fastest();
/// assert!(!fastest.quorums_intersect(&config));
/// assert_eq!(fastest.write_round_trips(), 1);
/// assert_eq!(fastest.read_round_trips(), 1);
/// # Ok::<(), mwr_types::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TunableSpec {
    /// How writes obtain tags.
    pub tagging: WriteTagging,
    /// Ack threshold of the write's update round.
    pub write_level: ConsistencyLevel,
    /// Ack threshold of the read round.
    pub read_level: ConsistencyLevel,
    /// Cassandra-style read repair: after a read completes, asynchronously
    /// push the value it chose to all servers (fire-and-forget; does not
    /// add client-perceived latency).
    pub read_repair: bool,
}

impl TunableSpec {
    /// The fastest configuration: local tags, ONE/ONE, no repair. Both
    /// operations are one round-trip — the design point the paper proves
    /// cannot be atomic (`W1R1` row of Table 1).
    pub fn fastest() -> Self {
        TunableSpec {
            tagging: WriteTagging::Local,
            write_level: ConsistencyLevel::One,
            read_level: ConsistencyLevel::One,
            read_repair: false,
        }
    }

    /// [`TunableSpec::fastest`] plus read repair — the common production
    /// mitigation. Still not atomic; the experiment quantifies how much
    /// repair helps.
    pub fn fastest_with_repair() -> Self {
        TunableSpec { read_repair: true, ..TunableSpec::fastest() }
    }

    /// Local (one-round-trip) writes at majority level, majority reads —
    /// "QUORUM/QUORUM" with last-writer-wins tags, the default advice for
    /// Cassandra. Overlapping quorums, but fast writes still admit
    /// anomalies under write concurrency (Theorem 1 explains why).
    pub fn quorum_lww() -> Self {
        TunableSpec {
            tagging: WriteTagging::Local,
            write_level: ConsistencyLevel::Majority,
            read_level: ConsistencyLevel::Majority,
            read_repair: false,
        }
    }

    /// The strongest configuration this crate offers: queried tags
    /// (two-round-trip writes) with majority thresholds everywhere. Reads
    /// are still one round-trip without the paper's `admissible(·)`
    /// machinery, so atomicity is *not* guaranteed (the fast-read bound
    /// explains why) — but only new/old inversions between *reads* remain
    /// possible; reads never miss a completed write.
    pub fn strong() -> Self {
        TunableSpec {
            tagging: WriteTagging::Queried { query: ConsistencyLevel::Majority },
            write_level: ConsistencyLevel::Majority,
            read_level: ConsistencyLevel::Majority,
            read_repair: false,
        }
    }

    /// Round-trips per write.
    pub fn write_round_trips(self) -> usize {
        self.tagging.round_trips()
    }

    /// Round-trips per read (always one; repair is asynchronous).
    pub fn read_round_trips(self) -> usize {
        1
    }

    /// Whether the read and write ack sets are guaranteed to intersect:
    /// `read_acks + write_acks > S`. Intersection is necessary (not
    /// sufficient) for every read to observe the latest completed write.
    pub fn quorums_intersect(self, config: &ClusterConfig) -> bool {
        self.read_level.acks(config) + self.write_level.acks(config) > config.servers()
    }

    /// Whether every operation stays wait-free under `t` crashes.
    pub fn wait_free(self, config: &ClusterConfig) -> bool {
        let query_ok = match self.tagging {
            WriteTagging::Local => true,
            WriteTagging::Queried { query } => query.wait_free(config),
        };
        query_ok && self.write_level.wait_free(config) && self.read_level.wait_free(config)
    }

    /// Table label, e.g. `"lww W:ONE R:MAJ +repair"`.
    pub fn label(self) -> String {
        let tagging = match self.tagging {
            WriteTagging::Local => "lww".to_string(),
            WriteTagging::Queried { query } => format!("tag@{}", query.name()),
        };
        let repair = if self.read_repair { " +repair" } else { "" };
        format!("{tagging} W:{} R:{}{repair}", self.write_level.name(), self.read_level.name())
    }
}

impl fmt::Display for TunableSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(s: usize, t: usize) -> ClusterConfig {
        ClusterConfig::new(s, t, 2, 2).unwrap()
    }

    #[test]
    fn ack_counts_follow_levels() {
        let c = config(7, 2);
        assert_eq!(ConsistencyLevel::One.acks(&c), 1);
        assert_eq!(ConsistencyLevel::Majority.acks(&c), 4);
        assert_eq!(ConsistencyLevel::All.acks(&c), 7);
        assert_eq!(ConsistencyLevel::Exact(3).acks(&c), 3);
        assert_eq!(ConsistencyLevel::Exact(0).acks(&c), 1, "clamped up");
        assert_eq!(ConsistencyLevel::Exact(40).acks(&c), 7, "clamped down");
    }

    #[test]
    fn all_is_not_wait_free_with_faults() {
        let c = config(5, 1);
        assert!(ConsistencyLevel::One.wait_free(&c));
        assert!(ConsistencyLevel::Majority.wait_free(&c));
        assert!(!ConsistencyLevel::All.wait_free(&c));
        assert!(ConsistencyLevel::Exact(4).wait_free(&c));
        assert!(!ConsistencyLevel::Exact(5).wait_free(&c));
    }

    #[test]
    fn intersection_requires_read_plus_write_over_s() {
        let c = config(5, 1);
        assert!(TunableSpec::strong().quorums_intersect(&c));
        assert!(TunableSpec::quorum_lww().quorums_intersect(&c));
        assert!(!TunableSpec::fastest().quorums_intersect(&c));
        let one_all = TunableSpec {
            tagging: WriteTagging::Local,
            write_level: ConsistencyLevel::One,
            read_level: ConsistencyLevel::All,
            read_repair: false,
        };
        assert!(one_all.quorums_intersect(&c));
        assert!(!one_all.wait_free(&c));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(TunableSpec::fastest().label(), "lww W:ONE R:ONE");
        assert_eq!(TunableSpec::fastest_with_repair().label(), "lww W:ONE R:ONE +repair");
        assert_eq!(TunableSpec::strong().label(), "tag@MAJ W:MAJ R:MAJ");
        assert_eq!(ConsistencyLevel::Exact(3).to_string(), "=3");
    }

    #[test]
    fn round_trip_counts() {
        assert_eq!(TunableSpec::fastest().write_round_trips(), 1);
        assert_eq!(TunableSpec::strong().write_round_trips(), 2);
        assert_eq!(TunableSpec::strong().read_round_trips(), 1);
    }
}
