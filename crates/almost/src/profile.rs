//! Placing a measured history on the consistency spectrum of the paper's
//! Fig 2, with inconsistency quantification attached.

use std::fmt;

use mwr_check::{check_atomicity, check_regular, check_safe, History};

use crate::metrics::StalenessReport;

/// The strongest Fig 2 consistency condition a history satisfies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ConsistencyClass {
    /// Not even safe: some read concurrent with no write returned a value
    /// no legal preceding write produced.
    None,
    /// Safe but not regular.
    Safe,
    /// Regular but not atomic.
    Regular,
    /// Atomic (Definition 2.1 holds).
    Atomic,
}

impl ConsistencyClass {
    /// Short table label.
    pub fn name(self) -> &'static str {
        match self {
            ConsistencyClass::None => "none",
            ConsistencyClass::Safe => "safe",
            ConsistencyClass::Regular => "regular",
            ConsistencyClass::Atomic => "ATOMIC",
        }
    }
}

impl fmt::Display for ConsistencyClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A history's measured consistency class plus its staleness
/// quantification.
///
/// # Examples
///
/// ```
/// use mwr_almost::{ConsistencyClass, ConsistencyProfile};
/// use mwr_check::History;
///
/// let profile = ConsistencyProfile::measure(&History::default());
/// assert_eq!(profile.class, ConsistencyClass::Atomic);
/// assert!(profile.staleness.is_fresh());
/// ```
#[derive(Debug, Clone)]
pub struct ConsistencyProfile {
    /// The strongest condition the history satisfies.
    pub class: ConsistencyClass,
    /// The inconsistency quantification.
    pub staleness: StalenessReport,
}

impl ConsistencyProfile {
    /// Judges a history against the full spectrum and quantifies its
    /// staleness.
    pub fn measure(history: &History) -> Self {
        let class = if check_atomicity(history).is_ok() {
            ConsistencyClass::Atomic
        } else if check_regular(history).is_ok() {
            ConsistencyClass::Regular
        } else if check_safe(history).is_ok() {
            ConsistencyClass::Safe
        } else {
            ConsistencyClass::None
        };
        ConsistencyProfile { class, staleness: StalenessReport::analyze(history) }
    }
}

impl fmt::Display for ConsistencyProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} — {}", self.class, self.staleness)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwr_core::{Cluster, Protocol, ScheduledOp, SimCluster};
    use mwr_sim::SimTime;
    use mwr_types::{ClusterConfig, Value};

    #[test]
    fn class_ordering_matches_spectrum_strength() {
        assert!(ConsistencyClass::Atomic > ConsistencyClass::Regular);
        assert!(ConsistencyClass::Regular > ConsistencyClass::Safe);
        assert!(ConsistencyClass::Safe > ConsistencyClass::None);
    }

    #[test]
    fn atomic_protocol_profiles_as_atomic_and_fresh() {
        let config = ClusterConfig::new(5, 1, 2, 2).unwrap();
        let cluster = Cluster::new(config, Protocol::W2R1);
        let mut ops = vec![];
        for i in 0..5u64 {
            ops.push((SimTime::from_ticks(i * 2), ScheduledOp::Write {
                writer: (i % 2) as u32,
                value: Value::new(i + 1),
            }));
            ops.push((SimTime::from_ticks(i * 2 + 1), ScheduledOp::Read {
                reader: (i % 2) as u32,
            }));
        }
        let events = cluster.run_schedule(11, &ops).unwrap();
        let history = mwr_check::History::from_events(&events).unwrap();
        let profile = ConsistencyProfile::measure(&history);
        assert_eq!(profile.class, ConsistencyClass::Atomic);
        assert!(profile.staleness.is_fresh(), "atomic ⟹ fresh");
    }

    #[test]
    fn display_includes_class_and_staleness() {
        let profile = ConsistencyProfile::measure(&History::default());
        let text = profile.to_string();
        assert!(text.contains("ATOMIC"), "{text}");
        assert!(text.contains("0 reads"), "{text}");
    }
}
