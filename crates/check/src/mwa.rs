//! The paper's MWA0–MWA4 properties (Appendix A.1), checked directly on a
//! history's tags.
//!
//! These properties are the proof obligations for the W2R1 implementation:
//! if a tag-disciplined protocol satisfies all five, the induced order
//! `op1 ≺π op2 ⟺ value(op1) < value(op2)` is a legal linearization, hence
//! the protocol is atomic. They are *sufficient*, not necessary — a history
//! can be atomic while breaking MWA0 (e.g. tag order opposite to an
//! unobserved write order) — so the general verdict remains with
//! [`check_atomicity`](crate::check_atomicity). Integration tests assert
//! the implication "MWA holds ⟹ atomic" on every W2R1 run.

use std::fmt;

use mwr_core::OpId;
use mwr_types::TaggedValue;

use crate::history::{History, Timestamp};

/// Which MWA property failed, with the offending operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MwaViolation {
    /// MWA0: writes `first ≺σ second` but `tag(first) ≥ tag(second)`.
    Mwa0 {
        /// The earlier write.
        first: OpId,
        /// The later write with a non-larger tag.
        second: OpId,
    },
    /// MWA1: a read returned a negative/ill-formed tag. (Unrepresentable
    /// with this crate's types; kept for completeness of the property set.)
    Mwa1 {
        /// The offending read.
        read: OpId,
    },
    /// MWA2: read `read` follows write `write` but returned a smaller tag.
    Mwa2 {
        /// The preceding write.
        write: OpId,
        /// The read that missed it.
        read: OpId,
    },
    /// MWA3: read `read` returned a value whose write it precedes.
    Mwa3 {
        /// The read that saw the future.
        read: OpId,
        /// The write it preceded.
        write: OpId,
    },
    /// MWA4: reads `first ≺σ second` but the second returned a smaller tag.
    Mwa4 {
        /// The earlier read.
        first: OpId,
        /// The later read that regressed.
        second: OpId,
    },
    /// A read returned a tag no write produced (needed before MWA3 can
    /// locate the source write).
    UnknownSource {
        /// The offending read.
        read: OpId,
        /// The unexplained value.
        value: TaggedValue,
    },
    /// The history has open operations.
    Open,
}

impl fmt::Display for MwaViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MwaViolation::Mwa0 { first, second } => {
                write!(f, "MWA0: write {first} precedes {second} but has a larger-or-equal tag")
            }
            MwaViolation::Mwa1 { read } => write!(f, "MWA1: read {read} returned an ill-formed tag"),
            MwaViolation::Mwa2 { write, read } => {
                write!(f, "MWA2: read {read} follows write {write} but returned a smaller tag")
            }
            MwaViolation::Mwa3 { read, write } => {
                write!(f, "MWA3: read {read} returned the value of a later write {write}")
            }
            MwaViolation::Mwa4 { first, second } => {
                write!(f, "MWA4: read {second} follows {first} but returned a smaller tag")
            }
            MwaViolation::UnknownSource { read, value } => {
                write!(f, "read {read} returned {value}, which no write produced")
            }
            MwaViolation::Open => write!(f, "history has open operations"),
        }
    }
}

/// Checks MWA0–MWA4 on a history.
///
/// # Errors
///
/// Returns the first violated property with its witness operations.
///
/// # Examples
///
/// ```
/// use mwr_check::{check_mwa, History};
///
/// assert!(check_mwa(&History::default()).is_ok());
/// ```
pub fn check_mwa(history: &History) -> Result<(), MwaViolation> {
    if history.ops().iter().any(|o| o.completed == Timestamp::MAX) {
        return Err(MwaViolation::Open);
    }
    let writes: Vec<_> = history.writes().collect();
    let reads: Vec<_> = history.reads().collect();

    // MWA0.
    for a in &writes {
        for b in &writes {
            if a.precedes(b) && a.tagged_value() >= b.tagged_value() {
                return Err(MwaViolation::Mwa0 { first: a.id, second: b.id });
            }
        }
    }
    // MWA1: tags are non-negative by construction; assert the invariant.
    for r in &reads {
        if r.tagged_value() < TaggedValue::initial() {
            return Err(MwaViolation::Mwa1 { read: r.id });
        }
    }
    // MWA2.
    for w in &writes {
        for r in &reads {
            if w.precedes(r) && r.tagged_value() < w.tagged_value() {
                return Err(MwaViolation::Mwa2 { write: w.id, read: r.id });
            }
        }
    }
    // MWA3 (requires locating each read's source write).
    for r in &reads {
        let v = r.tagged_value();
        if v == TaggedValue::initial() {
            continue; // wr_{0,⊥} is never invoked (paper Appendix A.1)
        }
        let Some(src) = writes.iter().find(|w| w.tagged_value() == v) else {
            return Err(MwaViolation::UnknownSource { read: r.id, value: v });
        };
        if r.precedes(src) {
            return Err(MwaViolation::Mwa3 { read: r.id, write: src.id });
        }
    }
    // MWA4.
    for a in &reads {
        for b in &reads {
            if a.precedes(b) && b.tagged_value() < a.tagged_value() {
                return Err(MwaViolation::Mwa4 { first: a.id, second: b.id });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::Operation;
    use mwr_core::{OpKind, OpResult};
    use mwr_sim::SimTime;
    use mwr_types::{ClientId, Tag, Value, WriterId};

    fn ts(t: u64) -> Timestamp {
        Timestamp { time: SimTime::from_ticks(t), seq: t }
    }

    fn tv(ts_: u64, w: u32, v: u64) -> TaggedValue {
        TaggedValue::new(Tag::new(ts_, WriterId::new(w)), Value::new(v))
    }

    fn write(client: u32, seq: u64, val: TaggedValue, s: u64, f: u64) -> Operation {
        Operation {
            id: OpId { client: ClientId::writer(client), seq },
            kind: OpKind::Write(val.value()),
            result: OpResult::Written(val),
            invoked: ts(s),
            completed: ts(f),
        }
    }

    fn read(client: u32, seq: u64, val: TaggedValue, s: u64, f: u64) -> Operation {
        Operation {
            id: OpId { client: ClientId::reader(client), seq },
            kind: OpKind::Read,
            result: OpResult::Read(val),
            invoked: ts(s),
            completed: ts(f),
        }
    }

    #[test]
    fn clean_history_passes() {
        let v1 = tv(1, 0, 1);
        let v2 = tv(2, 1, 2);
        let h = History::from_operations(vec![
            write(0, 0, v1, 0, 10),
            read(0, 0, v1, 20, 30),
            write(1, 0, v2, 40, 50),
            read(1, 0, v2, 60, 70),
        ])
        .unwrap();
        assert_eq!(check_mwa(&h), Ok(()));
    }

    #[test]
    fn mwa0_catches_tag_inversion() {
        // Sequential writes whose tags decrease — the naive fast write's
        // signature failure.
        let h = History::from_operations(vec![
            write(1, 0, tv(1, 1, 2), 0, 10),
            write(0, 0, tv(1, 0, 1), 20, 30),
        ])
        .unwrap();
        assert!(matches!(check_mwa(&h), Err(MwaViolation::Mwa0 { .. })));
    }

    #[test]
    fn mwa2_catches_read_missing_preceding_write() {
        let v1 = tv(1, 0, 1);
        let h = History::from_operations(vec![
            write(0, 0, v1, 0, 10),
            read(0, 0, TaggedValue::initial(), 20, 30),
        ])
        .unwrap();
        assert!(matches!(check_mwa(&h), Err(MwaViolation::Mwa2 { .. })));
    }

    #[test]
    fn mwa3_catches_future_read() {
        let v1 = tv(1, 0, 1);
        let h = History::from_operations(vec![
            read(0, 0, v1, 0, 10),
            write(0, 0, v1, 20, 30),
        ])
        .unwrap();
        assert!(matches!(check_mwa(&h), Err(MwaViolation::Mwa3 { .. })));
    }

    #[test]
    fn mwa4_catches_read_regression() {
        let v1 = tv(1, 0, 1);
        let v2 = tv(2, 1, 2);
        // v2's write stays concurrent with both reads so MWA2 cannot fire;
        // the regression r0 = v2 then r1 = v1 is purely a read-read issue.
        let h = History::from_operations(vec![
            write(0, 0, v1, 0, 100),
            write(1, 0, v2, 0, 200),
            read(0, 0, v2, 110, 120),
            read(1, 0, v1, 130, 140),
        ])
        .unwrap();
        assert!(matches!(check_mwa(&h), Err(MwaViolation::Mwa4 { .. })));
    }

    #[test]
    fn unknown_source_is_reported() {
        let h = History::from_operations(vec![read(0, 0, tv(5, 0, 5), 0, 10)]).unwrap();
        assert!(matches!(check_mwa(&h), Err(MwaViolation::UnknownSource { .. })));
    }

    #[test]
    fn concurrent_writes_with_equal_ts_pass_mwa0() {
        // Concurrent writes may receive tags in either order (§5.2).
        let h = History::from_operations(vec![
            write(0, 0, tv(1, 0, 1), 0, 100),
            write(1, 0, tv(1, 1, 2), 0, 100),
        ])
        .unwrap();
        assert_eq!(check_mwa(&h), Ok(()));
    }
}
