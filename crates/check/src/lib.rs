//! Consistency checking for register execution histories.
//!
//! This crate turns the *definitions* of the paper into executable judges:
//!
//! - [`History`] — the observable record of invocations and responses
//!   (paper §2.1), assembled from `mwr-core` client events.
//! - [`check_atomicity`] — polynomial graph-saturation checker for
//!   atomicity (Definition 2.1), exact for uniquely-tagged histories.
//! - [`search_atomicity`] — exhaustive Wing–Gong linearization search; the
//!   oracle the graph checker is cross-validated against.
//! - [`check_regular`] / [`check_safe`] — the weaker rungs of Fig 2's
//!   consistency spectrum.
//! - [`check_mwa`] — the paper's MWA0–MWA4 proof obligations (Appendix A)
//!   for tag-disciplined protocols like W2R1.
//!
//! # Examples
//!
//! Verifying the paper's W2R1 algorithm on an adversarial schedule:
//!
//! ```
//! use mwr_check::{check_atomicity, History};
//! use mwr_core::{Cluster, Protocol, ScheduledOp, SimCluster};
//! use mwr_sim::SimTime;
//! use mwr_types::{ClusterConfig, Value};
//!
//! let config = ClusterConfig::new(5, 1, 2, 2)?;
//! let cluster = Cluster::new(config, Protocol::W2R1);
//! let mut ops = vec![];
//! for i in 0..4 {
//!     ops.push((SimTime::from_ticks(i * 3), ScheduledOp::Write {
//!         writer: (i % 2) as u32,
//!         value: Value::new(i),
//!     }));
//!     ops.push((SimTime::from_ticks(i * 3 + 1), ScheduledOp::Read { reader: (i % 2) as u32 }));
//! }
//! let events = cluster.run_schedule(123, &ops)?;
//! let history = History::from_events(&events)?;
//! assert!(check_atomicity(&history).is_ok());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod graph;
mod history;
mod mwa;
mod search;
mod spectrum;
mod stream;

pub use graph::{check_atomicity, Verdict, Violation, WitnessNode};
pub use history::{History, HistoryError, Operation, Timestamp};
pub use mwa::{check_mwa, MwaViolation};
pub use search::{search_atomicity, MAX_SEARCH_OPS};
pub use spectrum::{check_regular, check_safe};
pub use stream::{AuditReport, AuditStats, StreamConfig, StreamingAuditor};

pub use mwr_core::AuditRecord;

use mwr_core::ClientEvent;
use mwr_sim::SimTime;

/// Convenience: build a [`History`] from client events and check atomicity.
///
/// # Errors
///
/// Returns the [`HistoryError`] if the event stream is malformed.
///
/// # Examples
///
/// ```
/// use mwr_check::check_events;
///
/// assert!(check_events(&[])?.is_ok());
/// # Ok::<(), mwr_check::HistoryError>(())
/// ```
pub fn check_events(events: &[(SimTime, ClientEvent)]) -> Result<Verdict, HistoryError> {
    Ok(check_atomicity(&History::from_events(events)?))
}
